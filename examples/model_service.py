#!/usr/bin/env python3
"""Model service: run the `xpdl serve` daemon in-process, query it over
HTTP with concurrent clients, live-edit a descriptor and watch the hosted
model hot-reload — the paper's in-operation query scenario end to end.

Run:  python examples/model_service.py
"""

import asyncio
import concurrent.futures
import threading
import time

from repro.modellib import standard_repository
from repro.repository import MemoryStore
from repro.service import ModelHost, ServiceClient, XpdlHttpServer

DEMO_CPU = (
    "<cpu name='DemoCpu'>"
    "<group prefix='core' quantity='{n}'>"
    "<core frequency='2' frequency_unit='GHz'/>"
    "</group>"
    "</cpu>"
)
DEMO_SYSTEM = (
    "<system id='DemoSys'><node>"
    "<cpu id='PE0' type='DemoCpu'/>"
    "</node></system>"
)

# 1. One repository, loaded once: the paper's bundled library plus an
#    editable in-memory store standing in for a manufacturer site that
#    keeps publishing descriptor updates.
editable = MemoryStore(
    {"demo_cpu.xpdl": DEMO_CPU.format(n=4), "demo_sys.xpdl": DEMO_SYSTEM}
)
repo = standard_repository()
repo.add_store(editable)
host = ModelHost(repo, reload_ttl_s=0.05)

# 2. The daemon: an asyncio HTTP/1.1 front end on an ephemeral port,
#    dispatching to the host's thread pool.
loop = asyncio.new_event_loop()
threading.Thread(target=loop.run_forever, daemon=True).start()
server = XpdlHttpServer(host, port=0, workers=4)
address, port = asyncio.run_coroutine_threadsafe(server.start(), loop).result(
    30
)
print(f"daemon listening on http://{address}:{port}")

# 3. Plain JSON over HTTP — curl would do; ServiceClient wraps it.
client = ServiceClient(address, port)
info = client.info("liu_gpu_server")
caches = client.query("liu_gpu_server", "//cache[@name='L3']")
print(
    f"liu_gpu_server: {info['cores']} cores, "
    f"{caches['count']} L3 cache(s) — index compiled once, now hot"
)
batch = client.batch(
    [
        {"op": "query", "model": "liu_gpu_server", "path": "//core[0]"},
        {"op": "analysis", "model": "liu_gpu_server",
         "analyses": ["total_static_power"]},
        {"op": "info", "model": "DemoSys"},
    ]
)
watts = batch["results"][1]["results"]["total_static_power"]["text"]
print(f"batched 3 ops in one round trip; static power {watts}")

# 4. Many clients, one live edit: every response is the pre-edit or the
#    post-edit model, never a mixture, and the index is never evicted
#    out from under a request.
seen: set[int] = set()


def hammer(_slot: int) -> int:
    local = ServiceClient(address, port)
    n = 0
    for _ in range(25):
        seen.add(local.query("DemoSys", "//core")["count"])
        n += 1
    return n


t0 = time.perf_counter()
with concurrent.futures.ThreadPoolExecutor(8) as pool:
    futures = [pool.submit(hammer, i) for i in range(8)]
    editable.put("demo_cpu.xpdl", DEMO_CPU.format(n=8))  # the live edit
    total = sum(f.result(timeout=60) for f in futures)
rate = total / (time.perf_counter() - t0)
assert seen <= {4, 8}, seen
print(
    f"8 clients x 25 queries at {rate:,.0f} requests/s during the edit; "
    f"never torn: observed core counts {sorted(seen)}"
)

# 5. Hot reload: past the TTL the fingerprint is revalidated against the
#    live repository, so the edit is served without a daemon restart.
time.sleep(0.2)
after = client.query("DemoSys", "//core")["count"]
print(f"hot reload: DemoSys now reports {after} cores (no restart)")

# 6. /stats: the observability story — one build per model, reloads and
#    cache traffic counted, latency histograms per op.
stats = client.stats()
counters = stats["observer"]["counters"]
q = stats["latency"]["query"]
print(
    f"stats: {counters['service.requests']} requests, "
    f"{counters['service.model.builds']} index builds, "
    f"{counters.get('service.model.invalidated', 0)} descriptor "
    f"invalidation(s), "
    f"query p95 {q['p95_ms']:.2f} ms over {q['count']} calls"
)

asyncio.run_coroutine_threadsafe(server.close(), loop).result(30)
loop.call_soon_threadsafe(loop.stop)
print("clean shutdown: daemon closed")
