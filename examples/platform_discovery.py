#!/usr/bin/env python3
"""Platform discovery: probe the host, emit XPDL, compose, compare views.

The hwloc-style loop: read the machine's topology (falling back to a
canned spec when /sys is unavailable), emit a reusable CPU meta-model plus
a concrete system descriptor, load them into a repository, compose, and
print all three views of the result — XML, UML and the generated C++ API
excerpt (Sec. III "Alternative Views").

Run:  python examples/platform_discovery.py
"""

import os
import tempfile

from repro.codegen import generate_cpp_header, model_to_plantuml
from repro.composer import compose_model
from repro.discovery import canned_spec, emit_descriptors, probe_linux
from repro.repository import LocalDirStore, ModelRepository
from repro.schema import CORE_SCHEMA

spec = probe_linux()
if spec is None:
    spec = canned_spec()
    print("(!) /sys probe unavailable; using the canned E5-2630L-like spec")
print(f"probed host: {spec.hostname}")
print(f"  cpu:    {spec.cpu_model}")
print(f"  layout: {spec.sockets} socket(s) x {spec.cores_per_socket} cores "
      f"x {spec.threads_per_core} threads @ {spec.base_frequency_mhz:.0f} MHz")
print(f"  caches: " + ", ".join(
    f"L{c.level}={c.size_kib}KiB/{c.shared_by}" for c in spec.caches
))
print(f"  memory: {spec.memory_mib} MiB")

# Emit descriptors into a scratch repository directory.
outdir = tempfile.mkdtemp(prefix="xpdl-discovered-")
for relpath, text in emit_descriptors(spec).items():
    path = os.path.join(outdir, relpath)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as fh:
        fh.write(text)
    print(f"\n--- {relpath} " + "-" * max(0, 50 - len(relpath)))
    print(text.rstrip())

# Compose the discovered system like any other model.
repo = ModelRepository([LocalDirStore(outdir)])
system_id = sorted(repo.identifiers())[0]
for ident in repo.identifiers():
    if repo.index()[ident].root_tag == "system":
        system_id = ident
composed = compose_model(repo, system_id)
print(f"\ncomposed {system_id}: "
      f"{sum(1 for _ in composed.root.walk())} elements, "
      f"{composed.sink.error_count} errors")

from repro.analysis import count_cores

print(f"  cores after group expansion: {count_cores(composed.root)}")

# Alternative views (Sec. III): UML object diagram + generated C++ API.
uml = model_to_plantuml(composed.root, max_nodes=25)
print("\nUML view (PlantUML, excerpt):")
for line in uml.splitlines()[:12]:
    print("  " + line)
print("  ...")

header = generate_cpp_header(CORE_SCHEMA)
print("\ngenerated C++ query API (excerpt):")
in_cpu = False
shown = 0
for line in header.splitlines():
    if line.startswith("/// A CPU package"):
        in_cpu = True
    if in_cpu:
        print("  " + line)
        shown += 1
        if shown > 10:
            break
print("  ...")
print(f"\ndescriptors left in {outdir}")
