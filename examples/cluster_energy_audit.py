#!/usr/bin/env python3
"""Cluster-wide energy audit of the XScluster model (Listing 11).

Walks the composed 4-node cluster, rolls up synthesized attributes
(Sec. III-D) per subtree, estimates the energy of a simple bulk-synchronous
workload across nodes — compute on every CPU, transfers over the Infiniband
ring — and shows the bandwidth-downgrading analysis on the way.

Run:  python examples/cluster_energy_audit.py
"""

from repro import compose_model, standard_repository
from repro.analysis import (
    SynthesisEngine,
    downgrade_bandwidths,
    path_bandwidth,
    physical_children,
)
from repro.model import Node
from repro.simhw import links_from_interconnect, testbed_from_model
from repro.units import Quantity

repo = standard_repository()
composed = compose_model(repo, "XScluster")
root = composed.root

# --- synthesized-attribute roll-up (Sec. III-D) ---------------------------
engine = SynthesisEngine()
print("synthesized attribute roll-up:")
print(f"{'subtree':32s} {'st.power':>9} {'cores':>7} {'cuda':>5} {'mem GiB':>8}")


def show(elem, depth=0, max_depth=1):
    power = engine.evaluate("static_power", elem)
    cores = engine.evaluate("core_count", elem)
    cuda = engine.evaluate("cuda_device_count", elem)
    mem = engine.evaluate("memory_total", elem) / 2**30
    label = "  " * depth + f"{elem.kind}#{elem.label()}"
    print(f"{label:32s} {power.to('W'):8.1f}W {cores:7d} {cuda:5d} {mem:8.1f}")
    if depth < max_depth:
        for child in physical_children(elem):
            if engine.evaluate("core_count", child):
                show(child, depth + 1, max_depth)


show(root)

# --- bandwidth downgrading + widest-path queries ---------------------------
print("\ninterconnect analysis:")
for report in downgrade_bandwidths(root):
    eff = report.effective
    print(
        f"  {report.interconnect.label():8s} "
        f"type={report.interconnect.attrs.get('type', '?'):12s} "
        f"effective={eff.format('GB/s') if eff else '?'}"
    )
bw, path = path_bandwidth(root, "n0", "n2")
print(f"  widest path n0 -> n2: {' -> '.join(path)} at {bw.format('GB/s')}")

# --- a bulk-synchronous step on the simulated cluster ----------------------
print("\nbulk-synchronous step (per node: compute, then ring exchange):")
bed = testbed_from_model(root)
cpu_machines = [m for n, m in bed.machines.items() if "fadd" in m.truth]
print(f"  CPU machines: {len(cpu_machines)} (2 sockets x 4 nodes)")

work = {"fmul": 40_000_000, "fadd": 40_000_000, "load": 60_000_000}
compute_results = [m.run_stream(work) for m in cpu_machines]
step_time = max(r.duration.magnitude for r in compute_results)
compute_energy = sum(r.energy.magnitude for r in compute_results)

ib = next(ic for name, ic in bed.links.items() if name.startswith("conn3"))
send = ib["send"]
payload = 64 * 2**20  # 64 MiB per neighbor exchange
transfer = send.transfer(payload)
n_links = 4

total_time = step_time + transfer.time.magnitude
total_energy = compute_energy + n_links * transfer.energy.magnitude
print(f"  compute: {step_time * 1e3:8.2f} ms, {compute_energy:7.2f} J across CPUs")
print(
    f"  exchange: {transfer.time.magnitude * 1e3:7.2f} ms per link, "
    f"{transfer.energy.magnitude * 1e3:.2f} mJ x {n_links} links"
)
print(f"  step wall time {total_time * 1e3:.2f} ms, energy {total_energy:.2f} J")

# Static floor while the step runs: every always-on watt counts.
static = engine.evaluate("static_power", root)
print(
    f"  static floor during the step: "
    f"{(static * Quantity.of(total_time, 's')).format('J')} "
    f"({static.format('W')} cluster-wide)"
)
