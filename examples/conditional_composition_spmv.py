#!/usr/bin/env python3
"""Conditional composition: the SpMV case study (paper Sec. II, ref [3]).

A sparse matrix-vector multiply component with a CPU and a GPU variant.
Each variant declares selectability constraints against the platform model
(library availability, CUDA device present) and the call context (nonzero
density).  The dispatcher is calibrated offline and then picks per call —
reproducing the "overall performance improvement" the case study reports.

Run:  python examples/conditional_composition_spmv.py
"""

from repro import compose_model, standard_repository, xpdl_init_from_model
from repro.composition import Dispatcher, SpmvProblem, make_spmv_component
from repro.ir import IRModel
from repro.simhw import testbed_from_model

repo = standard_repository()
composed = compose_model(repo, "liu_gpu_server")
ctx = xpdl_init_from_model(IRModel.from_model(composed.root))
testbed = testbed_from_model(composed.root)

component = make_spmv_component()

# Selectability: what the platform supports for a mid-density call.
call = SpmvProblem(n=4096, density=1e-3).call_context()
selectable = component.selectable_variants(ctx, call)
print("platform check:")
print(f"  cpu_sparse_blas installed: {ctx.has_installed('cpu_sparse_blas')}")
print(f"  gpu_sparse_blas installed: {ctx.has_installed('gpu_sparse_blas')}")
print(f"  CUDA devices:              {ctx.count_cuda_devices()}")
print(f"  selectable variants:       {[v.name for v in selectable]}")

# Offline calibration over a density training sweep (tuned policy).
densities = [2e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1]
dispatcher = Dispatcher(ctx, testbed, policy="tuned")
training = [SpmvProblem(n=4096, density=d, seed=1).call_context() for d in densities]
table = dispatcher.calibrate(component, "density", training)
print(f"\ncalibrated on {len(table.points)} training points; winners:")
for d, winner in table.points:
    print(f"  density {d:8.0e} -> {winner}")

# The evaluation sweep: static choices vs tuned selection.
print(f"\n{'density':>9} {'cpu (ms)':>10} {'gpu (ms)':>10} "
      f"{'tuned (ms)':>11}  chosen")
tot = {"cpu": 0.0, "gpu": 0.0, "tuned": 0.0}
for d in densities:
    call = SpmvProblem(n=4096, density=d).call_context()
    cpu = component.variant("cpu_csr").execute(testbed, call)
    gpu = component.variant("gpu_csr").execute(testbed, call)
    tuned = dispatcher.invoke(component, call)
    tot["cpu"] += cpu.time.magnitude
    tot["gpu"] += gpu.time.magnitude
    tot["tuned"] += tuned.time.magnitude
    print(
        f"{d:9.0e} {cpu.time.magnitude * 1e3:10.4f} "
        f"{gpu.time.magnitude * 1e3:10.4f} "
        f"{tuned.time.magnitude * 1e3:11.4f}  {tuned.variant}"
    )

best_static = min(tot["cpu"], tot["gpu"])
print(
    f"\ntotals: cpu {tot['cpu'] * 1e3:.3f} ms, gpu {tot['gpu'] * 1e3:.3f} ms, "
    f"tuned {tot['tuned'] * 1e3:.3f} ms"
)
print(
    f"tuned selection is {best_static / tot['tuned']:.2f}x the best static "
    f"choice and {max(tot['cpu'], tot['gpu']) / tot['tuned']:.2f}x the worst"
)
