#!/usr/bin/env python3
"""DVFS optimization against the power state machine (Listing 13 world).

Loads the E5-2630L's PSM from the composed model, sweeps deadlines for a
fixed workload and shows where race-to-idle beats pacing; then runs a
phase-structured workload through the energy accountant with per-phase
state requests, including the Myriad1 power-domain shutdown bookkeeping.

Run:  python examples/dvfs_optimizer.py
"""

from repro import compose_model, standard_repository
from repro.model import Instructions, PowerDomains, PowerStateMachine
from repro.power import (
    EnergyAccountant,
    InstructionEnergyModel,
    Phase,
    PowerDomainSet,
    PowerStateMachineModel,
    ResidencyTracker,
    best_state,
    optimize_state,
)
from repro.units import Quantity

repo = standard_repository()
composed = compose_model(repo, "liu_gpu_server")

psm = PowerStateMachineModel.from_element(
    next(
        p
        for p in composed.root.find_all(PowerStateMachine)
        if p.name == "psm_E5_2630L"
    )
)
print("power state machine:", ", ".join(
    f"{s.name}({s.frequency.format('GHz')}, {s.power.format('W')})"
    for s in psm.by_frequency()
))
print("complete transition table:", psm.is_complete())

# --- deadline sweep ---------------------------------------------------------
cycles = 1.5e9
print(f"\noptimal state for {cycles:.1e} cycles by deadline:")
for d in (0.76, 0.9, 1.0, 1.3, 2.0, 4.0):
    ranked = optimize_state(psm, cycles, Quantity.of(d, "s"))
    best = next((c for c in ranked if c.feasible), None)
    if best is None:
        print(f"  {d:5.2f} s: infeasible at every state")
        continue
    print(
        f"  {d:5.2f} s: run in {best.state} "
        f"({best.run_time.format('s')} busy, "
        f"{best.idle_time.format('s')} idle) "
        f"-> {best.total_energy.format('J')}"
    )

# --- phase-structured workload through the accountant -----------------------
instrs_elem = next(
    i for i in composed.root.find_all(Instructions) if i.name == "x86_base_isa"
)
# Give the two '?' instructions we use values (normally bootstrapped).
instructions = InstructionEnergyModel.from_element(instrs_elem)
instructions.set_energy("fadd", Quantity.of(81, "pJ"))
instructions.set_energy("load", Quantity.of(208, "pJ"))

acct = EnergyAccountant(psm, instructions, initial_state="P3")
phases = [
    Phase("burst", {"fadd": 200_000_000, "load": 80_000_000}, state="P3"),
    Phase("steady", {"fadd": 400_000_000}, state="P1"),
    Phase("finish", {"load": 50_000_000}, state="P2"),
]
breakdown = acct.run(phases)
print("\nphase-structured workload (state per phase):")
for cost in breakdown.phases:
    print(
        f"  {cost.phase:7s} in {cost.state}: {cost.time.format('ms')}, "
        f"static {cost.static_energy.format('J')}, "
        f"dynamic {cost.dynamic_energy.format('J')}, "
        f"switch {cost.switch_energy.format('nJ')}"
    )
print(
    f"  total: {breakdown.time.format('s')}, "
    f"{breakdown.total_energy.format('J')} "
    f"(avg {breakdown.average_power().format('W')})"
)

# --- Myriad1 power-domain shutdown (Listing 12) ------------------------------
myriad = compose_model(repo, "myriad_server")
pds = PowerDomainSet.from_element(
    next(
        p
        for p in myriad.root.find_all(PowerDomains)
        if (p.name or "").startswith("Myriad1")
    )
)
tracker = ResidencyTracker(pds)
mw = {n: Quantity.of(45, "mW") for n in pds.names()}
print("\nMyriad1 wind-down (Listing 12 semantics):")
ok, reason = pds.can_switch_off("CMX_pd")
print(f"  CMX off while shaves run? {ok} ({reason})")
tracker.advance(Quantity.of(5, "ms"), mw)
for shave in pds.group_members("Shave_pds"):
    pds.switch_off(shave)
tracker.advance(Quantity.of(5, "ms"), mw)
ok, _ = pds.can_switch_off("CMX_pd")
print(f"  CMX off after all shaves off? {ok}")
pds.switch_off("CMX_pd")
print(f"  on domains now: {pds.on_domains()}")
print(f"  static energy so far: {tracker.total_energy().format('mJ')}")
