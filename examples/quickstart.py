#!/usr/bin/env python3
"""Quickstart: load the bundled model library, compose the paper's GPU
server, run the static analyses, write the runtime model file and query it
— the whole Sec. IV pipeline in ~50 lines.

Run:  python examples/quickstart.py
"""

import tempfile
import os

from repro import compose_model, standard_repository, xpdl_init
from repro.analysis import downgrade_bandwidths, lint_model, total_static_power
from repro.ir import IRModel
from repro.runtime import query_all, query_first

# 1. The model repository: every descriptor from the paper's Listings 1-15.
repo = standard_repository()
print(f"repository: {len(repo.identifiers())} descriptors")
print(" ", ", ".join(repo.identifiers()[:8]), "...")

# 2. Compose the Linkoping GPU server (Listings 7-10): resolve type refs
#    and inheritance, bind params, check constraints, expand groups.
composed = compose_model(repo, "liu_gpu_server")
print(f"\ncomposed liu_gpu_server from {len(composed.referenced)} descriptors")
print(f"  elements: {sum(1 for _ in composed.root.walk())}")
print(f"  diagnostics: {composed.sink.error_count} errors, "
      f"{composed.sink.warning_count} warnings")

# 3. Static analysis: bandwidth downgrading, lint, synthesized attributes.
downgrade_bandwidths(composed.root, composed.sink)
report = lint_model(composed.root, composed.sink)
print(f"  lint: {report.placeholders} '?' placeholders awaiting "
      "microbenchmarking")
print(f"  total static power: {total_static_power(composed.root)}")

# 4. Emit the light-weight runtime model file...
workdir = tempfile.mkdtemp(prefix="xpdl-")
model_file = os.path.join(workdir, "liu_gpu_server.xir")
IRModel.from_model(composed.root, {"system": "liu_gpu_server"}).save(model_file)
print(f"\nruntime model written: {model_file} "
      f"({os.path.getsize(model_file)} bytes)")

# 5. ... and introspect it at "run time" through the query API
#    (the Python spelling of the paper's generated C++ API).
ctx = xpdl_init(model_file)
print(f"\nxpdl_init -> {len(ctx.ir)} elements")
print(f"  cores:            {ctx.count_cores()}")
print(f"  CUDA devices:     {ctx.count_cuda_devices()}")
print(f"  static power:     {ctx.total_static_power()}")
print(f"  sparse BLAS?      {ctx.has_installed('sparse_blas')}")

gpu = ctx.by_id("gpu1")
print(f"\n  gpu1: type={gpu.get_type()} "
      f"compute_capability={gpu.get_compute_capability()} "
      f"static_power={gpu.get_quantity('static_power')}")

l3 = query_first(ctx, "//cache[@name='L3']")
print(f"  L3 cache: {l3.get_quantity('size').format('MiB')}")

links = query_all(ctx, "//interconnect[@id='connection1']")
print(f"  PCIe link: {links[0].get_quantity('max_bandwidth').format('GiB/s')}")
