#!/usr/bin/env python3
"""Energy-aware scheduling on an XPDL platform model.

The optimization the EXCESS project builds on top of XPDL: the platform
model supplies per-unit power state machines, per-instruction energies and
link transfer costs, and the scheduler uses all three — map a task DAG with
HEFT, then reclaim deadline slack via DVFS, then verify the plan by
replaying it on the simulated testbed.

Run:  python examples/energy_aware_scheduling.py
"""

from repro import compose_model, standard_repository
from repro.scheduling import EnergyAwareScheduler, Task, TaskGraph, random_dag
from repro.simhw import testbed_from_model

repo = standard_repository()
composed = compose_model(repo, "XScluster")
bed = testbed_from_model(composed.root)

# Schedule on one dual-socket node: two E5-2630L hosts.
cpus = [n for n, m in bed.machines.items() if "fadd" in m.truth][:2]
scheduler = EnergyAwareScheduler(bed, machines=cpus)
print(f"scheduling on: {', '.join(cpus)}")
for m in cpus:
    states = ", ".join(
        f"{s.name}@{s.frequency.format('GHz')}/{s.power.format('W')}"
        for s in scheduler.states_of(m)
    )
    print(f"  {m}: {states} (idle {scheduler.idle_power(m):.1f} W)")

# A 16-task random DAG of x86 work with 200 kB inter-task data.
mix = {"fadd": 4_000_000, "fmul": 2_000_000, "load": 3_000_000}
tg = random_dag(16, mix=mix, isa="x86_base_isa", seed=7, nbytes=200_000)
print(f"\ntask graph: {len(tg)} tasks, "
      f"{tg.graph().number_of_edges()} dependencies")

idle = {m: scheduler.idle_power(m) for m in cpus}
schedule = scheduler.schedule(tg)
base_makespan = schedule.makespan
base_energy = schedule.total_energy(idle)
print(f"\nHEFT baseline (all units at the fastest state):")
print(f"  makespan {base_makespan * 1e3:.2f} ms, energy {base_energy:.3f} J")

print("\nDVFS slack reclamation across deadlines:")
print(f"{'deadline':>10} {'makespan':>10} {'energy':>8} {'saved':>7}  states used")
for factor in (1.0, 1.2, 1.5, 2.0, 3.0):
    tg_i = random_dag(16, mix=mix, isa="x86_base_isa", seed=7, nbytes=200_000)
    s = scheduler.schedule(tg_i)
    scheduler.reclaim_slack(tg_i, s, deadline=base_makespan * factor)
    energy = s.total_energy(idle)
    states = sorted({p.state for p in s.placements.values()})
    print(
        f"{factor:9.1f}x {s.makespan * 1e3:8.2f}ms {energy:7.3f}J "
        f"{(1 - energy / base_energy):6.1%}  {', '.join(states)}"
    )

# Heterogeneous dispatch: a CPU->GPU->CPU pipeline with PCIe transfers.
print("\nheterogeneous pipeline on the liu server (CPU -> GPU -> CPU):")
liu = compose_model(repo, "liu_gpu_server")
liu_bed = testbed_from_model(liu.root)
hs = EnergyAwareScheduler(liu_bed)
tg2 = TaskGraph()
tg2.add_task(Task("prepare", {"x86": mix}))
tg2.add_task(Task("kernel", {"ptx": {"fma_f32": 8_000_000, "ld_global": 5_000_000}}))
tg2.add_task(Task("reduce", {"x86": {k: v // 4 for k, v in mix.items()}}))
tg2.add_dependency("prepare", "kernel", nbytes=64 * 2**20)
tg2.add_dependency("kernel", "reduce", nbytes=16 * 2**20)
s2 = hs.schedule(tg2)
for name in ("prepare", "kernel", "reduce"):
    p = s2.placements[name]
    print(
        f"  {name:8s} on {p.machine:8s} [{p.state:5s}] "
        f"{p.start * 1e3:7.2f} -> {p.finish * 1e3:7.2f} ms"
    )
print(f"  makespan {s2.makespan * 1e3:.2f} ms "
      "(gaps are the modeled PCIe transfer times)")

# Verification: analytic schedule vs actual simulated execution.
errors = hs.verify_on_testbed(tg2, s2)
print(f"\nverification against the simulated testbed: "
      f"max relative timing error {max(errors.values()):.2e}")
