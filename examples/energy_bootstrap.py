#!/usr/bin/env python3
"""Deployment-time energy-model bootstrapping (Sec. III-C / Listing 14-15).

Generates the microbenchmark drivers for the x86 base ISA suite, "runs"
them on the simulated E5-2630L through a noisy power meter, derives the
unknown per-instruction energies, writes them back into the model, and
prints the before/after instruction table — including the divsd
frequency-energy curve the paper shows.

Run:  python examples/energy_bootstrap.py
"""

from repro import compose_model, standard_repository
from repro.microbench import (
    bootstrap_instruction_model,
    generate_build_script,
    generate_suite,
)
from repro.model import Inst, Instructions, Microbenchmarks
from repro.power import InstructionEnergyModel
from repro.simhw import PowerMeter, testbed_from_model
from repro.units import Quantity

repo = standard_repository()
composed = compose_model(repo, "liu_gpu_server")

# The composed model carries the instruction-energy meta-model with its '?'
# placeholders, and the microbenchmark suite descriptor.
instrs = next(
    i for i in composed.root.find_all(Instructions) if i.name == "x86_base_isa"
)
suite = next(
    s
    for s in composed.root.find_all(Microbenchmarks)
    if (s.ident or s.name) == "mb_x86_base_1"
)

print("before bootstrapping:")
for inst in instrs.find_all(Inst):
    status = "?" if inst.needs_benchmarking() else "known"
    print(f"  {inst.name:8s} {status}")

# Generated artifacts (what 'xpdl benchgen' writes to disk).
drivers = generate_suite(suite)
script = generate_build_script(suite, drivers)
print(f"\ngenerated {len(drivers)} C drivers + "
      f"{script.splitlines()[0]!r} build script")
print("driver excerpt (fadd.c):")
for line in drivers[1].source.splitlines()[:8]:
    print("   ", line)

# The simulated testbed stands in for the real server + external meter.
bed = testbed_from_model(composed.root)
machine = bed.machine("gpu_host")
meter = PowerMeter(seed=42, noise_std_w=0.05)

model, report = bootstrap_instruction_model(
    instrs, machine, suite=suite, meter=meter, repetitions=5
)

print(f"\nbootstrapped {report.updated} entries "
      f"({len(report.runs)} benchmark runs):")
for run in report.runs:
    truth = machine.truth.energy(run.instruction, run.frequency)
    err = abs(run.energy_per_instruction.magnitude - truth.magnitude) / truth.magnitude
    print(
        f"  {run.instruction:8s} "
        f"{run.energy_per_instruction.magnitude * 1e12:8.2f} pJ  "
        f"(spread +-{run.relative_spread():5.1%}, "
        f"vs hidden truth {err:5.2%})"
    )

# The divsd table was experimentally confirmed in the paper; interpolate it.
print("\ndivsd energy vs frequency (Listing 14 value table):")
divsd = InstructionEnergyModel.from_element(instrs)
for f in (2.8, 3.0, 3.2, 3.4):
    e = divsd.energy("divsd", Quantity.of(f, "GHz"))
    print(f"  {f:.1f} GHz -> {e.to('nJ'):.3f} nJ")

print("\nafter bootstrapping, remaining placeholders:",
      [i.name for i in instrs.find_all(Inst) if i.needs_benchmarking()] or "none")
