"""Shim so `pip install -e .` works offline without the `wheel` package.

All real metadata lives in pyproject.toml; pip falls back to
`setup.py develop` (legacy editable) when PEP 660 builds are unavailable.
"""

from setuptools import setup

setup()
