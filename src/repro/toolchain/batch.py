"""Parallel batch compilation of system descriptors (``xpdl build``).

The paper's toolchain composes a *distributed library* of descriptor
modules into one runtime model per target system.  That shape of work
scales far past the three paper systems, so this module turns the staged
:class:`~repro.toolchain.ToolchainSession` into a batch compiler:

1. **Discover** every ``<system>`` descriptor in the repository (plus any
   user-supplied search-path roots) — :func:`discover_systems`.
2. **Shard** the systems deterministically by their transitive-reference
   fingerprints — :func:`plan_shards`.  Each system's closure (the
   descriptors it transitively references) is fingerprinted; shards are
   packed longest-processing-time-first by closure text size, with ties
   broken toward the shard already holding the most shared descriptors,
   so workers get balanced load and maximal warm-parse reuse.
3. **Fan out** one worker per shard across a
   :class:`~concurrent.futures.ProcessPoolExecutor` (``--jobs N``,
   default :func:`default_jobs` — the CPUs actually available to this
   process, not the machine's count).  Workers share one persistent stage
   cache directory; artifacts any worker computes are reusable by every
   later invocation.
4. **Merge** the per-worker diagnostics, observer counters and stage
   timings back into the caller's sink/observer — one report, however
   many processes did the work (:class:`BatchReport`).

Determinism: IR emission depends only on descriptor sources and composer
options, so a parallel build produces byte-identical ``.xir`` artifacts
to a sequential one; :class:`SystemBuild` records each IR's SHA-256 so
callers (and CI) can assert it.
"""

from __future__ import annotations

import hashlib
import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Sequence

from ..diagnostics import Diagnostic, DiagnosticSink, SourceSpan, XpdlError
from ..obs import Observer, get_observer
from ..repository import ModelRepository
from .diskcache import DEFAULT_CACHE_DIR, PersistentStageCache
from .session import ToolchainSession


def default_jobs() -> int:
    """Worker processes to use when the caller does not say (``--jobs``).

    ``os.cpu_count()`` reports the *machine's* processors, which
    oversubscribes the pool inside cgroup- or affinity-limited containers
    (exactly where CI and ``xpdl serve`` run).  The CPUs actually
    available to this process — :func:`os.sched_getaffinity` — are the
    honest budget; platforms without it fall back to ``cpu_count``.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # non-Linux, or restricted sandbox
        return os.cpu_count() or 1


def discover_systems(
    repository: ModelRepository, only: Sequence[str] = ()
) -> list[str]:
    """Identifiers to build: every ``<system>`` descriptor, or exactly ``only``.

    When ``only`` is given, those identifiers restrict the build (they may
    name non-system descriptors — they still go through ``emit_ir``); each
    is validated against the index so unknown names raise
    :class:`XpdlError` up front rather than mid-build.
    """
    if not only:
        return repository.systems()
    index = repository.index()
    targets: list[str] = []
    for ident in only:
        if ident not in index:
            raise XpdlError(f"unknown identifier {ident!r}")
        if ident not in targets:
            targets.append(ident)
    return targets


@dataclass(frozen=True, slots=True)
class ShardPlan:
    """The deterministic work split of one batch build."""

    shards: tuple[tuple[str, ...], ...]
    #: system identifier -> SHA-256 over its sorted transitive closure
    #: (names and current source texts).
    fingerprints: dict[str, str]
    #: system identifier -> sorted closure identifiers.
    closures: dict[str, tuple[str, ...]]


def plan_shards(
    repository: ModelRepository,
    identifiers: Sequence[str],
    jobs: int,
    sink: DiagnosticSink | None = None,
) -> ShardPlan:
    """Split ``identifiers`` into at most ``jobs`` balanced shards.

    Systems are ordered by descending closure weight (total referenced
    source text) with the closure fingerprint as a deterministic
    tie-break, then packed into the least-loaded shard; among equally
    loaded shards the one sharing the most closure descriptors wins, so
    related systems co-locate when it costs no balance.
    """
    sink = sink if sink is not None else DiagnosticSink()
    closures: dict[str, tuple[str, ...]] = {}
    fingerprints: dict[str, str] = {}
    weights: dict[str, int] = {}
    for ident in identifiers:
        closure = repository.load_closure(ident, sink)
        names = tuple(sorted(closure)) or (ident,)
        closures[ident] = names
        h = hashlib.sha256()
        weight = 0
        for name in names:
            text = repository.source_text(name) or ""
            h.update(name.encode("utf-8"))
            h.update(b"\0")
            h.update(text.encode("utf-8"))
            weight += len(text)
        fingerprints[ident] = h.hexdigest()
        weights[ident] = weight

    jobs = max(1, min(jobs, len(identifiers)) if identifiers else 1)
    bins: list[dict[str, Any]] = [
        {"weight": 0, "refs": set(), "members": []} for _ in range(jobs)
    ]
    order = sorted(identifiers, key=lambda i: (-weights[i], fingerprints[i]))
    for ident in order:
        refs = set(closures[ident])
        best = min(
            range(len(bins)),
            key=lambda b: (
                bins[b]["weight"],
                -len(bins[b]["refs"] & refs),
                b,
            ),
        )
        bins[best]["weight"] += weights[ident]
        bins[best]["refs"] |= refs
        bins[best]["members"].append(ident)
    shards = tuple(
        tuple(b["members"]) for b in bins if b["members"]
    )
    return ShardPlan(shards=shards, fingerprints=fingerprints, closures=closures)


@dataclass(slots=True)
class SystemBuild:
    """Outcome of compiling one system."""

    identifier: str
    ok: bool
    duration_s: float
    ir_sha256: str | None = None
    elements: int = 0
    referenced: int = 0
    out_path: str | None = None
    error: str | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "identifier": self.identifier,
            "ok": self.ok,
            "duration_s": round(self.duration_s, 6),
            "ir_sha256": self.ir_sha256,
            "elements": self.elements,
            "referenced": self.referenced,
            "out_path": self.out_path,
            "error": self.error,
        }


@dataclass(slots=True)
class WorkerReport:
    """Everything one worker sends back across the process boundary."""

    shard_index: int
    builds: list[SystemBuild]
    diagnostics: tuple[Diagnostic, ...]
    observations: dict
    cache: dict[str, int]
    duration_s: float


@dataclass
class BatchReport:
    """The merged result of one batch build."""

    builds: list[SystemBuild]
    shards: tuple[tuple[str, ...], ...]
    jobs: int
    wall_s: float
    cache: dict[str, int] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)
    stage_timings: dict[str, dict[str, float]] = field(default_factory=dict)
    diagnostics: tuple[Diagnostic, ...] = ()
    cache_dir: str | None = None
    fingerprints: dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(b.ok for b in self.builds)

    @property
    def models_per_s(self) -> float:
        return len(self.builds) / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def hit_rate(self) -> float:
        """Stage-cache efficiency: (memory + disk hits) / all requests."""
        hits = self.cache.get("hits", 0) + self.cache.get("disk_hits", 0)
        total = hits + self.cache.get("misses", 0)
        return hits / total if total else 0.0

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (``xpdl build --json``, the bench harness)."""
        return {
            "ok": self.ok,
            "jobs": self.jobs,
            "wall_s": round(self.wall_s, 6),
            "models_per_s": round(self.models_per_s, 3),
            "hit_rate": round(self.hit_rate, 4),
            "cache": dict(self.cache),
            "cache_dir": self.cache_dir,
            "shards": [list(s) for s in self.shards],
            "builds": [b.to_dict() for b in self.builds],
            "counters": dict(sorted(self.counters.items())),
            "stage_timings": {
                name: {k: round(v, 6) for k, v in st.items()}
                for name, st in sorted(self.stage_timings.items())
            },
            "diagnostics": [str(d) for d in self.diagnostics],
            "fingerprints": dict(sorted(self.fingerprints.items())),
        }


@dataclass(frozen=True)
class _WorkerTask:
    """Picklable description of one shard's work."""

    repository: ModelRepository
    shard: tuple[str, ...]
    shard_index: int
    cache_dir: str | None
    out_dir: str | None
    keep_all: bool


def _run_worker(task: _WorkerTask) -> WorkerReport:
    """Compile one shard; module-level so the process pool can pickle it."""
    t0 = time.perf_counter()
    observer = Observer()
    sink = DiagnosticSink()
    disk = (
        PersistentStageCache(task.cache_dir) if task.cache_dir else None
    )
    session = ToolchainSession(
        task.repository, sink=sink, observer=observer, disk_cache=disk
    )
    builds: list[SystemBuild] = []
    for ident in task.shard:
        started = time.perf_counter()
        try:
            result = session.emit_ir(ident, keep_all=task.keep_all)
            blob = result.ir.to_bytes()
            out_path = None
            if task.out_dir:
                os.makedirs(task.out_dir, exist_ok=True)
                out_path = os.path.join(task.out_dir, f"{ident}.xir")
                result.ir.save(out_path)
            builds.append(
                SystemBuild(
                    identifier=ident,
                    ok=True,
                    duration_s=time.perf_counter() - started,
                    ir_sha256=hashlib.sha256(blob).hexdigest(),
                    elements=len(result.ir),
                    referenced=len(result.composed.referenced),
                    out_path=out_path,
                )
            )
        except BaseException as exc:
            # One broken system must not kill the shard — but only genuine
            # Exceptions become shard diagnostics.  KeyboardInterrupt,
            # SystemExit and friends are cancellation, not a build result;
            # swallowing them here would silently convert a ^C into a
            # "FAIL" row, so they propagate.
            if not isinstance(exc, Exception):
                raise
            observer.count("batch.system_errors")
            sink.error(
                "XPDL0401",
                f"building {ident!r} failed: {exc}",
                SourceSpan.unknown(ident),
                traceback.format_exc(),
            )
            builds.append(
                SystemBuild(
                    identifier=ident,
                    ok=False,
                    duration_s=time.perf_counter() - started,
                    error=f"{type(exc).__name__}: {exc}",
                )
            )
    return WorkerReport(
        shard_index=task.shard_index,
        builds=builds,
        diagnostics=sink.diagnostics,
        observations=observer.snapshot(),
        cache=session.cache_stats(),
        duration_s=time.perf_counter() - t0,
    )


def run_batch(
    repository: ModelRepository | None = None,
    identifiers: Sequence[str] | None = None,
    *,
    jobs: int | None = None,
    cache_dir: str | None = DEFAULT_CACHE_DIR,
    out_dir: str | None = None,
    keep_all: bool = False,
    include: Sequence[str] = (),
    observer: Observer | None = None,
    sink: DiagnosticSink | None = None,
) -> BatchReport:
    """Discover, shard and compile systems; merge everything into one report.

    ``jobs=1`` (or a single shard) builds in-process — same code path the
    workers run, no pool.  ``cache_dir=None`` disables persistence.  The
    caller's ``observer`` and ``sink`` receive the merged counters/stage
    timings and diagnostics of every worker.
    """
    if repository is None:
        from ..modellib import standard_repository

        repository = standard_repository(*include)
    observer = observer if observer is not None else get_observer()
    sink = sink if sink is not None else DiagnosticSink()
    if jobs is None:
        jobs = default_jobs()
    jobs = max(1, jobs)

    t0 = time.perf_counter()
    with sink.stage("batch"):
        targets = discover_systems(repository, tuple(identifiers or ()))
        # The planner re-walks every closure; its resolution notes would
        # only duplicate what the compose stage reports, so they go to a
        # scratch sink.
        plan = plan_shards(repository, targets, jobs, DiagnosticSink())
    tasks = [
        _WorkerTask(
            repository=repository,
            shard=shard,
            shard_index=i,
            cache_dir=cache_dir,
            out_dir=out_dir,
            keep_all=keep_all,
        )
        for i, shard in enumerate(plan.shards)
    ]

    reports: list[WorkerReport]
    if jobs == 1 or len(tasks) <= 1:
        reports = [_run_worker(task) for task in tasks]
    else:
        try:
            with ProcessPoolExecutor(max_workers=len(tasks)) as pool:
                reports = list(pool.map(_run_worker, tasks))
        except (OSError, RuntimeError) as exc:
            # Sandboxes and restricted environments may forbid forking;
            # a batch build degrades to in-process rather than failing.
            sink.warning(
                "XPDL0402",
                f"process pool unavailable ({exc}); building in-process",
                SourceSpan.unknown("batch"),
            )
            reports = [_run_worker(task) for task in tasks]
    wall_s = time.perf_counter() - t0

    builds: list[SystemBuild] = []
    cache: dict[str, int] = {}
    merged = Observer()
    for report in sorted(reports, key=lambda r: r.shard_index):
        builds.extend(report.builds)
        sink.extend(report.diagnostics)
        merged.merge(report.observations)
        for key, value in report.cache.items():
            cache[key] = cache.get(key, 0) + value
    observer.merge(merged.snapshot())
    builds.sort(key=lambda b: b.identifier)
    return BatchReport(
        builds=builds,
        shards=plan.shards,
        jobs=jobs,
        wall_s=wall_s,
        cache=cache,
        counters=dict(merged.counters),
        stage_timings={
            name: {"runs": st.runs, "total_s": st.total_s, "mean_s": st.mean_s()}
            for name, st in merged.stages.items()
        },
        diagnostics=sink.diagnostics,
        cache_dir=os.path.abspath(cache_dir) if cache_dir else None,
        fingerprints=plan.fingerprints,
    )
