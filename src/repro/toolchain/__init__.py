"""The staged toolchain session behind every pipeline consumer.

One :class:`ToolchainSession` owns the repository, the shared diagnostics
sink and the stage cache; requesting any stage (``load``, ``validate``,
``inherit``, ``compose``, ``analyze``, ``emit_ir``, ``bootstrap``) runs
its DAG dependencies at most once per content fingerprint.

On top of the session sit the batch compiler (:func:`run_batch` — the
``xpdl build`` command: discovery, fingerprint sharding, process-pool
fan-out, merged reporting) and the persistent stage cache
(:class:`PersistentStageCache` — artifacts that survive between
invocations under ``.xpdl-cache/``).
"""

from .batch import (
    BatchReport,
    ShardPlan,
    SystemBuild,
    default_jobs,
    discover_systems,
    plan_shards,
    run_batch,
)
from .diskcache import (
    CACHE_SCHEMA_VERSION,
    DEFAULT_CACHE_DIR,
    DiskEntry,
    PersistentStageCache,
)
from .session import (
    PERSISTED_STAGES,
    STAGES,
    AnalysisResult,
    BootstrapResult,
    EmitResult,
    StageSpec,
    ToolchainSession,
    ValidationResult,
)

__all__ = [
    "BatchReport",
    "CACHE_SCHEMA_VERSION",
    "DEFAULT_CACHE_DIR",
    "DiskEntry",
    "PERSISTED_STAGES",
    "PersistentStageCache",
    "STAGES",
    "ShardPlan",
    "SystemBuild",
    "AnalysisResult",
    "BootstrapResult",
    "EmitResult",
    "StageSpec",
    "ToolchainSession",
    "ValidationResult",
    "default_jobs",
    "discover_systems",
    "plan_shards",
    "run_batch",
]
