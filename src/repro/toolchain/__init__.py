"""The staged toolchain session behind every pipeline consumer.

One :class:`ToolchainSession` owns the repository, the shared diagnostics
sink and the stage cache; requesting any stage (``load``, ``validate``,
``inherit``, ``compose``, ``analyze``, ``emit_ir``, ``bootstrap``) runs
its DAG dependencies at most once per content fingerprint.
"""

from .session import (
    STAGES,
    AnalysisResult,
    BootstrapResult,
    EmitResult,
    StageSpec,
    ToolchainSession,
    ValidationResult,
)

__all__ = [
    "STAGES",
    "AnalysisResult",
    "BootstrapResult",
    "EmitResult",
    "StageSpec",
    "ToolchainSession",
    "ValidationResult",
]
