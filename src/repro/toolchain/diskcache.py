"""Persistent on-disk stage cache shared between toolchain invocations.

The in-session stage cache (:mod:`repro.toolchain.session`) dies with the
process; batch compilation over thousands of models only pays off when a
stage artifact computed by *one* invocation — or one worker of a parallel
build — is reusable by the next.  A :class:`PersistentStageCache` stores
pickled stage values under a cache directory (default ``.xpdl-cache/``)::

    .xpdl-cache/
        index.json              # entry metadata, version-stamped
        objects/ab/abcdef....bin  # content-addressed pickle blobs

Design points:

* **Keying** mirrors the session cache: an entry is addressed by
  ``(stage, identifier, frozen-options)`` and guarded by the SHA-256
  *source fingerprint* over the transitive ``.xpdl`` texts the stage
  consumed.  The fingerprint is recomputed against the live repository on
  every lookup, so touching any referenced descriptor invalidates exactly
  the entries that depended on it.
* **Atomicity**: blobs and the index are written to a temp file in the
  cache directory and moved into place with :func:`os.replace`, so a
  reader never observes a half-written file.  Blobs are content-addressed
  (named by the SHA-256 of their bytes): two processes storing the same
  artifact concurrently write identical files.
* **Concurrency**: index updates re-read the on-disk index and merge the
  new entry before replacing the file, serialized by an advisory
  ``fcntl`` lock where available (gated import; plain merge-and-replace
  elsewhere).  Losing a race costs at most a recomputation, never a
  corrupt index.
* **Versioning**: the index carries :data:`CACHE_SCHEMA_VERSION` and the
  pickle protocol; a mismatch (schema change, older writer) makes the
  whole cache read as empty so it is rebuilt cleanly.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import shutil
import tempfile
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from ..ir.image import verify_image
from ..obs import get_observer

try:  # advisory locking is POSIX-only; the cache degrades gracefully
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

#: What a truncated/garbled/foreign pickle blob actually raises.  Bare
#: ``Exception`` here used to swallow real bugs (a KeyboardInterrupt-adjacent
#: MemoryError, an attribute typo in a __setstate__) as silent cache misses.
UNPICKLE_ERRORS = (
    pickle.UnpicklingError,
    EOFError,  # truncated blob
    AttributeError,  # class moved/renamed since the blob was written
    ImportError,  # defining module gone
    IndexError,  # corrupt opcode stream
    ValueError,  # bad frame/protocol markers
    TypeError,  # state shape no longer matches
)

#: What an unpicklable stage value actually raises at store time.
PICKLE_ERRORS = (
    pickle.PicklingError,
    AttributeError,  # local/lambda attribute lookup
    TypeError,  # unpicklable member (lock, generator, ...)
    RecursionError,  # pathological cyclic value
)

#: Bump whenever the index layout or the pickled artifact schema changes;
#: caches written by other versions are ignored (and rebuilt), never
#: misread.
CACHE_SCHEMA_VERSION = 1

#: Fixed pickle protocol so every writer produces compatible blobs.
PICKLE_PROTOCOL = 4

INDEX_NAME = "index.json"
OBJECTS_DIR = "objects"
IMAGES_DIR = "images"
LOCK_NAME = ".lock"

DEFAULT_CACHE_DIR = ".xpdl-cache"


@dataclass(frozen=True, slots=True)
class DiskEntry:
    """Metadata of one persisted stage artifact."""

    key: str
    stage: str
    identifier: str
    options: str
    fingerprint: str
    sources: tuple[str, ...]
    blob: str
    size: int
    sha256: str

    def to_json(self) -> dict[str, Any]:
        return {
            "stage": self.stage,
            "identifier": self.identifier,
            "options": self.options,
            "fingerprint": self.fingerprint,
            "sources": list(self.sources),
            "blob": self.blob,
            "size": self.size,
            "sha256": self.sha256,
        }

    @staticmethod
    def from_json(key: str, data: dict[str, Any]) -> "DiskEntry":
        return DiskEntry(
            key=key,
            stage=str(data["stage"]),
            identifier=str(data["identifier"]),
            options=str(data["options"]),
            fingerprint=str(data["fingerprint"]),
            sources=tuple(data["sources"]),
            blob=str(data["blob"]),
            size=int(data["size"]),
            sha256=str(data["sha256"]),
        )


def entry_key(stage: str, identifier: str, options: str) -> str:
    """Stable index key for one (stage, identifier, options) triple."""
    digest = hashlib.sha256(options.encode("utf-8")).hexdigest()[:16]
    return f"{stage}::{identifier}::{digest}"


class PersistentStageCache:
    """Stage artifacts that survive between toolchain invocations."""

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(root)
        self._entries: dict[str, DiskEntry] | None = None

    # -- paths -------------------------------------------------------------
    @property
    def index_path(self) -> str:
        return os.path.join(self.root, INDEX_NAME)

    @property
    def objects_root(self) -> str:
        return os.path.join(self.root, OBJECTS_DIR)

    @property
    def images_root(self) -> str:
        return os.path.join(self.root, IMAGES_DIR)

    def _blob_path(self, blob: str) -> str:
        return os.path.join(self.objects_root, blob.replace("/", os.sep))

    def image_path(self, key: str) -> str:
        """Content-addressed location of one runtime image (v2 ``.xir``)."""
        return os.path.join(self.images_root, key[:2], f"{key}.xir")

    # -- index I/O ---------------------------------------------------------
    @contextmanager
    def _index_lock(self) -> Iterator[None]:
        """Serialize read-merge-write index updates between processes."""
        if fcntl is None:
            yield
            return
        os.makedirs(self.root, exist_ok=True)
        with open(os.path.join(self.root, LOCK_NAME), "a+") as fh:
            fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(fh.fileno(), fcntl.LOCK_UN)

    def _read_index(self) -> dict[str, DiskEntry]:
        """Parse the on-disk index; any defect reads as an empty cache."""
        try:
            with open(self.index_path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            return {}
        if not isinstance(data, dict):
            return {}
        if data.get("version") != CACHE_SCHEMA_VERSION:
            return {}
        if data.get("pickle_protocol") != PICKLE_PROTOCOL:
            return {}
        entries: dict[str, DiskEntry] = {}
        for key, raw in (data.get("entries") or {}).items():
            try:
                entries[key] = DiskEntry.from_json(key, raw)
            except (KeyError, TypeError, ValueError):
                continue  # skip one malformed entry, keep the rest
        return entries

    def _write_index(self, entries: dict[str, DiskEntry]) -> None:
        os.makedirs(self.root, exist_ok=True)
        payload = {
            "version": CACHE_SCHEMA_VERSION,
            "pickle_protocol": PICKLE_PROTOCOL,
            "entries": {k: e.to_json() for k, e in sorted(entries.items())},
        }
        self._atomic_write(
            self.index_path,
            json.dumps(payload, indent=1, sort_keys=True).encode("utf-8"),
        )

    @staticmethod
    def _atomic_write(path: str, data: bytes) -> None:
        """Write ``data`` to ``path`` via a same-directory temp + replace."""
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, prefix=".tmp-")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def entries(self, *, refresh: bool = False) -> dict[str, DiskEntry]:
        """The index, loaded lazily once per cache object."""
        if self._entries is None or refresh:
            self._entries = self._read_index()
        return self._entries

    # -- the cache protocol -------------------------------------------------
    def lookup(
        self, stage: str, identifier: str, options: str
    ) -> DiskEntry | None:
        """Entry metadata for the triple, or None.  The caller must still
        check the entry's fingerprint against the live sources."""
        return self.entries().get(entry_key(stage, identifier, options))

    def load(self, entry: DiskEntry) -> tuple[bool, Any]:
        """Deserialize an entry's artifact.

        Returns ``(ok, value)``; a missing or corrupt blob reads as a miss
        (``ok=False``), never an exception — the caller recomputes.  Every
        corruption path bumps the ``cache.corrupt`` counter so a cache
        that is quietly rotting shows up in ``xpdl stats``/``/stats``
        instead of degrading to permanent recomputation.
        """
        try:
            with open(self._blob_path(entry.blob), "rb") as fh:
                data = fh.read()
        except OSError:
            get_observer().count("cache.corrupt")
            return False, None
        if hashlib.sha256(data).hexdigest() != entry.sha256:
            get_observer().count("cache.corrupt")
            return False, None
        try:
            return True, pickle.loads(data)
        except UNPICKLE_ERRORS:
            get_observer().count("cache.corrupt")
            return False, None

    def store(
        self,
        stage: str,
        identifier: str,
        options: str,
        fingerprint: str,
        sources: tuple[str, ...],
        value: Any,
    ) -> bool:
        """Persist one stage artifact; False when it cannot be pickled."""
        try:
            data = pickle.dumps(value, protocol=PICKLE_PROTOCOL)
        except PICKLE_ERRORS:
            get_observer().count("cache.unpicklable")
            return False
        digest = hashlib.sha256(data).hexdigest()
        blob = f"{digest[:2]}/{digest}.bin"
        path = self._blob_path(blob)
        if not os.path.exists(path):
            self._atomic_write(path, data)
        entry = DiskEntry(
            key=entry_key(stage, identifier, options),
            stage=stage,
            identifier=identifier,
            options=options,
            fingerprint=fingerprint,
            sources=tuple(sources),
            blob=blob,
            size=len(data),
            sha256=digest,
        )
        with self._index_lock():
            merged = self._read_index()
            merged[entry.key] = entry
            self._write_index(merged)
        self._entries = None  # next lookup sees the merged view
        return True

    # -- runtime images ------------------------------------------------------
    def store_image(self, data: bytes) -> str:
        """Persist one serialized v2 runtime image; returns its key.

        Content-addressed by SHA-256 and written atomically, exactly like
        stage blobs — concurrent build workers emitting the same model
        write identical files, and a reader never maps a torn image.
        """
        key = hashlib.sha256(data).hexdigest()
        path = self.image_path(key)
        if not os.path.exists(path):
            self._atomic_write(path, data)
            get_observer().count("cache.image_stores")
        return key

    def find_image(self, key: str) -> str | None:
        """Path of a persisted image, or None (caller falls back to a
        live build — a missing image is a cold cache, not an error)."""
        if not key:
            return None
        path = self.image_path(key)
        return path if os.path.exists(path) else None

    def _image_files(self) -> list[str]:
        out: list[str] = []
        root = self.images_root
        if not os.path.isdir(root):
            return out
        for dirpath, _dirs, files in os.walk(root):
            for name in files:
                if name.endswith(".xir"):
                    out.append(os.path.join(dirpath, name))
        return sorted(out)

    # -- maintenance (xpdl cache …) -----------------------------------------
    def stats(self) -> dict[str, Any]:
        """Summary counts for ``xpdl cache stats``."""
        entries = self.entries(refresh=True)
        by_stage: dict[str, int] = {}
        total = 0
        for e in entries.values():
            by_stage[e.stage] = by_stage.get(e.stage, 0) + 1
            total += e.size
        images = self._image_files()
        return {
            "path": self.root,
            "version": CACHE_SCHEMA_VERSION,
            "entries": len(entries),
            "bytes": total,
            "stages": dict(sorted(by_stage.items())),
            "images": len(images),
            "image_bytes": sum(os.path.getsize(p) for p in images),
        }

    def clear(self) -> int:
        """Drop every entry, blob and image; returns the number removed."""
        with self._index_lock():
            n = len(self._read_index()) + len(self._image_files())
            shutil.rmtree(self.objects_root, ignore_errors=True)
            shutil.rmtree(self.images_root, ignore_errors=True)
            self._write_index({})
        self._entries = None
        return n

    def verify(self) -> tuple[int, list[str]]:
        """Check every entry's blob — and every runtime image — exists
        and matches its digest; images additionally get their section
        checksums verified.

        Returns ``(items_checked, problems)``; an empty problem list
        means the cache is internally consistent.
        """
        problems: list[str] = []
        entries = self.entries(refresh=True)
        for key, entry in sorted(entries.items()):
            path = self._blob_path(entry.blob)
            try:
                with open(path, "rb") as fh:
                    data = fh.read()
            except OSError:
                problems.append(f"{key}: missing blob {entry.blob}")
                continue
            if hashlib.sha256(data).hexdigest() != entry.sha256:
                problems.append(f"{key}: blob digest mismatch {entry.blob}")
            elif len(data) != entry.size:
                problems.append(f"{key}: blob size mismatch {entry.blob}")
        images = self._image_files()
        for path in images:
            name = os.path.basename(path)[: -len(".xir")]
            try:
                with open(path, "rb") as fh:
                    data = fh.read()
            except OSError:
                problems.append(f"image {name[:12]}: unreadable")
                continue
            if hashlib.sha256(data).hexdigest() != name:
                problems.append(f"image {name[:12]}: content digest mismatch")
            for defect in verify_image(data):
                problems.append(f"image {name[:12]}: {defect}")
        return len(entries) + len(images), problems

    # -- hooks for tests ------------------------------------------------------
    def stamp_version(self, version: int) -> None:
        """Rewrite the index claiming ``version`` (schema-change tests)."""
        entries = self._read_index()
        payload = {
            "version": version,
            "pickle_protocol": PICKLE_PROTOCOL,
            "entries": {k: e.to_json() for k, e in entries.items()},
        }
        self._atomic_write(
            self.index_path, json.dumps(payload).encode("utf-8")
        )
        self._entries = None


def open_cache(
    cache_dir: str | None,
    factory: Callable[[str], PersistentStageCache] = PersistentStageCache,
) -> PersistentStageCache | None:
    """A cache for ``cache_dir``, or None when caching is disabled."""
    if not cache_dir:
        return None
    return factory(cache_dir)
