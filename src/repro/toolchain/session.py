"""The staged toolchain session: one pipeline, shared artifacts.

The paper's Sec. IV pipeline (browse -> parse/validate -> inherit/bind/
expand -> compose -> microbenchmark-bootstrap -> analyze -> emit runtime
IR) used to be re-implemented ad hoc by every CLI command.  A
:class:`ToolchainSession` owns the three shared resources instead:

* the :class:`~repro.repository.ModelRepository` (model search path),
* one :class:`~repro.diagnostics.DiagnosticSink` every stage appends to
  (with stage provenance on each diagnostic),
* an :class:`~repro.obs.Observer` receiving per-stage timings and
  counters.

Stages form an explicit DAG (:data:`STAGES`)::

    load -> validate
    load -> inherit
    load -> compose -> analyze -> emit_ir
                   \\-> bootstrap
                   \\-> doctor   (repository scope "*" skips compose)

Requesting a stage (:meth:`ToolchainSession.request`, or the typed
convenience wrappers) first requests its dependencies, so ``emit_ir``
transparently reuses the cached composition.  Every stage result is
memoized under a **content fingerprint**: a SHA-256 over the transitive
``.xpdl`` source texts the stage consumed plus its frozen options.  A
repeated request with unchanged sources is a cache hit (counted as
``toolchain.cache.hits``); touching any transitively-referenced
descriptor — or changing a composer option — changes the fingerprint,
drops the stale entry, invalidates the repository's parsed-model cache
for the affected identifiers and recomputes (incremental recomposition).

A session may additionally be backed by a
:class:`~repro.toolchain.diskcache.PersistentStageCache`: on an
in-memory miss the disk index is consulted (guarded by the same source
fingerprint, so stale entries never resurface), and freshly computed
artifacts of the stages in :data:`PERSISTED_STAGES` are written back.
This is what makes repeated ``xpdl build`` invocations — and the workers
of one parallel build — share work across process boundaries.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from ..analysis import (
    REPOSITORY_SCOPE,
    DoctorReport,
    check_repository,
    check_system,
    count_cores,
    count_placeholders,
    downgrade_bandwidths,
    filter_model,
    lint_model,
    runtime_default_filter,
)
from ..composer import ComposedModel, Composer
from ..diagnostics import DiagnosticSink
from ..inherit import InheritanceEngine
from ..ir import IRModel
from ..model import ModelElement
from ..obs import Observer, get_observer, use_observer
from ..repository import LoadedModel, ModelRepository
from ..schema import CORE_SCHEMA
from .diskcache import PersistentStageCache

#: Value types flowing through stages are deliberately plain: every stage
#: returns a small result object (or a toolchain artifact directly) so
#: downstream consumers stay decoupled from how the stage computed it.


@dataclass(frozen=True)
class StageSpec:
    """One named pipeline stage and its upstream dependencies."""

    name: str
    requires: tuple[str, ...] = ()


#: The Sec. IV pipeline as an explicit DAG.
STAGES: dict[str, StageSpec] = {
    "load": StageSpec("load"),
    "validate": StageSpec("validate", ("load",)),
    "inherit": StageSpec("inherit", ("load",)),
    "compose": StageSpec("compose", ("load",)),
    "analyze": StageSpec("analyze", ("compose",)),
    "emit_ir": StageSpec("emit_ir", ("analyze",)),
    "bootstrap": StageSpec("bootstrap", ("compose",)),
    "doctor": StageSpec("doctor", ("compose",)),
}

#: Stages whose artifacts are worth persisting across invocations.
#: ``load`` is cheap (one parse) and ``bootstrap`` models simulated
#: measurement runs, so neither goes to disk.
PERSISTED_STAGES: tuple[str, ...] = (
    "validate",
    "inherit",
    "compose",
    "analyze",
    "emit_ir",
    "doctor",
)


@dataclass
class ValidationResult:
    """Outcome of the ``validate`` stage for one descriptor."""

    identifier: str
    errors: int
    warnings: int
    placeholders: int

    def ok(self) -> bool:
        return self.errors == 0


@dataclass
class AnalysisResult:
    """Outcome of the ``analyze`` stage: the analyzed composition."""

    composed: ComposedModel
    cores: int
    placeholders: int
    links_checked: int


@dataclass
class EmitResult:
    """Outcome of the ``emit_ir`` stage."""

    ir: IRModel
    composed: ComposedModel
    dropped_attrs: int = 0
    dropped_elements: int = 0
    #: Content-address of the persisted v2 runtime image in the disk
    #: cache (``images/``), or None when no disk cache was configured.
    #: Consumers (:class:`repro.service.core.ModelHost`) mmap this image
    #: for a zero-copy open instead of re-deriving the index.
    image_key: str | None = None


@dataclass
class BootstrapResult:
    """Outcome of the ``bootstrap`` stage: one report per machine."""

    reports: list[tuple[str, Any]] = field(default_factory=list)

    @property
    def total_runs(self) -> int:
        return sum(len(report.runs) for _name, report in self.reports)


@dataclass
class _CacheEntry:
    value: Any
    sources: tuple[str, ...]
    fingerprint: str


#: Sentinel distinguishing "no persisted artifact" from a None value.
_DISK_MISS = object()


def _freeze(value: Any) -> Any:
    """Deterministic hashable form of a stage option value."""
    if isinstance(value, Mapping):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(_freeze(v) for v in value))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return repr(value)


class ToolchainSession:
    """Owns the repository, diagnostics sink and stage cache for one run.

    Commands and library callers request artifacts through the typed
    wrappers (:meth:`compose`, :meth:`emit_ir`, ...); within one session
    each real computation happens at most once per distinct source
    fingerprint, however many downstream consumers ask for it.
    """

    def __init__(
        self,
        repository: ModelRepository | None = None,
        *,
        include: tuple[str, ...] | list[str] = (),
        sink: DiagnosticSink | None = None,
        observer: Observer | None = None,
        validate: bool = True,
        disk_cache: PersistentStageCache | None = None,
    ) -> None:
        if repository is None:
            from ..modellib import standard_repository

            repository = standard_repository(*include, validate=validate)
        self.repository = repository
        self.sink = sink if sink is not None else DiagnosticSink()
        self.observer = observer if observer is not None else get_observer()
        self.disk_cache = disk_cache
        self._cache: dict[tuple, _CacheEntry] = {}
        self._invalidation_hooks: list[Callable[[str, str], None]] = []
        # Plain counters so cache_stats() works even with a null observer.
        self._hits = 0
        self._misses = 0
        self._invalidations = 0
        self._disk_hits = 0
        self._disk_stores = 0

    # -- the generic stage protocol -----------------------------------------
    def request(self, stage: str, identifier: str, **options: Any) -> Any:
        """Return the artifact of ``stage`` for ``identifier``.

        Memoized by (stage, identifier, options, source fingerprint);
        dependencies run first per :data:`STAGES`.
        """
        if stage not in STAGES:
            raise KeyError(f"unknown toolchain stage {stage!r}")
        obs = self.observer
        options_key = _freeze(options)
        key = (stage, identifier, options_key)
        entry = self._cache.get(key)
        if entry is not None:
            if self._fingerprint(entry.sources, options_key) == entry.fingerprint:
                self._hits += 1
                obs.count("toolchain.cache.hits")
                obs.count(f"toolchain.cache.hits.{stage}")
                return entry.value
            self._invalidations += 1
            obs.count("toolchain.cache.invalidations")
            obs.mark(
                "toolchain.cache.invalidate", stage=stage, identifier=identifier
            )
            del self._cache[key]
            self.repository.invalidate(entry.sources)
            self._fire_invalidation(stage, identifier)
        persistable = (
            self.disk_cache is not None and stage in PERSISTED_STAGES
        )
        if persistable:
            value = self._disk_lookup(stage, identifier, options_key)
            if value is not _DISK_MISS:
                return value
        self._misses += 1
        obs.count("toolchain.cache.misses")
        obs.count(f"toolchain.cache.misses.{stage}")
        runner = getattr(self, f"_run_{stage}")
        with use_observer(obs), obs.stage(
            f"toolchain.{stage}", identifier=identifier
        ), self.sink.stage(stage):
            value, sources = runner(identifier, **options)
        sources = tuple(sources)
        fingerprint = self._fingerprint(sources, options_key)
        self._cache[key] = _CacheEntry(value, sources, fingerprint)
        if persistable:
            assert self.disk_cache is not None
            stored = self.disk_cache.store(
                stage, identifier, repr(options_key), fingerprint, sources, value
            )
            if stored:
                self._disk_stores += 1
                obs.count("toolchain.diskcache.stores")
        return value

    def _disk_lookup(self, stage: str, identifier: str, options_key: Any) -> Any:
        """Serve a stage from the persistent cache, or :data:`_DISK_MISS`.

        A disk entry is honoured only when its recorded source
        fingerprint matches the *live* repository texts — the same
        freshness rule the in-memory cache applies — so an edited
        descriptor invalidates its persisted dependents implicitly.
        """
        assert self.disk_cache is not None
        obs = self.observer
        entry = self.disk_cache.lookup(stage, identifier, repr(options_key))
        if entry is None:
            return _DISK_MISS
        if self._fingerprint(entry.sources, options_key) != entry.fingerprint:
            obs.count("toolchain.diskcache.stale")
            return _DISK_MISS
        ok, value = self.disk_cache.load(entry)
        if not ok:
            obs.count("toolchain.diskcache.corrupt")
            return _DISK_MISS
        self._disk_hits += 1
        obs.count("toolchain.diskcache.hits")
        obs.count(f"toolchain.diskcache.hits.{stage}")
        self._cache[(stage, identifier, options_key)] = _CacheEntry(
            value, entry.sources, entry.fingerprint
        )
        return value

    def _fingerprint(self, sources: tuple[str, ...], options_key: Any) -> str:
        """SHA-256 over the current texts of ``sources`` plus the options.

        ``source_text`` degrades to the last-known-good copy on *transient*
        fetch failures (and an offline mirror serves identical bytes), so a
        flaky or dead remote never poisons the fingerprint: cached stage
        artifacts stay valid exactly when the descriptor texts they consumed
        are unchanged.  Store notices raised along the way (mirror serves,
        breaker trips) surface on this session's sink.
        """
        h = hashlib.sha256()
        h.update(repr(options_key).encode("utf-8"))
        # Fingerprinting happens on the cache-hit fast path, outside any
        # stage scope; activate the session observer so store activity
        # (mirror hits, degraded fetches) is still accounted.
        with use_observer(self.observer):
            for ident in sources:
                text = self.repository.source_text(ident, sink=self.sink)
                h.update(b"\0")
                h.update(ident.encode("utf-8"))
                h.update(b"\0")
                h.update(b"<missing>" if text is None else text.encode("utf-8"))
        return h.hexdigest()

    def invalidate(self) -> None:
        """Drop every cached stage result and the repository's caches."""
        dropped = [(stage, ident) for stage, ident, _opts in self._cache]
        self._cache.clear()
        self.repository.invalidate()
        for stage, ident in dropped:
            self._fire_invalidation(stage, ident)

    # -- invalidation hooks ----------------------------------------------------
    def add_invalidation_hook(
        self, hook: Callable[[str, str], None]
    ) -> None:
        """Call ``hook(stage, identifier)`` whenever a cached stage entry is
        dropped because its source fingerprint no longer matches the live
        descriptor texts.  Long-lived consumers (the model service hosting
        compiled :class:`~repro.runtime.index.IRIndex` es, say) use this to
        retire derived state eagerly instead of discovering the edit on
        their next fingerprint probe."""
        self._invalidation_hooks.append(hook)

    def _fire_invalidation(self, stage: str, identifier: str) -> None:
        for hook in self._invalidation_hooks:
            hook(stage, identifier)

    # -- typed wrappers -------------------------------------------------------
    def load(self, identifier: str) -> LoadedModel:
        return self.request("load", identifier)

    def validate(self, identifier: str) -> ValidationResult:
        return self.request("validate", identifier)

    def inherit(self, identifier: str) -> ModelElement:
        return self.request("inherit", identifier)

    def compose(self, identifier: str, **options: Any) -> ComposedModel:
        return self.request("compose", identifier, **options)

    def analyze(self, identifier: str, **options: Any) -> AnalysisResult:
        return self.request("analyze", identifier, **options)

    def emit_ir(
        self, identifier: str, *, keep_all: bool = False, **options: Any
    ) -> EmitResult:
        return self.request("emit_ir", identifier, keep_all=keep_all, **options)

    def doctor(
        self,
        identifier: str = REPOSITORY_SCOPE,
        *,
        suppress: tuple[str, ...] | list[str] = (),
    ) -> DoctorReport:
        """Doctor findings for one system, or — with the default
        :data:`~repro.analysis.REPOSITORY_SCOPE` sentinel — for the whole
        repository (cross-descriptor rules)."""
        return self.request("doctor", identifier, suppress=tuple(suppress))

    def bootstrap(
        self,
        identifier: str,
        *,
        seed: int = 0,
        noise: float = 0.05,
        repetitions: int = 5,
        force: bool = False,
    ) -> BootstrapResult:
        return self.request(
            "bootstrap",
            identifier,
            seed=seed,
            noise=noise,
            repetitions=repetitions,
            force=force,
        )

    # -- stage runners --------------------------------------------------------
    def _run_load(self, identifier: str) -> tuple[LoadedModel, tuple[str, ...]]:
        lm = self.repository.load(identifier, self.sink)
        return lm, (identifier,)

    def _run_validate(
        self, identifier: str
    ) -> tuple[ValidationResult, tuple[str, ...]]:
        before_errors = self.sink.error_count
        before_warnings = self.sink.warning_count
        lm = self.request("load", identifier)
        # Schema validation already ran at load time when the repository
        # validates on parse; avoid emitting every diagnostic twice.
        if not self.repository.validate:
            from ..schema import SchemaValidator

            SchemaValidator().validate(lm.model, self.sink)
        lint_model(lm.model, self.sink)
        result = ValidationResult(
            identifier=identifier,
            errors=self.sink.error_count - before_errors,
            warnings=self.sink.warning_count - before_warnings,
            placeholders=count_placeholders(lm.model),
        )
        return result, (identifier,)

    def _run_inherit(
        self, identifier: str
    ) -> tuple[ModelElement, tuple[str, ...]]:
        self.request("load", identifier)
        resolved = InheritanceEngine(self.repository).resolve(
            identifier, self.sink
        )
        closure = self.repository.load_closure(identifier, self.sink)
        return resolved, tuple(sorted(closure) or (identifier,))

    def _run_compose(
        self,
        identifier: str,
        *,
        bindings: Mapping | None = None,
        expand: bool = True,
        substitute: bool = True,
    ) -> tuple[ComposedModel, tuple[str, ...]]:
        self.request("load", identifier)
        composer = Composer(
            self.repository, expand=expand, substitute=substitute
        )
        composed = composer.compose(identifier, self.sink, bindings=bindings)
        return composed, composed.referenced or (identifier,)

    def _run_analyze(
        self, identifier: str, **compose_options: Any
    ) -> tuple[AnalysisResult, tuple[str, ...]]:
        composed = self.request("compose", identifier, **compose_options)
        links = downgrade_bandwidths(composed.root, self.sink)
        lint = lint_model(composed.root, self.sink)
        cores = count_cores(composed.root)
        self.observer.count("analysis.cores", cores)
        result = AnalysisResult(
            composed=composed,
            cores=cores,
            placeholders=lint.placeholders,
            links_checked=len(links),
        )
        return result, composed.referenced or (identifier,)

    def _run_emit_ir(
        self,
        identifier: str,
        *,
        keep_all: bool = False,
        **compose_options: Any,
    ) -> tuple[EmitResult, tuple[str, ...]]:
        analysis = self.request("analyze", identifier, **compose_options)
        composed = analysis.composed
        root = composed.root
        dropped_attrs = dropped_elements = 0
        if not keep_all:
            root, dropped_attrs, dropped_elements = filter_model(
                root, runtime_default_filter()
            )
        ir = IRModel.from_model(
            root,
            {
                "system": identifier,
                "tool": "xpdl compose",
                "schema": f"{CORE_SCHEMA.name} {CORE_SCHEMA.version}",
            },
        )
        image_key: str | None = None
        if self.disk_cache is not None:
            try:
                image_key = self.disk_cache.store_image(ir.to_bytes())
            except OSError:
                # A read-only or full cache directory costs the fast
                # open, never the build.
                image_key = None
        result = EmitResult(
            ir=ir,
            composed=composed,
            dropped_attrs=dropped_attrs,
            dropped_elements=dropped_elements,
            image_key=image_key,
        )
        return result, composed.referenced or (identifier,)

    def _run_doctor(
        self,
        identifier: str,
        *,
        suppress: tuple[str, ...] = (),
    ) -> tuple[DoctorReport, tuple[str, ...]]:
        if identifier == REPOSITORY_SCOPE:
            report = check_repository(
                self.repository, self.sink, suppress=suppress
            )
            # The repository pass reads every descriptor, so the artifact
            # is keyed over the whole index: touching any file recomputes.
            sources = tuple(sorted(self.repository.index()))
            return report, sources or (identifier,)
        composed = self.request("compose", identifier)
        report = check_system(
            identifier,
            composed.root,
            self.repository,
            self.sink,
            suppress=suppress,
        )
        return report, composed.referenced or (identifier,)

    def _run_bootstrap(
        self,
        identifier: str,
        *,
        seed: int = 0,
        noise: float = 0.05,
        repetitions: int = 5,
        force: bool = False,
    ) -> tuple[BootstrapResult, tuple[str, ...]]:
        from ..microbench import bootstrap_instruction_model
        from ..model import Instructions, Microbenchmarks
        from ..simhw import PowerMeter, testbed_from_model

        composed = self.request("compose", identifier)
        bed = testbed_from_model(composed.root)
        meter = PowerMeter(seed=seed, noise_std_w=noise)
        result = BootstrapResult()
        for machine in bed.machines.values():
            isa = machine.truth.isa_name
            instrs = next(
                (
                    i
                    for i in composed.root.find_all(Instructions)
                    if (i.name or i.ident) == isa
                ),
                None,
            )
            if instrs is None:
                continue
            suite = next(
                iter(composed.root.find_all(Microbenchmarks)), None
            )
            _model, report = bootstrap_instruction_model(
                instrs,
                machine,
                suite=suite,
                meter=meter,
                repetitions=repetitions,
                force=force,
                sink=self.sink,
            )
            result.reports.append((machine.name, report))
        return result, composed.referenced or (identifier,)

    # -- reporting ------------------------------------------------------------
    def cache_stats(self) -> dict[str, int]:
        """Hit/miss/invalidation totals for this session's stage cache."""
        return {
            "hits": self._hits,
            "misses": self._misses,
            "invalidations": self._invalidations,
            "entries": len(self._cache),
            "disk_hits": self._disk_hits,
            "disk_stores": self._disk_stores,
        }

    def render_diagnostics(self) -> str:
        """Render every collected diagnostic (with stage provenance) once."""
        return self.sink.render()
