"""Structured diagnostics and the exception hierarchy of the toolchain."""

from __future__ import annotations

import enum
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator

from .span import SourceSpan, SourceText


class Severity(enum.IntEnum):
    """Diagnostic severity; ordering is by increasing gravity."""

    NOTE = 0
    WARNING = 1
    ERROR = 2
    FATAL = 3

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name.lower()


@dataclass(frozen=True, slots=True)
class Diagnostic:
    """One problem found in a user artifact.

    ``code`` is a stable machine-readable identifier (e.g. ``XPDL0102``);
    ``message`` is the human text; ``span`` points at the offending text.
    ``hints`` carry optional fix-it style advice.  ``stage`` records which
    toolchain stage emitted the diagnostic (set automatically inside a
    :meth:`DiagnosticSink.stage` scope).
    """

    severity: Severity
    code: str
    message: str
    span: SourceSpan
    hints: tuple[str, ...] = ()
    stage: str | None = None

    def is_error(self) -> bool:
        return self.severity >= Severity.ERROR

    def __str__(self) -> str:
        text = f"{self.span}: {self.severity}: {self.message} [{self.code}]"
        if self.stage:
            text += f" (stage: {self.stage})"
        return text


class XpdlError(Exception):
    """Base class for all toolchain errors.

    Carries the diagnostics that motivated the failure so callers can render
    them uniformly.
    """

    def __init__(self, message: str, diagnostics: Iterable[Diagnostic] = ()):
        super().__init__(message)
        self.diagnostics: tuple[Diagnostic, ...] = tuple(diagnostics)

    def __str__(self) -> str:
        base = super().__str__()
        if not self.diagnostics:
            return base
        return base + "\n" + "\n".join(str(d) for d in self.diagnostics)


class ParseError(XpdlError):
    """Malformed XML / XPDL surface syntax."""


class SchemaError(XpdlError):
    """Artifact violates the XPDL core schema."""


class ResolutionError(XpdlError):
    """A referenced model name/id could not be resolved in the repository.

    Permanent by definition: the repository was reachable and answered
    "no such descriptor".  Retrying cannot help; contrast
    :class:`TransientFetchError`.
    """


class TransientFetchError(XpdlError):
    """A descriptor fetch failed for a retryable, non-semantic reason.

    Models the network half of the paper's distributed repository: a
    manufacturer download site timing out or refusing a connection says
    nothing about whether the descriptor exists.  Resilient stores
    (:class:`~repro.repository.RetryingStore` and friends) retry or degrade
    on this type only; a :class:`ResolutionError` (permanent not-found)
    propagates immediately.
    """


class CompositionError(XpdlError):
    """Composing the concrete model tree failed (bad refs, merge conflicts)."""


class ConstraintError(XpdlError):
    """A declared constraint is violated or unsatisfiable."""


class UnitError(XpdlError):
    """Bad unit spelling or dimension mismatch."""


class QueryError(XpdlError):
    """Runtime query API misuse (bad path, unknown attribute)."""


class DiagnosticSink:
    """Collects diagnostics during a toolchain pass.

    A sink may be configured with ``max_errors`` after which an
    :class:`XpdlError` is raised to abort the pass, and with
    ``warnings_as_errors`` to harden CI runs.
    """

    def __init__(
        self,
        *,
        max_errors: int = 100,
        warnings_as_errors: bool = False,
        sources: dict[str, SourceText] | None = None,
    ) -> None:
        self._diags: list[Diagnostic] = []
        self.max_errors = max_errors
        self.warnings_as_errors = warnings_as_errors
        self.sources: dict[str, SourceText] = dict(sources or {})
        self._stage: str | None = None

    # -- stage provenance --------------------------------------------------
    @property
    def current_stage(self) -> str | None:
        return self._stage

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Tag every diagnostic emitted in this scope with ``name``.

        Scopes nest; the innermost stage wins (a parse problem surfacing
        during composition is attributed to the pass that hit it).
        """
        prev, self._stage = self._stage, name
        try:
            yield
        finally:
            self._stage = prev

    # -- registration -----------------------------------------------------
    def add_source(self, source: SourceText) -> None:
        self.sources[source.name] = source

    def emit(self, diag: Diagnostic) -> None:
        if self.warnings_as_errors and diag.severity == Severity.WARNING:
            diag = replace(diag, severity=Severity.ERROR)
        if self._stage is not None and diag.stage is None:
            diag = replace(diag, stage=self._stage)
        self._diags.append(diag)
        if self.error_count > self.max_errors:
            raise XpdlError(
                f"too many errors (> {self.max_errors}); aborting", self._diags
            )

    def emit_severity(
        self,
        severity: Severity,
        code: str,
        message: str,
        span: SourceSpan,
        *hints: str,
    ) -> None:
        """Emit with a runtime-chosen severity (doctor rules, lint knobs)."""
        self.emit(Diagnostic(severity, code, message, span, tuple(hints)))

    def note(self, code: str, message: str, span: SourceSpan, *hints: str) -> None:
        self.emit(Diagnostic(Severity.NOTE, code, message, span, hints))

    def warning(self, code: str, message: str, span: SourceSpan, *hints: str) -> None:
        self.emit(Diagnostic(Severity.WARNING, code, message, span, hints))

    def error(self, code: str, message: str, span: SourceSpan, *hints: str) -> None:
        self.emit(Diagnostic(Severity.ERROR, code, message, span, hints))

    def fatal(self, code: str, message: str, span: SourceSpan, *hints: str) -> None:
        self.emit(Diagnostic(Severity.FATAL, code, message, span, hints))

    def extend(self, diags: Iterable[Diagnostic]) -> None:
        for d in diags:
            self.emit(d)

    # -- inspection --------------------------------------------------------
    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self._diags)

    def __len__(self) -> int:
        return len(self._diags)

    @property
    def diagnostics(self) -> tuple[Diagnostic, ...]:
        return tuple(self._diags)

    @property
    def error_count(self) -> int:
        return sum(1 for d in self._diags if d.is_error())

    @property
    def warning_count(self) -> int:
        return sum(1 for d in self._diags if d.severity == Severity.WARNING)

    def has_errors(self) -> bool:
        return self.error_count > 0

    def errors(self) -> list[Diagnostic]:
        return [d for d in self._diags if d.is_error()]

    def raise_if_errors(self, exc_type: type[XpdlError] = XpdlError) -> None:
        """Raise ``exc_type`` when at least one error was collected."""
        if self.has_errors():
            n = self.error_count
            raise exc_type(f"{n} error{'s' if n != 1 else ''} reported", self._diags)

    def render(self, *, with_snippets: bool = True, dedupe: bool = False) -> str:
        return render_diagnostics(
            self._diags,
            sources=self.sources if with_snippets else None,
            dedupe=dedupe,
        )


def render_diagnostic(
    diag: Diagnostic, *, source: SourceText | None = None
) -> str:
    """Render one diagnostic, optionally with a source snippet."""
    parts = [str(diag)]
    if source is not None and source.name == diag.span.source:
        parts.append(source.snippet(diag.span))
    for hint in diag.hints:
        parts.append(f"  hint: {hint}")
    return "\n".join(parts)


def render_diagnostics(
    diags: Iterable[Diagnostic],
    *,
    sources: dict[str, SourceText] | None = None,
    dedupe: bool = False,
) -> str:
    """Render many diagnostics, sorted by file then position.

    With ``dedupe`` an identical diagnostic (same severity, code, message,
    span and stage) is rendered once per call, however many pipeline passes
    re-emitted it — a shared ``.xpdl`` descriptor referenced by several
    systems produces its notes once per CLI invocation, not once per
    system or repeat round.
    """
    ordered = sorted(
        diags, key=lambda d: (d.span.source, d.span.start.offset, -int(d.severity))
    )
    if dedupe:
        unique: list[Diagnostic] = []
        seen: set[Diagnostic] = set()
        for d in ordered:
            if d not in seen:
                seen.add(d)
                unique.append(d)
        ordered = unique
    blocks = []
    for d in ordered:
        src = sources.get(d.span.source) if sources else None
        blocks.append(render_diagnostic(d, source=src))
    return "\n".join(blocks)
