"""Diagnostics: source locations, structured error/warning reporting.

All user-facing problems in ``.xpdl`` artifacts are reported as
:class:`Diagnostic` objects carrying a :class:`SourceSpan`, collected in a
:class:`DiagnosticSink`, and rendered by :func:`render_diagnostics`.  Python
exceptions (:class:`XpdlError` subclasses) are raised only when a caller asks
for strict behaviour or misuses the API.
"""

from .span import SourcePos, SourceSpan, SourceText
from .diagnostic import (
    Diagnostic,
    DiagnosticSink,
    Severity,
    XpdlError,
    ParseError,
    SchemaError,
    ResolutionError,
    TransientFetchError,
    CompositionError,
    ConstraintError,
    UnitError,
    QueryError,
    render_diagnostic,
    render_diagnostics,
)

__all__ = [
    "SourcePos",
    "SourceSpan",
    "SourceText",
    "Diagnostic",
    "DiagnosticSink",
    "Severity",
    "XpdlError",
    "ParseError",
    "SchemaError",
    "ResolutionError",
    "TransientFetchError",
    "CompositionError",
    "ConstraintError",
    "UnitError",
    "QueryError",
    "render_diagnostic",
    "render_diagnostics",
]
