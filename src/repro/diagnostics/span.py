"""Source positions and spans for precise diagnostics.

Positions are tracked as (offset, line, column); lines and columns are
1-based, offsets 0-based, matching what most editors display.  A
:class:`SourceText` wraps the raw text of one descriptor file and supports
offset -> (line, column) conversion and snippet extraction for rendering.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True, order=True)
class SourcePos:
    """A single position in a source text."""

    offset: int
    line: int
    column: int

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.line}:{self.column}"


@dataclass(frozen=True, slots=True)
class SourceSpan:
    """A half-open [start, end) region of a named source text."""

    source: str
    start: SourcePos
    end: SourcePos

    @staticmethod
    def point(source: str, pos: SourcePos) -> "SourceSpan":
        return SourceSpan(source, pos, pos)

    @staticmethod
    def unknown(source: str = "<unknown>") -> "SourceSpan":
        zero = SourcePos(0, 1, 1)
        return SourceSpan(source, zero, zero)

    def merge(self, other: "SourceSpan") -> "SourceSpan":
        """Smallest span covering both ``self`` and ``other``.

        Spans must come from the same source; merging across files is a
        programming error.
        """
        if other.source != self.source:
            raise ValueError(
                f"cannot merge spans from {self.source!r} and {other.source!r}"
            )
        start = min(self.start, other.start)
        end = max(self.end, other.end)
        return SourceSpan(self.source, start, end)

    def __str__(self) -> str:
        if self.start == self.end:
            return f"{self.source}:{self.start}"
        if self.start.line == self.end.line:
            return f"{self.source}:{self.start}-{self.end.column}"
        return f"{self.source}:{self.start}-{self.end}"


@dataclass(slots=True)
class SourceText:
    """The raw text of one source artifact plus a line-offset index."""

    name: str
    text: str
    _line_starts: list[int] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        starts = [0]
        for i, ch in enumerate(self.text):
            if ch == "\n":
                starts.append(i + 1)
        self._line_starts = starts

    def __len__(self) -> int:
        return len(self.text)

    def pos(self, offset: int) -> SourcePos:
        """Convert a raw offset into a :class:`SourcePos`."""
        offset = max(0, min(offset, len(self.text)))
        line_idx = bisect.bisect_right(self._line_starts, offset) - 1
        col = offset - self._line_starts[line_idx] + 1
        return SourcePos(offset, line_idx + 1, col)

    def span(self, start_offset: int, end_offset: int) -> SourceSpan:
        return SourceSpan(self.name, self.pos(start_offset), self.pos(end_offset))

    def line_text(self, line: int) -> str:
        """Return the text of a 1-based line, without its newline."""
        if line < 1 or line > len(self._line_starts):
            return ""
        start = self._line_starts[line - 1]
        end = (
            self._line_starts[line] - 1
            if line < len(self._line_starts)
            else len(self.text)
        )
        return self.text[start:end].rstrip("\n")

    def snippet(self, span: SourceSpan, *, max_width: int = 120) -> str:
        """Render a caret-underlined snippet for ``span`` (single line)."""
        line = self.line_text(span.start.line)
        if len(line) > max_width:
            line = line[:max_width] + "…"
        caret_start = max(span.start.column - 1, 0)
        if span.end.line == span.start.line and span.end.column > span.start.column:
            width = span.end.column - span.start.column
        else:
            width = 1
        width = max(1, min(width, max(1, len(line) - caret_start) or 1))
        underline = " " * caret_start + "^" * width
        return f"{line}\n{underline}"
