"""The SpMV conditional-composition case study (paper Sec. II, ref. [3]).

One sparse matrix-vector multiply component, two variants:

* **cpu_csr** — CSR loop on the host CPU; requires a CPU sparse BLAS
  (``cpu_sparse_blas``, e.g. MKL).  Cost: per-nonzero multiply-add plus
  per-row loop overhead; no transfers.
* **gpu_csr** — CUDA kernel on the device; requires a GPU sparse BLAS
  (``gpu_sparse_blas``, e.g. cuSPARSE) and a CUDA device.  Cost: CSR arrays
  up over PCIe, per-nonzero FMA + global loads on the GPU, result vector
  back down.

The GPU wins at high nonzero counts (its per-element cost is lower), the
CPU at low density where PCIe transfer dominates — so tuned selection beats
both static choices across a density sweep, which is the effect the paper's
case study reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..diagnostics import XpdlError
from ..runtime import QueryContext
from ..simhw import SimTestbed
from ..units import ENERGY, TIME, Quantity
from .component import (
    CallContext,
    Component,
    ExecutionResult,
    Variant,
    requires_cuda_device,
)

#: Bytes per CSR nonzero transferred to the device: value (8) + column
#: index (4); row pointers add 4 per row.
_BYTES_PER_NNZ = 12
_BYTES_PER_ROW = 4
_BYTES_PER_RESULT = 8


@dataclass
class SpmvProblem:
    """One SpMV invocation: an n x n CSR matrix with the given density."""

    n: int
    density: float
    seed: int = 0

    @property
    def nnz(self) -> int:
        return max(1, int(round(self.n * self.n * self.density)))

    def call_context(self) -> CallContext:
        return CallContext(
            {
                "rows": float(self.n),
                "nnz": float(self.nnz),
                "density": self.density,
            }
        )

    def materialize(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Generate actual CSR arrays (values, col_idx, row_ptr).

        The simulation costs depend only on counts, but generating real
        data keeps the workload honest and testable.
        """
        rng = np.random.default_rng(self.seed)
        nnz = self.nnz
        values = rng.standard_normal(nnz)
        col_idx = rng.integers(0, self.n, size=nnz, dtype=np.int64)
        counts = np.bincount(
            rng.integers(0, self.n, size=nnz, dtype=np.int64),
            minlength=self.n,
        )
        row_ptr = np.concatenate(([0], np.cumsum(counts)))
        return values, col_idx, row_ptr


# ---------------------------------------------------------------------------
# Variant executors (run on the simulated testbed)
# ---------------------------------------------------------------------------


def _cpu_machine(testbed: SimTestbed):
    for name, machine in testbed.machines.items():
        if "fadd" in machine.truth:  # the x86-flavoured unit
            return machine
    raise XpdlError("testbed has no CPU machine with the x86 base ISA")


def _gpu_machine(testbed: SimTestbed):
    for name, machine in testbed.machines.items():
        if "fma_f32" in machine.truth:  # the PTX-flavoured unit
            return machine
    raise XpdlError("testbed has no GPU machine with the PTX ISA")


def execute_cpu_csr(testbed: SimTestbed, call: CallContext) -> ExecutionResult:
    """CSR loop on the host: per nnz one fmul+fadd+2 loads, per row store."""
    machine = _cpu_machine(testbed)
    nnz = int(call["nnz"])
    rows = int(call["rows"])
    run = machine.run_stream(
        {
            "fmul": nnz,
            "fadd": nnz,
            "load": 2 * nnz,
            "store": rows,
            "add": nnz + rows,  # index arithmetic / loop control
        }
    )
    return ExecutionResult("cpu_csr", run.duration, run.energy)


def execute_gpu_csr(testbed: SimTestbed, call: CallContext) -> ExecutionResult:
    """Device kernel: PCIe up-transfer, FMA+loads per nnz, down-transfer."""
    machine = _gpu_machine(testbed)
    nnz = int(call["nnz"])
    rows = int(call["rows"])
    # The liu_gpu_server model names its PCIe link 'connection1'.
    link_name = next(iter(testbed.links), None)
    if link_name is None:
        raise XpdlError("testbed has no interconnect for device transfers")
    up = testbed.link(link_name, "up_link")
    down = testbed.link(link_name, "down_link")
    up_bytes = nnz * _BYTES_PER_NNZ + rows * _BYTES_PER_ROW
    up_cost = up.transfer(up_bytes)
    # A Kepler retires ~32 useful SpMV lanes per issue; fold the whole
    # device's parallelism into an effective per-element stream on the
    # machine by dividing counts across SM lanes.
    parallel_lanes = 256
    kernel = machine.run_stream(
        {
            "fma_f32": max(1, nnz // parallel_lanes),
            "ld_global": max(1, 2 * nnz // parallel_lanes),
            "st_global": max(1, rows // parallel_lanes),
        }
    )
    down_cost = down.transfer(rows * _BYTES_PER_RESULT)
    time = up_cost.time + kernel.duration + down_cost.time
    energy = up_cost.energy + kernel.energy + down_cost.energy
    return ExecutionResult("gpu_csr", time, energy)


# ---------------------------------------------------------------------------
# Model-based cost prediction (the 'predict' policy's input)
# ---------------------------------------------------------------------------


def predict_cpu_csr(platform: QueryContext, call: CallContext) -> float:
    """Crude analytic prediction from platform attributes only."""
    cpu = platform.find_all("cpu")
    freq = None
    for c in cpu:
        for core in c.descendants("core"):
            freq = core.get_quantity("frequency")
            if freq is not None:
                break
        if freq is not None:
            break
    f = freq.magnitude if freq is not None else 2e9
    nnz = call["nnz"]
    # ~12 cycles of work per nonzero in a scalar CSR loop.
    return 12.0 * nnz / f


def predict_gpu_csr(platform: QueryContext, call: CallContext) -> float:
    link = None
    for ic in platform.find_all("interconnect"):
        bw = ic.get_quantity("effective_bandwidth") or ic.get_quantity(
            "max_bandwidth"
        )
        if bw is not None:
            link = bw
            break
    bw = link.magnitude if link is not None else 6e9
    nnz, rows = call["nnz"], call["rows"]
    transfer = (nnz * _BYTES_PER_NNZ + rows * _BYTES_PER_ROW + rows * _BYTES_PER_RESULT) / bw
    kernel = 2.0 * nnz / 256 / 7e8  # lanes at ~0.7 GHz
    return transfer + kernel


# ---------------------------------------------------------------------------
# The component
# ---------------------------------------------------------------------------


def make_spmv_component() -> Component:
    """The two-variant SpMV component with its selectability constraints."""
    cpu_variant = Variant(
        name="cpu_csr",
        execute=execute_cpu_csr,
        requires_software=("cpu_sparse_blas",),
        cost_model=predict_cpu_csr,
    )
    gpu_variant = Variant(
        name="gpu_csr",
        execute=execute_gpu_csr,
        requires_software=("gpu_sparse_blas",),
        constraints=(requires_cuda_device,),
        cost_model=predict_gpu_csr,
    )
    return Component("spmv", (cpu_variant, gpu_variant))
