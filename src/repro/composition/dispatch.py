"""Variant dispatch policies.

Given the selectable variants of a component call, a dispatcher picks one:

* ``first``  — the first selectable variant (static priority order; what a
  naive composition does);
* ``predict`` — the variant whose *model-based* cost prediction is lowest
  (pure platform-model-driven selection, no measurements needed);
* ``tuned`` — empirical selection: an offline calibration pass measures
  each variant over a training set of call contexts, the dispatcher then
  interpolates the measured winner for the actual call (the PEPPHER
  composition-tool approach that produced the paper's SpMV speedup).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from ..diagnostics import XpdlError
from ..runtime import QueryContext
from ..simhw import SimTestbed
from .component import CallContext, Component, ExecutionResult, Variant


@dataclass
class DispatchRecord:
    """One dispatch decision, for audit/inspection."""

    component: str
    chosen: str
    selectable: tuple[str, ...]
    policy: str
    call_properties: dict[str, float]


@dataclass
class TuningTable:
    """Calibration results over one scalar feature (e.g. density)."""

    feature: str
    points: list[tuple[float, str]] = field(default_factory=list)  # sorted

    def winner_near(self, value: float) -> str | None:
        if not self.points:
            return None
        keys = [p[0] for p in self.points]
        idx = bisect.bisect_left(keys, value)
        candidates = []
        if idx < len(self.points):
            candidates.append(self.points[idx])
        if idx > 0:
            candidates.append(self.points[idx - 1])
        best = min(candidates, key=lambda p: abs(p[0] - value))
        return best[1]


class Dispatcher:
    """Selects and runs component variants on a platform."""

    def __init__(
        self,
        platform: QueryContext,
        testbed: SimTestbed,
        *,
        policy: str = "predict",
    ) -> None:
        if policy not in ("first", "predict", "tuned"):
            raise XpdlError(f"unknown dispatch policy {policy!r}")
        self.platform = platform
        self.testbed = testbed
        self.policy = policy
        self.records: list[DispatchRecord] = []
        self._tuning: dict[str, TuningTable] = {}

    # -- calibration (tuned policy) ------------------------------------------
    def calibrate(
        self,
        component: Component,
        feature: str,
        training_calls: list[CallContext],
    ) -> TuningTable:
        """Measure every selectable variant on each training call; remember
        the winner per feature value."""
        table = TuningTable(feature=feature)
        for call in training_calls:
            selectable = component.selectable_variants(self.platform, call)
            if not selectable:
                continue
            best: tuple[float, str] | None = None
            for variant in selectable:
                result = variant.execute(self.testbed, call)
                t = result.time.magnitude
                if best is None or t < best[0]:
                    best = (t, variant.name)
            table.points.append((call[feature], best[1]))
        table.points.sort()
        self._tuning[component.name] = table
        return table

    # -- selection --------------------------------------------------------------
    def select(self, component: Component, call: CallContext) -> Variant:
        selectable = component.selectable_variants(self.platform, call)
        if not selectable:
            raise XpdlError(
                f"no selectable variant of {component.name!r} on this "
                "platform for this call"
            )
        if self.policy == "first" or len(selectable) == 1:
            chosen = selectable[0]
        elif self.policy == "predict":
            def predicted(v: Variant) -> float:
                if v.cost_model is None:
                    return float("inf")
                return v.cost_model(self.platform, call)

            with_models = [v for v in selectable if v.cost_model is not None]
            chosen = (
                min(with_models, key=predicted) if with_models else selectable[0]
            )
        else:  # tuned
            table = self._tuning.get(component.name)
            chosen = selectable[0]
            if table is not None:
                feature_value = call.get(table.feature)
                winner = (
                    table.winner_near(feature_value)
                    if feature_value is not None
                    else None
                )
                if winner is not None:
                    for v in selectable:
                        if v.name == winner:
                            chosen = v
                            break
        self.records.append(
            DispatchRecord(
                component=component.name,
                chosen=chosen.name,
                selectable=tuple(v.name for v in selectable),
                policy=self.policy,
                call_properties=dict(call.properties),
            )
        )
        return chosen

    def invoke(self, component: Component, call: CallContext) -> ExecutionResult:
        """Select a variant and execute it."""
        variant = self.select(component, call)
        return variant.execute(self.testbed, call)
