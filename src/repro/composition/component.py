"""Multi-variant components with platform-conditional selectability.

The PEPPHER/EXCESS pattern the paper builds toward (Sec. II, [3]): an
annotated component has several implementation variants; each variant
declares *selectability constraints* that are evaluated against the
platform model (through the runtime query API) and against dynamic call
properties (problem size, sparsity, ...).  The composition tool/dispatcher
then picks among the selectable variants.

In the paper's SpMV case study "each CPU and GPU implementation variant
specify its specific constraints on availability of specific libraries
(such as sparse BLAS libraries) in the target system, and ... selection
constraints based on the density of nonzero elements".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from ..diagnostics import XpdlError
from ..runtime import QueryContext
from ..simhw import SimTestbed
from ..units import ENERGY, TIME, Quantity


@dataclass
class CallContext:
    """Dynamic properties of one component invocation."""

    properties: dict[str, float] = field(default_factory=dict)

    def __getitem__(self, key: str) -> float:
        try:
            return self.properties[key]
        except KeyError:
            raise XpdlError(
                f"call context has no property {key!r}; "
                f"known: {', '.join(sorted(self.properties))}"
            ) from None

    def get(self, key: str, default: float | None = None) -> float | None:
        return self.properties.get(key, default)


@dataclass
class ExecutionResult:
    """Observed cost of running a variant once."""

    variant: str
    time: Quantity
    energy: Quantity

    def __post_init__(self) -> None:
        if self.time.dimension != TIME:
            raise XpdlError("ExecutionResult.time must be a time quantity")
        if self.energy.dimension != ENERGY:
            raise XpdlError("ExecutionResult.energy must be an energy quantity")


#: Selectability predicate: platform introspection + dynamic properties.
Constraint = Callable[[QueryContext, CallContext], bool]
#: Analytic cost prediction from the platform model (seconds).
CostModel = Callable[[QueryContext, CallContext], float]
#: Actual execution on the simulated testbed.
Executor = Callable[[SimTestbed, CallContext], ExecutionResult]


@dataclass
class Variant:
    """One implementation variant of a component."""

    name: str
    execute: Executor
    #: Installed-software capabilities this variant needs (matched against
    #: the platform's <installed> descriptors via has_installed()).
    requires_software: tuple[str, ...] = ()
    #: Extra constraints (platform + call properties).
    constraints: tuple[Constraint, ...] = ()
    #: Optional model-based cost prediction used by the 'predict' policy.
    cost_model: CostModel | None = None

    def selectable(self, platform: QueryContext, call: CallContext) -> bool:
        """Evaluate all selectability constraints."""
        for req in self.requires_software:
            if not platform.has_installed(req):
                return False
        return all(c(platform, call) for c in self.constraints)


@dataclass
class Component:
    """A multi-variant component."""

    name: str
    variants: tuple[Variant, ...]

    def variant(self, name: str) -> Variant:
        for v in self.variants:
            if v.name == name:
                return v
        raise XpdlError(
            f"component {self.name!r} has no variant {name!r}; "
            f"variants: {', '.join(v.name for v in self.variants)}"
        )

    def selectable_variants(
        self, platform: QueryContext, call: CallContext
    ) -> list[Variant]:
        return [
            v for v in self.variants if v.selectable(platform, call)
        ]


def density_at_least(threshold: float) -> Constraint:
    """Constraint: call density >= threshold (the [3] pattern)."""

    def check(_platform: QueryContext, call: CallContext) -> bool:
        return (call.get("density") or 0.0) >= threshold

    return check


def density_below(threshold: float) -> Constraint:
    def check(_platform: QueryContext, call: CallContext) -> bool:
        return (call.get("density") or 0.0) < threshold

    return check


def requires_cuda_device(platform: QueryContext, _call: CallContext) -> bool:
    """Constraint: the platform has at least one CUDA-programmable device."""
    return platform.count_cuda_devices() > 0


def problem_size_at_least(key: str, threshold: float) -> Constraint:
    def check(_platform: QueryContext, call: CallContext) -> bool:
        return (call.get(key) or 0.0) >= threshold

    return check
