"""Conditional composition: multi-variant components, dispatch policies and
the SpMV case study (paper Sec. II, ref. [3])."""

from .component import (
    CallContext,
    Component,
    Constraint,
    ExecutionResult,
    Variant,
    density_at_least,
    density_below,
    problem_size_at_least,
    requires_cuda_device,
)
from .dispatch import DispatchRecord, Dispatcher, TuningTable
from .spmv import (
    SpmvProblem,
    execute_cpu_csr,
    execute_gpu_csr,
    make_spmv_component,
    predict_cpu_csr,
    predict_gpu_csr,
)

__all__ = [
    "CallContext",
    "Component",
    "Constraint",
    "ExecutionResult",
    "Variant",
    "density_at_least",
    "density_below",
    "problem_size_at_least",
    "requires_cuda_device",
    "DispatchRecord",
    "Dispatcher",
    "TuningTable",
    "SpmvProblem",
    "execute_cpu_csr",
    "execute_gpu_csr",
    "make_spmv_component",
    "predict_cpu_csr",
    "predict_gpu_csr",
]
