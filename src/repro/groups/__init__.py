"""Homogeneous group expansion (prefix/quantity member synthesis)."""

from .expand import count_expanded, expand_groups, expanded_members

__all__ = ["count_expanded", "expand_groups", "expanded_members"]
