"""Expansion of homogeneous groups into their member instances.

Sec. III-A: a ``group`` with a ``quantity`` attribute is implicitly
homogeneous; ``prefix`` + ``quantity`` auto-assign member identifiers
``prefix0 .. prefixN-1``.  ``quantity`` may also name a param
(Listing 8's ``quantity="num_SM"``), resolved against the parameter
environment at composition time.

Member identity rule (the paper leaves the multi-child case open, so we fix
a deterministic one and document it):

* a group with exactly **one** child element replicates that child directly,
  assigning ids ``prefix{r}`` to the clones — ``<memory/>`` under
  ``<group prefix="main_mem" quantity="4">`` becomes ``main_mem0..main_mem3``;
* a group with **several** children (e.g. Listing 1's core + private L1)
  wraps each replica in a member ``<group id="prefix{r}">`` so that the
  hierarchical-scope sharing semantics are preserved: each member keeps its
  own private copy of the scoped caches.

The expanded group container is kept (marked ``expanded="true"``) so scope
— and therefore cache sharing — is unchanged.
"""

from __future__ import annotations

from typing import Mapping

from ..diagnostics import CompositionError, ConstraintError, DiagnosticSink
from ..model import ELEMENT_REGISTRY, Group, ModelElement
from ..params import Evaluator, Value


def _resolve_quantity(
    group: Group,
    env: Mapping[str, Value],
    sink: DiagnosticSink,
) -> int | None:
    raw = group.attrs.get("quantity")
    if raw is None:
        return None
    raw = raw.strip()
    try:
        n = int(raw)
    except ValueError:
        try:
            n = Evaluator(dict(env)).eval_int(raw)
        except ConstraintError as exc:
            sink.error(
                "XPDL0400",
                f"cannot resolve group quantity {raw!r}: {exc}",
                group.span,
            )
            return None
    if n < 0:
        sink.error(
            "XPDL0401", f"negative group quantity {n}", group.span
        )
        return None
    return n


def expand_groups(
    root: ModelElement,
    env: Mapping[str, Value] | None = None,
    sink: DiagnosticSink | None = None,
    *,
    max_members: int = 1_000_000,
) -> ModelElement:
    """Return a copy of ``root`` with every homogeneous group expanded.

    ``env`` supplies values for parameterized quantities.  Expansion is
    bottom-up so nested groups (Listing 1) multiply out correctly; the total
    member count is capped by ``max_members`` to catch runaway parameters.
    """
    sink = sink if sink is not None else DiagnosticSink()
    env = env or {}
    budget = [max_members]
    result = _expand(root.clone(), env, sink, budget)
    return result


def _expand(
    elem: ModelElement,
    env: Mapping[str, Value],
    sink: DiagnosticSink,
    budget: list[int],
) -> ModelElement:
    # Depth-first: expand children before this element so nested groups
    # are already multiplied out when the outer group replicates them.
    new_children = [_expand(c, env, sink, budget) for c in elem.children]
    elem.children = []
    for c in new_children:
        elem.add(c)

    if not (isinstance(elem, Group) and elem.is_homogeneous()):
        return elem
    if elem.attrs.get("expanded") == "true":
        return elem

    n = _resolve_quantity(elem, env, sink)
    if n is None:
        return elem
    prefix = elem.attrs.get("prefix")
    template = list(elem.children)
    # Budget counts materialized elements, so nested groups multiply: the
    # template subtree size times the member count is what expansion
    # actually allocates.
    template_size = sum(1 for t in template for _ in t.walk())
    budget[0] -= n * max(1, template_size)
    if budget[0] < 0:
        raise CompositionError(
            "group expansion exceeds the member budget; "
            "check parameterized quantities"
        )
    expanded = Group(attrs={}, span=elem.span)
    # Keep the group's own identity and bookkeeping.
    for key in ("name", "id"):
        if key in elem.attrs:
            expanded.attrs[key] = elem.attrs[key]
    expanded.attrs["expanded"] = "true"
    expanded.attrs["member_count"] = str(n)
    if prefix:
        expanded.attrs["prefix"] = prefix

    single = len(template) == 1
    for rank in range(n):
        member_id = f"{prefix}{rank}" if prefix else None
        if single:
            member = template[0].clone()
            if member_id and "id" not in member.attrs:
                member.attrs["id"] = member_id
                member.attrs.pop("name", None)
            member.attrs["rank"] = str(rank)
            expanded.add(member)
        else:
            wrapper = Group(attrs={}, span=elem.span)
            if member_id:
                wrapper.attrs["id"] = member_id
            wrapper.attrs["rank"] = str(rank)
            for t in template:
                wrapper.add(t.clone())
            expanded.add(wrapper)
    return expanded


def expanded_members(group: ModelElement) -> list[ModelElement]:
    """Members of an expanded group (its direct children)."""
    if group.attrs.get("expanded") != "true":
        raise CompositionError("element is not an expanded group")
    return list(group.children)


def count_expanded(root: ModelElement, kind: str) -> int:
    """Count elements of ``kind`` in an (expanded) tree."""
    return sum(1 for e in root.walk() if e.kind == kind)
