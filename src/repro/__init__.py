"""XPDL — Extensible Platform Description Language (full reproduction).

Reproduction of *XPDL: Extensible Platform Description Language to Support
Energy Modeling and Optimization* (Kessler, Li, Atalar, Dobre; ICPP-EMS
2015).  See DESIGN.md for the system inventory and EXPERIMENTS.md for the
experiment index.

Typical entry points::

    from repro import standard_repository, compose_model, xpdl_init

    repo = standard_repository()
    composed = compose_model(repo, "liu_gpu_server")

    from repro.ir import IRModel
    IRModel.from_model(composed.root).save("liu.xir")
    ctx = xpdl_init("liu.xir")
    ctx.count_cores(), ctx.total_static_power()
"""

from .composer import ComposedModel, Composer, compose_model
from .diagnostics import (
    Diagnostic,
    DiagnosticSink,
    Severity,
    XpdlError,
)
from .ir import IRModel
from .modellib import PAPER_SYSTEMS, standard_repository
from .obs import Observer, get_observer, use_observer
from .repository import ModelRepository
from .runtime import QueryContext, xpdl_init, xpdl_init_from_model
from .toolchain import ToolchainSession
from .schema import CORE_SCHEMA
from .units import Quantity

__version__ = "1.0.0"

__all__ = [
    "ComposedModel",
    "Composer",
    "compose_model",
    "Diagnostic",
    "DiagnosticSink",
    "Severity",
    "XpdlError",
    "IRModel",
    "PAPER_SYSTEMS",
    "standard_repository",
    "Observer",
    "get_observer",
    "use_observer",
    "ModelRepository",
    "ToolchainSession",
    "QueryContext",
    "xpdl_init",
    "xpdl_init_from_model",
    "CORE_SCHEMA",
    "Quantity",
    "__version__",
]
