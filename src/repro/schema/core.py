"""The built-in XPDL core metamodel (the paper's ``xpdl.xsd``).

The schema is defined programmatically here and can be serialized to /
reloaded from XML (see :mod:`repro.schema.io`), mirroring the paper's plan to
publish the shared schema for download so the generated query API stays
consistent across XPDL versions.
"""

from __future__ import annotations

from ..units import (
    BANDWIDTH,
    ENERGY,
    FREQUENCY,
    INFORMATION,
    POWER,
    TEMPERATURE,
    TIME,
)
from .decl import AttrKind, AttributeDecl, ElementDecl, Schema


def _a(name: str, kind: AttrKind, **kw) -> AttributeDecl:
    return AttributeDecl(name, kind, **kw)


def build_core_schema() -> Schema:
    """Construct the XPDL 1.0 core schema."""
    s = Schema("xpdl-core", "1.0")

    # -- abstract bases -----------------------------------------------------
    s.element(
        "xpdl:modelElement",
        doc="Abstract base: identity and typing attributes shared by all "
        "model elements (name for meta-models, id for instances).",
    ).attr(_a("name", AttrKind.NAME, doc="Meta-model identifier (unique in repository).")) \
     .attr(_a("id", AttrKind.NAME, doc="Concrete-instance identifier.")) \
     .attr(_a("type", AttrKind.REF, doc="Reference to a meta-model.")) \
     .attr(_a("extends", AttrKind.LIST, doc="Supertype name(s) for inheritance."))

    hw = s.element(
        "xpdl:hardwareComponent",
        bases=("xpdl:modelElement",),
        doc="Abstract base for physical blocks that can draw power.",
    )
    hw.attr(
        _a(
            "static_power",
            AttrKind.QUANTITY,
            dimension=POWER,
            doc="Idle/static power of the block; '?' to microbenchmark.",
        )
    )
    # Thermal extension: temperature metrics attributed to coarse-grain
    # hardware blocks (Sec. II-A motivation).
    hw.attr(
        _a(
            "thermal_resistance",
            AttrKind.QUANTITY,
            dimension=TEMPERATURE / POWER,
            doc="Junction-to-ambient thermal resistance (K/W).",
        )
    )
    hw.attr(
        _a(
            "thermal_capacitance",
            AttrKind.QUANTITY,
            doc="Lumped heat capacity (J/K).",
        )
    )
    hw.attr(
        _a(
            "max_temperature",
            AttrKind.QUANTITY,
            dimension=TEMPERATURE,
            doc="Throttling limit.",
        )
    )

    # -- structural containers ------------------------------------------------
    sys_decl = s.element(
        "system",
        bases=("xpdl:hardwareComponent",),
        doc="A complete computer system (single-node or multi-node).",
    )
    for tag, mn, mx in [
        ("cluster", 0, 1),
        ("node", 0, None),
        ("socket", 0, None),
        ("group", 0, None),
        ("cpu", 0, None),
        ("device", 0, None),
        ("gpu", 0, None),
        ("memory", 0, None),
        ("interconnects", 0, 1),
        ("software", 0, 1),
        ("properties", 0, 1),
        ("power_model", 0, 1),
    ]:
        sys_decl.child(tag, mn, mx)

    cluster = s.element(
        "cluster",
        bases=("xpdl:hardwareComponent",),
        doc="Multi-node structure: node groups plus inter-node interconnects.",
    )
    for tag in ("group", "node", "interconnects", "properties"):
        cluster.child(tag)

    node = s.element(
        "node",
        bases=("xpdl:hardwareComponent",),
        doc="One cluster node with its own OS image.",
    )
    for tag in (
        "group",
        "socket",
        "cpu",
        "memory",
        "device",
        "gpu",
        "interconnects",
        "software",
        "properties",
        "power_model",
    ):
        node.child(tag)

    s.element(
        "socket",
        bases=("xpdl:hardwareComponent",),
        doc="A CPU socket.",
    ).child("cpu", 0, None).child("properties", 0, 1)

    group = s.element(
        "group",
        bases=("xpdl:modelElement",),
        open_content=True,
        doc="Grouping construct; with quantity it is implicitly homogeneous "
        "and prefix+quantity auto-assign member ids prefix0..prefixN-1.",
    )
    group.attr(_a("prefix", AttrKind.STRING, doc="Member id prefix."))
    group.attr(
        _a(
            "quantity",
            AttrKind.EXPR,
            doc="Member count: integer literal or param reference.",
        )
    )

    # -- processing ---------------------------------------------------------------
    cpu = s.element(
        "cpu",
        bases=("xpdl:hardwareComponent",),
        doc="A CPU package.",
    )
    cpu.attr(_a("frequency", AttrKind.QUANTITY, dimension=FREQUENCY))
    cpu.attr(
        _a(
            "role",
            AttrKind.ENUM,
            values=("master", "worker", "hybrid"),
            doc="Optional control role (kept secondary per Sec. II-A discussion).",
        )
    )
    cpu.attr(_a("endian", AttrKind.ENUM, values=("BE", "LE")))
    cpu.attr(
        _a(
            "issue_width",
            AttrKind.FLOAT,
            doc="Superscalar width: instructions retired per cycle at CPI 1.",
        )
    )
    cpu.attr(
        _a(
            "energy_per_op_scale",
            AttrKind.FLOAT,
            doc="Relative per-instruction energy of this microarchitecture "
            "(big.LITTLE clusters share an ISA but not its energy).",
        )
    )
    for tag in (
        "core",
        "group",
        "cache",
        "memory",
        "power_model",
        "instructions",
        "properties",
        "const",
        "param",
        "constraints",
    ):
        cpu.child(tag)

    core = s.element(
        "core",
        bases=("xpdl:hardwareComponent",),
        doc="A single processing core.",
    )
    core.attr(_a("frequency", AttrKind.QUANTITY, dimension=FREQUENCY))
    core.attr(_a("endian", AttrKind.ENUM, values=("BE", "LE")))
    for tag in ("cache", "memory", "properties"):
        core.child(tag)

    gpu = s.element(
        "gpu",
        bases=("xpdl:hardwareComponent",),
        open_content=True,
        doc="A GPU modeled as its own block.",
    )
    gpu.attr(_a("frequency", AttrKind.QUANTITY, dimension=FREQUENCY))

    device = s.element(
        "device",
        bases=("xpdl:hardwareComponent",),
        doc="An accelerator device/board.",
    )
    device.attr(
        _a("role", AttrKind.ENUM, values=("master", "worker", "hybrid"))
    )
    device.attr(_a("compute_capability", AttrKind.STRING))
    for tag in (
        "socket",
        "cpu",
        "group",
        "cache",
        "memory",
        "const",
        "param",
        "constraints",
        "power_model",
        "programming_model",
        "properties",
        "instructions",
    ):
        device.child(tag)

    # -- memory hierarchy ------------------------------------------------------------
    cache = s.element(
        "cache",
        bases=("xpdl:hardwareComponent",),
        doc="A cache level; sharing implied by scope.",
    )
    cache.attr(_a("size", AttrKind.QUANTITY, dimension=INFORMATION, required=True))
    cache.attr(_a("sets", AttrKind.INT))
    cache.attr(_a("line_size", AttrKind.QUANTITY, dimension=INFORMATION))
    cache.attr(
        _a("replacement", AttrKind.ENUM, values=("LRU", "FIFO", "random", "PLRU"))
    )
    cache.attr(
        _a(
            "write_policy",
            AttrKind.ENUM,
            values=("copyback", "writethrough"),
        )
    )
    cache.attr(
        _a(
            "hit_energy",
            AttrKind.QUANTITY,
            dimension=ENERGY,
            doc="Per-access energy on a hit; '?' to microbenchmark.",
        )
    )
    cache.attr(
        _a(
            "miss_energy",
            AttrKind.QUANTITY,
            dimension=ENERGY,
            doc="Per-access energy on a miss (incl. fill traffic).",
        )
    )

    memory = s.element(
        "memory",
        bases=("xpdl:hardwareComponent",),
        doc="A memory module (DRAM, scratchpad, device memory).",
    )
    memory.attr(_a("size", AttrKind.QUANTITY, dimension=INFORMATION))
    memory.attr(_a("slices", AttrKind.INT))
    memory.attr(_a("endian", AttrKind.ENUM, values=("BE", "LE")))
    memory.attr(_a("latency", AttrKind.QUANTITY, dimension=TIME))
    memory.attr(_a("bandwidth", AttrKind.QUANTITY, dimension=BANDWIDTH))
    memory.child("properties", 0, 1)

    # -- interconnects ------------------------------------------------------------------
    s.element(
        "interconnects",
        doc="Container listing interconnect link instances.",
    ).child("interconnect", 0, None)

    ic = s.element(
        "interconnect",
        bases=("xpdl:hardwareComponent",),
        doc="Interconnect technology (meta) or directed link instance.",
    )
    ic.attr(_a("head", AttrKind.REF, doc="Source endpoint id (instances)."))
    ic.attr(_a("tail", AttrKind.REF, doc="Destination endpoint id (instances)."))
    ic.attr(_a("max_bandwidth", AttrKind.QUANTITY, dimension=BANDWIDTH))
    ic.attr(
        _a(
            "effective_bandwidth",
            AttrKind.QUANTITY,
            dimension=BANDWIDTH,
            doc="Derived by static analysis (bandwidth downgrading).",
        )
    )
    ic.child("channel", 0, None)
    ic.child("properties", 0, 1)

    ch = s.element(
        "channel",
        bases=("xpdl:modelElement",),
        doc="A directed channel, e.g. PCIe up_link/down_link.",
    )
    ch.attr(_a("max_bandwidth", AttrKind.QUANTITY, dimension=BANDWIDTH))
    ch.attr(_a("time_offset_per_message", AttrKind.QUANTITY, dimension=TIME))
    ch.attr(_a("energy_per_byte", AttrKind.QUANTITY, dimension=ENERGY))
    ch.attr(_a("energy_offset_per_message", AttrKind.QUANTITY, dimension=ENERGY))

    # -- const/param/constraint ---------------------------------------------------------
    const = s.element(
        "const",
        bases=("xpdl:modelElement",),
        doc="A named constant of a meta-model.",
    )
    const.attr(_a("size", AttrKind.QUANTITY, dimension=INFORMATION))
    const.attr(_a("value", AttrKind.STRING))

    param = s.element(
        "param",
        bases=("xpdl:modelElement",),
        doc="A formal parameter; configurable params are platform knobs.",
    )
    param.attr(_a("configurable", AttrKind.BOOL, default="false"))
    param.attr(_a("range", AttrKind.LIST, doc="Allowed values."))
    param.attr(_a("value", AttrKind.STRING))
    param.attr(_a("size", AttrKind.QUANTITY, dimension=INFORMATION))
    param.attr(_a("frequency", AttrKind.QUANTITY, dimension=FREQUENCY))

    s.element("constraints", doc="Constraint list.").child(
        "constraint", 0, None
    )
    s.element(
        "constraint",
        doc="Boolean expression over params/consts.",
    ).attr(_a("expr", AttrKind.EXPR, required=True))

    # -- power modeling --------------------------------------------------------------------
    pm = s.element(
        "power_model",
        bases=("xpdl:modelElement",),
        doc="Ties a processor to its power domains, PSMs and microbenchmarks.",
    )
    for tag in (
        "power_domains",
        "power_state_machine",
        "instructions",
        "microbenchmarks",
    ):
        pm.child(tag)

    s.element(
        "power_domains",
        bases=("xpdl:modelElement",),
        doc="The power islands of a component.",
    ).child("power_domain", 0, None).child("group", 0, None)

    pd = s.element(
        "power_domain",
        bases=("xpdl:modelElement",),
        open_content=True,
        doc="A power island switched as a unit.",
    )
    pd.attr(_a("enableSwitchOff", AttrKind.BOOL, default="true"))
    pd.attr(
        _a(
            "switchoffCondition",
            AttrKind.EXPR,
            doc="e.g. \"Shave_pds off\": prerequisite for switching off.",
        )
    )

    psm = s.element(
        "power_state_machine",
        bases=("xpdl:modelElement",),
        doc="FSM of DVFS/shutdown levels for a power domain.",
    )
    psm.attr(_a("power_domain", AttrKind.REF, ref_kinds=("power_domain",)))
    psm.child("power_states", 0, 1).child("transitions", 0, 1)

    s.element("power_states").child("power_state", 1, None)
    ps = s.element(
        "power_state",
        bases=("xpdl:modelElement",),
        doc="One P/C state with its frequency and power level.",
    )
    ps.attr(_a("frequency", AttrKind.QUANTITY, dimension=FREQUENCY))
    ps.attr(_a("power", AttrKind.QUANTITY, dimension=POWER))

    s.element("transitions").child("transition", 0, None)
    tr = s.element(
        "transition",
        doc="A directed power-state switch with overhead costs.",
    )
    tr.attr(_a("head", AttrKind.REF, required=True, ref_kinds=("power_state",)))
    tr.attr(_a("tail", AttrKind.REF, required=True, ref_kinds=("power_state",)))
    tr.attr(_a("time", AttrKind.QUANTITY, dimension=TIME))
    tr.attr(_a("energy", AttrKind.QUANTITY, dimension=ENERGY))

    instrs = s.element(
        "instructions",
        bases=("xpdl:modelElement",),
        doc="Instruction set with per-instruction dynamic energy.",
    )
    instrs.attr(_a("mb", AttrKind.REF, ref_kinds=("microbenchmarks",)))
    instrs.child("inst", 0, None)

    inst = s.element(
        "inst",
        bases=("xpdl:modelElement",),
        doc="One instruction; in-line energy, data table or '?'.",
    )
    inst.attr(_a("energy", AttrKind.QUANTITY, dimension=ENERGY))
    inst.attr(_a("mb", AttrKind.REF, ref_kinds=("microbenchmark",)))
    inst.child("data", 0, None)

    data = s.element("data", doc="(frequency, energy) sample row.")
    data.attr(_a("frequency", AttrKind.QUANTITY, dimension=FREQUENCY))
    data.attr(_a("energy", AttrKind.QUANTITY, dimension=ENERGY))

    mbs = s.element(
        "microbenchmarks",
        bases=("xpdl:modelElement",),
        doc="Microbenchmark suite with sources and build/run script.",
    )
    mbs.attr(_a("instruction_set", AttrKind.REF, ref_kinds=("instructions",)))
    mbs.attr(_a("path", AttrKind.STRING))
    mbs.attr(_a("command", AttrKind.STRING))
    mbs.child("microbenchmark", 0, None)

    mb = s.element(
        "microbenchmark",
        bases=("xpdl:modelElement",),
        doc="One microbenchmark measuring one instruction type.",
    )
    mb.attr(_a("file", AttrKind.STRING))
    mb.attr(_a("cflags", AttrKind.STRING))
    mb.attr(_a("lflags", AttrKind.STRING))

    # -- software ---------------------------------------------------------------------------
    sw = s.element("software", doc="Installed system software.")
    for tag in ("hostOS", "installed", "properties"):
        sw.child(tag)

    s.element(
        "hostOS",
        bases=("xpdl:modelElement",),
        open_attributes=True,
        doc="The host operating system.",
    )
    inst_sw = s.element(
        "installed",
        bases=("xpdl:modelElement",),
        doc="An installed package referencing its descriptor.",
    )
    inst_sw.attr(_a("path", AttrKind.STRING))
    inst_sw.attr(_a("version", AttrKind.STRING))
    inst_sw.attr(_a("vendor", AttrKind.STRING))
    inst_sw.attr(
        _a(
            "provides",
            AttrKind.LIST,
            doc="Capabilities for selectability constraints (e.g. sparse_blas).",
        )
    )

    s.element(
        "programming_model",
        bases=("xpdl:modelElement",),
        doc="Programming models supported (comma-separated in type).",
    )

    # -- properties escape -------------------------------------------------------------------
    s.element(
        "properties",
        open_content=True,
        doc="Free-form key-value escape mechanism (Sec. III-A).",
    ).child("property", 0, None)
    s.element(
        "property",
        open_attributes=True,
        doc="One key-value property; keys and values are strings.",
    ).attr(_a("name", AttrKind.NAME, required=True)).attr(
        _a("value", AttrKind.STRING)
    )

    return s


#: The shared core schema instance.
CORE_SCHEMA = build_core_schema()
