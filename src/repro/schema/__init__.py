"""The XPDL core schema (the paper's ``xpdl.xsd``), loader and validator."""

from .decl import AttrKind, AttributeDecl, ChildSpec, ElementDecl, Schema
from .core import CORE_SCHEMA, build_core_schema
from .io import schema_from_xml, schema_to_xml
from .validate import SchemaValidator, validate_model

__all__ = [
    "AttrKind",
    "AttributeDecl",
    "ChildSpec",
    "ElementDecl",
    "Schema",
    "CORE_SCHEMA",
    "build_core_schema",
    "schema_from_xml",
    "schema_to_xml",
    "SchemaValidator",
    "validate_model",
]
