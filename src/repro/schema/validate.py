"""Schema validation of model trees.

Checks each element against its declaration: unknown attributes/children
(warnings, honoring ``open*`` escapes), required attributes, typed attribute
values (int/bool/enum/quantity with dimension), the paired-unit convention
(unit attribute without its metric, unit of wrong dimension), and child
multiplicities.  All findings go to a
:class:`~repro.diagnostics.DiagnosticSink` as structured diagnostics.
"""

from __future__ import annotations

from ..diagnostics import DiagnosticSink, SchemaError, UnitError
from ..model import GenericElement, ModelElement
from ..units import (
    DEFAULT_REGISTRY,
    is_placeholder,
    is_unit_attribute,
    metric_for_unit_attribute,
    unit_attribute_for,
)
from .core import CORE_SCHEMA
from .decl import AttrKind, AttributeDecl, Schema

_BOOL_SPELLINGS = {"true", "false", "0", "1", "yes", "no"}


class SchemaValidator:
    """Validates a model tree against a :class:`Schema`."""

    def __init__(
        self,
        schema: Schema | None = None,
        *,
        registry=DEFAULT_REGISTRY,
    ) -> None:
        self.schema = schema or CORE_SCHEMA
        self.registry = registry

    # -- entry points ---------------------------------------------------------
    def validate(
        self, root: ModelElement, sink: DiagnosticSink | None = None
    ) -> DiagnosticSink:
        """Validate ``root`` and its subtree; returns the sink used."""
        sink = sink if sink is not None else DiagnosticSink()
        for elem in root.walk():
            self._validate_element(elem, sink)
        return sink

    def validate_strict(self, root: ModelElement) -> None:
        """Validate and raise :class:`SchemaError` on any error."""
        sink = self.validate(root)
        sink.raise_if_errors(SchemaError)

    # -- element level -----------------------------------------------------------
    def _validate_element(self, elem: ModelElement, sink: DiagnosticSink) -> None:
        tag = elem.kind
        decl = self.schema.get(tag)
        if decl is None:
            if isinstance(elem, GenericElement):
                # Unknown tag: extensibility escape, but tell the user once.
                sink.warning(
                    "XPDL0100",
                    f"unknown element <{tag}> is not in the core schema",
                    elem.span,
                    "declare it in a schema extension or use <properties>",
                )
            return
        attrs = self.schema.effective_attributes(tag)
        self._validate_attributes(elem, attrs, sink)
        self._validate_children(elem, tag, sink)

    # -- attributes -----------------------------------------------------------------
    def _validate_attributes(
        self,
        elem: ModelElement,
        attrs: dict[str, AttributeDecl],
        sink: DiagnosticSink,
    ) -> None:
        tag = elem.kind
        open_attrs = self.schema.is_open_attributes(tag)
        quantity_metrics = {
            d.name for d in attrs.values() if d.kind is AttrKind.QUANTITY
        }
        # Required attributes.  An element referencing a meta-model may
        # inherit them at composition time, so the requirement only applies
        # to self-contained elements.
        has_type_ref = "type" in elem.attrs or "extends" in elem.attrs
        for decl in attrs.values():
            if has_type_ref and decl.name not in ("name", "id", "expr"):
                continue
            if decl.required and decl.name not in elem.attrs:
                sink.error(
                    "XPDL0101",
                    f"<{tag}> requires attribute {decl.name!r}",
                    elem.span,
                )
        for name, raw in elem.attrs.items():
            if is_unit_attribute(name):
                metric = metric_for_unit_attribute(name)
                if name == "unit" and metric not in elem.attrs:
                    # The paper's listings reuse the bare 'unit' attribute
                    # for whichever single metric the element carries
                    # (Listing 9: frequency="706" unit="MHz"); pair it with
                    # that metric instead of 'size'.
                    carried = [
                        d.name
                        for d in attrs.values()
                        if d.kind is AttrKind.QUANTITY and d.name in elem.attrs
                    ]
                    if len(carried) == 1:
                        metric = carried[0]
                mdecl = attrs.get(metric)
                if metric not in elem.attrs and not (
                    name == "unit" and "range" in elem.attrs
                ):
                    # 'unit' next to a 'range' scales the range's candidate
                    # values (Listing 8); it pairs with no single metric.
                    sink.warning(
                        "XPDL0102",
                        f"unit attribute {name!r} without metric {metric!r}",
                        elem.span,
                    )
                if raw not in self.registry:
                    sink.error(
                        "XPDL0103",
                        f"unknown unit {raw!r} in attribute {name!r}",
                        elem.span,
                    )
                elif mdecl is not None and mdecl.dimension is not None:
                    if self.registry.dimension(raw) != mdecl.dimension:
                        sink.error(
                            "XPDL0104",
                            f"unit {raw!r} has the wrong dimension for "
                            f"metric {metric!r}",
                            elem.span,
                        )
                continue
            decl = attrs.get(name)
            if decl is None:
                if not open_attrs and name not in quantity_metrics:
                    sink.warning(
                        "XPDL0105",
                        f"unknown attribute {name!r} on <{tag}>",
                        elem.span,
                        "mandatory properties should be schema attributes; "
                        "ad-hoc data belongs in <properties>",
                    )
                continue
            self._validate_value(elem, decl, raw, attrs, sink)

    def _validate_value(
        self,
        elem: ModelElement,
        decl: AttributeDecl,
        raw: str,
        attrs: dict[str, AttributeDecl],
        sink: DiagnosticSink,
    ) -> None:
        tag = elem.kind
        kind = decl.kind
        if kind is AttrKind.INT:
            try:
                int(raw)
            except ValueError:
                sink.error(
                    "XPDL0110",
                    f"attribute {decl.name!r} of <{tag}> must be an integer, "
                    f"got {raw!r}",
                    elem.span,
                )
        elif kind is AttrKind.FLOAT:
            try:
                float(raw)
            except ValueError:
                sink.error(
                    "XPDL0111",
                    f"attribute {decl.name!r} of <{tag}> must be a number, "
                    f"got {raw!r}",
                    elem.span,
                )
        elif kind is AttrKind.BOOL:
            if raw.strip().lower() not in _BOOL_SPELLINGS:
                sink.error(
                    "XPDL0112",
                    f"attribute {decl.name!r} of <{tag}> must be boolean, "
                    f"got {raw!r}",
                    elem.span,
                )
        elif kind is AttrKind.ENUM:
            if raw not in decl.values:
                sink.error(
                    "XPDL0113",
                    f"attribute {decl.name!r} of <{tag}> must be one of "
                    f"{', '.join(decl.values)}; got {raw!r}",
                    elem.span,
                )
        elif kind is AttrKind.QUANTITY:
            if is_placeholder(raw):
                return  # '?' = derive by microbenchmarking
            try:
                float(raw)
            except ValueError:
                # Not numeric: may legally reference a param (Listing 8's
                # frequency="cfrq"); flag only clearly bad spellings.
                if not raw.replace("_", "").isalnum():
                    sink.error(
                        "XPDL0114",
                        f"attribute {decl.name!r} of <{tag}> must be a number, "
                        f"'?' or a param name; got {raw!r}",
                        elem.span,
                    )
                return
            unit_attr = decl.unit_attr()
            # The paper's listings also pair a metric with the bare 'unit'
            # attribute when it is the element's only quantity metric
            # (Listing 9: frequency="706" unit="MHz").
            if (
                unit_attr is not None
                and unit_attr not in elem.attrs
                and "unit" in elem.attrs
            ):
                carried = [
                    d.name
                    for d in attrs.values()
                    if d.kind is AttrKind.QUANTITY and d.name in elem.attrs
                ]
                if carried == [decl.name]:
                    unit_attr = "unit"
            if (
                decl.dimension is not None
                and unit_attr is not None
                and unit_attr not in elem.attrs
            ):
                sink.warning(
                    "XPDL0115",
                    f"metric {decl.name!r} of <{tag}> has no {unit_attr!r}",
                    elem.span,
                    "specify units per the metric_unit convention",
                )
            if (
                unit_attr is not None
                and unit_attr in elem.attrs
                and elem.attrs[unit_attr] not in self.registry
            ):
                return  # bad unit already reported as XPDL0103
            # Exercise the conversion path to surface malformed pairs.
            try:
                elem.quantity(decl.name, decl.dimension)
            except UnitError as exc:
                sink.error("XPDL0116", str(exc), elem.span)

    # -- children -----------------------------------------------------------------------
    def _validate_children(
        self, elem: ModelElement, tag: str, sink: DiagnosticSink
    ) -> None:
        specs = self.schema.effective_children(tag)
        open_content = self.schema.is_open_content(tag)
        counts: dict[str, int] = {}
        for child in elem.children:
            ckind = child.kind
            counts[ckind] = counts.get(ckind, 0) + 1
            if ckind not in specs and not open_content:
                # group is transparent: grouped content is checked where the
                # group appears, so any declared child may sit inside one.
                if ckind == "group" or tag == "group":
                    continue
                if self.schema.get(ckind) is None:
                    continue  # unknown-element warning already emitted
                sink.warning(
                    "XPDL0120",
                    f"<{ckind}> is not an expected child of <{tag}>",
                    child.span,
                )
        for spec in specs.values():
            n = counts.get(spec.tag, 0)
            if n < spec.min:
                sink.error(
                    "XPDL0121",
                    f"<{tag}> needs at least {spec.min} <{spec.tag}> "
                    f"child(ren), found {n}",
                    elem.span,
                )
            if spec.max is not None and n > spec.max:
                sink.error(
                    "XPDL0122",
                    f"<{tag}> allows at most {spec.max} <{spec.tag}> "
                    f"child(ren), found {n}",
                    elem.span,
                )


def validate_model(
    root: ModelElement,
    schema: Schema | None = None,
    *,
    sink: DiagnosticSink | None = None,
) -> DiagnosticSink:
    """Convenience wrapper: validate ``root`` against ``schema`` (core default)."""
    return SchemaValidator(schema).validate(root, sink)
