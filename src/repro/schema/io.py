"""Schema serialization: write the core metamodel to XML and load it back.

The paper plans to publish ``xpdl.xsd`` on a web server so the generated
query API can track future XPDL versions.  We mirror that with a compact XML
dialect (``<schema><element ...><attribute .../>...</element></schema>``) that
round-trips the in-memory :class:`~repro.schema.decl.Schema` exactly.
"""

from __future__ import annotations

from ..diagnostics import SchemaError
from ..units import Dimension, dimension_name
from ..units.dimension import (
    BANDWIDTH,
    DIMENSIONLESS,
    ENERGY,
    FREQUENCY,
    INFORMATION,
    POWER,
    TEMPERATURE,
    THERMAL_CAPACITANCE,
    THERMAL_RESISTANCE,
    TIME,
    VOLTAGE,
)
from ..xpdlxml import XmlElement, document, element, parse_xml, write_xml
from .decl import AttrKind, AttributeDecl, ChildSpec, ElementDecl, Schema

_DIM_BY_NAME: dict[str, Dimension] = {
    "size": INFORMATION,
    "time": TIME,
    "energy": ENERGY,
    "power": POWER,
    "frequency": FREQUENCY,
    "bandwidth": BANDWIDTH,
    "voltage": VOLTAGE,
    "temperature": TEMPERATURE,
    "dimensionless": DIMENSIONLESS,
    "thermal_resistance": THERMAL_RESISTANCE,
    "thermal_capacitance": THERMAL_CAPACITANCE,
}


def schema_to_xml(schema: Schema) -> str:
    """Serialize ``schema`` to its XML exchange form."""
    root = element("schema", {"name": schema.name, "version": schema.version})
    for decl in schema.decls():
        e = element("element", {"tag": decl.tag})
        if decl.bases:
            e.set("bases", ",".join(decl.bases))
        if decl.open_attributes:
            e.set("openAttributes", "true")
        if decl.open_content:
            e.set("openContent", "true")
        if decl.doc:
            e.set("doc", decl.doc)
        for attr in decl.attributes.values():
            a = element("attribute", {"name": attr.name, "kind": attr.kind.value})
            if attr.required:
                a.set("required", "true")
            if attr.dimension is not None:
                a.set("dimension", dimension_name(attr.dimension))
            if attr.values:
                a.set("values", ",".join(attr.values))
            if attr.ref_kinds:
                a.set("refKinds", ",".join(attr.ref_kinds))
            if attr.default is not None:
                a.set("default", attr.default)
            if attr.doc:
                a.set("doc", attr.doc)
            e.append(a)
        for spec in decl.children.values():
            c = element("child", {"tag": spec.tag, "min": str(spec.min)})
            if spec.max is not None:
                c.set("max", str(spec.max))
            e.append(c)
        root.append(e)
    return write_xml(document(root, source_name=f"{schema.name}.xml"))


def _attr_from_xml(a: XmlElement) -> AttributeDecl:
    kind = AttrKind(a.get("kind", "string"))
    dim_name = a.get("dimension")
    dimension = None
    if dim_name is not None:
        try:
            dimension = _DIM_BY_NAME[dim_name]
        except KeyError:
            raise SchemaError(f"unknown dimension {dim_name!r} in schema") from None
    values = tuple(v for v in (a.get("values") or "").split(",") if v)
    ref_kinds = tuple(v for v in (a.get("refKinds") or "").split(",") if v)
    return AttributeDecl(
        name=a.get("name") or "",
        kind=kind,
        required=(a.get("required") == "true"),
        dimension=dimension,
        values=values,
        ref_kinds=ref_kinds,
        default=a.get("default"),
        doc=a.get("doc") or "",
    )


def schema_from_xml(text: str, *, source_name: str = "<schema>") -> Schema:
    """Load a schema from its XML exchange form."""
    doc = parse_xml(text, source_name=source_name, strict=True)
    root = doc.root
    if root.tag != "schema":
        raise SchemaError(f"expected <schema> root, found <{root.tag}>")
    schema = Schema(root.get("name") or "schema", root.get("version") or "1.0")
    for e in root.elements("element"):
        tag = e.get("tag")
        if not tag:
            raise SchemaError("schema <element> without tag attribute")
        decl = ElementDecl(
            tag=tag,
            bases=tuple(b for b in (e.get("bases") or "").split(",") if b),
            open_attributes=(e.get("openAttributes") == "true"),
            open_content=(e.get("openContent") == "true"),
            doc=e.get("doc") or "",
        )
        for a in e.elements("attribute"):
            attr = _attr_from_xml(a)
            decl.attributes[attr.name] = attr
        for c in e.elements("child"):
            ctag = c.get("tag") or ""
            mx = c.get("max")
            decl.children[ctag] = ChildSpec(
                ctag, int(c.get("min") or 0), int(mx) if mx is not None else None
            )
        schema.declare(decl)
    return schema
