"""Schema object model: declarations of element types and their attributes.

This is the in-memory form of the paper's central ``xpdl.xsd`` core
metamodel (Sec. IV): element declarations with typed attributes and content
models.  The runtime query API's classes (C++ and Python) are *generated
from* these declarations, so they carry everything codegen needs: types,
documentation, required-ness, and inheritance between declarations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..units import Dimension


class AttrKind(enum.Enum):
    """Value space of an attribute."""

    STRING = "string"
    INT = "integer"
    FLOAT = "float"
    BOOL = "boolean"
    QUANTITY = "quantity"  # numeric + paired unit attribute
    ENUM = "enum"
    REF = "ref"  # reference to another model element by name/id
    EXPR = "expr"  # expression over params/consts
    NAME = "name"  # identifier-defining attribute
    LIST = "list"  # comma-separated strings


@dataclass(frozen=True, slots=True)
class AttributeDecl:
    """Declaration of one attribute of an element type."""

    name: str
    kind: AttrKind
    required: bool = False
    #: For QUANTITY attributes: the expected physical dimension.
    dimension: Dimension | None = None
    #: For ENUM attributes: the allowed spellings.
    values: tuple[str, ...] = ()
    #: For REF attributes: element kinds the reference may resolve to
    #: (empty means any).
    ref_kinds: tuple[str, ...] = ()
    default: str | None = None
    doc: str = ""

    def unit_attr(self) -> str | None:
        """Paired unit attribute name for QUANTITY attributes."""
        if self.kind is not AttrKind.QUANTITY:
            return None
        return "unit" if self.name == "size" else f"{self.name}_unit"


@dataclass(frozen=True, slots=True)
class ChildSpec:
    """One allowed child element kind with multiplicity bounds."""

    tag: str
    min: int = 0
    max: int | None = None  # None = unbounded

    def describe(self) -> str:
        hi = "*" if self.max is None else str(self.max)
        return f"{self.tag}[{self.min}..{hi}]"


@dataclass(slots=True)
class ElementDecl:
    """Declaration of one element type (an XML tag).

    ``bases`` name other declarations whose attributes and children are
    inherited (declaration-level inheritance, mirrored by the generated
    C++ class hierarchy).
    """

    tag: str
    attributes: dict[str, AttributeDecl] = field(default_factory=dict)
    children: dict[str, ChildSpec] = field(default_factory=dict)
    bases: tuple[str, ...] = ()
    #: Whether arbitrary (undeclared) attributes are tolerated silently.
    open_attributes: bool = False
    #: Whether arbitrary child elements are tolerated silently.
    open_content: bool = False
    doc: str = ""

    def attr(self, decl: AttributeDecl) -> "ElementDecl":
        self.attributes[decl.name] = decl
        return self

    def child(self, tag: str, min: int = 0, max: int | None = None) -> "ElementDecl":
        self.children[tag] = ChildSpec(tag, min, max)
        return self


class Schema:
    """A set of element declarations plus resolution of decl inheritance."""

    def __init__(self, name: str = "xpdl-core", version: str = "1.0") -> None:
        self.name = name
        self.version = version
        self._decls: dict[str, ElementDecl] = {}

    # -- building -----------------------------------------------------------
    def declare(self, decl: ElementDecl) -> ElementDecl:
        if decl.tag in self._decls:
            raise ValueError(f"duplicate element declaration {decl.tag!r}")
        self._decls[decl.tag] = decl
        return decl

    def element(self, tag: str, **kwargs) -> ElementDecl:
        """Declare-and-return convenience used by the core schema builder."""
        return self.declare(ElementDecl(tag, **kwargs))

    # -- lookup ---------------------------------------------------------------
    def __contains__(self, tag: str) -> bool:
        return tag in self._decls

    def get(self, tag: str) -> ElementDecl | None:
        return self._decls.get(tag)

    def tags(self) -> list[str]:
        return sorted(self._decls)

    def decls(self) -> list[ElementDecl]:
        return [self._decls[t] for t in self.tags()]

    # -- inheritance-resolved views ------------------------------------------
    def effective_attributes(self, tag: str) -> dict[str, AttributeDecl]:
        """Attributes of ``tag`` including those inherited from bases."""
        decl = self._decls.get(tag)
        if decl is None:
            return {}
        out: dict[str, AttributeDecl] = {}
        for base in decl.bases:
            out.update(self.effective_attributes(base))
        out.update(decl.attributes)
        return out

    def effective_children(self, tag: str) -> dict[str, ChildSpec]:
        decl = self._decls.get(tag)
        if decl is None:
            return {}
        out: dict[str, ChildSpec] = {}
        for base in decl.bases:
            out.update(self.effective_children(base))
        out.update(decl.children)
        return out

    def is_open_content(self, tag: str) -> bool:
        decl = self._decls.get(tag)
        if decl is None:
            return True
        if decl.open_content:
            return True
        return any(self.is_open_content(b) for b in decl.bases)

    def is_open_attributes(self, tag: str) -> bool:
        decl = self._decls.get(tag)
        if decl is None:
            return True
        if decl.open_attributes:
            return True
        return any(self.is_open_attributes(b) for b in decl.bases)
