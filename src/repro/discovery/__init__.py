"""hwloc-style host discovery emitting XPDL descriptors."""

from .hostspec import CacheSpec, HostSpec, canned_spec, probe_linux
from .emit import (
    cpu_descriptor_name,
    emit_cpu_descriptor,
    emit_descriptors,
    emit_system_descriptor,
)

__all__ = [
    "CacheSpec",
    "HostSpec",
    "canned_spec",
    "probe_linux",
    "cpu_descriptor_name",
    "emit_cpu_descriptor",
    "emit_descriptors",
    "emit_system_descriptor",
]
