"""Host hardware specification: what a discovery probe reports.

A :class:`HostSpec` is the neutral description an hwloc-style probe
produces (paper Sec. V discusses hwloc as the closest structural
counterpart).  Two sources exist: :func:`probe_linux` reads the real
``/sys``/``/proc`` when running on Linux, and canned specs support tests
and non-Linux hosts deterministically.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field


@dataclass
class CacheSpec:
    level: int
    size_kib: int
    shared_by: int = 1  # hardware threads sharing one instance
    cache_type: str = "Unified"


@dataclass
class HostSpec:
    """One machine as a probe sees it."""

    hostname: str
    cpu_model: str
    sockets: int
    cores_per_socket: int
    threads_per_core: int = 1
    base_frequency_mhz: float = 2000.0
    caches: list[CacheSpec] = field(default_factory=list)
    memory_mib: int = 16384
    os_name: str = "Linux"
    os_release: str = ""

    @property
    def total_cores(self) -> int:
        return self.sockets * self.cores_per_socket


def canned_spec() -> HostSpec:
    """A deterministic spec mirroring the paper's E5-2630L host."""
    return HostSpec(
        hostname="excess-sim",
        cpu_model="Intel Xeon E5-2630L (simulated)",
        sockets=1,
        cores_per_socket=4,
        threads_per_core=1,
        base_frequency_mhz=2000.0,
        caches=[
            CacheSpec(1, 32, shared_by=1),
            CacheSpec(2, 256, shared_by=2),
            CacheSpec(3, 15 * 1024, shared_by=4),
        ],
        memory_mib=32768,
        os_name="Linux",
        os_release="3.13",
    )


# ---------------------------------------------------------------------------
# Real-Linux probing (best-effort, never raises)
# ---------------------------------------------------------------------------

_SIZE_RE = re.compile(r"(\d+)\s*([KMG])B?", re.IGNORECASE)


def _read(path: str) -> str | None:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return fh.read().strip()
    except OSError:
        return None


def _parse_size_kib(text: str) -> int | None:
    m = _SIZE_RE.search(text)
    if not m:
        return None
    value = int(m.group(1))
    unit = m.group(2).upper()
    return value * {"K": 1, "M": 1024, "G": 1024 * 1024}[unit]


def _count_list(text: str) -> int:
    """Count cpus in a sysfs list like '0-3,8-11'."""
    n = 0
    for part in text.split(","):
        if "-" in part:
            lo, hi = part.split("-")
            n += int(hi) - int(lo) + 1
        elif part.strip():
            n += 1
    return n


def probe_linux() -> HostSpec | None:
    """Probe the running Linux host; ``None`` when sysfs is unavailable."""
    cpu_dir = "/sys/devices/system/cpu"
    if not os.path.isdir(cpu_dir):
        return None
    cpus = [
        d
        for d in os.listdir(cpu_dir)
        if re.fullmatch(r"cpu\d+", d) and os.path.isdir(os.path.join(cpu_dir, d))
    ]
    if not cpus:
        return None
    n_threads = len(cpus)
    # Socket / core topology from cpu0's topology files.
    packages: set[str] = set()
    cores: set[tuple[str, str]] = set()
    for cpu in cpus:
        pkg = _read(os.path.join(cpu_dir, cpu, "topology/physical_package_id"))
        core = _read(os.path.join(cpu_dir, cpu, "topology/core_id"))
        if pkg is not None:
            packages.add(pkg)
            cores.add((pkg, core or cpu))
    sockets = max(1, len(packages))
    physical_cores = max(1, len(cores))
    threads_per_core = max(1, n_threads // physical_cores)
    model = "unknown"
    cpuinfo = _read("/proc/cpuinfo") or ""
    m = re.search(r"model name\s*:\s*(.+)", cpuinfo)
    if m:
        model = m.group(1).strip()
    freq_khz = _read(os.path.join(cpu_dir, "cpu0/cpufreq/cpuinfo_max_freq"))
    base_mhz = float(freq_khz) / 1000.0 if freq_khz else 2000.0
    caches: list[CacheSpec] = []
    cache_dir = os.path.join(cpu_dir, "cpu0/cache")
    if os.path.isdir(cache_dir):
        for idx in sorted(os.listdir(cache_dir)):
            if not idx.startswith("index"):
                continue
            base = os.path.join(cache_dir, idx)
            level = _read(os.path.join(base, "level"))
            size = _read(os.path.join(base, "size"))
            ctype = _read(os.path.join(base, "type")) or "Unified"
            shared = _read(os.path.join(base, "shared_cpu_list"))
            if level is None or size is None or ctype == "Instruction":
                continue
            kib = _parse_size_kib(size)
            if kib is None:
                continue
            caches.append(
                CacheSpec(
                    int(level),
                    kib,
                    shared_by=_count_list(shared) if shared else 1,
                    cache_type=ctype,
                )
            )
    mem_mib = 16384
    meminfo = _read("/proc/meminfo") or ""
    m = re.search(r"MemTotal:\s*(\d+)\s*kB", meminfo)
    if m:
        mem_mib = int(m.group(1)) // 1024
    release = _read("/proc/sys/kernel/osrelease") or ""
    import socket

    return HostSpec(
        hostname=socket.gethostname(),
        cpu_model=model,
        sockets=sockets,
        cores_per_socket=max(1, physical_cores // sockets),
        threads_per_core=threads_per_core,
        base_frequency_mhz=base_mhz,
        caches=caches,
        memory_mib=mem_mib,
        os_name="Linux",
        os_release=release,
    )
