"""Lightweight observability for the toolchain pipeline.

Per-stage monotonic timings, counters (elements parsed, refs resolved,
groups expanded, cache hits/misses) and a structured JSON-lines event
stream, threaded through the parser, repository, composer, analysis,
microbench and IR layers.  Surfaced by ``xpdl stats`` and the ``--trace``
flag on every CLI command.
"""

from .core import (
    HISTOGRAM_BOUNDS,
    NULL_OBSERVER,
    Event,
    Histogram,
    NullObserver,
    Observer,
    StageStats,
    get_observer,
    use_observer,
)

__all__ = [
    "HISTOGRAM_BOUNDS",
    "NULL_OBSERVER",
    "Event",
    "Histogram",
    "NullObserver",
    "Observer",
    "StageStats",
    "get_observer",
    "use_observer",
]
