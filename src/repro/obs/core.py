"""The observability core: events, counters, stage timers.

An :class:`Observer` collects three kinds of signal while the toolchain
runs:

* **stage events** — monotonic wall-clock spans around named pipeline
  stages (``toolchain.compose``, ``toolchain.emit_ir``, ...), nested
  stages included;
* **counters** — monotonically increasing totals (elements parsed, refs
  resolved, groups expanded, cache hits/misses), aggregated rather than
  logged per increment so hot loops stay cheap;
* **marks** — one-off structured events (a cache invalidation, a trace
  annotation).

Everything is exportable as JSON-lines (:meth:`Observer.to_jsonl`) for the
``xpdl --trace`` flag and machine consumption.

The toolchain layers discover the active observer through a
:class:`contextvars.ContextVar` (:func:`get_observer`), so deep code —
the XML parser, the repository, the composer — reports without every
call site threading an observer argument.  The default is a
:class:`NullObserver` whose operations are no-ops; instrumented code
guards expensive aggregation behind ``obs.enabled`` so unobserved runs
(e.g. the E10 cold-path benches) pay almost nothing.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Iterator


@dataclass(slots=True)
class Event:
    """One observability event.

    ``event`` is the record type (``stage``, ``counter`` or ``mark``),
    ``name`` the subject, ``at_s`` the monotonic offset from the
    observer's epoch, and ``fields`` free-form structured payload.
    """

    event: str
    name: str
    at_s: float
    fields: dict = field(default_factory=dict)

    def to_json(self) -> str:
        payload = {"event": self.event, "name": self.name, "at_s": round(self.at_s, 9)}
        payload.update(self.fields)
        return json.dumps(payload, sort_keys=True)


@dataclass(slots=True)
class StageStats:
    """Aggregated view of one stage name across all its runs."""

    runs: int = 0
    total_s: float = 0.0

    def mean_s(self) -> float:
        return self.total_s / self.runs if self.runs else 0.0


class Observer:
    """Collects stage timings, counters and marks for one toolchain run."""

    enabled = True

    def __init__(self) -> None:
        self._epoch = time.monotonic()
        self.events: list[Event] = []
        self.counters: dict[str, int] = {}
        self.stages: dict[str, StageStats] = {}
        self._stack: list[str] = []

    # -- time -------------------------------------------------------------
    def now(self) -> float:
        """Seconds since this observer was created (monotonic)."""
        return time.monotonic() - self._epoch

    # -- counters ----------------------------------------------------------
    def count(self, name: str, n: int = 1) -> None:
        """Increment counter ``name`` by ``n``."""
        self.counters[name] = self.counters.get(name, 0) + n

    def counter(self, name: str) -> int:
        return self.counters.get(name, 0)

    def counters_with_prefix(self, prefix: str) -> dict[str, int]:
        """Counter totals under one namespace (e.g. ``repo.`` for the
        distributed-repository fetch/retry/breaker/mirror activity)."""
        return {
            name: total
            for name, total in sorted(self.counters.items())
            if name.startswith(prefix)
        }

    # -- marks -------------------------------------------------------------
    def mark(self, name: str, **fields) -> None:
        self.events.append(Event("mark", name, self.now(), fields))

    # -- stages ------------------------------------------------------------
    @contextmanager
    def stage(self, name: str, **fields) -> Iterator[None]:
        """Time a named stage; nests, and records parent provenance."""
        parent = self._stack[-1] if self._stack else None
        self._stack.append(name)
        t0 = time.monotonic()
        try:
            yield
        finally:
            dur = time.monotonic() - t0
            self._stack.pop()
            stats = self.stages.get(name)
            if stats is None:
                stats = self.stages[name] = StageStats()
            stats.runs += 1
            stats.total_s += dur
            payload = dict(fields)
            payload["duration_s"] = round(dur, 9)
            if parent is not None:
                payload["parent"] = parent
            self.events.append(Event("stage", name, t0 - self._epoch, payload))

    @property
    def current_stage(self) -> str | None:
        return self._stack[-1] if self._stack else None

    # -- cross-process aggregation -----------------------------------------
    def snapshot(self) -> dict:
        """Plain-data view of the aggregates, safe to pickle across a
        process boundary (``xpdl build`` workers report through this)."""
        return {
            "counters": dict(self.counters),
            "stages": {
                name: {"runs": st.runs, "total_s": st.total_s}
                for name, st in self.stages.items()
            },
        }

    def merge(self, snapshot: dict) -> None:
        """Fold another observer's :meth:`snapshot` into this one.

        Counters add up; stage stats accumulate runs and total time (the
        mean follows).  Event streams are deliberately not merged — they
        carry per-process monotonic offsets that do not compose; workers
        wanting event-level detail trace to their own files.
        """
        for name, total in (snapshot.get("counters") or {}).items():
            self.count(name, int(total))
        for name, st in (snapshot.get("stages") or {}).items():
            stats = self.stages.get(name)
            if stats is None:
                stats = self.stages[name] = StageStats()
            stats.runs += int(st.get("runs", 0))
            stats.total_s += float(st.get("total_s", 0.0))

    # -- export ------------------------------------------------------------
    def iter_jsonl(self) -> Iterator[str]:
        """All events, then one ``counter`` line per counter total."""
        for ev in self.events:
            yield ev.to_json()
        at = self.now()
        for name in sorted(self.counters):
            yield Event(
                "counter", name, at, {"total": self.counters[name]}
            ).to_json()

    def to_jsonl(self) -> str:
        return "\n".join(self.iter_jsonl())


class NullObserver(Observer):
    """The do-nothing default; every operation is a cheap no-op."""

    enabled = False

    def __init__(self) -> None:
        self.events = []
        self.counters = {}
        self.stages = {}
        self._stack = []
        self._epoch = 0.0

    def now(self) -> float:
        return 0.0

    def count(self, name: str, n: int = 1) -> None:
        pass

    def mark(self, name: str, **fields) -> None:
        pass

    def merge(self, snapshot: dict) -> None:
        pass  # the shared NULL_OBSERVER must stay empty

    @contextmanager
    def stage(self, name: str, **fields) -> Iterator[None]:
        yield


NULL_OBSERVER = NullObserver()

_ACTIVE: ContextVar[Observer] = ContextVar("xpdl_observer", default=NULL_OBSERVER)


def get_observer() -> Observer:
    """The observer active in this context (NullObserver when none)."""
    return _ACTIVE.get()


@contextmanager
def use_observer(observer: Observer) -> Iterator[Observer]:
    """Make ``observer`` the active one for the dynamic extent."""
    token = _ACTIVE.set(observer)
    try:
        yield observer
    finally:
        _ACTIVE.reset(token)
