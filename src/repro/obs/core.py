"""The observability core: events, counters, stage timers.

An :class:`Observer` collects five kinds of signal while the toolchain
runs:

* **stage events** — monotonic wall-clock spans around named pipeline
  stages (``toolchain.compose``, ``toolchain.emit_ir``, ...), nested
  stages included;
* **counters** — monotonically increasing totals (elements parsed, refs
  resolved, groups expanded, cache hits/misses), aggregated rather than
  logged per increment so hot loops stay cheap;
* **histograms** — fixed log-bucketed value distributions
  (:class:`Histogram`; per-request service latencies), cheap enough to
  record on every request and mergeable across processes;
* **gauges** — last-written level samples (in-flight requests, hosted
  bytes) that sum across workers on merge;
* **marks** — one-off structured events (a cache invalidation, a trace
  annotation).

Everything is exportable as JSON-lines (:meth:`Observer.to_jsonl`) for the
``xpdl --trace`` flag and machine consumption.

The toolchain layers discover the active observer through a
:class:`contextvars.ContextVar` (:func:`get_observer`), so deep code —
the XML parser, the repository, the composer — reports without every
call site threading an observer argument.  The default is a
:class:`NullObserver` whose operations are no-ops; instrumented code
guards expensive aggregation behind ``obs.enabled`` so unobserved runs
(e.g. the E10 cold-path benches) pay almost nothing.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Iterator


@dataclass(slots=True)
class Event:
    """One observability event.

    ``event`` is the record type (``stage``, ``counter`` or ``mark``),
    ``name`` the subject, ``at_s`` the monotonic offset from the
    observer's epoch, and ``fields`` free-form structured payload.
    """

    event: str
    name: str
    at_s: float
    fields: dict = field(default_factory=dict)

    def to_json(self) -> str:
        payload = {"event": self.event, "name": self.name, "at_s": round(self.at_s, 9)}
        payload.update(self.fields)
        return json.dumps(payload, sort_keys=True)


#: Histogram bucket upper bounds in seconds: 1 µs .. ~65 s, doubling.
#: Fixed for every histogram so snapshots merge bucket-for-bucket.
HISTOGRAM_BOUNDS: tuple[float, ...] = tuple(
    1e-6 * 2**i for i in range(27)
)


class Histogram:
    """A fixed log-bucketed distribution of non-negative samples.

    Buckets are shared process-wide (:data:`HISTOGRAM_BOUNDS`), so two
    histograms — from two service workers, say — merge by adding bucket
    counts.  Quantiles are read back from the bucket upper bounds, which
    bounds the error at one doubling.
    """

    __slots__ = ("counts", "count", "total", "min", "max")

    def __init__(self) -> None:
        self.counts = [0] * (len(HISTOGRAM_BOUNDS) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def record(self, value: float) -> None:
        lo, hi = 0, len(HISTOGRAM_BOUNDS)
        while lo < hi:  # inlined bisect: value -> first bound >= value
            mid = (lo + hi) // 2
            if HISTOGRAM_BOUNDS[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        self.counts[lo] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the ``q``-quantile sample."""
        if not self.count:
            return 0.0
        rank = max(1, int(q * self.count + 0.5))
        seen = 0
        for i, n in enumerate(self.counts):
            seen += n
            if seen >= rank:
                if i < len(HISTOGRAM_BOUNDS):
                    return min(HISTOGRAM_BOUNDS[i], self.max)
                return self.max
        return self.max

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": 0.0 if self.count == 0 else self.min,
            "max": self.max,
            "counts": list(self.counts),
        }

    def merge_dict(self, data: dict) -> None:
        counts = list(data.get("counts") or ())
        if len(counts) != len(self.counts):
            return  # foreign bucket layout: refuse rather than misfile
        for i, n in enumerate(counts):
            self.counts[i] += int(n)
        added = int(data.get("count", 0))
        self.count += added
        self.total += float(data.get("total", 0.0))
        if added:
            self.min = min(self.min, float(data.get("min", self.min)))
            self.max = max(self.max, float(data.get("max", self.max)))


@dataclass(slots=True)
class StageStats:
    """Aggregated view of one stage name across all its runs."""

    runs: int = 0
    total_s: float = 0.0

    def mean_s(self) -> float:
        return self.total_s / self.runs if self.runs else 0.0


class Observer:
    """Collects stage timings, counters and marks for one toolchain run."""

    enabled = True

    def __init__(self) -> None:
        self._epoch = time.monotonic()
        self.events: list[Event] = []
        self.counters: dict[str, int] = {}
        self.stages: dict[str, StageStats] = {}
        self.histograms: dict[str, Histogram] = {}
        self.gauges: dict[str, float] = {}
        self._stack: list[str] = []

    # -- time -------------------------------------------------------------
    def now(self) -> float:
        """Seconds since this observer was created (monotonic)."""
        return time.monotonic() - self._epoch

    # -- counters ----------------------------------------------------------
    def count(self, name: str, n: int = 1) -> None:
        """Increment counter ``name`` by ``n``."""
        self.counters[name] = self.counters.get(name, 0) + n

    def counter(self, name: str) -> int:
        return self.counters.get(name, 0)

    def counters_with_prefix(self, prefix: str) -> dict[str, int]:
        """Counter totals under one namespace (e.g. ``repo.`` for the
        distributed-repository fetch/retry/breaker/mirror activity)."""
        return {
            name: total
            for name, total in sorted(self.counters.items())
            if name.startswith(prefix)
        }

    # -- histograms --------------------------------------------------------
    def record(self, name: str, value: float) -> None:
        """Add one sample to the named histogram (seconds, bytes, ...)."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.record(value)

    def histogram(self, name: str) -> Histogram | None:
        return self.histograms.get(name)

    # -- gauges ------------------------------------------------------------
    def gauge(self, name: str, value: float) -> None:
        """Set the named gauge to its current level."""
        self.gauges[name] = value

    def gauge_add(self, name: str, delta: float) -> float:
        """Adjust the named gauge by ``delta``; returns the new level."""
        value = self.gauges.get(name, 0.0) + delta
        self.gauges[name] = value
        return value

    # -- marks -------------------------------------------------------------
    def mark(self, name: str, **fields) -> None:
        self.events.append(Event("mark", name, self.now(), fields))

    # -- stages ------------------------------------------------------------
    @contextmanager
    def stage(self, name: str, **fields) -> Iterator[None]:
        """Time a named stage; nests, and records parent provenance."""
        parent = self._stack[-1] if self._stack else None
        self._stack.append(name)
        t0 = time.monotonic()
        try:
            yield
        finally:
            dur = time.monotonic() - t0
            self._stack.pop()
            stats = self.stages.get(name)
            if stats is None:
                stats = self.stages[name] = StageStats()
            stats.runs += 1
            stats.total_s += dur
            payload = dict(fields)
            payload["duration_s"] = round(dur, 9)
            if parent is not None:
                payload["parent"] = parent
            self.events.append(Event("stage", name, t0 - self._epoch, payload))

    @property
    def current_stage(self) -> str | None:
        return self._stack[-1] if self._stack else None

    # -- cross-process aggregation -----------------------------------------
    def snapshot(self) -> dict:
        """Plain-data view of the aggregates, safe to pickle across a
        process boundary (``xpdl build`` workers report through this)."""
        return {
            "counters": dict(self.counters),
            "stages": {
                name: {"runs": st.runs, "total_s": st.total_s}
                for name, st in self.stages.items()
            },
            "histograms": {
                name: h.to_dict() for name, h in self.histograms.items()
            },
            "gauges": dict(self.gauges),
        }

    def merge(self, snapshot: dict) -> None:
        """Fold another observer's :meth:`snapshot` into this one.

        Counters add up; stage stats accumulate runs and total time (the
        mean follows).  Event streams are deliberately not merged — they
        carry per-process monotonic offsets that do not compose; workers
        wanting event-level detail trace to their own files.
        """
        for name, total in (snapshot.get("counters") or {}).items():
            self.count(name, int(total))
        for name, st in (snapshot.get("stages") or {}).items():
            stats = self.stages.get(name)
            if stats is None:
                stats = self.stages[name] = StageStats()
            stats.runs += int(st.get("runs", 0))
            stats.total_s += float(st.get("total_s", 0.0))
        for name, data in (snapshot.get("histograms") or {}).items():
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = Histogram()
            hist.merge_dict(data)
        # Gauges are levels, not totals: across workers the levels add
        # (total in-flight = sum of each worker's in-flight).
        for name, value in (snapshot.get("gauges") or {}).items():
            self.gauges[name] = self.gauges.get(name, 0.0) + float(value)

    # -- export ------------------------------------------------------------
    def iter_jsonl(self) -> Iterator[str]:
        """All events, then one summary line per counter/histogram/gauge."""
        for ev in self.events:
            yield ev.to_json()
        at = self.now()
        for name in sorted(self.counters):
            yield Event(
                "counter", name, at, {"total": self.counters[name]}
            ).to_json()
        for name in sorted(self.histograms):
            h = self.histograms[name]
            yield Event(
                "histogram",
                name,
                at,
                {
                    "count": h.count,
                    "mean": round(h.mean(), 9),
                    "p50": round(h.quantile(0.5), 9),
                    "p95": round(h.quantile(0.95), 9),
                    "p99": round(h.quantile(0.99), 9),
                    "max": h.max,
                },
            ).to_json()
        for name in sorted(self.gauges):
            yield Event(
                "gauge", name, at, {"value": self.gauges[name]}
            ).to_json()

    def to_jsonl(self) -> str:
        return "\n".join(self.iter_jsonl())


class NullObserver(Observer):
    """The do-nothing default; every operation is a cheap no-op."""

    enabled = False

    def __init__(self) -> None:
        self.events = []
        self.counters = {}
        self.stages = {}
        self.histograms = {}
        self.gauges = {}
        self._stack = []
        self._epoch = 0.0

    def now(self) -> float:
        return 0.0

    def count(self, name: str, n: int = 1) -> None:
        pass

    def record(self, name: str, value: float) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def gauge_add(self, name: str, delta: float) -> float:
        return 0.0

    def mark(self, name: str, **fields) -> None:
        pass

    def merge(self, snapshot: dict) -> None:
        pass  # the shared NULL_OBSERVER must stay empty

    @contextmanager
    def stage(self, name: str, **fields) -> Iterator[None]:
        yield


NULL_OBSERVER = NullObserver()

_ACTIVE: ContextVar[Observer] = ContextVar("xpdl_observer", default=NULL_OBSERVER)


def get_observer() -> Observer:
    """The observer active in this context (NullObserver when none)."""
    return _ACTIVE.get()


@contextmanager
def use_observer(observer: Observer) -> Iterator[Observer]:
    """Make ``observer`` the active one for the dynamic extent."""
    token = _ACTIVE.set(observer)
    try:
        yield observer
    finally:
        _ACTIVE.reset(token)
