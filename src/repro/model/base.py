"""Base machinery of the XPDL model object layer.

XPDL distinguishes **meta-models** (reusable type descriptors, identified by
``name``) from **concrete models** (instances in a real system, identified by
``id``) — Sec. III-A of the paper.  Both are represented by subclasses of
:class:`ModelElement`; :meth:`ModelElement.level` reports which side an
element is on.  ``type`` references a meta-model from either level and
``extends`` lists supertypes for (multiple) inheritance.

Subclasses declare their typed quantity attributes with
:func:`metric_property`, which reads/writes the paper's paired
``metric``/``metric_unit`` attribute convention lazily against the raw
attribute map, so the DOM remains the single source of truth.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, ClassVar, Iterator, TypeVar

from ..diagnostics import SourceSpan
from ..units import (
    DEFAULT_REGISTRY,
    Dimension,
    Quantity,
    read_metric,
    write_metric,
)

E = TypeVar("E", bound="ModelElement")

#: Attributes with structural meaning, excluded from "plain property" listings.
STRUCTURAL_ATTRS = frozenset(
    {"name", "id", "type", "extends", "prefix", "quantity"}
)


class ModelLevel(enum.Enum):
    """Which side of the meta/instance split an element sits on."""

    META = "meta"
    CONCRETE = "concrete"
    ANONYMOUS = "anonymous"


def metric_property(
    metric: str,
    dimension: Dimension | None = None,
    *,
    default_unit: str | None = None,
    doc: str | None = None,
) -> property:
    """A lazily-evaluated :class:`Quantity` property over ``attrs``.

    Returns ``None`` when the attribute is absent or the ``?`` placeholder.
    Assignment accepts a :class:`Quantity` or ``None`` (writes ``?``).
    """

    def fget(self: "ModelElement") -> Quantity | None:
        return read_metric(
            self.attrs,
            metric,
            registry=self.registry,
            default_unit=default_unit,
            expect=dimension,
        )

    def fset(self: "ModelElement", value: Quantity | None) -> None:
        write_metric(self.attrs, metric, value, registry=self.registry)

    return property(
        fget, fset, doc=doc or f"Quantity attribute {metric!r} (paired unit)."
    )


def str_property(attr: str, *, doc: str | None = None) -> property:
    """A plain string attribute property (``None`` when absent)."""

    def fget(self: "ModelElement") -> str | None:
        return self.attrs.get(attr)

    def fset(self: "ModelElement", value: str | None) -> None:
        if value is None:
            self.attrs.pop(attr, None)
        else:
            self.attrs[attr] = value

    return property(fget, fset, doc=doc or f"String attribute {attr!r}.")


def int_property(attr: str, *, doc: str | None = None) -> property:
    """An integer attribute property (``None`` when absent)."""

    def fget(self: "ModelElement") -> int | None:
        raw = self.attrs.get(attr)
        return int(raw) if raw is not None else None

    def fset(self: "ModelElement", value: int | None) -> None:
        if value is None:
            self.attrs.pop(attr, None)
        else:
            self.attrs[attr] = str(value)

    return property(fget, fset, doc=doc or f"Integer attribute {attr!r}.")


def bool_property(attr: str, *, default: bool | None = None, doc: str | None = None) -> property:
    """A boolean attribute property (XML spells ``true``/``false``)."""

    def fget(self: "ModelElement") -> bool | None:
        raw = self.attrs.get(attr)
        if raw is None:
            return default
        return raw.strip().lower() in ("true", "1", "yes")

    def fset(self: "ModelElement", value: bool | None) -> None:
        if value is None:
            self.attrs.pop(attr, None)
        else:
            self.attrs[attr] = "true" if value else "false"

    return property(fget, fset, doc=doc or f"Boolean attribute {attr!r}.")


@dataclass
class ModelElement:
    """One node of an XPDL model tree.

    The raw attribute map mirrors the XML; typed views (quantities, ints,
    refs) are computed on access so that rewriting the model back to XML is
    lossless.
    """

    #: XML tag this class models; set by each subclass.
    KIND: ClassVar[str] = "element"
    #: Whether the element may carry an inline power model etc.; informational.
    IS_HARDWARE: ClassVar[bool] = False

    attrs: dict[str, str] = field(default_factory=dict)
    children: list["ModelElement"] = field(default_factory=list)
    span: SourceSpan = field(default_factory=lambda: SourceSpan.unknown())
    parent: "ModelElement | None" = field(default=None, repr=False, compare=False)
    registry = DEFAULT_REGISTRY

    # -- identity -----------------------------------------------------------
    @property
    def kind(self) -> str:
        return type(self).KIND

    @property
    def name(self) -> str | None:
        """Meta-model identifier (``name`` attribute)."""
        return self.attrs.get("name")

    @property
    def ident(self) -> str | None:
        """Concrete-instance identifier (``id`` attribute)."""
        return self.attrs.get("id")

    @property
    def type_ref(self) -> str | None:
        """Reference to a meta-model (``type`` attribute)."""
        return self.attrs.get("type")

    @property
    def extends(self) -> tuple[str, ...]:
        """Supertype names from the ``extends`` attribute (comma-separated)."""
        raw = self.attrs.get("extends")
        if not raw:
            return ()
        return tuple(p.strip() for p in raw.split(",") if p.strip())

    def level(self) -> ModelLevel:
        if "name" in self.attrs:
            return ModelLevel.META
        if "id" in self.attrs:
            return ModelLevel.CONCRETE
        return ModelLevel.ANONYMOUS

    def label(self) -> str:
        """Best human-readable identity for messages."""
        return self.name or self.ident or f"<{self.kind}>"

    # -- tree ---------------------------------------------------------------
    def add(self, child: "ModelElement") -> "ModelElement":
        child.parent = self
        self.children.append(child)
        return child

    def remove(self, child: "ModelElement") -> None:
        self.children.remove(child)
        child.parent = None

    def walk(self) -> Iterator["ModelElement"]:
        """Depth-first pre-order traversal including ``self``."""
        yield self
        for c in self.children:
            yield from c.walk()

    def find_all(self, cls: type[E]) -> list[E]:
        """All descendants (including self) of the given element class."""
        return [e for e in self.walk() if isinstance(e, cls)]

    def find_children(self, cls: type[E]) -> list[E]:
        """Direct children of the given element class."""
        return [c for c in self.children if isinstance(c, cls)]

    def find_child(self, cls: type[E]) -> E | None:
        for c in self.children:
            if isinstance(c, cls):
                return c
        return None

    def ancestors(self) -> Iterator["ModelElement"]:
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def path(self) -> str:
        """Human-readable tree path like ``system#XScluster/cluster/node[0]``."""
        parts: list[str] = []
        node: ModelElement | None = self
        while node is not None:
            tag = node.kind
            if node.ident:
                tag += f"#{node.ident}"
            elif node.name:
                tag += f"#{node.name}"
            elif node.parent is not None:
                siblings = [
                    c for c in node.parent.children if c.kind == node.kind
                ]
                if len(siblings) > 1:
                    tag += f"[{siblings.index(node)}]"
            parts.append(tag)
            node = node.parent
        return "/".join(reversed(parts))

    # -- attributes -----------------------------------------------------------
    def get(self, attr: str, default: str | None = None) -> str | None:
        return self.attrs.get(attr, default)

    def set(self, attr: str, value: str) -> None:
        self.attrs[attr] = value

    def quantity(
        self,
        metric: str,
        dimension: Dimension | None = None,
        *,
        default_unit: str | None = None,
    ) -> Quantity | None:
        """Read any metric attribute with the paired unit convention."""
        return read_metric(
            self.attrs,
            metric,
            registry=self.registry,
            default_unit=default_unit,
            expect=dimension,
        )

    def set_quantity(self, metric: str, value: Quantity | None, *, unit: str | None = None) -> None:
        write_metric(self.attrs, metric, value, unit=unit, registry=self.registry)

    def plain_attrs(self) -> dict[str, str]:
        """Attributes without structural ones — a data-sheet view."""
        return {
            k: v for k, v in self.attrs.items() if k not in STRUCTURAL_ATTRS
        }

    # -- misc ---------------------------------------------------------------
    def clone(self) -> "ModelElement":
        """Deep copy with fresh parent links (parent of the copy is None)."""
        dup = type(self)(attrs=dict(self.attrs), span=self.span)
        for c in self.children:
            dup.add(c.clone())
        return dup

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.label()}, {len(self.children)} children)"


class ElementRegistry:
    """Maps XML tags to :class:`ModelElement` subclasses.

    Unknown tags fall back to :class:`GenericElement` so user extensions
    (the 'X' in XPDL) parse without code changes.
    """

    def __init__(self) -> None:
        self._classes: dict[str, type[ModelElement]] = {}

    def register(self, cls: type[ModelElement]) -> type[ModelElement]:
        """Class decorator registering ``cls`` under ``cls.KIND``."""
        self._classes[cls.KIND] = cls
        return cls

    def class_for(self, tag: str) -> type[ModelElement]:
        return self._classes.get(tag, GenericElement)

    def create(self, tag: str, attrs: dict[str, str] | None = None, span: SourceSpan | None = None) -> ModelElement:
        cls = self.class_for(tag)
        elem = cls(attrs=dict(attrs or {}), span=span or SourceSpan.unknown())
        if cls is GenericElement:
            elem.tag = tag  # type: ignore[attr-defined]
        return elem

    def known_tags(self) -> list[str]:
        return sorted(self._classes)


#: The global tag registry populated by `repro.model.elements`.
ELEMENT_REGISTRY = ElementRegistry()


@dataclass
class GenericElement(ModelElement):
    """Fallback for tags without a dedicated class (extensibility escape)."""

    KIND = "generic"
    tag: str = "generic"

    @property
    def kind(self) -> str:
        return self.tag

    def clone(self) -> "GenericElement":
        dup = GenericElement(attrs=dict(self.attrs), span=self.span, tag=self.tag)
        for c in self.children:
            dup.add(c.clone())
        return dup


def visit(
    root: ModelElement,
    enter: Callable[[ModelElement], None] | None = None,
    leave: Callable[[ModelElement], None] | None = None,
) -> None:
    """Recursive visitor with enter/leave hooks."""
    if enter is not None:
        enter(root)
    for child in root.children:
        visit(child, enter, leave)
    if leave is not None:
        leave(root)
