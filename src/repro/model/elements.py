"""Concrete element classes for every XPDL tag used in the paper.

Each class gives typed access to its data-sheet attributes (quantities via
the paired ``metric``/``metric_unit`` convention, plain strings, ints) and is
registered with :data:`~repro.model.base.ELEMENT_REGISTRY` so parsing maps
tags to classes automatically.  Unknown tags fall back to
:class:`~repro.model.base.GenericElement` — XPDL's extensibility escape.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..units import (
    BANDWIDTH,
    ENERGY,
    FREQUENCY,
    INFORMATION,
    POWER,
    TIME,
    Quantity,
)
from .base import (
    ELEMENT_REGISTRY,
    ModelElement,
    bool_property,
    int_property,
    metric_property,
    str_property,
)

register = ELEMENT_REGISTRY.register


# ---------------------------------------------------------------------------
# Structural containers
# ---------------------------------------------------------------------------


@register
@dataclass
class System(ModelElement):
    """Top-level concrete system (single-node or multi-node computer)."""

    KIND = "system"
    IS_HARDWARE = True


@register
@dataclass
class Cluster(ModelElement):
    """A multi-node machine: groups of nodes plus inter-node interconnects."""

    KIND = "cluster"
    IS_HARDWARE = True


@register
@dataclass
class Node(ModelElement):
    """One cluster node (its own OS instance; sockets, memory, devices)."""

    KIND = "node"
    IS_HARDWARE = True


@register
@dataclass
class Socket(ModelElement):
    """A CPU socket on a motherboard."""

    KIND = "socket"
    IS_HARDWARE = True


@register
@dataclass
class Group(ModelElement):
    """Grouping construct; with ``quantity`` it is implicitly homogeneous.

    ``prefix`` + ``quantity`` auto-assigns member ids ``prefix0..prefixN-1``
    (paper Sec. III-A).  ``quantity`` may also name a ``param``, resolved at
    composition time (Listing 8's ``quantity="num_SM"``).
    """

    KIND = "group"

    prefix = str_property("prefix")
    quantity_raw = str_property("quantity", doc="Raw quantity attr (int or param name).")

    def quantity_literal(self) -> int | None:
        """Quantity as an int when it is a literal, else ``None``."""
        raw = self.attrs.get("quantity")
        if raw is None:
            return None
        try:
            return int(raw)
        except ValueError:
            return None

    def is_homogeneous(self) -> bool:
        return "quantity" in self.attrs


# ---------------------------------------------------------------------------
# Processing elements
# ---------------------------------------------------------------------------


@register
@dataclass
class Cpu(ModelElement):
    """A CPU package: cores/core groups, caches, an optional power model."""

    KIND = "cpu"
    IS_HARDWARE = True

    frequency = metric_property("frequency", FREQUENCY)
    static_power = metric_property("static_power", POWER)
    role = str_property("role", doc="Optional control role (master/worker/hybrid).")
    endian = str_property("endian")

    def cores(self) -> list["Core"]:
        """All (recursively nested) core elements of this CPU."""
        return self.find_all(Core)

    def caches(self) -> list["Cache"]:
        return self.find_all(Cache)


@register
@dataclass
class Core(ModelElement):
    """A single processing core."""

    KIND = "core"
    IS_HARDWARE = True

    frequency = metric_property("frequency", FREQUENCY)
    endian = str_property("endian", doc="BE or LE.")


@register
@dataclass
class Gpu(ModelElement):
    """A GPU, when modeled as its own block rather than a generic device."""

    KIND = "gpu"
    IS_HARDWARE = True

    frequency = metric_property("frequency", FREQUENCY)
    static_power = metric_property("static_power", POWER)


@register
@dataclass
class Device(ModelElement):
    """An accelerator device/board (GPU card, DSP board, ...)."""

    KIND = "device"
    IS_HARDWARE = True

    role = str_property("role")
    compute_capability = str_property("compute_capability")
    static_power = metric_property("static_power", POWER)


# ---------------------------------------------------------------------------
# Memory hierarchy
# ---------------------------------------------------------------------------


@register
@dataclass
class Cache(ModelElement):
    """A cache level; sharing is implied by scope (paper Listing 1)."""

    KIND = "cache"
    IS_HARDWARE = True

    size = metric_property("size", INFORMATION)
    sets = int_property("sets", doc="Associativity (number of ways/sets per the paper).")
    line_size = metric_property("line_size", INFORMATION)
    replacement = str_property("replacement", doc="Replacement policy, e.g. LRU.")
    write_policy = str_property(
        "write_policy", doc="copyback (write-back) or writethrough."
    )
    static_power = metric_property("static_power", POWER)


@register
@dataclass
class Memory(ModelElement):
    """A memory module (DRAM, scratchpad, device memory)."""

    KIND = "memory"
    IS_HARDWARE = True

    size = metric_property("size", INFORMATION)
    static_power = metric_property("static_power", POWER)
    slices = int_property("slices")
    endian = str_property("endian")
    latency = metric_property("latency", TIME)
    bandwidth = metric_property("bandwidth", BANDWIDTH)


# ---------------------------------------------------------------------------
# Interconnects
# ---------------------------------------------------------------------------


@register
@dataclass
class Interconnects(ModelElement):
    """Container listing a model's interconnect instances."""

    KIND = "interconnects"


@register
@dataclass
class Interconnect(ModelElement):
    """An interconnect technology (meta) or link instance (concrete).

    Concrete instances carry ``head``/``tail`` endpoint references for
    directed links (paper Listing 4).
    """

    KIND = "interconnect"
    IS_HARDWARE = True

    head = str_property("head", doc="Source endpoint id for directed links.")
    tail = str_property("tail", doc="Destination endpoint id for directed links.")
    max_bandwidth = metric_property("max_bandwidth", BANDWIDTH)
    effective_bandwidth = metric_property(
        "effective_bandwidth",
        BANDWIDTH,
        doc="Set by static analysis: nominal bandwidth downgraded to the "
        "slowest component on the communication path.",
    )
    static_power = metric_property("static_power", POWER)

    def channels(self) -> list["Channel"]:
        return self.find_children(Channel)


@register
@dataclass
class Channel(ModelElement):
    """A directed channel of an interconnect (e.g. PCIe up/down link)."""

    KIND = "channel"
    IS_HARDWARE = True

    max_bandwidth = metric_property("max_bandwidth", BANDWIDTH)
    time_offset_per_message = metric_property("time_offset_per_message", TIME)
    energy_per_byte = metric_property("energy_per_byte", ENERGY)
    energy_offset_per_message = metric_property("energy_offset_per_message", ENERGY)

    def transfer_time(self, nbytes: float) -> Quantity | None:
        """Latency+bandwidth model for sending ``nbytes`` over this channel."""
        bw = self.max_bandwidth
        if bw is None:
            return None
        t = Quantity(nbytes / bw.magnitude, TIME)
        off = self.time_offset_per_message
        if off is not None:
            t = t + off
        return t

    def transfer_energy(self, nbytes: float) -> Quantity | None:
        """Per-byte + per-message energy model for a transfer."""
        per_byte = self.energy_per_byte
        if per_byte is None:
            return None
        e = per_byte * nbytes
        off = self.energy_offset_per_message
        if off is not None:
            e = e + off
        return e


# ---------------------------------------------------------------------------
# Parameters, constants, constraints (Listing 8)
# ---------------------------------------------------------------------------


@register
@dataclass
class Const(ModelElement):
    """A named constant of a meta-model."""

    KIND = "const"

    size = metric_property("size", INFORMATION)
    value = str_property("value")


@register
@dataclass
class Param(ModelElement):
    """A formal parameter; ``configurable`` ones form the platform's knobs.

    Binding happens either in a subtype (Listing 9 sets ``num_SM``) or in a
    concrete instance (Listing 10 fixes the K20c L1/shm split).
    """

    KIND = "param"

    configurable = bool_property("configurable", default=False)
    range_raw = str_property("range", doc="Comma-separated allowed values.")
    value = str_property("value")
    size = metric_property("size", INFORMATION)
    frequency = metric_property("frequency", FREQUENCY)

    def range_values(self) -> list[str]:
        raw = self.attrs.get("range")
        if not raw:
            return []
        return [p.strip() for p in raw.split(",") if p.strip()]


@register
@dataclass
class Constraints(ModelElement):
    KIND = "constraints"

    def expressions(self) -> list[str]:
        return [
            c.attrs.get("expr", "")
            for c in self.find_children(Constraint)
        ]


@register
@dataclass
class Constraint(ModelElement):
    """One boolean constraint over params/consts, e.g. ``L1size + shmsize == shmtotalsize``."""

    KIND = "constraint"

    expr = str_property("expr")


# ---------------------------------------------------------------------------
# Power modeling (Listings 12-15)
# ---------------------------------------------------------------------------


@register
@dataclass
class PowerModel(ModelElement):
    """Reference container tying a processor to its power description."""

    KIND = "power_model"


@register
@dataclass
class PowerDomains(ModelElement):
    KIND = "power_domains"

    def domains(self) -> list["PowerDomain"]:
        return self.find_all(PowerDomain)


@register
@dataclass
class PowerDomain(ModelElement):
    """A power island switched as a unit.

    ``enableSwitchOff="false"`` marks the main/default island;
    ``switchoffCondition`` expresses dependencies like CMX requiring all
    Shave islands to be off first (paper Listing 12).
    """

    KIND = "power_domain"

    enable_switch_off = bool_property("enableSwitchOff", default=True)
    switchoff_condition = str_property("switchoffCondition")


@register
@dataclass
class PowerStateMachine(ModelElement):
    """FSM of DVFS/shutdown levels for one power domain (Listing 13)."""

    KIND = "power_state_machine"

    power_domain = str_property("power_domain")

    def states(self) -> list["PowerState"]:
        return self.find_all(PowerState)

    def transitions(self) -> list["Transition"]:
        return self.find_all(Transition)


@register
@dataclass
class PowerStates(ModelElement):
    KIND = "power_states"


@register
@dataclass
class PowerState(ModelElement):
    """One P/C state: frequency plus (static) power at that level."""

    KIND = "power_state"

    frequency = metric_property("frequency", FREQUENCY)
    power = metric_property("power", POWER)


@register
@dataclass
class Transitions(ModelElement):
    KIND = "transitions"


@register
@dataclass
class Transition(ModelElement):
    """A directed state switch with time and energy overhead."""

    KIND = "transition"

    head = str_property("head", doc="Source state name.")
    tail = str_property("tail", doc="Destination state name.")
    time = metric_property("time", TIME)
    energy = metric_property("energy", ENERGY)


@register
@dataclass
class Instructions(ModelElement):
    """Instruction set with per-instruction dynamic energy (Listing 14)."""

    KIND = "instructions"

    mb = str_property("mb", doc="Default microbenchmark suite id.")

    def insts(self) -> list["Inst"]:
        return self.find_children(Inst)


@register
@dataclass
class Inst(ModelElement):
    """One instruction; energy in-line, per-frequency ``data`` rows, or ``?``."""

    KIND = "inst"

    energy = metric_property("energy", ENERGY)
    mb = str_property("mb", doc="Microbenchmark id deriving this entry.")

    def data_points(self) -> list["DataPoint"]:
        return self.find_children(DataPoint)

    def needs_benchmarking(self) -> bool:
        """True when energy is the ``?`` placeholder and no data table exists."""
        raw = self.attrs.get("energy")
        placeholder = raw is None or raw.strip() == "?"
        return placeholder and not self.data_points()


@register
@dataclass
class DataPoint(ModelElement):
    """A (frequency, energy) sample row inside an ``inst`` (Listing 14)."""

    KIND = "data"

    frequency = metric_property("frequency", FREQUENCY, default_unit="GHz")
    energy = metric_property("energy", ENERGY)


@register
@dataclass
class Microbenchmarks(ModelElement):
    """A microbenchmark suite: source directory plus build/run script."""

    KIND = "microbenchmarks"

    instruction_set = str_property("instruction_set")
    path = str_property("path")
    command = str_property("command")

    def benchmarks(self) -> list["Microbenchmark"]:
        return self.find_children(Microbenchmark)


@register
@dataclass
class Microbenchmark(ModelElement):
    """One microbenchmark: a C file measuring one instruction type."""

    KIND = "microbenchmark"

    file = str_property("file")
    cflags = str_property("cflags")
    lflags = str_property("lflags")


# ---------------------------------------------------------------------------
# System software (Listing 11)
# ---------------------------------------------------------------------------


@register
@dataclass
class Software(ModelElement):
    """Installed system software section of a concrete system model."""

    KIND = "software"

    def installed(self) -> list["Installed"]:
        return self.find_all(Installed)


@register
@dataclass
class HostOS(ModelElement):
    KIND = "hostOS"


@register
@dataclass
class Installed(ModelElement):
    """One installed software package, referencing its own descriptor."""

    KIND = "installed"

    path = str_property("path")
    version = str_property("version")


@register
@dataclass
class ProgrammingModel(ModelElement):
    """Programming models a device supports (``cuda6.0,...,opencl``)."""

    KIND = "programming_model"

    def models(self) -> list[str]:
        raw = self.attrs.get("type", "")
        return [p.strip() for p in raw.split(",") if p.strip()]


# ---------------------------------------------------------------------------
# Free-form properties (escape mechanism, Sec. III-A)
# ---------------------------------------------------------------------------


@register
@dataclass
class Properties(ModelElement):
    KIND = "properties"

    def as_dict(self) -> dict[str, str]:
        out: dict[str, str] = {}
        for p in self.find_children(Property):
            if p.name:
                out[p.name] = p.attrs.get("value", p.attrs.get("type", ""))
        return out


@register
@dataclass
class Property(ModelElement):
    """A key-value property; both key and value are strings (as in PDL)."""

    KIND = "property"

    value = str_property("value")
    command = str_property("command")
