"""DOM <-> model conversion.

``from_dom`` maps parsed XML elements onto registered model classes (unknown
tags become :class:`GenericElement`); ``to_dom`` writes a model tree back to
DOM for serialization.  Conversion is lossless for attributes and element
structure; XML comments/PIs inside model content are dropped (they carry no
model semantics).
"""

from __future__ import annotations

from ..diagnostics import SourceSpan
from ..xpdlxml import XmlDocument, XmlElement, document, element as make_dom_element
from .base import ELEMENT_REGISTRY, GenericElement, ModelElement


def from_dom(elem: XmlElement) -> ModelElement:
    """Convert one DOM element (and its subtree) to model objects."""
    model = ELEMENT_REGISTRY.create(
        elem.tag, dict(elem.attr_items()), elem.span
    )
    for child in elem.elements():
        model.add(from_dom(child))
    return model


def from_document(doc: XmlDocument) -> ModelElement:
    """Convert a parsed document's root into a model tree."""
    return from_dom(doc.root)


def to_dom(model: ModelElement) -> XmlElement:
    """Convert a model tree back into a DOM element tree."""
    elem = make_dom_element(model.kind, dict(model.attrs))
    # Preserve the original span where one exists, for diagnostics on
    # re-serialized trees.
    if model.span.source != "<unknown>":
        elem.span = model.span
    for child in model.children:
        elem.append(to_dom(child))
    return elem


def to_document(model: ModelElement, *, source_name: str = "<generated>") -> XmlDocument:
    return document(to_dom(model), source_name=source_name)
