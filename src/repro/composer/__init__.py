"""Concrete model composition from distributed descriptors."""

from .compose import ComposedModel, Composer, compose_model

__all__ = ["ComposedModel", "Composer", "compose_model"]
