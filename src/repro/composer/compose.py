"""Model composition: from distributed descriptors to one concrete tree.

This implements the core of the paper's Sec. IV processing pipeline:

1. browse the repository for all recursively referenced descriptors,
2. resolve ``extends`` inheritance for every referenced meta-model,
3. instantiate ``type=`` references by folding the (inheritance-resolved)
   meta-model under the referencing instance element,
4. build the parameter environment scope by scope, substitute param
   references in attribute values (``frequency="cfrq"``), check declared
   constraints,
5. expand homogeneous groups (``prefix``/``quantity``) into members,
6. verify interconnect endpoint references.

The result is a :class:`ComposedModel`: a self-contained concrete tree plus
provenance and diagnostics — the input for static analysis, microbenchmark
planning and runtime-IR emission.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..diagnostics import (
    CompositionError,
    DiagnosticSink,
    ResolutionError,
)
from ..groups import expand_groups
from ..inherit import InheritanceEngine, merge_element
from ..model import (
    Const,
    Group,
    Interconnect,
    ModelElement,
    Param,
)
from ..obs import NULL_OBSERVER, get_observer
from ..params import Evaluator, ParamSpace, Value, declared_value
from ..repository import ModelRepository
from ..units import Quantity

#: Attribute names that are never substituted with param values.
_NO_SUBSTITUTE = frozenset(
    {
        "name",
        "id",
        "type",
        "extends",
        "resolved_extends",
        "prefix",
        "head",
        "tail",
        "mb",
        "instruction_set",
        "power_domain",
        "path",
        "command",
        "file",
        "expanded",
        "rank",
        "member_count",
        "role",
        "endian",
        "replacement",
        "write_policy",
        "value",
        "range",
        "configurable",
        "expr",
        "switchoffCondition",
        "enableSwitchOff",
    }
)


@dataclass
class ComposedModel:
    """A fully composed concrete model plus provenance."""

    identifier: str
    root: ModelElement
    repository: ModelRepository
    sink: DiagnosticSink
    referenced: tuple[str, ...] = ()
    unresolved: tuple[str, ...] = ()
    #: Param environments per element path, for inspection/debugging.
    environments: dict[str, dict[str, Value]] = field(default_factory=dict)

    def count(self, kind: str) -> int:
        return sum(1 for e in self.root.walk() if e.kind == kind)

    def elements(self, kind: str) -> list[ModelElement]:
        return [e for e in self.root.walk() if e.kind == kind]

    def by_id(self, ident: str) -> ModelElement | None:
        for e in self.root.walk():
            if e.ident == ident:
                return e
        return None


class Composer:
    """Composes concrete system models from a repository."""

    def __init__(
        self,
        repository: ModelRepository,
        *,
        expand: bool = True,
        substitute: bool = True,
    ) -> None:
        self.repository = repository
        self.inherit = InheritanceEngine(repository)
        self.expand = expand
        self.substitute = substitute
        self._obs = NULL_OBSERVER

    # -- public ---------------------------------------------------------------
    def compose(
        self,
        identifier: str,
        sink: DiagnosticSink | None = None,
        *,
        bindings: Mapping[str, Value] | None = None,
    ) -> ComposedModel:
        """Compose the concrete model named ``identifier``.

        ``bindings`` pre-binds configurable params (e.g. fixing the K20c
        L1/shm split) before substitution and expansion.
        """
        obs = self._obs = get_observer()
        obs.count("compose.runs")
        sink = sink if sink is not None else DiagnosticSink()
        closure = self.repository.load_closure(identifier, sink)
        if identifier not in closure:
            raise ResolutionError(
                f"cannot compose unknown model {identifier!r}", sink.diagnostics
            )
        root = closure[identifier].model.clone()
        unresolved = sorted(
            self.repository.references_of(root)
            - set(self.repository.index())
        )
        composed = ComposedModel(
            identifier=identifier,
            root=root,
            repository=self.repository,
            sink=sink,
            referenced=tuple(sorted(closure)),
            unresolved=tuple(unresolved),
        )
        env0: dict[str, Value] = dict(bindings or {})
        new_root = self._process(root, env0, sink, composed, type_stack=())
        new_root.parent = None
        composed.root = new_root
        self._verify_interconnects(composed, sink)
        if obs.enabled:
            obs.count("compose.descriptors", len(closure))
            expanded = [
                e
                for e in new_root.walk()
                if e.attrs.get("expanded") == "true"
            ]
            obs.count("compose.groups.expanded", len(expanded))
            obs.count(
                "compose.groups.members",
                sum(int(g.attrs.get("member_count", 0)) for g in expanded),
            )
            obs.count("compose.elements", sum(1 for _ in new_root.walk()))
        return composed

    # -- pipeline --------------------------------------------------------------
    def _process(
        self,
        elem: ModelElement,
        env: dict[str, Value],
        sink: DiagnosticSink,
        composed: ComposedModel,
        type_stack: tuple[str, ...],
    ) -> ModelElement:
        elem, type_stack = self._instantiate_type(elem, sink, type_stack)
        if elem.extends:
            elem = self.inherit.resolve_inline(elem, sink)

        env = self._extend_env(elem, env)
        if self.substitute:
            self._substitute_attrs(elem, env, sink)
        self._check_constraints(elem, env, sink, composed)

        # Recurse (children may add their own scopes).  The extended
        # type_stack travels down so reference cycles through meta-model
        # content are caught.
        new_children = []
        for child in elem.children:
            new_children.append(
                self._process(child, dict(env), sink, composed, type_stack)
            )
        elem.children = []
        for c in new_children:
            elem.add(c)

        if (
            self.expand
            and isinstance(elem, Group)
            and elem.is_homogeneous()
            and elem.attrs.get("expanded") != "true"
        ):
            elem = expand_groups(elem, env, sink)
        return elem

    # -- type instantiation -------------------------------------------------------
    def _instantiate_type(
        self,
        elem: ModelElement,
        sink: DiagnosticSink,
        type_stack: tuple[str, ...],
    ) -> tuple[ModelElement, tuple[str, ...]]:
        """Fold the referenced meta-model under ``elem``, once.

        Returns the (possibly merged) element and the type stack to use when
        descending into its children — extended by this type reference so
        cycles through meta-model content are detected instead of looping.
        """
        type_ref = elem.type_ref
        if not type_ref or type_ref not in self.repository.index():
            return elem, type_stack  # category tag or no type: leave as-is
        if type_ref in type_stack:
            chain = " -> ".join(type_stack + (type_ref,))
            raise CompositionError(f"type reference cycle: {chain}")
        self._obs.count("compose.types.instantiated")
        meta = self.inherit.resolve(type_ref, sink)
        if meta.kind == elem.kind:
            merged = merge_element(meta, elem)
        else:
            # Kind mismatch (e.g. <installed type="CUDA_6.0"> referencing a
            # software descriptor): keep the instance's kind, import the
            # meta's attributes (without clobbering) and children.
            merged = elem.clone()
            for k, v in meta.attrs.items():
                if k not in merged.attrs and k != "name":
                    merged.attrs[k] = v
            for child in meta.children:
                merged.add(child.clone())
        # Instance identity prevails; remember what it was made from.
        merged.attrs["type"] = type_ref
        if elem.ident is not None:
            merged.attrs["id"] = elem.ident
            merged.attrs.pop("name", None)
        return merged, type_stack + (type_ref,)

    # -- parameter environment --------------------------------------------------------
    def _extend_env(
        self, elem: ModelElement, env: dict[str, Value]
    ) -> dict[str, Value]:
        local: dict[str, Value] = {}
        for child in elem.children:
            if isinstance(child, (Const, Param)) and child.name:
                v = declared_value(child, elem.registry)
                if v is not None:
                    local[child.name] = v
        if local:
            env = dict(env)
            env.update(local)
        return env

    def _substitute_attrs(
        self,
        elem: ModelElement,
        env: dict[str, Value],
        sink: DiagnosticSink,
    ) -> None:
        if isinstance(elem, (Const, Param)):
            return  # declarations keep their symbolic form
        from ..units import is_unit_attribute, unit_attribute_for

        for attr in list(elem.attrs):
            if attr in _NO_SUBSTITUTE or is_unit_attribute(attr):
                continue
            raw = elem.attrs[attr].strip()
            if raw in env:
                value = env[raw]
                if isinstance(value, Quantity):
                    elem.set_quantity(attr, value)
                else:
                    elem.attrs[attr] = "true" if value else "false"

    def _check_constraints(
        self,
        elem: ModelElement,
        env: dict[str, Value],
        sink: DiagnosticSink,
        composed: ComposedModel,
    ) -> None:
        space = None
        for child in elem.children:
            if child.kind == "constraints":
                space = ParamSpace.from_element(elem, elem.registry)
                break
        if space is None:
            return
        composed.environments[elem.path()] = dict(env)
        for expr, ok in space.check_constraints(env):
            if ok is False:
                sink.error(
                    "XPDL0410",
                    f"constraint violated at {elem.label()}: {expr}",
                    elem.span,
                )
            elif ok is None:
                sink.note(
                    "XPDL0411",
                    f"constraint not decidable yet at {elem.label()}: {expr} "
                    "(unbound params)",
                    elem.span,
                )

    # -- interconnect endpoints --------------------------------------------------------
    def _verify_interconnects(
        self, composed: ComposedModel, sink: DiagnosticSink
    ) -> None:
        ids = {e.ident for e in composed.root.walk() if e.ident}
        for ic in composed.root.find_all(Interconnect):
            for end in ("head", "tail"):
                ref = ic.attrs.get(end)
                if ref is not None and ref not in ids:
                    sink.error(
                        "XPDL0420",
                        f"interconnect {ic.label()} {end}={ref!r} does not "
                        "match any element id in the composed model",
                        ic.span,
                    )


def compose_model(
    repository: ModelRepository,
    identifier: str,
    *,
    bindings: Mapping[str, Value] | None = None,
    sink: DiagnosticSink | None = None,
) -> ComposedModel:
    """Convenience one-shot composition."""
    return Composer(repository).compose(identifier, sink, bindings=bindings)
