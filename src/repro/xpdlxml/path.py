"""A small path query language over the XML DOM.

Supports the subset needed by the toolchain and tests:

* ``tag`` — child elements with that tag
* ``*`` — any child element
* ``//tag`` — descendants with that tag
* ``tag[3]`` — index within matches (0-based)
* ``tag[@attr]`` / ``tag[@attr='v']`` — attribute presence / equality
* path segments separated by ``/``

Queries return lists of elements; they never raise on "no match".
Malformed paths — including bracketed predicates the grammar cannot
parse — raise :class:`~repro.diagnostics.QueryError` instead of being
silently ignored.

Predicates follow XPath semantics: they filter the matches of **each
context node separately**, so ``a/b[0]`` returns the first ``<b>`` of
every ``<a>``, not the globally first ``<b>``.
"""

from __future__ import annotations

import re

from ..diagnostics import QueryError
from .dom import XmlElement

_SEGMENT_RE = re.compile(
    r"""^(?P<axis>//)?(?P<tag>\*|[A-Za-z_:][\w:.\-]*)
        (?P<preds>(\[[^\]]*\])*)$""",
    re.VERBOSE,
)
_PRED_RE = re.compile(
    r"""\[(?:
          (?P<index>\d+)
        | @(?P<attr>[\w:.\-]+)\s*(?:=\s*'(?P<value>[^']*)')?
        )\]""",
    re.VERBOSE,
)


def _split_segments(path: str) -> list[str]:
    """Split on '/' but keep '//' attached to the following segment."""
    segments: list[str] = []
    i = 0
    n = len(path)
    while i < n:
        if path.startswith("//", i):
            seg_end = n
            k = i + 2
            while k < n:
                if path[k] == "/":
                    seg_end = k
                    break
                k += 1
            segments.append(path[i:seg_end])
            i = seg_end
        elif path[i] == "/":
            i += 1
        else:
            k = i
            while k < n and path[k] != "/":
                k += 1
            segments.append(path[i:k])
            i = k
    return segments


#: One parsed predicate: ``("index", n)`` or ``("attr", name, value_or_None)``.
Predicate = tuple


def _parse_predicates(preds: str, segment: str) -> list[Predicate]:
    """Parse the bracketed predicate chain of one segment.

    Every ``[...]`` group must match the predicate grammar; anything the
    grammar cannot parse raises :class:`QueryError` rather than being
    silently dropped (``a[@x='it''s']`` must not match a bare ``<a/>``).
    """
    parsed: list[Predicate] = []
    pos = 0
    for pm in _PRED_RE.finditer(preds):
        if pm.start() != pos:
            break
        if pm.group("index") is not None:
            parsed.append(("index", int(pm.group("index"))))
        else:
            parsed.append(("attr", pm.group("attr"), pm.group("value")))
        pos = pm.end()
    if pos != len(preds):
        raise QueryError(
            f"malformed predicate {preds[pos:]!r} in segment {segment!r}"
        )
    return parsed


def _filter(matched: list[XmlElement], preds: list[Predicate]) -> list[XmlElement]:
    """Apply the predicate chain to one context node's matches."""
    for pred in preds:
        if pred[0] == "index":
            idx = pred[1]
            matched = [matched[idx]] if idx < len(matched) else []
        else:
            _kind, attr, value = pred
            if value is None:
                matched = [e for e in matched if attr in e]
            else:
                matched = [e for e in matched if e.get(attr) == value]
    return matched


def _apply_segment(nodes: list[XmlElement], segment: str) -> list[XmlElement]:
    m = _SEGMENT_RE.match(segment)
    if m is None:
        raise QueryError(f"malformed path segment {segment!r}")
    tag = m.group("tag")
    descend = m.group("axis") == "//"
    preds = _parse_predicates(m.group("preds") or "", segment)
    matched: list[XmlElement] = []
    seen: set[int] = set()
    for node in nodes:
        if descend:
            candidates = [
                e
                for child in node.elements()
                for e in child.iter(None)
            ]
        else:
            candidates = node.elements()
        # XPath semantics: predicates filter per context node, so an index
        # predicate selects one match under *each* node, not globally.
        local = [c for c in candidates if tag == "*" or c.tag == tag]
        for c in _filter(local, preds):
            if id(c) not in seen:
                seen.add(id(c))
                matched.append(c)
    return matched


def find_all(root: XmlElement, path: str) -> list[XmlElement]:
    """Evaluate ``path`` relative to ``root`` (root itself is the context)."""
    nodes = [root]
    for segment in _split_segments(path):
        nodes = _apply_segment(nodes, segment)
        if not nodes:
            return []
    return nodes


def find_first(root: XmlElement, path: str) -> XmlElement | None:
    """First match of ``path`` or ``None``."""
    matches = find_all(root, path)
    return matches[0] if matches else None
