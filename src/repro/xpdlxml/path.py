"""A small path query language over the XML DOM.

Supports the subset needed by the toolchain and tests:

* ``tag`` — child elements with that tag
* ``*`` — any child element
* ``//tag`` — descendants with that tag
* ``tag[3]`` — index within matches (0-based)
* ``tag[@attr]`` / ``tag[@attr='v']`` — attribute presence / equality
* path segments separated by ``/``

Queries return lists of elements; they never raise on "no match".
"""

from __future__ import annotations

import re

from ..diagnostics import QueryError
from .dom import XmlElement

_SEGMENT_RE = re.compile(
    r"""^(?P<axis>//)?(?P<tag>\*|[A-Za-z_:][\w:.\-]*)
        (?P<preds>(\[[^\]]*\])*)$""",
    re.VERBOSE,
)
_PRED_RE = re.compile(
    r"""\[(?:
          (?P<index>\d+)
        | @(?P<attr>[\w:.\-]+)\s*(?:=\s*'(?P<value>[^']*)')?
        )\]""",
    re.VERBOSE,
)


def _split_segments(path: str) -> list[str]:
    """Split on '/' but keep '//' attached to the following segment."""
    segments: list[str] = []
    i = 0
    n = len(path)
    while i < n:
        if path.startswith("//", i):
            j = path.find("/", i + 2)
            # find next single slash not starting a new '//'
            seg_end = n
            k = i + 2
            while k < n:
                if path[k] == "/":
                    seg_end = k
                    break
                k += 1
            segments.append(path[i:seg_end])
            i = seg_end
        elif path[i] == "/":
            i += 1
        else:
            k = i
            while k < n and path[k] != "/":
                k += 1
            segments.append(path[i:k])
            i = k
    return segments


def _apply_segment(nodes: list[XmlElement], segment: str) -> list[XmlElement]:
    m = _SEGMENT_RE.match(segment)
    if m is None:
        raise QueryError(f"malformed path segment {segment!r}")
    tag = m.group("tag")
    descend = m.group("axis") == "//"
    matched: list[XmlElement] = []
    seen: set[int] = set()
    for node in nodes:
        if descend:
            candidates = [
                e
                for child in node.elements()
                for e in child.iter(None)
            ]
        else:
            candidates = node.elements()
        for c in candidates:
            if tag != "*" and c.tag != tag:
                continue
            if id(c) not in seen:
                seen.add(id(c))
                matched.append(c)
    preds = m.group("preds") or ""
    for pm in _PRED_RE.finditer(preds):
        if pm.group("index") is not None:
            idx = int(pm.group("index"))
            matched = [matched[idx]] if idx < len(matched) else []
        else:
            attr = pm.group("attr")
            value = pm.group("value")
            if value is None:
                matched = [e for e in matched if attr in e]
            else:
                matched = [e for e in matched if e.get(attr) == value]
    return matched


def find_all(root: XmlElement, path: str) -> list[XmlElement]:
    """Evaluate ``path`` relative to ``root`` (root itself is the context)."""
    nodes = [root]
    for segment in _split_segments(path):
        nodes = _apply_segment(nodes, segment)
        if not nodes:
            return []
    return nodes


def find_first(root: XmlElement, path: str) -> XmlElement | None:
    """First match of ``path`` or ``None``."""
    matches = find_all(root, path)
    return matches[0] if matches else None
