"""Recursive-descent XML parser producing the span-carrying DOM.

Supports the XML subset that platform descriptors use: the XML declaration,
elements with attributes, character data with the five predefined entities
and numeric character references, CDATA sections, comments and processing
instructions.  DOCTYPE declarations are recognized and skipped (descriptor
files never need internal subsets).  Errors carry precise source spans; by
default the parser is *recovering* — it collects diagnostics and keeps going
where it safely can — while ``strict=True`` raises on the first error.
"""

from __future__ import annotations

from ..diagnostics import (
    DiagnosticSink,
    ParseError,
    SourceSpan,
    SourceText,
)
from ..obs import get_observer
from .dom import (
    XmlAttribute,
    XmlCData,
    XmlComment,
    XmlDocument,
    XmlElement,
    XmlNode,
    XmlPI,
    XmlText,
)

_PREDEFINED_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}

_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_:")
_NAME_CHARS = _NAME_START | set("0123456789.-")


def _is_name(text: str) -> bool:
    return bool(text) and text[0] in _NAME_START and all(c in _NAME_CHARS for c in text)


class XmlParser:
    """One-shot parser over a :class:`SourceText`."""

    def __init__(
        self,
        source: SourceText,
        sink: DiagnosticSink | None = None,
        *,
        strict: bool = False,
    ) -> None:
        self.src = source
        self.text = source.text
        self.n = len(self.text)
        self.pos = 0
        self.sink = sink if sink is not None else DiagnosticSink()
        self.sink.add_source(source)
        self.strict = strict
        self.elements_parsed = 0

    # -- error helpers -------------------------------------------------------
    def _span(self, start: int, end: int | None = None) -> SourceSpan:
        return self.src.span(start, self.pos if end is None else end)

    def _error(self, code: str, message: str, start: int, *hints: str) -> None:
        span = self._span(start, max(start + 1, self.pos))
        self.sink.error(code, message, span, *hints)
        if self.strict:
            raise ParseError(message, self.sink.diagnostics)

    # -- character helpers -----------------------------------------------------
    def _peek(self, k: int = 0) -> str:
        i = self.pos + k
        return self.text[i] if i < self.n else ""

    def _startswith(self, s: str) -> bool:
        return self.text.startswith(s, self.pos)

    def _skip_ws(self) -> None:
        while self.pos < self.n and self.text[self.pos] in " \t\r\n":
            self.pos += 1

    def _read_name(self) -> str | None:
        start = self.pos
        if self.pos < self.n and self.text[self.pos] in _NAME_START:
            self.pos += 1
            while self.pos < self.n and self.text[self.pos] in _NAME_CHARS:
                self.pos += 1
            return self.text[start : self.pos]
        return None

    def _expect(self, s: str, what: str) -> bool:
        if self._startswith(s):
            self.pos += len(s)
            return True
        self._error("XML0001", f"expected {what} ({s!r})", self.pos)
        return False

    # -- entities ---------------------------------------------------------------
    def _decode_entities(self, raw: str, at_offset: int) -> str:
        """Decode entity and character references in ``raw``."""
        if "&" not in raw:
            return raw
        out: list[str] = []
        i = 0
        while i < len(raw):
            ch = raw[i]
            if ch != "&":
                out.append(ch)
                i += 1
                continue
            end = raw.find(";", i + 1)
            if end == -1:
                self._error(
                    "XML0010",
                    "unterminated entity reference",
                    at_offset + i,
                    "write '&amp;' for a literal ampersand",
                )
                out.append("&")
                i += 1
                continue
            body = raw[i + 1 : end]
            if body.startswith("#x") or body.startswith("#X"):
                try:
                    out.append(chr(int(body[2:], 16)))
                except ValueError:
                    self._error("XML0011", f"bad character reference &{body};", at_offset + i)
            elif body.startswith("#"):
                try:
                    out.append(chr(int(body[1:], 10)))
                except ValueError:
                    self._error("XML0011", f"bad character reference &{body};", at_offset + i)
            elif body in _PREDEFINED_ENTITIES:
                out.append(_PREDEFINED_ENTITIES[body])
            else:
                self._error("XML0012", f"unknown entity &{body};", at_offset + i)
                out.append(f"&{body};")
            i = end + 1
        return "".join(out)

    # -- top level ---------------------------------------------------------------
    def parse_document(self) -> XmlDocument:
        prolog: list[XmlNode] = []
        xml_decl: dict[str, str] = {}
        self._skip_ws()
        if self._startswith("<?xml"):
            xml_decl = self._parse_xml_decl()
        root: XmlElement | None = None
        epilog: list[XmlNode] = []
        while self.pos < self.n:
            self._skip_ws()
            if self.pos >= self.n:
                break
            start = self.pos
            if self._startswith("<!--"):
                node = self._parse_comment()
            elif self._startswith("<!DOCTYPE"):
                self._skip_doctype()
                continue
            elif self._startswith("<?"):
                node = self._parse_pi()
            elif self._peek() == "<":
                if root is not None:
                    self._error(
                        "XML0020",
                        "multiple root elements; an XPDL descriptor has one root",
                        start,
                    )
                elem = self._parse_element()
                if elem is not None:
                    root = elem
                continue
            else:
                self._error("XML0021", "content outside of the root element", start)
                # Recover by skipping to the next '<'.
                nxt = self.text.find("<", self.pos)
                self.pos = self.n if nxt == -1 else nxt
                continue
            (prolog if root is None else epilog).append(node)
        if root is None:
            self._error("XML0022", "document has no root element", 0)
            if self.strict:  # pragma: no cover - strict raises in _error
                raise ParseError("no root element")
            root = XmlElement(SourceSpan.unknown(self.src.name), tag="<missing>")
        return XmlDocument(
            source_name=self.src.name,
            root=root,
            prolog=prolog,
            epilog=epilog,
            xml_decl=xml_decl,
        )

    def _parse_xml_decl(self) -> dict[str, str]:
        start = self.pos
        self.pos += len("<?xml")
        decl: dict[str, str] = {}
        while True:
            self._skip_ws()
            if self._startswith("?>"):
                self.pos += 2
                return decl
            if self.pos >= self.n:
                self._error("XML0002", "unterminated XML declaration", start)
                return decl
            name = self._read_name()
            if name is None:
                self._error("XML0002", "malformed XML declaration", self.pos)
                self.pos += 1
                continue
            self._skip_ws()
            self._expect("=", "'=' in XML declaration")
            self._skip_ws()
            decl[name] = self._parse_quoted_value()

    def _skip_doctype(self) -> None:
        start = self.pos
        depth = 0
        while self.pos < self.n:
            ch = self.text[self.pos]
            if ch == "<":
                depth += 1
            elif ch == ">":
                depth -= 1
                self.pos += 1
                if depth == 0:
                    return
                continue
            self.pos += 1
        self._error("XML0003", "unterminated DOCTYPE", start)

    # -- markup pieces --------------------------------------------------------------
    def _parse_comment(self) -> XmlComment:
        start = self.pos
        self.pos += 4  # '<!--'
        end = self.text.find("-->", self.pos)
        if end == -1:
            self._error("XML0004", "unterminated comment", start)
            body = self.text[self.pos :]
            self.pos = self.n
        else:
            body = self.text[self.pos : end]
            self.pos = end + 3
        return XmlComment(self._span(start), body)

    def _parse_pi(self) -> XmlPI:
        start = self.pos
        self.pos += 2  # '<?'
        target = self._read_name() or ""
        if not target:
            self._error("XML0005", "processing instruction without target", start)
        end = self.text.find("?>", self.pos)
        if end == -1:
            self._error("XML0005", "unterminated processing instruction", start)
            data = self.text[self.pos :]
            self.pos = self.n
        else:
            data = self.text[self.pos : end].strip()
            self.pos = end + 2
        return XmlPI(self._span(start), target, data)

    def _parse_cdata(self) -> XmlCData:
        start = self.pos
        self.pos += len("<![CDATA[")
        end = self.text.find("]]>", self.pos)
        if end == -1:
            self._error("XML0006", "unterminated CDATA section", start)
            body = self.text[self.pos :]
            self.pos = self.n
        else:
            body = self.text[self.pos : end]
            self.pos = end + 3
        return XmlCData(self._span(start), body)

    def _parse_quoted_value(self) -> str:
        quote = self._peek()
        if quote not in "\"'":
            # The paper's own Listing 1 writes quantity=2 (unquoted); accept a
            # bare token with a warning rather than failing the corpus.
            start = self.pos
            while self.pos < self.n and self.text[self.pos] not in " \t\r\n>/=":
                self.pos += 1
            raw = self.text[start : self.pos]
            self.sink.warning(
                "XML0013",
                f"unquoted attribute value {raw!r}",
                self._span(start),
                "quote attribute values per XML well-formedness",
            )
            return self._decode_entities(raw, start)
        self.pos += 1
        start = self.pos
        end = self.text.find(quote, self.pos)
        if end == -1:
            self._error("XML0014", "unterminated attribute value", start - 1)
            raw = self.text[self.pos :]
            self.pos = self.n
            return self._decode_entities(raw, start)
        raw = self.text[start:end]
        self.pos = end + 1
        if "<" in raw:
            self._error("XML0015", "'<' is not allowed inside attribute values", start)
        return self._decode_entities(raw, start)

    def _parse_attributes(self, elem: XmlElement) -> None:
        while True:
            self._skip_ws()
            ch = self._peek()
            if ch in (">", "/", "?", "") or self._startswith("/>"):
                return
            name_start = self.pos
            name = self._read_name()
            if name is None:
                self._error("XML0016", f"unexpected character {ch!r} in tag", self.pos)
                self.pos += 1
                continue
            name_span = self._span(name_start)
            self._skip_ws()
            if self._peek() == "=":
                self.pos += 1
                self._skip_ws()
                value_start = self.pos
                value = self._parse_quoted_value()
                value_span = self._span(value_start)
            else:
                # Attribute without '=value' — the paper's Listing 8 writes
                # <compute_capability="3.0"/> style typos; treat a lone name
                # as boolean-true with a warning.
                self.sink.warning(
                    "XML0017",
                    f"attribute {name!r} has no value; assuming \"true\"",
                    name_span,
                )
                value = "true"
                value_span = name_span
            if name in elem.attributes:
                self._error("XML0018", f"duplicate attribute {name!r}", name_start)
                continue
            elem.attributes[name] = XmlAttribute(name, value, name_span, value_span)
            elem.attribute_order.append(name)

    def _parse_element(self) -> XmlElement | None:
        start = self.pos
        self.pos += 1  # '<'
        tag = self._read_name()
        if tag is None:
            # Handle the paper's '<compute_capability="3.0"/>' pattern:
            # no legal name means garbage; skip to tag end.
            self._error("XML0030", "malformed start tag", start)
            nxt = self.text.find(">", self.pos)
            self.pos = self.n if nxt == -1 else nxt + 1
            return None
        elem = XmlElement(self._span(start), tag=tag)
        self.elements_parsed += 1
        self._parse_attributes(elem)
        self._skip_ws()
        if self._startswith("/>"):
            self.pos += 2
            elem.span = self._span(start)
            return elem
        if not self._expect(">", "'>' closing start tag"):
            return elem
        self._parse_content(elem)
        elem.span = self._span(start)
        return elem

    def _parse_content(self, parent: XmlElement) -> None:
        text_start = self.pos
        buf: list[str] = []

        def flush_text(upto: int) -> None:
            nonlocal text_start
            if buf:
                raw = "".join(buf)
                buf.clear()
                node = XmlText(
                    self.src.span(text_start, upto),
                    self._decode_entities(raw, text_start),
                )
                parent.append(node)

        while self.pos < self.n:
            ch = self.text[self.pos]
            if ch == "<":
                flush_text(self.pos)
                if self._startswith("</"):
                    close_start = self.pos
                    self.pos += 2
                    name = self._read_name()
                    self._skip_ws()
                    self._expect(">", "'>' closing end tag")
                    if name != parent.tag:
                        self._error(
                            "XML0031",
                            f"mismatched end tag </{name}>; expected </{parent.tag}>",
                            close_start,
                        )
                        # Recovery: treat as closing the current element
                        # anyway; the paper's Listing 6 has a stray </core>.
                    return
                if self._startswith("<!--"):
                    parent.append(self._parse_comment())
                elif self._startswith("<![CDATA["):
                    parent.append(self._parse_cdata())
                elif self._startswith("<?"):
                    parent.append(self._parse_pi())
                else:
                    child = self._parse_element()
                    if child is not None:
                        parent.append(child)
                text_start = self.pos
            else:
                buf.append(ch)
                self.pos += 1
        flush_text(self.pos)
        self._error("XML0032", f"unexpected end of file inside <{parent.tag}>", self.pos - 1)


def parse_xml(
    text: str,
    *,
    source_name: str = "<string>",
    sink: DiagnosticSink | None = None,
    strict: bool = False,
) -> XmlDocument:
    """Parse XML text into a :class:`XmlDocument`.

    With ``strict=True`` the first error raises :class:`ParseError`;
    otherwise errors are collected into ``sink`` (a fresh sink is created if
    none is given) and a best-effort tree is returned.
    """
    src = SourceText(source_name, text)
    parser = XmlParser(src, sink, strict=strict)
    doc = parser.parse_document()
    obs = get_observer()
    if obs.enabled:
        obs.count("parse.documents")
        obs.count("parse.elements", parser.elements_parsed)
        obs.count("parse.bytes", len(text))
    if strict:
        parser.sink.raise_if_errors(ParseError)
    return doc


def parse_xml_file(
    path: str,
    *,
    sink: DiagnosticSink | None = None,
    strict: bool = False,
) -> XmlDocument:
    """Parse an XML file from disk."""
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    return parse_xml(text, source_name=path, sink=sink, strict=strict)
