"""From-scratch XML substrate: parser, DOM with source spans, writer, paths.

Stands in for the Xerces parser the paper's prototype used.
"""

from .dom import (
    XmlAttribute,
    XmlCData,
    XmlComment,
    XmlDocument,
    XmlElement,
    XmlNode,
    XmlPI,
    XmlText,
)
from .parser import XmlParser, parse_xml, parse_xml_file
from .writer import XmlWriter, escape_attr, escape_text, write_element, write_xml
from .build import comment, document, element, synth_span, text
from .path import find_all, find_first

__all__ = [
    "XmlAttribute",
    "XmlCData",
    "XmlComment",
    "XmlDocument",
    "XmlElement",
    "XmlNode",
    "XmlPI",
    "XmlText",
    "XmlParser",
    "parse_xml",
    "parse_xml_file",
    "XmlWriter",
    "escape_attr",
    "escape_text",
    "write_element",
    "write_xml",
    "comment",
    "document",
    "element",
    "synth_span",
    "text",
    "find_all",
    "find_first",
]
