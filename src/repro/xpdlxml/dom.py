"""A minimal XML document object model with source spans.

This DOM is deliberately small: elements, text, CDATA, comments and
processing instructions — exactly what ``.xpdl`` descriptors need.  Every
node carries the :class:`~repro.diagnostics.SourceSpan` it was parsed from so
later passes (schema validation, composition) can point at the original text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..diagnostics import SourceSpan


@dataclass(slots=True)
class XmlNode:
    """Base class for DOM nodes."""

    span: SourceSpan


@dataclass(slots=True)
class XmlText(XmlNode):
    """Character data (entity references already decoded)."""

    text: str

    def is_whitespace(self) -> bool:
        return not self.text.strip()


@dataclass(slots=True)
class XmlCData(XmlNode):
    """A ``<![CDATA[...]]>`` section, kept distinct for faithful round-trip."""

    text: str


@dataclass(slots=True)
class XmlComment(XmlNode):
    text: str


@dataclass(slots=True)
class XmlPI(XmlNode):
    """Processing instruction ``<?target data?>``."""

    target: str
    data: str


@dataclass(slots=True)
class XmlAttribute:
    """One attribute, with separate spans for name and value."""

    name: str
    value: str
    name_span: SourceSpan
    value_span: SourceSpan


@dataclass(slots=True)
class XmlElement(XmlNode):
    """An element node.

    ``attribute_order`` preserves source order for round-trip; ``attributes``
    provides O(1) lookup.
    """

    tag: str
    attributes: dict[str, XmlAttribute] = field(default_factory=dict)
    children: list[XmlNode] = field(default_factory=list)
    attribute_order: list[str] = field(default_factory=list)

    # -- attribute access ---------------------------------------------------
    def get(self, name: str, default: str | None = None) -> str | None:
        attr = self.attributes.get(name)
        return attr.value if attr is not None else default

    def __contains__(self, name: str) -> bool:
        return name in self.attributes

    def set(self, name: str, value: str, span: SourceSpan | None = None) -> None:
        span = span or self.span
        if name not in self.attributes:
            self.attribute_order.append(name)
        self.attributes[name] = XmlAttribute(name, value, span, span)

    def remove_attribute(self, name: str) -> None:
        if name in self.attributes:
            del self.attributes[name]
            self.attribute_order.remove(name)

    def attr_items(self) -> Iterator[tuple[str, str]]:
        for name in self.attribute_order:
            yield name, self.attributes[name].value

    def attr_span(self, name: str) -> SourceSpan:
        """Span of an attribute's value (falls back to the element span)."""
        attr = self.attributes.get(name)
        return attr.value_span if attr is not None else self.span

    # -- child access --------------------------------------------------------
    def elements(self, tag: str | None = None) -> list["XmlElement"]:
        """Child elements, optionally filtered by tag."""
        out = [c for c in self.children if isinstance(c, XmlElement)]
        if tag is not None:
            out = [c for c in out if c.tag == tag]
        return out

    def first(self, tag: str) -> "XmlElement | None":
        for c in self.children:
            if isinstance(c, XmlElement) and c.tag == tag:
                return c
        return None

    def text_content(self) -> str:
        """Concatenated character data of direct children."""
        parts = []
        for c in self.children:
            if isinstance(c, (XmlText, XmlCData)):
                parts.append(c.text)
        return "".join(parts)

    def append(self, node: XmlNode) -> None:
        self.children.append(node)

    def iter(self, tag: str | None = None) -> Iterator["XmlElement"]:
        """Depth-first pre-order iteration over descendant elements."""
        if tag is None or self.tag == tag:
            yield self
        for c in self.children:
            if isinstance(c, XmlElement):
                yield from c.iter(tag)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        attrs = " ".join(f'{k}="{v}"' for k, v in self.attr_items())
        return f"<{self.tag}{' ' + attrs if attrs else ''} …>"


@dataclass(slots=True)
class XmlDocument:
    """A parsed document: optional prolog nodes plus one root element."""

    source_name: str
    root: XmlElement
    prolog: list[XmlNode] = field(default_factory=list)
    epilog: list[XmlNode] = field(default_factory=list)
    xml_decl: dict[str, str] = field(default_factory=dict)

    def iter(self, tag: str | None = None) -> Iterator[XmlElement]:
        return self.root.iter(tag)
