"""Canonical XML serialization for the span-carrying DOM.

Two modes: *pretty* (indented, one attribute run per line when long) for
human-maintained descriptors, and *compact* for machine artifacts.  Escaping
is strict so that ``parse(write(doc))`` round-trips element structure,
attributes and character data exactly (modulo insignificant whitespace in
pretty mode).
"""

from __future__ import annotations

from .dom import (
    XmlCData,
    XmlComment,
    XmlDocument,
    XmlElement,
    XmlNode,
    XmlPI,
    XmlText,
)


def escape_text(text: str) -> str:
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def escape_attr(text: str) -> str:
    return (
        text.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace('"', "&quot;")
        .replace("\n", "&#10;")
        .replace("\t", "&#9;")
    )


class XmlWriter:
    """Stateful serializer; construct once per document."""

    def __init__(
        self,
        *,
        pretty: bool = True,
        indent: str = "  ",
        max_line: int = 100,
    ) -> None:
        self.pretty = pretty
        self.indent = indent
        self.max_line = max_line
        self._out: list[str] = []

    # -- public -----------------------------------------------------------
    def write_document(self, doc: XmlDocument) -> str:
        self._out = []
        decl = doc.xml_decl or {"version": "1.0", "encoding": "UTF-8"}
        decl_attrs = " ".join(f'{k}="{escape_attr(v)}"' for k, v in decl.items())
        self._out.append(f"<?xml {decl_attrs}?>")
        if self.pretty:
            self._out.append("\n")
        for node in doc.prolog:
            self._write_node(node, 0)
            if self.pretty:
                self._out.append("\n")
        self._write_node(doc.root, 0)
        for node in doc.epilog:
            if self.pretty:
                self._out.append("\n")
            self._write_node(node, 0)
        if self.pretty:
            self._out.append("\n")
        return "".join(self._out)

    def write_element(self, elem: XmlElement) -> str:
        self._out = []
        self._write_node(elem, 0)
        return "".join(self._out)

    # -- internals ----------------------------------------------------------
    def _write_node(self, node: XmlNode, depth: int) -> None:
        if isinstance(node, XmlElement):
            self._write_element(node, depth)
        elif isinstance(node, XmlText):
            self._out.append(escape_text(node.text))
        elif isinstance(node, XmlCData):
            # ']]>' cannot appear inside CDATA; split it across sections.
            body = node.text.replace("]]>", "]]]]><![CDATA[>")
            self._out.append(f"<![CDATA[{body}]]>")
        elif isinstance(node, XmlComment):
            body = node.text.replace("--", "- -")
            self._out.append(f"<!--{body}-->")
        elif isinstance(node, XmlPI):
            data = f" {node.data}" if node.data else ""
            self._out.append(f"<?{node.target}{data}?>")
        else:  # pragma: no cover - defensive
            raise TypeError(f"cannot serialize {type(node).__name__}")

    def _open_tag(self, elem: XmlElement, depth: int, *, self_close: bool) -> str:
        parts = [f"<{elem.tag}"]
        attrs = [f'{k}="{escape_attr(v)}"' for k, v in elem.attr_items()]
        one_line = f"<{elem.tag}" + ("".join(" " + a for a in attrs))
        pad = self.indent * depth
        if (
            self.pretty
            and attrs
            and len(pad) + len(one_line) + 2 > self.max_line
        ):
            joiner = "\n" + pad + self.indent * 2
            parts.append(joiner + joiner.join(attrs))
        else:
            parts.extend(" " + a for a in attrs)
        parts.append(" />" if self_close else ">")
        return "".join(parts)

    def _write_element(self, elem: XmlElement, depth: int) -> None:
        pad = self.indent * depth if self.pretty else ""
        significant = [
            c
            for c in elem.children
            if not (isinstance(c, XmlText) and c.is_whitespace())
        ]
        if not significant:
            self._out.append(pad + self._open_tag(elem, depth, self_close=True))
            return
        text_only = all(isinstance(c, (XmlText, XmlCData)) for c in significant)
        self._out.append(pad + self._open_tag(elem, depth, self_close=False))
        if text_only:
            for c in significant:
                self._write_node(c, depth + 1)
            self._out.append(f"</{elem.tag}>")
            return
        for c in significant:
            if self.pretty:
                self._out.append("\n")
            if isinstance(c, (XmlText, XmlCData)):
                if self.pretty:
                    self._out.append(self.indent * (depth + 1))
                self._write_node(c, depth + 1)
            else:
                self._write_node(c, depth + 1)
        if self.pretty:
            self._out.append("\n" + pad)
        self._out.append(f"</{elem.tag}>")


def write_xml(doc: XmlDocument, *, pretty: bool = True) -> str:
    """Serialize a document to a string."""
    return XmlWriter(pretty=pretty).write_document(doc)


def write_element(elem: XmlElement, *, pretty: bool = True) -> str:
    """Serialize a single element subtree to a string."""
    return XmlWriter(pretty=pretty).write_element(elem)
