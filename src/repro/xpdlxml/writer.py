"""Canonical XML serialization for the span-carrying DOM.

Two modes: *pretty* (indented, one attribute run per line when long) for
human-maintained descriptors, and *compact* for machine artifacts.  Escaping
is strict so that ``parse(write(doc))`` round-trips element structure,
attributes and character data exactly (modulo insignificant whitespace in
pretty mode).
"""

from __future__ import annotations

from .dom import (
    XmlCData,
    XmlComment,
    XmlDocument,
    XmlElement,
    XmlNode,
    XmlPI,
    XmlText,
)


def escape_text(text: str) -> str:
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def escape_attr(text: str) -> str:
    return (
        text.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace('"', "&quot;")
        .replace("\n", "&#10;")
        .replace("\t", "&#9;")
    )


class XmlWriter:
    """Stateful serializer; construct once per document."""

    def __init__(
        self,
        *,
        pretty: bool = True,
        indent: str = "  ",
        max_line: int = 100,
    ) -> None:
        self.pretty = pretty
        self.indent = indent
        self.max_line = max_line
        self._out: list[str] = []

    # -- public -----------------------------------------------------------
    def write_document(self, doc: XmlDocument) -> str:
        self._out = []
        decl = doc.xml_decl or {"version": "1.0", "encoding": "UTF-8"}
        decl_attrs = " ".join(f'{k}="{escape_attr(v)}"' for k, v in decl.items())
        self._out.append(f"<?xml {decl_attrs}?>")
        if self.pretty:
            self._out.append("\n")
        for node in doc.prolog:
            self._write_node(node, 0)
            if self.pretty:
                self._out.append("\n")
        self._write_node(doc.root, 0)
        for node in doc.epilog:
            if self.pretty:
                self._out.append("\n")
            self._write_node(node, 0)
        if self.pretty:
            self._out.append("\n")
        return "".join(self._out)

    def write_element(self, elem: XmlElement) -> str:
        self._out = []
        self._write_node(elem, 0)
        return "".join(self._out)

    # -- internals ----------------------------------------------------------
    def _write_node(self, node: XmlNode, depth: int) -> None:
        """Serialize one node (and its subtree) onto the output buffer.

        The element walk is iterative — an explicit LIFO work stack of
        pending nodes and literal fragments — so generated models with
        multi-thousand-deep hierarchies serialize without hitting the
        interpreter recursion limit.
        """
        # Stack entries: ("node", node, depth) still to open, or
        # ("lit", text, 0) — an already-rendered fragment (close tags,
        # separators) emitted when popped.
        stack: list[tuple[str, object, int]] = [("node", node, depth)]
        out = self._out
        while stack:
            kind, payload, cur_depth = stack.pop()
            if kind == "lit":
                out.append(payload)  # type: ignore[arg-type]
                continue
            cur = payload
            if isinstance(cur, XmlElement):
                self._write_element(cur, cur_depth, stack)
            elif isinstance(cur, XmlText):
                out.append(escape_text(cur.text))
            elif isinstance(cur, XmlCData):
                # ']]>' cannot appear inside CDATA; split it across sections.
                body = cur.text.replace("]]>", "]]]]><![CDATA[>")
                out.append(f"<![CDATA[{body}]]>")
            elif isinstance(cur, XmlComment):
                body = cur.text.replace("--", "- -")
                out.append(f"<!--{body}-->")
            elif isinstance(cur, XmlPI):
                data = f" {cur.data}" if cur.data else ""
                out.append(f"<?{cur.target}{data}?>")
            else:  # pragma: no cover - defensive
                raise TypeError(f"cannot serialize {type(cur).__name__}")

    def _open_tag(self, elem: XmlElement, depth: int, *, self_close: bool) -> str:
        parts = [f"<{elem.tag}"]
        attrs = [f'{k}="{escape_attr(v)}"' for k, v in elem.attr_items()]
        one_line = f"<{elem.tag}" + ("".join(" " + a for a in attrs))
        pad = self.indent * depth
        if (
            self.pretty
            and attrs
            and len(pad) + len(one_line) + 2 > self.max_line
        ):
            joiner = "\n" + pad + self.indent * 2
            parts.append(joiner + joiner.join(attrs))
        else:
            parts.extend(" " + a for a in attrs)
        parts.append(" />" if self_close else ">")
        return "".join(parts)

    def _write_element(
        self,
        elem: XmlElement,
        depth: int,
        stack: list[tuple[str, object, int]],
    ) -> None:
        """Emit the open tag; push children and the close tag onto ``stack``."""
        pad = self.indent * depth if self.pretty else ""
        significant = [
            c
            for c in elem.children
            if not (isinstance(c, XmlText) and c.is_whitespace())
        ]
        if not significant:
            self._out.append(pad + self._open_tag(elem, depth, self_close=True))
            return
        text_only = all(isinstance(c, (XmlText, XmlCData)) for c in significant)
        self._out.append(pad + self._open_tag(elem, depth, self_close=False))
        # Collected in document order, then pushed reversed so the LIFO
        # stack pops them in document order.
        pending: list[tuple[str, object, int]] = []
        if text_only:
            for c in significant:
                pending.append(("node", c, depth + 1))
            pending.append(("lit", f"</{elem.tag}>", 0))
        else:
            for c in significant:
                if self.pretty:
                    pending.append(("lit", "\n", 0))
                    if isinstance(c, (XmlText, XmlCData)):
                        pending.append(("lit", self.indent * (depth + 1), 0))
                pending.append(("node", c, depth + 1))
            if self.pretty:
                pending.append(("lit", "\n" + pad, 0))
            pending.append(("lit", f"</{elem.tag}>", 0))
        stack.extend(reversed(pending))


def write_xml(doc: XmlDocument, *, pretty: bool = True) -> str:
    """Serialize a document to a string."""
    return XmlWriter(pretty=pretty).write_document(doc)


def write_element(elem: XmlElement, *, pretty: bool = True) -> str:
    """Serialize a single element subtree to a string."""
    return XmlWriter(pretty=pretty).write_element(elem)
