"""Programmatic DOM construction helpers.

Model emitters (discovery, PDL->XPDL conversion, codegen) build DOM trees in
code; these helpers keep that free of span boilerplate.
"""

from __future__ import annotations

from ..diagnostics import SourceSpan
from .dom import XmlComment, XmlDocument, XmlElement, XmlText

_SYNTH = "<generated>"


def synth_span() -> SourceSpan:
    """Span for generated (not parsed) nodes."""
    return SourceSpan.unknown(_SYNTH)


def element(
    tag: str,
    attrs: dict[str, str] | None = None,
    children: list[XmlElement] | None = None,
) -> XmlElement:
    """Create a generated element with attributes and element children."""
    e = XmlElement(synth_span(), tag=tag)
    for k, v in (attrs or {}).items():
        e.set(k, str(v))
    for c in children or []:
        e.append(c)
    return e


def text(value: str) -> XmlText:
    return XmlText(synth_span(), value)


def comment(value: str) -> XmlComment:
    return XmlComment(synth_span(), value)


def document(root: XmlElement, *, source_name: str = _SYNTH) -> XmlDocument:
    return XmlDocument(source_name=source_name, root=root)
