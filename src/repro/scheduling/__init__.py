"""Energy-aware task scheduling on composed XPDL platforms — the EXCESS
optimization layer the paper's models parameterize."""

from .taskgraph import (
    Dependency,
    Task,
    TaskGraph,
    chain,
    fork_join,
    random_dag,
)
from .scheduler import (
    EnergyAwareScheduler,
    LinkMissingWarning,
    Placement,
    Schedule,
)

__all__ = [
    "Dependency",
    "Task",
    "TaskGraph",
    "chain",
    "fork_join",
    "random_dag",
    "EnergyAwareScheduler",
    "LinkMissingWarning",
    "Placement",
    "Schedule",
]
