"""Task graphs for energy-aware scheduling.

XPDL exists to parameterize "a generic framework for system-wide energy
optimization" (Sec. I).  This package is that upper layer: it consumes the
composed platform model (machines with PSMs and instruction energies, links
with transfer costs) and schedules task graphs onto it.

A :class:`TaskGraph` is a DAG of :class:`Task`s.  Each task carries an
instruction mix per ISA dialect (so it can run on any machine whose ISA
provides those instructions), and each dependency edge carries the bytes
that must move when producer and consumer run on different units.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import networkx as nx

from ..diagnostics import XpdlError


@dataclass
class Task:
    """One schedulable unit of work.

    ``mixes`` maps an ISA marker instruction set to the instruction counts
    of this task in that dialect; a machine is *eligible* when its ISA
    covers one of the mixes.  A task with an empty mix is a no-op barrier.
    """

    name: str
    mixes: dict[str, dict[str, int]] = field(default_factory=dict)
    #: Optional restriction to specific machine names.
    allowed_machines: tuple[str, ...] = ()

    def mix_for(self, isa_instructions: Iterable[str]) -> dict[str, int] | None:
        """The first mix fully covered by the given instruction set."""
        available = set(isa_instructions)
        for _dialect, mix in self.mixes.items():
            if set(mix) <= available:
                return mix
        return None


@dataclass(frozen=True, slots=True)
class Dependency:
    """A producer -> consumer edge with its data volume."""

    producer: str
    consumer: str
    nbytes: int = 0


class TaskGraph:
    """A DAG of tasks; thin wrapper over networkx with validation."""

    def __init__(self) -> None:
        self._g = nx.DiGraph()
        self._tasks: dict[str, Task] = {}

    # -- construction -------------------------------------------------------
    def add_task(self, task: Task) -> Task:
        if task.name in self._tasks:
            raise XpdlError(f"duplicate task {task.name!r}")
        self._tasks[task.name] = task
        self._g.add_node(task.name)
        return task

    def add_dependency(
        self, producer: str, consumer: str, *, nbytes: int = 0
    ) -> Dependency:
        for name in (producer, consumer):
            if name not in self._tasks:
                raise XpdlError(f"unknown task {name!r}")
        dep = Dependency(producer, consumer, nbytes)
        self._g.add_edge(producer, consumer, nbytes=nbytes)
        if not nx.is_directed_acyclic_graph(self._g):
            self._g.remove_edge(producer, consumer)
            raise XpdlError(
                f"dependency {producer} -> {consumer} creates a cycle"
            )
        return dep

    # -- queries -----------------------------------------------------------------
    def task(self, name: str) -> Task:
        try:
            return self._tasks[name]
        except KeyError:
            raise XpdlError(f"unknown task {name!r}") from None

    def tasks(self) -> list[Task]:
        return [self._tasks[n] for n in self._g.nodes]

    def __len__(self) -> int:
        return len(self._tasks)

    def predecessors(self, name: str) -> list[tuple[Task, int]]:
        return [
            (self._tasks[p], self._g.edges[p, name]["nbytes"])
            for p in self._g.predecessors(name)
        ]

    def successors(self, name: str) -> list[tuple[Task, int]]:
        return [
            (self._tasks[s], self._g.edges[name, s]["nbytes"])
            for s in self._g.successors(name)
        ]

    def topological_order(self) -> list[Task]:
        return [self._tasks[n] for n in nx.topological_sort(self._g)]

    def graph(self) -> "nx.DiGraph":
        return self._g.copy()


# ---------------------------------------------------------------------------
# Generators for benches/examples
# ---------------------------------------------------------------------------


def chain(n: int, *, mix: dict[str, int], isa: str, nbytes: int = 0) -> TaskGraph:
    """A linear pipeline of ``n`` identical tasks."""
    tg = TaskGraph()
    for i in range(n):
        tg.add_task(Task(f"t{i}", {isa: dict(mix)}))
    for i in range(n - 1):
        tg.add_dependency(f"t{i}", f"t{i + 1}", nbytes=nbytes)
    return tg


def fork_join(
    width: int, *, mix: dict[str, int], isa: str, nbytes: int = 0
) -> TaskGraph:
    """source -> width parallel workers -> sink."""
    tg = TaskGraph()
    tg.add_task(Task("source", {isa: {k: max(1, v // 10) for k, v in mix.items()}}))
    tg.add_task(Task("sink", {isa: {k: max(1, v // 10) for k, v in mix.items()}}))
    for i in range(width):
        tg.add_task(Task(f"w{i}", {isa: dict(mix)}))
        tg.add_dependency("source", f"w{i}", nbytes=nbytes)
        tg.add_dependency(f"w{i}", "sink", nbytes=nbytes)
    return tg


def random_dag(
    n: int,
    *,
    mix: dict[str, int],
    isa: str,
    edge_prob: float = 0.25,
    nbytes: int = 0,
    seed: int = 0,
) -> TaskGraph:
    """A layered random DAG (edges only point to later tasks)."""
    import random

    rng = random.Random(seed)
    tg = TaskGraph()
    for i in range(n):
        scale = 0.5 + rng.random()
        scaled = {k: max(1, int(v * scale)) for k, v in mix.items()}
        tg.add_task(Task(f"t{i}", {isa: scaled}))
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < edge_prob:
                tg.add_dependency(f"t{i}", f"t{j}", nbytes=nbytes)
    return tg
