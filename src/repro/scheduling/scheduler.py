"""Energy-aware list scheduling on XPDL platform models.

The optimization layer the EXCESS project builds on top of XPDL: map a task
DAG onto the machines of a composed platform, then exploit the platform's
power state machines to reclaim schedule slack for energy.

Two phases:

1. **Mapping** (`schedule`): HEFT-style list scheduling — tasks ordered by
   upward rank, each placed on the unit with the earliest energy-feasible
   finish time, transfer costs taken from the modeled links, every unit
   running its fastest power state.
2. **DVFS slack reclamation** (`reclaim_slack`): tasks are re-examined in
   reverse topological order; a task moves to a slower/cheaper power state
   when doing so keeps the whole schedule within the deadline.  This is
   exactly the optimization the paper's power-state-machine data enables.

All costs are analytic over the simulated units' ground truth (the same
numbers execution would produce), so schedules can be *verified* by
replaying them on the testbed.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from ..diagnostics import XpdlError
from ..obs import get_observer
from ..power import PowerStateDef
from ..simhw import SimLink, SimMachine, SimTestbed
from ..units import ENERGY, TIME, Quantity
from .taskgraph import Task, TaskGraph


class LinkMissingWarning(UserWarning):
    """Cross-unit traffic hit a machine pair with no modeled link.

    The scheduler degrades to a zero-cost transfer estimate — loudly:
    this warning fires once per scheduler instance, and every occurrence
    bumps the ``sched.link_missing`` observability counter (the PR-4
    "loud degradation" convention).
    """


@dataclass
class Placement:
    """One task's scheduled execution."""

    task: str
    machine: str
    state: str
    start: float  # seconds
    finish: float
    dynamic_energy: float  # joules
    busy_power: float  # watts while running


@dataclass
class Schedule:
    """A complete mapping plus derived metrics."""

    placements: dict[str, Placement] = field(default_factory=dict)
    machine_busy: dict[str, float] = field(default_factory=dict)

    @property
    def makespan(self) -> float:
        if not self.placements:
            return 0.0
        return max(p.finish for p in self.placements.values())

    def busy_energy(self) -> float:
        return sum(
            p.dynamic_energy + p.busy_power * (p.finish - p.start)
            for p in self.placements.values()
        )

    def idle_energy(self, idle_power: dict[str, float]) -> float:
        """Idle energy over the makespan, given per-machine idle power.

        ``idle_power`` must cover every machine that executes a task:
        a scheduled machine with no entry would silently contribute zero
        and understate fleet energy, so that raises :class:`XpdlError`.
        Extra entries (machines that idled the whole span) are charged
        ``power * makespan`` as expected.
        """
        scheduled = {p.machine for p in self.placements.values()}
        missing = sorted(scheduled - set(idle_power))
        if missing:
            raise XpdlError(
                "idle_power is missing scheduled machine(s): "
                + ", ".join(missing)
            )
        span = self.makespan
        total = 0.0
        for machine, power in idle_power.items():
            total += power * max(0.0, span - self.machine_busy.get(machine, 0.0))
        return total

    def total_energy(self, idle_power: dict[str, float] | None = None) -> float:
        """Busy plus idle energy.

        When ``idle_power`` is given it must name every scheduled machine
        (see :meth:`idle_energy`); when omitted, only busy energy is
        summed.
        """
        return self.busy_energy() + (
            self.idle_energy(idle_power) if idle_power is not None else 0.0
        )

    def on_machine(self, machine: str) -> list[Placement]:
        out = [p for p in self.placements.values() if p.machine == machine]
        out.sort(key=lambda p: p.start)
        return out


class EnergyAwareScheduler:
    """Schedules task graphs onto a simulated testbed's units."""

    def __init__(
        self,
        testbed: SimTestbed,
        *,
        links: dict[tuple[str, str], SimLink] | None = None,
        default_link: SimLink | None = None,
        machines: list[str] | None = None,
    ) -> None:
        self.testbed = testbed
        self.machine_names = machines or list(testbed.machines)
        if not self.machine_names:
            raise XpdlError("testbed has no machines to schedule on")
        self.links = dict(links or {})
        self.default_link = default_link
        if self.default_link is None and testbed.links:
            # Fall back to the first modeled channel for cross-unit traffic.
            first = next(iter(testbed.links.values()))
            self.default_link = next(iter(first.values()))
        self._link_warned = False

    def _note_link_missing(self, src: str, dst: str) -> None:
        """Unmodeled link on a real transfer: count it, warn once."""
        get_observer().count("sched.link_missing")
        if not self._link_warned:
            self._link_warned = True
            warnings.warn(
                f"no modeled link for transfer {src} -> {dst} (and no "
                "default link); treating the transfer as free — model an "
                "<interconnect> or pass default_link to make costs real",
                LinkMissingWarning,
                stacklevel=3,
            )

    # -- per-unit cost models ---------------------------------------------------
    def _machine(self, name: str) -> SimMachine:
        return self.testbed.machine(name)

    def states_of(self, machine: str) -> list[PowerStateDef]:
        m = self._machine(machine)
        if m.psm is None:
            return [
                PowerStateDef(
                    "<fixed>", m.fixed_frequency, Quantity(0.0, ENERGY / TIME)
                )
            ]
        return [s for s in m.psm.by_frequency() if not s.is_off()]

    def fastest_state(self, machine: str) -> PowerStateDef:
        return self.states_of(machine)[-1]

    def idle_power(self, machine: str) -> float:
        m = self._machine(machine)
        base = m.base_power.magnitude
        if m.psm is None:
            return base
        return base + m.psm.idle_state().power.magnitude

    def task_cost(
        self, task: Task, machine: str, state: PowerStateDef
    ) -> tuple[float, float, float] | None:
        """(duration s, dynamic J, busy power W) or None if ineligible."""
        m = self._machine(machine)
        if task.allowed_machines and machine not in task.allowed_machines:
            return None
        mix = task.mix_for(m.truth.names())
        if mix is None:
            return None if task.mixes else (0.0, 0.0, 0.0)
        f = state.frequency.magnitude
        if f <= 0:
            return None
        cycles = sum(
            count * m.truth.cpi(inst) for inst, count in mix.items()
        ) / m.issue_width
        duration = cycles / f
        dynamic = sum(
            count * m.truth.entry(inst).energy_at(f)
            for inst, count in mix.items()
        )
        busy_power = state.power.magnitude + m.base_power.magnitude
        return duration, dynamic, busy_power

    def transfer_time(self, src: str, dst: str, nbytes: int) -> float:
        if src == dst or nbytes <= 0:
            return 0.0
        link = self.links.get((src, dst)) or self.default_link
        if link is None:
            self._note_link_missing(src, dst)
            return 0.0
        return link.transfer(nbytes).time.magnitude

    # -- phase 1: HEFT-style mapping ----------------------------------------------
    def _upward_ranks(self, tg: TaskGraph) -> dict[str, float]:
        """Mean execution cost + critical downstream path, per task."""
        mean_cost: dict[str, float] = {}
        for task in tg.tasks():
            costs = []
            for machine in self.machine_names:
                c = self.task_cost(task, machine, self.fastest_state(machine))
                if c is not None:
                    costs.append(c[0])
            if not costs:
                raise XpdlError(
                    f"task {task.name!r} is not runnable on any machine"
                )
            mean_cost[task.name] = sum(costs) / len(costs)
        ranks: dict[str, float] = {}
        for task in reversed(tg.topological_order()):
            succ = tg.successors(task.name)
            downstream = 0.0
            for s, nbytes in succ:
                # Mean transfer estimate: default link time.
                if self.default_link is not None and nbytes:
                    t = self.default_link.transfer(nbytes).time.magnitude
                else:
                    t = 0.0
                    if nbytes:
                        # No link modeled at all: the rank estimate treats
                        # the transfer as free — make that loud.
                        self._note_link_missing(task.name, s.name)
                downstream = max(downstream, t + ranks[s.name])
            ranks[task.name] = mean_cost[task.name] + downstream
        return ranks

    def schedule(self, tg: TaskGraph) -> Schedule:
        """Map every task; all units at their fastest state."""
        ranks = self._upward_ranks(tg)
        order = sorted(tg.tasks(), key=lambda t: -ranks[t.name])
        # Respect dependencies: stable-sort by rank within topological order.
        topo_pos = {t.name: i for i, t in enumerate(tg.topological_order())}
        order.sort(key=lambda t: (topo_pos[t.name],))
        order.sort(key=lambda t: -ranks[t.name])
        # A simple insertion-free machine-availability model.
        sched = Schedule()
        available: dict[str, float] = {m: 0.0 for m in self.machine_names}
        done: set[str] = set()

        def place(task: Task) -> None:
            best: tuple[float, str, tuple[float, float, float]] | None = None
            for machine in self.machine_names:
                state = self.fastest_state(machine)
                cost = self.task_cost(task, machine, state)
                if cost is None:
                    continue
                ready = 0.0
                for pred, nbytes in tg.predecessors(task.name):
                    p = sched.placements[pred.name]
                    ready = max(
                        ready,
                        p.finish
                        + self.transfer_time(p.machine, machine, nbytes),
                    )
                start = max(ready, available[machine])
                finish = start + cost[0]
                if best is None or finish < best[0]:
                    best = (finish, machine, cost)
            if best is None:
                raise XpdlError(
                    f"task {task.name!r} is not runnable on any machine"
                )
            finish, machine, (duration, dynamic, busy_power) = best
            start = finish - duration
            state = self.fastest_state(machine)
            sched.placements[task.name] = Placement(
                task=task.name,
                machine=machine,
                state=state.name,
                start=start,
                finish=finish,
                dynamic_energy=dynamic,
                busy_power=busy_power,
            )
            available[machine] = finish
            sched.machine_busy[machine] = (
                sched.machine_busy.get(machine, 0.0) + duration
            )

        # Process in dependency-respecting rank order.
        pending = order[:]
        while pending:
            progressed = False
            for task in list(pending):
                if all(
                    p.name in done for p, _b in tg.predecessors(task.name)
                ):
                    place(task)
                    done.add(task.name)
                    pending.remove(task)
                    progressed = True
            if not progressed:  # pragma: no cover - DAG guarantees progress
                raise XpdlError("scheduler deadlock (cyclic graph?)")
        return sched

    # -- phase 2: DVFS slack reclamation ----------------------------------------------
    def _retime(self, tg: TaskGraph, sched: Schedule) -> None:
        """Recompute start/finish keeping mapping, states and per-machine
        order fixed."""
        order = tg.topological_order()
        machine_ready: dict[str, float] = {m: 0.0 for m in self.machine_names}
        # Preserve the established per-machine sequence.
        seq: dict[str, list[str]] = {}
        for m in self.machine_names:
            seq[m] = [p.task for p in sched.on_machine(m)]
        placed: set[str] = set()
        sched.machine_busy = {m: 0.0 for m in self.machine_names}
        for task in order:
            p = sched.placements[task.name]
            duration = p.finish - p.start
            ready = machine_ready[p.machine]
            # Machine order constraint: all earlier tasks in this machine's
            # sequence must be placed first; topological processing plus the
            # ready time handles it because retime keeps durations per task.
            for pred, nbytes in tg.predecessors(task.name):
                pp = sched.placements[pred.name]
                ready = max(
                    ready,
                    pp.finish + self.transfer_time(pp.machine, p.machine, nbytes),
                )
            p.start = ready
            p.finish = ready + duration
            machine_ready[p.machine] = p.finish
            sched.machine_busy[p.machine] += duration
            placed.add(task.name)

    def reclaim_slack(
        self,
        tg: TaskGraph,
        sched: Schedule,
        *,
        deadline: float | None = None,
    ) -> int:
        """Lower power states where the deadline allows; returns the number
        of tasks slowed down.  ``deadline`` defaults to the current
        makespan (pure slack reclamation, no makespan growth)."""
        limit = deadline if deadline is not None else sched.makespan
        if sched.makespan > limit + 1e-12:
            raise XpdlError(
                f"schedule already misses the deadline "
                f"({sched.makespan:.6f}s > {limit:.6f}s)"
            )
        slowed = 0
        idle = {m: self.idle_power(m) for m in self.machine_names}
        for task in reversed(tg.topological_order()):
            p = sched.placements[task.name]
            machine = p.machine
            current_states = self.states_of(machine)
            current_idx = next(
                i for i, s in enumerate(current_states) if s.name == p.state
            )
            best_energy = None
            best_state_idx = current_idx
            for idx in range(current_idx + 1):
                state = current_states[idx]
                cost = self.task_cost(tg.task(task.name), machine, state)
                if cost is None:
                    continue
                duration, dynamic, busy_power = cost
                old = (
                    p.state,
                    p.start,
                    p.finish,
                    p.dynamic_energy,
                    p.busy_power,
                )
                p.state = state.name
                p.finish = p.start + duration
                p.dynamic_energy = dynamic
                p.busy_power = busy_power
                self._retime(tg, sched)
                if sched.makespan <= limit + 1e-12:
                    energy = sched.total_energy(idle)
                    if best_energy is None or energy < best_energy:
                        best_energy = energy
                        best_state_idx = idx
                        best_snapshot = (
                            state.name,
                            duration,
                            dynamic,
                            busy_power,
                        )
                # Roll back before trying the next candidate.
                p.state, p.start, p.finish, p.dynamic_energy, p.busy_power = old
                self._retime(tg, sched)
            if best_state_idx != current_idx:
                name, duration, dynamic, busy_power = best_snapshot
                p.state = name
                p.finish = p.start + duration
                p.dynamic_energy = dynamic
                p.busy_power = busy_power
                self._retime(tg, sched)
                slowed += 1
        return slowed

    # -- verification -----------------------------------------------------------------
    def verify_on_testbed(self, tg: TaskGraph, sched: Schedule) -> dict[str, float]:
        """Replay every placement on the actual simulated machines and
        compare the analytic costs; returns per-task relative time error.

        Analytic scheduling and simulated execution share the ground truth,
        so errors beyond float noise indicate a scheduler bug.

        State changes go through :meth:`PsmCursor.go` — so an undeclared
        switching path raises instead of teleporting the FSM — and every
        touched cursor is restored to its pre-verify snapshot afterwards:
        verification never leaves the shared testbed in whatever state the
        last replayed task happened to use."""
        errors: dict[str, float] = {}
        saved: dict[str, tuple] = {}
        try:
            for task in tg.tasks():
                p = sched.placements[task.name]
                m = self._machine(p.machine)
                if m.psm is not None and m.cursor is not None:
                    if p.machine not in saved:
                        c = m.cursor
                        saved[p.machine] = (
                            c.current,
                            c.switch_time,
                            c.switch_energy,
                            c.switches,
                        )
                    m.cursor.go(p.state)
                mix = task.mix_for(m.truth.names()) or {}
                if not mix:
                    errors[task.name] = 0.0
                    continue
                run = m.run_stream(mix)
                analytic = p.finish - p.start
                errors[task.name] = (
                    abs(run.duration.magnitude - analytic) / analytic
                    if analytic
                    else 0.0
                )
        finally:
            for machine, snap in saved.items():
                c = self._machine(machine).cursor
                if c is not None:
                    (c.current, c.switch_time, c.switch_energy, c.switches) = snap
        return errors
