"""PEPPHER PDL baseline: data model, parser, query language, conversion and
modularity metrics (paper Sec. II)."""

from .model import (
    ControlRole,
    PdlInterconnect,
    PdlMemoryRegion,
    PdlPlatform,
    PdlProcessingUnit,
    PdlProperty,
)
from .parser import parse_pdl, write_pdl
from .query import PdlQueryEngine
from .convert import pdl_to_xpdl, xpdl_to_pdl
from .metrics import (
    SpecMetrics,
    comparison_rows,
    measure_pdl,
    measure_xpdl,
)

__all__ = [
    "ControlRole",
    "PdlInterconnect",
    "PdlMemoryRegion",
    "PdlPlatform",
    "PdlProcessingUnit",
    "PdlProperty",
    "parse_pdl",
    "write_pdl",
    "PdlQueryEngine",
    "pdl_to_xpdl",
    "xpdl_to_pdl",
    "SpecMetrics",
    "comparison_rows",
    "measure_pdl",
    "measure_xpdl",
]
