"""Conversion between PDL and XPDL.

``xpdl_to_pdl`` flattens a composed XPDL system into the monolithic PDL
form: the control hierarchy is *derived* from the hardware structure (first
CPU becomes the Master, further CPUs Hybrids, devices Workers — exactly the
implicit-role observation of Sec. II-A), data-sheet attributes become ad-hoc
key-value properties (the ``x86_MAX_CLOCK_FREQUENCY`` pattern the paper
criticizes), and every reused descriptor is inlined again at each use site.
PDL being single-node, a cluster becomes one document per node.

``pdl_to_xpdl`` lifts a PDL platform into an XPDL concrete model, turning
role-typed PUs into cpu/device elements and property bags into
``<properties>`` blocks.
"""

from __future__ import annotations

from ..model import (
    Cpu,
    Device,
    Gpu,
    Interconnect,
    Memory,
    ModelElement,
    Node,
    System,
)
from ..xpdlxml import XmlElement, document, element, write_xml
from .model import (
    ControlRole,
    PdlInterconnect,
    PdlMemoryRegion,
    PdlPlatform,
    PdlProcessingUnit,
)


def _property_name(kind: str, attr: str) -> str:
    """XPDL attribute -> PDL ad-hoc property key."""
    return f"{kind}_{attr}".upper()


def _attach_attr_properties(pu, elem: ModelElement) -> None:
    for k, v in elem.plain_attrs().items():
        pu.set_property(_property_name(elem.kind, k), v)


def _collect_units(scope: ModelElement) -> tuple[list[ModelElement], list[ModelElement]]:
    """(CPU packages, accelerator devices) directly within one node scope."""
    cpus: list[ModelElement] = []
    devices: list[ModelElement] = []
    for elem in scope.walk():
        if isinstance(elem, Cpu):
            # Skip CPUs nested inside devices (the Myriad1 on the MV153):
            # PDL models the board as one Worker.
            if any(isinstance(a, (Device, Gpu)) for a in elem.ancestors()):
                continue
            cpus.append(elem)
        elif isinstance(elem, (Device, Gpu)):
            devices.append(elem)
    return cpus, devices


def xpdl_to_pdl(root: ModelElement) -> list[PdlPlatform]:
    """Flatten a composed XPDL system into PDL documents (one per node)."""
    scopes: list[tuple[str, ModelElement]] = []
    nodes = root.find_all(Node)
    if nodes:
        for i, node in enumerate(nodes):
            scopes.append((node.ident or f"node{i}", node))
    else:
        scopes.append((root.ident or root.name or "platform", root))

    platforms: list[PdlPlatform] = []
    for scope_name, scope in scopes:
        platform = PdlPlatform(name=scope_name)
        cpus, devices = _collect_units(scope)
        master: PdlProcessingUnit | None = None
        for i, cpu in enumerate(cpus):
            role = ControlRole.MASTER if i == 0 else ControlRole.HYBRID
            pu = PdlProcessingUnit(
                ident=cpu.ident or cpu.name or f"cpu{i}",
                role=role,
                pu_type=cpu.attrs.get("type", "cpu"),
            )
            _attach_attr_properties(pu, cpu)
            # PDL has no core/cache elements: flatten them into properties.
            from ..analysis import physical_walk

            core_count = sum(
                1 for e in physical_walk(cpu) if e.kind == "core"
            )
            pu.set_property(_property_name("cpu", "num_cores"), str(core_count))
            for cache in (e for e in cpu.walk() if e.kind == "cache"):
                key = _property_name(
                    "cache", f"{cache.name or cache.ident or 'L'}_size"
                )
                pu.set_property(key, cache.attrs.get("size", "") + cache.attrs.get("unit", ""))
            if master is None:
                master = pu
            else:
                master.add(pu)
        for j, dev in enumerate(devices):
            pu = PdlProcessingUnit(
                ident=dev.ident or dev.name or f"dev{j}",
                role=ControlRole.WORKER,
                pu_type=dev.attrs.get("type", dev.kind),
            )
            _attach_attr_properties(pu, dev)
            if master is not None:
                master.add(pu)
            else:
                master = PdlProcessingUnit(
                    ident="implicit_host", role=ControlRole.MASTER
                )
                master.add(pu)
        platform.master = master
        for k, mem in enumerate(
            e for e in scope.walk() if isinstance(e, Memory)
        ):
            region = PdlMemoryRegion(
                ident=mem.ident or mem.name or f"mem{k}",
                size=(mem.attrs.get("size", "") + mem.attrs.get("unit", "")),
                scope="device"
                if any(isinstance(a, (Device, Gpu)) for a in mem.ancestors())
                else "global",
            )
            platform.memory_regions.append(region)
        pu_ids = {pu.ident for pu in platform.processing_units()}
        mem_ids = {m.ident for m in platform.memory_regions}
        by_id = {e.ident: e for e in scope.walk() if e.ident}

        def resolve_endpoint(ref: str | None) -> str | None:
            """Map an XPDL endpoint to a PDL PU/memory id.

            XPDL endpoints may name groups (Listing 11's head="cpu1" points
            at a two-socket group); PDL has no such structure, so fall back
            to the first PU inside the referenced element.
            """
            if ref is None:
                return None
            if ref in pu_ids or ref in mem_ids:
                return ref
            target = by_id.get(ref)
            if target is not None:
                for e in target.walk():
                    if e.ident in pu_ids:
                        return e.ident
            return ref

        for ic in scope.find_all(Interconnect):
            head, tail = ic.attrs.get("head"), ic.attrs.get("tail")
            if head is None and tail is None:
                continue
            endpoints = tuple(
                e
                for e in (resolve_endpoint(head), resolve_endpoint(tail))
                if e
            )
            platform.interconnects.append(
                PdlInterconnect(
                    ident=ic.ident or ic.label(),
                    endpoints=endpoints,
                    bandwidth=ic.attrs.get("max_bandwidth", "")
                    + ic.attrs.get("max_bandwidth_unit", ""),
                )
            )
        platforms.append(platform)
    return platforms


def pdl_to_xpdl(platform: PdlPlatform) -> ModelElement:
    """Lift a PDL platform into an XPDL concrete system model."""
    system = System(attrs={"id": platform.name})

    def convert_pu(pu: PdlProcessingUnit) -> ModelElement:
        if pu.role is ControlRole.WORKER:
            elem: ModelElement = Device(attrs={"id": pu.ident})
            elem.attrs["role"] = "worker"
        else:
            elem = Cpu(attrs={"id": pu.ident})
            elem.attrs["role"] = (
                "master" if pu.role is ControlRole.MASTER else "hybrid"
            )
        if pu.pu_type:
            elem.attrs["pu_type"] = pu.pu_type
        if pu.properties:
            from ..model import Properties, Property

            props = Properties(attrs={})
            for p in pu.properties.values():
                props.add(Property(attrs={"name": p.name, "value": p.value}))
            elem.add(props)
        return elem

    if platform.master is not None:
        for pu in platform.master.walk():
            system.add(convert_pu(pu))
    for region in platform.memory_regions:
        mem = Memory(attrs={"id": region.ident})
        if region.size:
            mem.attrs["capacity"] = region.size
        system.add(mem)
    if platform.interconnects:
        from ..model import Interconnects

        ics = Interconnects(attrs={})
        for ic in platform.interconnects:
            e = Interconnect(attrs={"id": ic.ident})
            if len(ic.endpoints) >= 1:
                e.attrs["head"] = ic.endpoints[0]
            if len(ic.endpoints) >= 2:
                e.attrs["tail"] = ic.endpoints[1]
            ics.add(e)
        system.add(ics)
    return system
