"""PDL's basic property query language.

"The existence and, where existing, values of specified properties can be
looked up by a basic query language" (Sec. II-C).  Queries are of the form::

    exists(<pu-id>, <key>)
    value(<pu-id>, <key>)
    find(<key>)                # PUs having the key
    find(<key>=<value>)        # PUs whose key equals value
    role(<Master|Worker|Hybrid>)

evaluated against one platform.  Both keys and values are strings, as in
PDL itself.
"""

from __future__ import annotations

import re

from ..diagnostics import QueryError
from .model import ControlRole, PdlPlatform, PdlProcessingUnit

_QUERY_RE = re.compile(
    r"^\s*(?P<fn>exists|value|find|role)\s*\(\s*(?P<args>[^)]*)\s*\)\s*$"
)


class PdlQueryEngine:
    """Evaluates basic property queries over one PDL platform."""

    def __init__(self, platform: PdlPlatform) -> None:
        self.platform = platform

    # -- programmatic API ------------------------------------------------------
    def exists(self, pu_id: str, key: str) -> bool:
        pu = self._pu(pu_id)
        return pu.has_property(key)

    def value(self, pu_id: str, key: str) -> str | None:
        pu = self._pu(pu_id)
        return pu.property_value(key)

    def find(self, key: str, value: str | None = None) -> list[PdlProcessingUnit]:
        out = []
        for pu in self.platform.processing_units():
            if not pu.has_property(key):
                continue
            if value is not None and pu.property_value(key) != value:
                continue
            out.append(pu)
        return out

    def with_role(self, role: ControlRole) -> list[PdlProcessingUnit]:
        return [
            pu
            for pu in self.platform.processing_units()
            if pu.role is role
        ]

    def _pu(self, pu_id: str) -> PdlProcessingUnit:
        pu = self.platform.pu_by_id(pu_id)
        if pu is None:
            raise QueryError(
                f"platform {self.platform.name!r} has no PU {pu_id!r}"
            )
        return pu

    # -- string query form ------------------------------------------------------
    def query(self, text: str):
        """Evaluate one textual query."""
        m = _QUERY_RE.match(text)
        if m is None:
            raise QueryError(f"malformed PDL query {text!r}")
        fn = m.group("fn")
        args = [a.strip() for a in m.group("args").split(",") if a.strip()]
        if fn == "exists":
            if len(args) != 2:
                raise QueryError("exists() needs (pu-id, key)")
            return self.exists(args[0], args[1])
        if fn == "value":
            if len(args) != 2:
                raise QueryError("value() needs (pu-id, key)")
            return self.value(args[0], args[1])
        if fn == "find":
            if len(args) != 1:
                raise QueryError("find() needs (key) or (key=value)")
            if "=" in args[0]:
                key, _, value = args[0].partition("=")
                return [pu.ident for pu in self.find(key.strip(), value.strip())]
            return [pu.ident for pu in self.find(args[0])]
        if fn == "role":
            if len(args) != 1:
                raise QueryError("role() needs (Master|Worker|Hybrid)")
            try:
                role = ControlRole(args[0])
            except ValueError:
                raise QueryError(f"unknown role {args[0]!r}") from None
            return [pu.ident for pu in self.with_role(role)]
        raise QueryError(f"unknown query function {fn!r}")  # pragma: no cover
