"""Parser and writer for PDL's XML surface syntax.

The concrete syntax follows the published PDL examples: a ``<platform>``
document with nested ``<pu>`` elements forming the control hierarchy,
``<memoryregion>``/``<interconnect>`` blocks and ``<property>`` key-value
pairs at any level::

    <platform name="gpu_server">
      <pu id="cpu0" role="Master" type="x86_64">
        <property name="x86_MAX_CLOCK_FREQUENCY" value="2000000000"/>
        <pu id="gpu0" role="Worker" type="gpu"/>
      </pu>
      <memoryregion id="main" size="16GB" scope="global"/>
      <interconnect id="pci0" endpoints="cpu0 gpu0" bandwidth="6GiB/s"/>
    </platform>
"""

from __future__ import annotations

from ..diagnostics import ParseError
from ..xpdlxml import XmlElement, document, element, parse_xml, write_xml
from .model import (
    ControlRole,
    PdlInterconnect,
    PdlMemoryRegion,
    PdlPlatform,
    PdlProcessingUnit,
)


def _read_properties(elem: XmlElement, holder) -> None:
    for prop in elem.elements("property"):
        name = prop.get("name")
        if not name:
            continue
        holder_target = (
            holder.properties if isinstance(holder, PdlPlatform) else None
        )
        value = prop.get("value") or ""
        mandatory = prop.get("mandatory") == "true"
        if holder_target is not None:
            from .model import PdlProperty

            holder_target[name] = PdlProperty(name, value, mandatory)
        else:
            holder.set_property(name, value, mandatory=mandatory)


def _parse_pu(elem: XmlElement) -> PdlProcessingUnit:
    role_text = elem.get("role") or "Worker"
    try:
        role = ControlRole(role_text)
    except ValueError:
        raise ParseError(
            f"unknown PDL control role {role_text!r} "
            "(expected Master/Worker/Hybrid)"
        ) from None
    pu = PdlProcessingUnit(
        ident=elem.get("id") or "",
        role=role,
        pu_type=elem.get("type") or "",
    )
    _read_properties(elem, pu)
    for child in elem.elements("pu"):
        pu.children.append(_parse_pu(child))
    return pu


def parse_pdl(text: str, *, source_name: str = "<pdl>") -> PdlPlatform:
    """Parse a PDL platform document."""
    doc = parse_xml(text, source_name=source_name, strict=True)
    root = doc.root
    if root.tag != "platform":
        raise ParseError(f"expected <platform> root, found <{root.tag}>")
    platform = PdlPlatform(name=root.get("name") or "platform")
    _read_properties(root, platform)
    pus = root.elements("pu")
    if pus:
        platform.master = _parse_pu(pus[0])
        for extra in pus[1:]:
            # Multiple top-level PUs: keep them under the first so the
            # control tree stays connected; validate() reports role issues.
            platform.master.children.append(_parse_pu(extra))
    for mr in root.elements("memoryregion"):
        region = PdlMemoryRegion(
            ident=mr.get("id") or "",
            size=mr.get("size") or "",
            scope=mr.get("scope") or "global",
        )
        _read_properties(mr, region)
        platform.memory_regions.append(region)
    for ic in root.elements("interconnect"):
        inter = PdlInterconnect(
            ident=ic.get("id") or "",
            endpoints=tuple((ic.get("endpoints") or "").split()),
            bandwidth=ic.get("bandwidth") or "",
        )
        _read_properties(ic, inter)
        platform.interconnects.append(inter)
    return platform


def _pu_to_xml(pu: PdlProcessingUnit) -> XmlElement:
    e = element(
        "pu",
        {"id": pu.ident, "role": pu.role.value},
    )
    if pu.pu_type:
        e.set("type", pu.pu_type)
    for prop in pu.properties.values():
        p = element("property", {"name": prop.name, "value": prop.value})
        if prop.mandatory:
            p.set("mandatory", "true")
        e.append(p)
    for child in pu.children:
        e.append(_pu_to_xml(child))
    return e


def write_pdl(platform: PdlPlatform) -> str:
    """Serialize a platform back to PDL XML."""
    root = element("platform", {"name": platform.name})
    for prop in platform.properties.values():
        p = element("property", {"name": prop.name, "value": prop.value})
        if prop.mandatory:
            p.set("mandatory", "true")
        root.append(p)
    if platform.master is not None:
        root.append(_pu_to_xml(platform.master))
    for region in platform.memory_regions:
        mr = element(
            "memoryregion",
            {"id": region.ident, "size": region.size, "scope": region.scope},
        )
        for prop in region.properties.values():
            mr.append(
                element("property", {"name": prop.name, "value": prop.value})
            )
        root.append(mr)
    for ic in platform.interconnects:
        e = element(
            "interconnect",
            {
                "id": ic.ident,
                "endpoints": " ".join(ic.endpoints),
                "bandwidth": ic.bandwidth,
            },
        )
        for prop in ic.properties.values():
            e.append(
                element("property", {"name": prop.name, "value": prop.value})
            )
        root.append(e)
    return write_xml(document(root, source_name=f"{platform.name}.pdl.xml"))
