"""Modularity metrics: XPDL's distributed descriptors vs PDL monoliths.

Quantifies the Sec. II-D argument — "PDL ... tends to produce monolithic
system descriptions, which limits the reuse of specifications of platform
subcomponents" — with measurable numbers for experiment E4:

* specification size (files, lines, elements) of each representation of the
  same platform;
* duplication: identical serialized element subtrees occurring more than
  once within one specification set;
* reuse: how many times each shared XPDL descriptor is referenced.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..repository import ModelRepository
from ..xpdlxml import XmlElement, parse_xml, write_element
from .model import PdlPlatform
from .parser import write_pdl


@dataclass
class SpecMetrics:
    """Size/duplication metrics of one specification set."""

    label: str
    files: int = 0
    lines: int = 0
    elements: int = 0
    duplicated_subtrees: int = 0
    duplicated_lines: int = 0
    reuse_counts: dict[str, int] = field(default_factory=dict)

    @property
    def duplication_ratio(self) -> float:
        return self.duplicated_lines / self.lines if self.lines else 0.0


def _subtree_fingerprints(root: XmlElement) -> list[tuple[str, int]]:
    """(fingerprint, line count) of every element subtree with >= 2 nodes."""
    out: list[tuple[str, int]] = []

    def rec(elem: XmlElement) -> None:
        kids = elem.elements()
        if kids:
            text = write_element(elem)
            digest = hashlib.sha256(text.encode()).hexdigest()
            out.append((digest, text.count("\n") + 1))
        for c in kids:
            rec(c)

    rec(root)
    return out


def _measure_documents(label: str, documents: list[str]) -> SpecMetrics:
    metrics = SpecMetrics(label=label, files=len(documents))
    seen: dict[str, int] = {}
    dup_lines = 0
    dup_count = 0
    for text in documents:
        metrics.lines += text.count("\n") + 1
        doc = parse_xml(text)
        metrics.elements += sum(1 for _ in doc.root.iter())
        for digest, nlines in _subtree_fingerprints(doc.root):
            if digest in seen:
                dup_count += 1
                dup_lines += nlines
            seen[digest] = seen.get(digest, 0) + 1
    metrics.duplicated_subtrees = dup_count
    metrics.duplicated_lines = dup_lines
    return metrics


def measure_pdl(platforms: list[PdlPlatform], *, label: str = "PDL") -> SpecMetrics:
    """Metrics of a PDL representation (one monolithic file per platform)."""
    return _measure_documents(label, [write_pdl(p) for p in platforms])


def measure_xpdl(
    repository: ModelRepository,
    system: str,
    *,
    label: str = "XPDL",
) -> SpecMetrics:
    """Metrics of the XPDL representation of ``system``.

    Counts the referenced descriptor closure once each (that is the point of
    modularity) and records how often each descriptor is referenced.
    """
    closure = repository.load_closure(system)
    documents = [lm.text for lm in closure.values()]
    metrics = _measure_documents(label, documents)
    # Reference counts: scan every loaded model for type refs into the closure.
    counts: dict[str, int] = {ident: 0 for ident in closure}
    for lm in closure.values():
        for elem in lm.model.walk():
            ref = elem.attrs.get("type")
            if ref in counts and lm.identifier != ref:
                counts[ref] += 1
            for sup in elem.extends:
                if sup in counts:
                    counts[sup] += 1
    metrics.reuse_counts = {k: v for k, v in counts.items() if v > 0}
    return metrics


def comparison_rows(
    xpdl: SpecMetrics, pdl: SpecMetrics
) -> list[tuple[str, str, str]]:
    """(metric, xpdl value, pdl value) rows for the E4 table."""
    shared = sum(1 for v in xpdl.reuse_counts.values() if v > 1)
    return [
        ("files", str(xpdl.files), str(pdl.files)),
        ("lines", str(xpdl.lines), str(pdl.lines)),
        ("elements", str(xpdl.elements), str(pdl.elements)),
        (
            "duplicated subtrees",
            str(xpdl.duplicated_subtrees),
            str(pdl.duplicated_subtrees),
        ),
        (
            "duplicated lines",
            str(xpdl.duplicated_lines),
            str(pdl.duplicated_lines),
        ),
        (
            "duplication ratio",
            f"{xpdl.duplication_ratio:.1%}",
            f"{pdl.duplication_ratio:.1%}",
        ),
        ("descriptors reused >1x", str(shared), "n/a"),
    ]
