"""The PEPPHER PDL data model (Sandrieser et al. [1]; paper Sec. II).

PDL models a single-node heterogeneous system from the *programmer
perspective*: processing units carry a control role — one **Master** (the
feature-rich PU where execution starts), **Worker** leaves (accelerators
that cannot launch work themselves) and **Hybrid** inner nodes — arranged in
a logic control tree.  Everything else (installed software, clock limits,
...) is expressed as free-form string key-value properties, optionally
mandatory.  Memory regions and interconnects are the only other first-class
blocks.

This baseline implementation exists so the XPDL comparison experiments
(modularity metrics E4, converter round-trips) run against the real thing,
not a strawman.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..diagnostics import XpdlError


class ControlRole(enum.Enum):
    """The PDL control role of a processing unit."""

    MASTER = "Master"
    WORKER = "Worker"
    HYBRID = "Hybrid"


@dataclass
class PdlProperty:
    """A free-form key-value property; keys and values are strings."""

    name: str
    value: str
    mandatory: bool = False


@dataclass
class PdlPropertyHolder:
    """Common property-bag behaviour."""

    ident: str
    properties: dict[str, PdlProperty] = field(default_factory=dict)

    def set_property(
        self, name: str, value: str, *, mandatory: bool = False
    ) -> None:
        self.properties[name] = PdlProperty(name, value, mandatory)

    def property_value(self, name: str) -> str | None:
        p = self.properties.get(name)
        return p.value if p is not None else None

    def has_property(self, name: str) -> bool:
        return name in self.properties

    def missing_mandatory(self) -> list[str]:
        return [
            p.name for p in self.properties.values()
            if p.mandatory and not p.value
        ]


@dataclass
class PdlProcessingUnit(PdlPropertyHolder):
    """A PU in the control hierarchy."""

    role: ControlRole = ControlRole.WORKER
    pu_type: str = ""
    children: list["PdlProcessingUnit"] = field(default_factory=list)

    def add(self, child: "PdlProcessingUnit") -> "PdlProcessingUnit":
        if self.role is ControlRole.WORKER:
            raise XpdlError(
                f"PDL worker PU {self.ident!r} cannot control other PUs"
            )
        self.children.append(child)
        return child

    def walk(self):
        yield self
        for c in self.children:
            yield from c.walk()


@dataclass
class PdlMemoryRegion(PdlPropertyHolder):
    """A data storage facility (main memory, device memory, ...)."""

    size: str = ""
    scope: str = "global"  # global | device | shared


@dataclass
class PdlInterconnect(PdlPropertyHolder):
    """Communication facility between two or more PUs."""

    endpoints: tuple[str, ...] = ()
    bandwidth: str = ""


@dataclass
class PdlPlatform:
    """A complete PDL platform description (one monolithic document)."""

    name: str
    master: PdlProcessingUnit | None = None
    memory_regions: list[PdlMemoryRegion] = field(default_factory=list)
    interconnects: list[PdlInterconnect] = field(default_factory=list)
    properties: dict[str, PdlProperty] = field(default_factory=dict)

    # -- structure -----------------------------------------------------------
    def processing_units(self) -> list[PdlProcessingUnit]:
        return list(self.master.walk()) if self.master is not None else []

    def pu_by_id(self, ident: str) -> PdlProcessingUnit | None:
        for pu in self.processing_units():
            if pu.ident == ident:
                return pu
        return None

    def workers(self) -> list[PdlProcessingUnit]:
        return [
            pu
            for pu in self.processing_units()
            if pu.role is ControlRole.WORKER
        ]

    def validate(self) -> list[str]:
        """PDL well-formedness: exactly one master, role tree consistency.

        Returns a list of problems (empty when valid).
        """
        problems: list[str] = []
        if self.master is None:
            problems.append("platform has no Master PU")
            return problems
        if self.master.role is not ControlRole.MASTER:
            problems.append(
                f"control-tree root {self.master.ident!r} has role "
                f"{self.master.role.value}, expected Master"
            )
        masters = [
            pu
            for pu in self.processing_units()
            if pu.role is ControlRole.MASTER
        ]
        if len(masters) > 1:
            problems.append(
                "platform declares more than one Master PU: "
                + ", ".join(m.ident for m in masters)
            )
        for pu in self.processing_units():
            if pu.role is ControlRole.WORKER and pu.children:
                problems.append(
                    f"worker PU {pu.ident!r} controls other PUs"
                )
        seen: set[str] = set()
        for pu in self.processing_units():
            if pu.ident in seen:
                problems.append(f"duplicate PU id {pu.ident!r}")
            seen.add(pu.ident)
        for ic in self.interconnects:
            for ep in ic.endpoints:
                if ep not in seen and not any(
                    m.ident == ep for m in self.memory_regions
                ):
                    problems.append(
                        f"interconnect {ic.ident!r} endpoint {ep!r} "
                        "matches no PU or memory region"
                    )
        return problems
