"""The long-lived model service (Sec. VI deployment: models queried in
operation).

:class:`ModelHost` owns one toolchain session and keeps compiled query
indexes hot across requests; :class:`XpdlHttpServer` puts an HTTP/JSON
front on it (``xpdl serve``); :class:`ServiceClient` talks to a running
daemon.  :mod:`repro.service.options` centralizes the repository wiring
shared by every CLI entry point.
"""

from .client import ServiceClient, ServiceClientError
from .core import (
    DEFAULT_ANALYSES,
    DEFAULT_MAX_MODEL_BYTES,
    DEFAULT_RELOAD_TTL_S,
    HostedModel,
    ModelHost,
    ServiceError,
    format_info,
    format_query_results,
    handle_payload,
    info_payload,
    merged_doctor_report,
    run_analyses,
)
from .http import XpdlHttpServer, run_server
from .options import (
    RepositoryOptions,
    ServiceOptions,
    build_repository,
    repository_parent_parser,
)

__all__ = [
    "DEFAULT_ANALYSES",
    "DEFAULT_MAX_MODEL_BYTES",
    "DEFAULT_RELOAD_TTL_S",
    "HostedModel",
    "ModelHost",
    "RepositoryOptions",
    "ServiceClient",
    "ServiceClientError",
    "ServiceError",
    "ServiceOptions",
    "XpdlHttpServer",
    "build_repository",
    "format_info",
    "format_query_results",
    "handle_payload",
    "info_payload",
    "merged_doctor_report",
    "repository_parent_parser",
    "run_analyses",
    "run_server",
]
