"""Shared repository/store assembly: one parser, one factory.

Every ``xpdl`` subcommand — and the ``xpdl serve`` daemon — needs the
same wiring: a model search path (``-I DIR`` repeatable), optionally
served through a simulated manufacturer download site wrapped in the
resilience stack (``--simulate-remote``, ``--fault SPEC``,
``--retry-attempts``, ``--mirror-dir``, ``--no-mirror``).  This module
owns that wiring exactly once:

* :func:`repository_parent_parser` — an ``argparse`` parent parser
  declaring the flags; the CLI root parser and any standalone entry
  point inherit it with ``parents=[...]`` instead of re-declaring.
* :class:`RepositoryOptions` — the plain-data form of those flags,
  buildable from parsed args (:meth:`RepositoryOptions.from_args`) or
  directly in library code and tests.
* :func:`build_repository` — the one store-stack factory: plain
  search-path stores by default, the full resilience stack (seeded
  backoff retries, circuit breaker, offline mirror, fetch cache) when
  remote simulation or fault injection is requested.
"""

from __future__ import annotations

import argparse
import os
from dataclasses import dataclass, field
from typing import Any

from ..repository import ModelRepository

DEFAULT_RETRY_ATTEMPTS = 3
DEFAULT_MIRROR_DIR = os.path.join(".xpdl-cache", "mirror")


@dataclass(frozen=True)
class RepositoryOptions:
    """Everything needed to assemble the model repository's store stack."""

    include: tuple[str, ...] = ()
    simulate_remote: bool = False
    fault: str | None = None
    retry_attempts: int = DEFAULT_RETRY_ATTEMPTS
    mirror_dir: str | None = DEFAULT_MIRROR_DIR
    no_mirror: bool = False

    @staticmethod
    def from_args(args: Any) -> "RepositoryOptions":
        """Lift parsed argparse flags into options (missing attrs default)."""
        return RepositoryOptions(
            include=tuple(getattr(args, "include", None) or ()),
            simulate_remote=bool(getattr(args, "simulate_remote", False)),
            fault=getattr(args, "fault", None),
            retry_attempts=int(
                getattr(args, "retry_attempts", DEFAULT_RETRY_ATTEMPTS)
            ),
            mirror_dir=getattr(args, "mirror_dir", DEFAULT_MIRROR_DIR),
            no_mirror=bool(getattr(args, "no_mirror", False)),
        )

    def with_(self, **changes: Any) -> "RepositoryOptions":
        from dataclasses import replace

        return replace(self, **changes)

    @property
    def resilient(self) -> bool:
        return bool(self.simulate_remote or self.fault)


def repository_parent_parser() -> argparse.ArgumentParser:
    """The shared flags as an ``add_help=False`` argparse parent.

    Use with ``argparse.ArgumentParser(parents=[repository_parent_parser()])``
    so the CLI, the daemon and any future entry point expose identical
    repository wiring without repeating a single ``add_argument``.
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "-I",
        "--include",
        action="append",
        metavar="DIR",
        help="extra model search-path directory (repeatable)",
    )
    resil = parent.add_argument_group(
        "distributed-repository resilience",
        "serve the model search path through a simulated remote store with "
        "retries, a circuit breaker and an offline mirror",
    )
    resil.add_argument(
        "--simulate-remote",
        action="store_true",
        help="wrap every store in a simulated manufacturer download site "
        "plus the resilience stack",
    )
    resil.add_argument(
        "--fault",
        metavar="SPEC",
        help="deterministic fault plan for the simulated remote "
        "(none | dead | fail:K | every:K | slow-fail:N[:FACTOR]; "
        "per-path rules as PATTERN=SPEC;...); implies --simulate-remote",
    )
    resil.add_argument(
        "--retry-attempts",
        type=int,
        default=DEFAULT_RETRY_ATTEMPTS,
        metavar="N",
        help=f"fetch attempts per descriptor before giving up "
        f"(default {DEFAULT_RETRY_ATTEMPTS})",
    )
    resil.add_argument(
        "--mirror-dir",
        default=DEFAULT_MIRROR_DIR,
        metavar="DIR",
        help=f"offline mirror root (default {DEFAULT_MIRROR_DIR})",
    )
    resil.add_argument(
        "--no-mirror",
        action="store_true",
        help="disable the offline mirror layer",
    )
    return parent


def build_repository(options: RepositoryOptions | None = None) -> ModelRepository:
    """The model repository for ``options`` (one factory for CLI + daemon).

    Plain search-path stores by default; with remote simulation (or fault
    injection) each store is served through a simulated manufacturer
    download site wrapped in the full resilience stack — seeded-backoff
    retries, circuit breaker, offline mirror, fetch cache — so behaviour
    under network failure is reproducible from every entry point.
    """
    from ..modellib import standard_repository
    from ..repository import FaultPlan, RemoteSimStore, resilient_stack

    opts = options or RepositoryOptions()
    repo = standard_repository(*opts.include)
    if not opts.resilient:
        return repo
    mirror_root = None if opts.no_mirror else opts.mirror_dir
    stores = []
    for i, store in enumerate(repo.stores):
        plan = FaultPlan.parse(opts.fault) if opts.fault else None
        remote = RemoteSimStore(
            store, host=f"models{i}.xpdl.example", faults=plan
        )
        mirror_dir = (
            os.path.join(mirror_root, f"store{i}") if mirror_root else None
        )
        stores.append(
            resilient_stack(
                remote, attempts=opts.retry_attempts, mirror_dir=mirror_dir
            )
        )
    return ModelRepository(stores)


@dataclass(frozen=True)
class ServiceOptions:
    """Daemon-side knobs of the model service (``xpdl serve``)."""

    address: str = "127.0.0.1"
    port: int = 8790
    max_model_bytes: int = 256 * 1024 * 1024
    reload_ttl_s: float = 0.25
    workers: int = 4
    #: Persistent cache root holding stage artifacts and v2 runtime
    #: images (mmap'd on model open); None disables disk caching.
    cache_dir: str | None = ".xpdl-cache"
    repository: RepositoryOptions = field(default_factory=RepositoryOptions)
