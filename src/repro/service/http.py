"""The ``xpdl serve`` daemon: an asyncio HTTP/JSON front over ModelHost.

Stdlib only — one ``asyncio.start_server`` accept loop parsing a strict
subset of HTTP/1.1 (keep-alive, ``Content-Length`` bodies, no chunked
encoding), dispatching request objects into a thread pool running
:meth:`~repro.service.core.ModelHost.handle`.  The event loop stays free
to multiplex many concurrent clients while the pool evaluates compiled
queries; the host's lease protocol makes that safe.

Routes (all responses are JSON):

================  ======  =================================================
path              method  host op / body
================  ======  =================================================
``/healthz``      GET     liveness (answered on the event loop, no pool)
``/stats``        GET     ``stats`` — host + observer snapshot
``/models``       GET     ``models`` — repository index listing
``/info``         GET     ``info`` (``?model=``)
``/query``        GET     ``query`` (``?model=&path=``)
``/query``        POST    ``{"model": ..., "path": ...}``
``/info``         POST    ``{"model": ...}``
``/analysis``     POST    ``{"model": ..., "analyses": [...]}``
``/compose``      POST    ``{"model": ...}``
``/doctor``       POST    ``{"models": [...], "suppress": [...]}``
``/batch``        POST    ``{"requests": [{...}, ...]}`` — one round trip,
                          many ops; sub-results keep request order
================  ======  =================================================
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import urllib.parse
from typing import Any, Mapping

from .core import ModelHost

#: Request body ceiling — far above any legitimate batch, far below abuse.
MAX_BODY_BYTES = 8 * 1024 * 1024
#: Header-section ceiling per request.
MAX_HEADER_BYTES = 64 * 1024

#: URL path → host op for POST bodies.
_POST_OPS = {
    "/query": "query",
    "/info": "info",
    "/analysis": "analysis",
    "/compose": "compose",
    "/doctor": "doctor",
    "/batch": "batch",
    "/stats": "stats",
}

#: URL path → (op, required/optional query params) for GET.
_GET_OPS = {
    "/stats": "stats",
    "/models": "models",
    "/info": "info",
    "/query": "query",
}


class _BadRequest(Exception):
    pass


class XpdlHttpServer:
    """The daemon: own the listener, translate HTTP to host requests."""

    def __init__(
        self,
        host: ModelHost,
        *,
        address: str = "127.0.0.1",
        port: int = 8790,
        workers: int = 4,
    ) -> None:
        self.host = host
        self.address = address
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=max(1, workers), thread_name_prefix="xpdl-serve"
        )

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the bound (address, port).

        Passing ``port=0`` binds an ephemeral port — tests and the smoke
        job use that to avoid collisions.
        """
        self._server = await asyncio.start_server(
            self._serve_client, self.address, self.port
        )
        sock = self._server.sockets[0]
        self.port = sock.getsockname()[1]
        return self.address, self.port

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._executor.shutdown(wait=False, cancel_futures=True)

    # -- per-connection loop -------------------------------------------------
    async def _serve_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    parsed = await _read_request(reader)
                except _BadRequest as exc:
                    await _write_response(
                        writer, 400, {"error": str(exc), "status": 400}, False
                    )
                    break
                if parsed is None:
                    break
                method, target, headers, body = parsed
                keep_alive = headers.get("connection", "").lower() != "close"
                status, payload = await self._respond(method, target, body)
                await _write_response(writer, status, payload, keep_alive)
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _respond(
        self, method: str, target: str, body: bytes
    ) -> tuple[int, dict[str, Any]]:
        url = urllib.parse.urlsplit(target)
        path = url.path
        if method == "GET":
            if path == "/healthz":  # liveness: never blocks on the pool
                return 200, {"ok": True}
            op = _GET_OPS.get(path)
            if op is None:
                return 404, {"error": f"no such path {path!r}", "status": 404}
            request: dict[str, Any] = {"op": op}
            for key, values in urllib.parse.parse_qs(url.query).items():
                request[key] = values[-1]
            return await self._dispatch(request)
        if method == "POST":
            op = _POST_OPS.get(path)
            if op is None:
                return 404, {"error": f"no such path {path!r}", "status": 404}
            try:
                data = json.loads(body.decode("utf-8")) if body else {}
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                return 400, {
                    "error": f"invalid JSON body: {exc}",
                    "status": 400,
                }
            if not isinstance(data, Mapping):
                return 400, {
                    "error": "JSON body must be an object",
                    "status": 400,
                }
            request = dict(data)
            request["op"] = op
            return await self._dispatch(request)
        return 405, {"error": f"method {method} not allowed", "status": 405}

    async def _dispatch(
        self, request: Mapping[str, Any]
    ) -> tuple[int, dict[str, Any]]:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._executor, self.host.handle, request
        )


async def _read_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, dict[str, str], bytes] | None:
    """Parse one request off the stream; None on clean EOF."""
    try:
        line = await reader.readline()
    except ValueError as exc:  # line longer than the stream limit
        raise _BadRequest(f"request line too long: {exc}") from exc
    if not line:
        return None
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise _BadRequest("malformed request line")
    method, target, _version = parts
    headers: dict[str, str] = {}
    total = 0
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        total += len(raw)
        if total > MAX_HEADER_BYTES:
            raise _BadRequest("header section too large")
        name, sep, value = raw.decode("latin-1").partition(":")
        if not sep:
            raise _BadRequest("malformed header line")
        headers[name.strip().lower()] = value.strip()
    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise _BadRequest("chunked request bodies are not supported")
    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError as exc:
        raise _BadRequest("malformed Content-Length") from exc
    if length < 0 or length > MAX_BODY_BYTES:
        raise _BadRequest("request body too large")
    body = await reader.readexactly(length) if length else b""
    return method, target, headers, body


async def _write_response(
    writer: asyncio.StreamWriter,
    status: int,
    payload: Mapping[str, Any],
    keep_alive: bool,
) -> None:
    reason = {
        200: "OK",
        400: "Bad Request",
        404: "Not Found",
        405: "Method Not Allowed",
    }.get(status, "Error")
    data = json.dumps(payload, sort_keys=True).encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(data)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        "\r\n"
    ).encode("latin-1")
    writer.write(head + data)
    await writer.drain()


async def run_server(
    host: ModelHost,
    *,
    address: str = "127.0.0.1",
    port: int = 8790,
    workers: int = 4,
    ready: "asyncio.Event | None" = None,
    stop: "asyncio.Event | None" = None,
    announce=None,
) -> None:
    """Start a server, announce readiness, run until ``stop`` is set.

    ``announce(address, port)`` (if given) is called once the socket is
    bound — the CLI prints the listen line through it so scripted clients
    can scrape the ephemeral port.
    """
    server = XpdlHttpServer(host, address=address, port=port, workers=workers)
    bound_address, bound_port = await server.start()
    if announce is not None:
        announce(bound_address, bound_port)
    if ready is not None:
        ready.set()
    try:
        if stop is None:
            await server.serve_forever()
        else:
            await stop.wait()
    except asyncio.CancelledError:
        pass
    finally:
        await server.close()
