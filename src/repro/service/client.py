"""A small blocking client for the model service (stdlib ``urllib``).

Used by the tests and the CI ``serve-smoke`` job; applications embedding
the service in-process should talk to :class:`~repro.service.core.ModelHost`
directly instead.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.parse
import urllib.request
from typing import Any, Mapping, Sequence

from ..diagnostics import XpdlError


class ServiceClientError(XpdlError):
    """A non-200 service response, carrying the decoded error body."""

    def __init__(self, status: int, body: Mapping[str, Any]) -> None:
        super().__init__(body.get("error", f"service returned {status}"))
        self.status = status
        self.body = dict(body)


class ServiceClient:
    """Thin JSON-over-HTTP client bound to one daemon."""

    def __init__(
        self, address: str = "127.0.0.1", port: int = 8790, timeout: float = 10.0
    ) -> None:
        self.base_url = f"http://{address}:{port}"
        self.timeout = timeout

    # -- transport -----------------------------------------------------------
    def _decode(self, status: int, data: bytes) -> dict[str, Any]:
        body = json.loads(data.decode("utf-8")) if data else {}
        if status != 200:
            raise ServiceClientError(status, body)
        return body

    def get(self, route: str, **params: str) -> dict[str, Any]:
        url = self.base_url + route
        if params:
            url += "?" + urllib.parse.urlencode(params)
        try:
            with urllib.request.urlopen(url, timeout=self.timeout) as resp:
                return self._decode(resp.status, resp.read())
        except urllib.error.HTTPError as exc:
            return self._decode(exc.code, exc.read())

    def post(self, route: str, payload: Mapping[str, Any]) -> dict[str, Any]:
        req = urllib.request.Request(
            self.base_url + route,
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return self._decode(resp.status, resp.read())
        except urllib.error.HTTPError as exc:
            return self._decode(exc.code, exc.read())

    # -- ops -----------------------------------------------------------------
    def health(self) -> dict[str, Any]:
        return self.get("/healthz")

    def query(self, model: str, path: str) -> dict[str, Any]:
        return self.post("/query", {"model": model, "path": path})

    def info(self, model: str) -> dict[str, Any]:
        return self.post("/info", {"model": model})

    def analysis(
        self, model: str, analyses: Sequence[str] | None = None
    ) -> dict[str, Any]:
        payload: dict[str, Any] = {"model": model}
        if analyses is not None:
            payload["analyses"] = list(analyses)
        return self.post("/analysis", payload)

    def compose(self, model: str) -> dict[str, Any]:
        return self.post("/compose", {"model": model})

    def doctor(
        self,
        models: Sequence[str] | None = None,
        suppress: Sequence[str] = (),
    ) -> dict[str, Any]:
        payload: dict[str, Any] = {}
        if models:
            payload["models"] = list(models)
        if suppress:
            payload["suppress"] = list(suppress)
        return self.post("/doctor", payload)

    def batch(self, requests: Sequence[Mapping[str, Any]]) -> dict[str, Any]:
        return self.post("/batch", {"requests": list(requests)})

    def models(self) -> dict[str, Any]:
        return self.get("/models")

    def stats(self) -> dict[str, Any]:
        return self.get("/stats")
