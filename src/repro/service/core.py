"""The model host: one repository, hot compiled indexes, many consumers.

This is the piece the paper's deployment story needs ("the model is
queried in operation" — optimizers and schedulers interrogating the
platform description continuously): everything the one-shot CLI rebuilt
per process — repository index, parsed descriptors, compositions,
compiled :class:`~repro.runtime.index.IRIndex` es, path-plan LRUs — is
owned once by a :class:`ModelHost` and reused across requests.  Both the
``xpdl`` CLI and the ``xpdl serve`` daemon drive their pipelines through
this class; the daemon merely puts an HTTP/JSON front on
:meth:`ModelHost.handle`.

Design points:

* **Hosted models** — per identifier, the host keeps the emitted runtime
  IR, its compiled index and one shared
  :class:`~repro.runtime.query.QueryContext` (so interned handles and
  memoized analyses stay warm across requests), in an LRU ordered dict
  with **byte-size accounting** (:meth:`~repro.ir.IRModel.approx_size_bytes`).
  When the hosted total exceeds ``max_model_bytes`` the least-recently
  used *idle* model is dropped; models leased by an in-flight request
  are never evicted mid-request (each request holds a refcount lease).
* **Hot reload** — the toolchain stage cache already fingerprints every
  stage over its transitive source texts.  A request first served within
  ``reload_ttl_s`` of the last freshness check reuses the hosted entry
  outright (the hot path: no fingerprinting, no recompile); past the
  TTL the host re-requests ``emit_ir`` through the session, whose
  fingerprint check either returns the *same* artifact (descriptor
  unchanged — the hosted index is kept) or recomposes (descriptor
  edited — the host swaps in a freshly indexed entry).  A session
  invalidation hook retires hosted entries eagerly when the stage cache
  notices an edit.  Responses are therefore always a consistent
  pre-edit or post-edit view, never a torn mix: every request pins
  exactly one immutable hosted entry for its whole lifetime.
* **Observability** — per-request latency histograms
  (``service.latency.<op>``), request/cache counters and an in-flight
  gauge on the host's :class:`~repro.obs.Observer`, merged through the
  standard ``snapshot()``/``merge()`` protocol and exposed by the
  ``stats`` op (the daemon's ``/stats`` endpoint).

Thread model: host state transitions (lease/build/evict/doctor) happen
under one re-entrant lock; query evaluation runs outside it against the
leased entry's read-only index (handle interning and analysis memos are
idempotent single-item writes, safe under the GIL), so many worker
threads can evaluate queries concurrently.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping

from contextlib import contextmanager

from ..diagnostics import QueryError, XpdlError
from ..ir import IRModel
from ..obs import Observer, use_observer
from ..runtime import QueryContext, query_all, xpdl_init_from_model
from ..toolchain import EmitResult, ToolchainSession
from ..toolchain.diskcache import open_cache
from .options import RepositoryOptions, build_repository

#: Default hosted-model budget: generous for the paper corpus, small
#: enough that a generated thousand-descriptor fleet cycles through.
DEFAULT_MAX_MODEL_BYTES = 256 * 1024 * 1024

#: Default freshness TTL: requests within this window of the last
#: fingerprint check skip re-fingerprinting entirely (the hot path).
DEFAULT_RELOAD_TTL_S = 0.25

#: The standard analysis set of the ``analysis`` op.
DEFAULT_ANALYSES = (
    "count_cores",
    "count_cuda_devices",
    "total_static_power",
)


class ServiceError(XpdlError):
    """A request-level failure with an HTTP-ish status code."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


def _error_message(exc: XpdlError) -> str:
    """The bare message of a toolchain error.

    ``XpdlError.__str__`` appends every attached diagnostic — right for
    the CLI's stderr, wrong for a JSON error body that should stay one
    line.
    """
    return str(exc.args[0]) if exc.args else str(exc)


@dataclass
class HostedModel:
    """One model resident in the host: IR + compiled index + context."""

    identifier: str
    emit: EmitResult
    ctx: QueryContext
    size_bytes: int
    built_at: float
    checked_at: float
    generation: int
    hits: int = 0
    refs: int = 0
    _ir_sha256: str | None = field(default=None, repr=False)

    def ir_sha256(self) -> str:
        """SHA-256 of the serialized IR (lazy; cached per hosted entry)."""
        if self._ir_sha256 is None:
            import hashlib

            self._ir_sha256 = hashlib.sha256(
                self.emit.ir.to_bytes()
            ).hexdigest()
        return self._ir_sha256


# ---------------------------------------------------------------------------
# shared payload builders / renderers (CLI and service must agree byte-for-
# byte, so both go through these)
# ---------------------------------------------------------------------------


def handle_payload(handle: Any) -> dict[str, Any]:
    """JSON-safe view of one runtime handle."""
    return {"kind": handle.kind, "attrs": handle.attrs()}


def format_query_results(results: list[Mapping[str, Any]]) -> str:
    """Render query results exactly like ``xpdl query`` prints handles."""
    lines = []
    for r in results:
        attrs = " ".join(f'{k}="{v}"' for k, v in r["attrs"].items())
        lines.append(f"<{r['kind']} {attrs}>")
    return "\n".join(lines)


def info_payload(ctx: QueryContext) -> dict[str, Any]:
    """The ``info`` op's payload (mirrors ``xpdl info``'s analyses)."""
    installed = [h.label() for h in ctx.installed_software()]
    return {
        "system": ctx.meta("system", "?"),
        "elements": len(ctx.ir),
        "cores": ctx.count_cores(),
        "cpus": ctx.count_kind("cpu"),
        "devices": ctx.count_kind("device"),
        "cuda_devices": ctx.count_cuda_devices(),
        "static_power": str(ctx.total_static_power()),
        "installed": installed,
    }


def format_info(payload: Mapping[str, Any]) -> str:
    """Render an info payload exactly like ``xpdl info`` prints it."""
    installed = payload["installed"]
    return "\n".join(
        [
            f"system:          {payload['system']}",
            f"elements:        {payload['elements']}",
            f"cores:           {payload['cores']}",
            f"cpus:            {payload['cpus']}",
            f"devices:         {payload['devices']}",
            f"cuda devices:    {payload['cuda_devices']}",
            f"static power:    {payload['static_power']}",
            f"installed:       {', '.join(installed) if installed else '-'}",
        ]
    )


def run_analyses(ctx: QueryContext, names: tuple[str, ...]) -> dict[str, Any]:
    """Evaluate named model analyses over a context (O(1) memoized reads)."""
    out: dict[str, Any] = {}
    for name in names:
        if name == "count_cores":
            out[name] = ctx.count_cores()
        elif name == "count_cuda_devices":
            out[name] = ctx.count_cuda_devices()
        elif name == "total_static_power":
            q = ctx.total_static_power()
            out[name] = {"text": str(q), "watts": q.magnitude}
        elif name.startswith("count_kind:"):
            out[name] = ctx.count_kind(name.split(":", 1)[1])
        else:
            raise ServiceError(f"unknown analysis {name!r}", status=400)
    return out


def merged_doctor_report(
    session: ToolchainSession,
    identifiers: list[str] | None = None,
    suppress: tuple[str, ...] = (),
):
    """The doctor pass exactly as ``xpdl doctor`` runs it.

    One repository-wide pass plus one per-system pass, merged into a
    fresh report (the per-stage reports are cached session artifacts and
    must not be mutated).  Shared by the CLI command and the service's
    ``doctor`` op so both produce identical JSON.
    """
    from ..analysis import REPOSITORY_SCOPE, DoctorReport

    index = session.repository.index()
    idents = list(identifiers) if identifiers else session.repository.systems()
    for ident in idents:
        if ident not in index:
            raise XpdlError(f"unknown identifier {ident!r}")
    merged = DoctorReport()
    merged.merge(session.doctor(REPOSITORY_SCOPE, suppress=suppress))
    for ident in idents:
        if index[ident].root_tag != "system":
            continue  # plain descriptors are covered by the repository pass
        merged.merge(session.doctor(ident, suppress=suppress))
    return merged


# ---------------------------------------------------------------------------
# the host
# ---------------------------------------------------------------------------


class ModelHost:
    """Long-lived, multi-tenant front over one toolchain session."""

    def __init__(
        self,
        repository=None,
        *,
        session: ToolchainSession | None = None,
        observer: Observer | None = None,
        repo_options: RepositoryOptions | None = None,
        include: tuple[str, ...] | list[str] = (),
        max_model_bytes: int = DEFAULT_MAX_MODEL_BYTES,
        reload_ttl_s: float = DEFAULT_RELOAD_TTL_S,
        cache_dir: str | None = None,
    ) -> None:
        self.observer = observer if observer is not None else Observer()
        if session is None:
            if repository is None:
                opts = repo_options or RepositoryOptions()
                if include:
                    opts = opts.with_(
                        include=tuple(include) + tuple(opts.include)
                    )
                repository = build_repository(opts)
            session = ToolchainSession(
                repository,
                observer=self.observer,
                disk_cache=open_cache(cache_dir),
            )
        self._session = session
        self.max_model_bytes = int(max_model_bytes)
        self.reload_ttl_s = float(reload_ttl_s)
        self._lock = threading.RLock()
        self._models: "OrderedDict[str, HostedModel]" = OrderedDict()
        self._total_bytes = 0
        self._inflight = 0
        self._generation = 0
        self._started_at = time.monotonic()
        # Stage-cache fingerprints are the reload authority: when the
        # session notices an edited source it drops the stale stage entry
        # and this hook retires the hosted index built from it.
        session.add_invalidation_hook(self._on_stage_invalidated)

    # -- plumbing shared with the CLI ---------------------------------------
    @property
    def session(self) -> ToolchainSession:
        return self._session

    @property
    def repository(self):
        return self._session.repository

    # -- hosted-model lifecycle ---------------------------------------------
    def _on_stage_invalidated(self, stage: str, identifier: str) -> None:
        if stage != "emit_ir":
            return
        with self._lock:
            entry = self._models.pop(identifier, None)
            if entry is not None:
                self._total_bytes -= entry.size_bytes
                self.observer.count("service.model.invalidated")

    def _acquire(self, identifier: str) -> HostedModel:
        """Lease the hosted entry for ``identifier`` (refcounted).

        Fresh-within-TTL entries are returned without touching the
        repository; otherwise the stage cache revalidates the fingerprint
        and the entry is kept (unchanged sources) or rebuilt (edit).
        """
        now = time.monotonic()
        with self._lock:
            entry = self._models.get(identifier)
            if (
                entry is not None
                and (now - entry.checked_at) < self.reload_ttl_s
            ):
                entry.hits += 1
                entry.refs += 1
                self._models.move_to_end(identifier)
                self.observer.count("service.model.hits")
                return entry
            with use_observer(self.observer):
                try:
                    result = self._session.emit_ir(identifier)
                except ServiceError:
                    raise
                except XpdlError as exc:
                    raise ServiceError(
                        _error_message(exc), status=404
                    ) from exc
            # The emit_ir call may have fired the invalidation hook and
            # dropped the stale entry; re-read before deciding.
            entry = self._models.get(identifier)
            if entry is not None and entry.emit is result:
                entry.checked_at = now
                entry.hits += 1
                entry.refs += 1
                self._models.move_to_end(identifier)
                self.observer.count("service.model.revalidations")
                return entry
            if entry is not None:  # same identifier, new artifact: replace
                self._models.pop(identifier)
                self._total_bytes -= entry.size_bytes
                self.observer.count("service.model.reloads")
            self._generation += 1
            ctx = self._open_context(result)
            new = HostedModel(
                identifier=identifier,
                emit=result,
                ctx=ctx,
                size_bytes=result.ir.approx_size_bytes(),
                built_at=now,
                checked_at=now,
                generation=self._generation,
                hits=1,
                refs=1,
            )
            self._models[identifier] = new
            self._total_bytes += new.size_bytes
            self.observer.count("service.model.builds")
            self._evict_locked()
            return new

    def _open_context(self, result: EmitResult) -> QueryContext:
        """Compile one query context, preferring the persisted image.

        When the session's disk cache holds the v2 runtime image of this
        emit artifact, mmap it — the persisted index sections are adopted
        zero-copy and no :class:`IRIndex` is constructed.  Any defect in
        the image (torn write, stale cache, bit rot) falls back to
        compiling from the in-memory IR: slower, never wrong.
        """
        disk_cache = self._session.disk_cache
        if disk_cache is not None and result.image_key:
            path = disk_cache.find_image(result.image_key)
            if path is not None:
                try:
                    with use_observer(self.observer):
                        t0 = time.perf_counter()
                        ir = IRModel.load(path)
                        ctx = xpdl_init_from_model(ir)
                        self.observer.count("service.model.image_opens")
                        self.observer.record(
                            "index.open_s", time.perf_counter() - t0
                        )
                    return ctx
                except QueryError:
                    # Structurally corrupt core sections: the content
                    # address no longer matches what was stored.
                    self.observer.count("service.model.image_corrupt")
        with use_observer(self.observer):
            return xpdl_init_from_model(result.ir)

    def _release(self, entry: HostedModel) -> None:
        with self._lock:
            entry.refs -= 1

    @contextmanager
    def lease(self, identifier: str) -> Iterator[HostedModel]:
        """Context-managed lease: the entry cannot be evicted while held."""
        entry = self._acquire(identifier)
        try:
            yield entry
        finally:
            self._release(entry)

    def _evict_locked(self) -> None:
        """Drop least-recently-used *idle* models over the byte budget.

        An entry with a live lease (``refs > 0``) is skipped — eviction
        never yanks an index out from under an in-flight request; the
        budget is enforced against whatever is idle.
        """
        if self._total_bytes <= self.max_model_bytes:
            return
        for identifier in list(self._models):
            if self._total_bytes <= self.max_model_bytes:
                break
            entry = self._models[identifier]
            if entry.refs > 0:
                self.observer.count("service.evict.skipped_inuse")
                continue
            del self._models[identifier]
            self._total_bytes -= entry.size_bytes
            self.observer.count("service.evictions")
            self.observer.count("service.evict.bytes", entry.size_bytes)

    def hosted_identifiers(self) -> list[str]:
        with self._lock:
            return list(self._models)

    # -- request dispatch ----------------------------------------------------
    def dispatch(self, request: Mapping[str, Any]) -> dict[str, Any]:
        """Serve one request object; raises :class:`ServiceError` on bad
        input.  ``{"op": ..., ...}`` shapes are documented per handler."""
        op = request.get("op")
        if not isinstance(op, str):
            raise ServiceError("request must carry a string 'op'", status=400)
        handler = self._OPS.get(op)
        if handler is None:
            raise ServiceError(f"unknown op {op!r}", status=404)
        t0 = time.perf_counter()
        obs = self.observer
        with self._lock:
            self._inflight += 1
            obs.gauge("service.inflight", self._inflight)
        try:
            return handler(self, request)
        finally:
            dt = time.perf_counter() - t0
            with self._lock:
                self._inflight -= 1
                obs.gauge("service.inflight", self._inflight)
                obs.count("service.requests")
                obs.count(f"service.requests.{op}")
                obs.record(f"service.latency.{op}", dt)

    def handle(self, request: Mapping[str, Any]) -> tuple[int, dict[str, Any]]:
        """:meth:`dispatch` with failures folded into ``(status, body)``."""
        try:
            return 200, self.dispatch(request)
        except ServiceError as exc:
            self.observer.count("service.errors")
            return exc.status, {"error": str(exc), "status": exc.status}
        except XpdlError as exc:
            self.observer.count("service.errors")
            return 400, {"error": _error_message(exc), "status": 400}

    # -- ops ------------------------------------------------------------------
    def _require(self, request: Mapping[str, Any], key: str) -> Any:
        value = request.get(key)
        if value is None:
            raise ServiceError(f"request is missing {key!r}", status=400)
        return value

    def _op_health(self, request: Mapping[str, Any]) -> dict[str, Any]:
        return {"ok": True, "uptime_s": round(self.uptime_s(), 3)}

    def _op_query(self, request: Mapping[str, Any]) -> dict[str, Any]:
        model = self._require(request, "model")
        path = self._require(request, "path")
        entry = self._acquire(model)
        try:
            try:
                handles = query_all(entry.ctx, path)
            except QueryError as exc:
                raise ServiceError(str(exc), status=400) from exc
            results = [handle_payload(h) for h in handles]
        finally:
            self._release(entry)
        return {
            "model": model,
            "path": path,
            "count": len(results),
            "results": results,
        }

    def _op_info(self, request: Mapping[str, Any]) -> dict[str, Any]:
        model = self._require(request, "model")
        entry = self._acquire(model)
        try:
            return info_payload(entry.ctx)
        finally:
            self._release(entry)

    def _op_analysis(self, request: Mapping[str, Any]) -> dict[str, Any]:
        model = self._require(request, "model")
        names = tuple(request.get("analyses") or DEFAULT_ANALYSES)
        entry = self._acquire(model)
        try:
            results = run_analyses(entry.ctx, names)
        finally:
            self._release(entry)
        return {"model": model, "results": results}

    def _op_compose(self, request: Mapping[str, Any]) -> dict[str, Any]:
        model = self._require(request, "model")
        entry = self._acquire(model)
        try:
            emit = entry.emit
            return {
                "model": model,
                "elements": len(emit.ir),
                "descriptors": len(emit.composed.referenced),
                "ir_sha256": entry.ir_sha256(),
                "dropped_attrs": emit.dropped_attrs,
                "dropped_elements": emit.dropped_elements,
            }
        finally:
            self._release(entry)

    def _op_doctor(self, request: Mapping[str, Any]) -> dict[str, Any]:
        models = request.get("models") or None
        suppress = tuple(request.get("suppress") or ())
        with self._lock, use_observer(self.observer):
            try:
                merged = merged_doctor_report(
                    self._session, models, suppress=suppress
                )
            except ServiceError:
                raise
            except XpdlError as exc:
                raise ServiceError(_error_message(exc), status=404) from exc
        return merged.to_dict()

    def _op_models(self, request: Mapping[str, Any]) -> dict[str, Any]:
        with self._lock, use_observer(self.observer):
            index = self.repository.index()
            rows = [
                {
                    "identifier": ident,
                    "root_tag": entry.root_tag,
                    "store": entry.store.url,
                    "path": entry.path,
                }
                for ident, entry in sorted(index.items())
            ]
        return {"count": len(rows), "models": rows}

    def _op_batch(self, request: Mapping[str, Any]) -> dict[str, Any]:
        requests = self._require(request, "requests")
        if not isinstance(requests, list):
            raise ServiceError("'requests' must be a list", status=400)
        results = []
        for sub in requests:
            if not isinstance(sub, Mapping) or sub.get("op") == "batch":
                results.append(
                    {"error": "invalid batched request", "status": 400}
                )
                continue
            status, body = self.handle(sub)
            if status != 200:
                results.append(body)
            else:
                results.append(body)
        self.observer.count("service.batched", len(requests))
        return {"count": len(results), "results": results}

    def _op_stats(self, request: Mapping[str, Any]) -> dict[str, Any]:
        return self.stats()

    _OPS: dict[str, Callable[["ModelHost", Mapping[str, Any]], dict[str, Any]]] = {
        "health": _op_health,
        "query": _op_query,
        "info": _op_info,
        "analysis": _op_analysis,
        "compose": _op_compose,
        "doctor": _op_doctor,
        "models": _op_models,
        "batch": _op_batch,
        "stats": _op_stats,
    }

    # -- introspection ---------------------------------------------------------
    def uptime_s(self) -> float:
        return time.monotonic() - self._started_at

    def stats(self) -> dict[str, Any]:
        """Host + observer view: the ``/stats`` endpoint's body."""
        now = time.monotonic()
        with self._lock:
            hosted = [
                {
                    "identifier": e.identifier,
                    "bytes": e.size_bytes,
                    "hits": e.hits,
                    "refs": e.refs,
                    "generation": e.generation,
                    "age_s": round(now - e.built_at, 3),
                }
                for e in self._models.values()
            ]
            snapshot = self.observer.snapshot()
            latency = {
                name.removeprefix("service.latency."): {
                    "count": h.count,
                    "mean_ms": round(h.mean() * 1e3, 3),
                    "p50_ms": round(h.quantile(0.5) * 1e3, 3),
                    "p95_ms": round(h.quantile(0.95) * 1e3, 3),
                    "p99_ms": round(h.quantile(0.99) * 1e3, 3),
                    "max_ms": round(h.max * 1e3, 3),
                }
                for name, h in sorted(self.observer.histograms.items())
                if name.startswith("service.latency.")
            }
            return {
                "uptime_s": round(now - self._started_at, 3),
                "hosted": hosted,
                "hosted_bytes": self._total_bytes,
                "max_model_bytes": self.max_model_bytes,
                "reload_ttl_s": self.reload_ttl_s,
                "inflight": self._inflight,
                "session_cache": self._session.cache_stats(),
                "latency": latency,
                "observer": snapshot,
            }
