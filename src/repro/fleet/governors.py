"""DVFS governor policies for the fleet simulator.

A :class:`Governor` instance manages one machine's power state machine.
Once per interval the simulator calls :meth:`Governor.decide` with the
machine's current state, its utilization over the previous interval, the
fleet backlog, and a cycle-count prediction for the coming interval; the
governor returns the P-state name to run in.  The catalog mirrors the
Linux cpufreq family the paper's operation-time loop (TANGO, EXCESS)
targets:

``performance``
    Always the fastest running state.
``powersave``
    Always the slowest running state — a lower bound on power, usually at
    the cost of SLO.
``ondemand``
    Utilization-threshold governor with hysteresis: jumps to the fastest
    state on high utilization or backlog, steps one rung down only after
    several consecutive intervals in which the *projected* utilization at
    the lower state stays comfortably under the up-threshold.
``race-to-idle``
    Reuses :func:`repro.power.dvfs.best_state` to pick the
    energy-optimal state for the predicted work, then parks the machine
    in the PSM's lowest-power state for the slack
    (``wants_idle_parking``), paying all switch costs.
"""

from __future__ import annotations

from ..diagnostics import XpdlError
from ..power import PowerStateMachineModel
from ..power.dvfs import best_state
from ..units import Quantity


class Governor:
    """Per-machine P-state policy; subclasses implement :meth:`decide`."""

    name = "base"
    #: True when the simulator should park the machine in the PSM's
    #: lowest-power state during the idle tail of each interval.
    wants_idle_parking = False

    def __init__(self, psm: PowerStateMachineModel) -> None:
        self.psm = psm
        #: Running states, ascending frequency.
        self.ladder = [s.name for s in psm.by_frequency() if not s.is_off()]
        if not self.ladder:
            raise XpdlError(f"PSM {psm.name!r} has no running state to govern")
        #: State name -> frequency magnitude, hoisted out of the
        #: per-interval path (psm.state() is a dict lookup plus a Quantity
        #: attribute chain per call otherwise).
        self._freq = {
            name: psm.state(name).frequency.magnitude for name in self.ladder
        }

    def reset(self) -> None:
        """Forget per-run policy state (hysteresis counters etc.)."""

    def decide(
        self,
        current: str,
        util: float,
        backlog: int,
        pred_cycles: float,
        interval: Quantity,
    ) -> str:
        raise NotImplementedError


class PerformanceGovernor(Governor):
    name = "performance"

    def decide(self, current, util, backlog, pred_cycles, interval):
        return self.ladder[-1]


class PowersaveGovernor(Governor):
    name = "powersave"

    def decide(self, current, util, backlog, pred_cycles, interval):
        return self.ladder[0]


class OndemandGovernor(Governor):
    """Threshold governor with one-rung down-steps and hysteresis.

    Stepping down is deliberately conservative: the utilization the lower
    state *would* have seen (``util * f_cur / f_lower``) must stay under
    ``down_threshold`` for ``hysteresis`` consecutive intervals, so a
    rising diurnal flank never out-runs the ladder.  Stepping up is
    immediate and jumps straight to the fastest state, like cpufreq's
    ondemand.
    """

    name = "ondemand"
    up_threshold = 0.75
    down_threshold = 0.45
    hysteresis = 3

    def __init__(self, psm: PowerStateMachineModel) -> None:
        super().__init__(psm)
        self._low_streak = 0

    def reset(self) -> None:
        self._low_streak = 0

    def _frequency(self, state: str) -> float:
        return self._freq[state]

    def decide(self, current, util, backlog, pred_cycles, interval):
        if current not in self.ladder:
            # Parked or off: come back up to full speed first.
            self._low_streak = 0
            return self.ladder[-1]
        if backlog > 0 or util >= self.up_threshold:
            self._low_streak = 0
            return self.ladder[-1]
        idx = self.ladder.index(current)
        if idx == 0:
            self._low_streak = 0
            return current
        lower = self.ladder[idx - 1]
        projected = util * self._frequency(current) / self._frequency(lower)
        if projected <= self.down_threshold:
            self._low_streak += 1
            if self._low_streak >= self.hysteresis:
                self._low_streak = 0
                return lower
            return current
        self._low_streak = 0
        return current


class RaceToIdleGovernor(Governor):
    """Energy-optimal state for the predicted work, then park in idle.

    :func:`~repro.power.dvfs.best_state` evaluates every running state
    with full switch-plan accounting — by far the most expensive governor
    step.  Its inputs here are discrete (the current state, and a
    predicted cycle count that is always ``n_requests * cycles_per_req``
    for integer ``n``), so decisions are memoized on the exact
    ``(current, pred_cycles, interval)`` triple: a cache hit returns the
    identical decision the ranking would have produced.
    """

    name = "race-to-idle"
    wants_idle_parking = True
    #: Head-room multiplier on the last interval's observed work, so a
    #: rising load does not out-run the one-interval-lagged prediction.
    safety = 1.3

    def __init__(self, psm: PowerStateMachineModel) -> None:
        super().__init__(psm)
        self._memo: dict[tuple[str, float, float], str] = {}

    def reset(self) -> None:
        self._memo.clear()

    def decide(self, current, util, backlog, pred_cycles, interval):
        if backlog > 0:
            # Mirrors the unmemoized order of checks: with a backlog the
            # ranking result is discarded, so it need not be computed.
            return self.ladder[-1]
        key = (current, pred_cycles, interval.magnitude)
        target = self._memo.get(key)
        if target is None:
            cycles = max(pred_cycles, 1.0) * self.safety
            choice = best_state(self.psm, cycles, interval, start_state=current)
            target = self.ladder[-1] if choice is None else choice.state
            self._memo[key] = target
        return target


GOVERNORS: dict[str, type[Governor]] = {
    g.name: g
    for g in (
        PerformanceGovernor,
        PowersaveGovernor,
        OndemandGovernor,
        RaceToIdleGovernor,
    )
}


def make_governor(name: str, psm: PowerStateMachineModel) -> Governor:
    try:
        cls = GOVERNORS[name]
    except KeyError:
        raise XpdlError(
            f"unknown governor {name!r}; policies: {', '.join(GOVERNORS)}"
        ) from None
    return cls(psm)
