"""Parallel ``(policy, trace, seed)`` grid sweeps over one fleet model.

The capacity-planning workload the fleet simulator exists for — compare
every governor against several trace families over tens of seeds — is a
grid of fully independent cells, so it shards across a
:class:`~concurrent.futures.ProcessPoolExecutor` (worker budget from
:func:`repro.toolchain.batch.default_jobs`, same in-process fallback for
fork-restricted sandboxes).  Each worker reopens the hosted model
*zero-copy* from the content-addressed image store
(``.xpdl-cache/images/``): :meth:`repro.ir.IRModel.load` mmaps the
XPDLRT02 image, ``xpdl_init_from_model`` adopts its persisted index
sections (``index.load_mmap``, never ``index.rebuilds``), and
:func:`~repro.fleet.simulator.index_state_catalog` is built exactly once
per worker (``fleet.catalog_builds``) and shared by every cell the worker
runs — no recomposition, no re-indexing, no per-cell catalog walks.

Determinism contract: every cell is a pure function of
``(testbed, trace, policy)``, workers return bit-exact
:class:`~repro.fleet.simulator.PolicyResult` values, and the parent
reassembles them in grid order — so :meth:`SweepReport.to_json` (and its
digest) is byte-identical whether the sweep ran with ``--jobs 1`` or
``--jobs N``.  Anything that legitimately varies with parallelism (wall
time, worker count, merged counters) lives in :class:`SweepStats`, which
is deliberately outside the digest.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

import hashlib
import json

from ..diagnostics import XpdlError
from ..obs import Observer, get_observer, use_observer
from ..simhw import SimTestbed
from .governors import GOVERNORS
from .simulator import (
    DEFAULT_REQUEST_OPS,
    FleetSimulator,
    PolicyResult,
    index_state_catalog,
)
from .traces import TRACE_KINDS, Trace, make_trace


def parse_seeds(spec: str) -> tuple[int, ...]:
    """Parse a seed-list spec: ``"1..32"``, ``"0,3,7"``, ``"1..4,9"``.

    Ranges are inclusive; duplicates collapse, first occurrence wins.
    """
    seeds: list[int] = []
    seen: set[int] = set()
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        try:
            if ".." in part:
                lo_s, _, hi_s = part.partition("..")
                lo, hi = int(lo_s), int(hi_s)
                if hi < lo:
                    raise XpdlError(
                        f"seed range {part!r} is empty (end before start)"
                    )
                values: Iterable[int] = range(lo, hi + 1)
            else:
                values = (int(part),)
        except ValueError:
            raise XpdlError(
                f"bad seed spec {spec!r}: {part!r} is not an integer "
                "or lo..hi range"
            ) from None
        for v in values:
            if v not in seen:
                seen.add(v)
                seeds.append(v)
    if not seeds:
        raise XpdlError(f"seed spec {spec!r} names no seeds")
    return tuple(seeds)


@dataclass(frozen=True)
class SweepCell:
    """One grid point: a policy over one seeded trace."""

    policy: str
    trace: str
    seed: int


@dataclass(frozen=True)
class SweepCellResult:
    cell: SweepCell
    result: PolicyResult

    def to_dict(self) -> dict:
        out = {"trace": self.cell.trace, "seed": self.cell.seed}
        out.update(self.result.to_dict())
        return out


@dataclass(frozen=True)
class _SweepTask:
    """Picklable description of one worker's share of the grid."""

    worker_index: int
    testbed: SimTestbed
    image_path: str | None
    catalog: dict[str, frozenset[str]] | None
    cells: tuple[tuple[int, SweepCell], ...]
    intervals: int
    interval_s: float
    request_ops: int
    engine: str


@dataclass(frozen=True)
class _WorkerOut:
    worker_index: int
    results: tuple[tuple[int, PolicyResult], ...]
    observations: dict
    duration_s: float


def _run_sweep_cells(task: _SweepTask) -> _WorkerOut:
    """Run one shard of cells; module-level so the pool can pickle it."""
    t0 = time.perf_counter()
    observer = Observer()
    with use_observer(observer):
        catalog = task.catalog
        if task.image_path is not None:
            # Zero-copy reopen: mmap the persisted XPDLRT02 image and
            # adopt its index sections; the catalog is then read through
            # the compiled query API once for all of this worker's cells.
            from ..ir import IRModel
            from ..runtime import xpdl_init_from_model

            ir = IRModel.load(task.image_path)
            ctx = xpdl_init_from_model(ir)
            observer.count("fleet.sweep.image_opens")
            catalog = index_state_catalog(ctx, task.testbed)
        sim = FleetSimulator(
            task.testbed,
            state_catalog=catalog,
            request_ops=task.request_ops,
        )
        machine_names = sorted(task.testbed.machines)
        traces: dict[tuple[str, int], Trace] = {}
        results: list[tuple[int, PolicyResult]] = []
        for cell_index, cell in task.cells:
            key = (cell.trace, cell.seed)
            tr = traces.get(key)
            if tr is None:
                tr = traces[key] = make_trace(
                    cell.trace,
                    seed=cell.seed,
                    intervals=task.intervals,
                    interval_s=task.interval_s,
                    machines=machine_names,
                )
            results.append(
                (cell_index, sim.run_policy(cell.policy, tr, engine=task.engine))
            )
            observer.count("fleet.sweep.cells")
    return _WorkerOut(
        worker_index=task.worker_index,
        results=tuple(results),
        observations=observer.snapshot(),
        duration_s=time.perf_counter() - t0,
    )


@dataclass
class SweepReport:
    """Digest-stable outcome of one grid sweep (independent of ``jobs``)."""

    model: str
    machines: int
    peak_capacity: int
    intervals: int
    interval_s: float
    request_ops: int
    engine: str
    policies: tuple[str, ...]
    traces: tuple[str, ...]
    seeds: tuple[int, ...]
    cells: tuple[SweepCellResult, ...]

    def cell(self, policy: str, trace: str, seed: int) -> PolicyResult:
        for c in self.cells:
            if c.cell == SweepCell(policy, trace, seed):
                return c.result
        raise XpdlError(
            f"sweep has no cell (policy={policy!r}, trace={trace!r}, "
            f"seed={seed})"
        )

    def _aggregate(self, cells: Iterable[SweepCellResult]) -> dict:
        """Deterministic totals over ``cells`` in grid order."""
        energy = 0.0
        offered = served = slo_met = intervals = switches = n = 0
        for c in cells:
            r = c.result
            energy += r.energy_j
            offered += r.offered
            served += r.served
            slo_met += r.slo_met_intervals
            intervals += r.intervals
            switches += r.switches
            n += 1
        return {
            "cells": n,
            "energy_j": round(energy, 6),
            "slo_attainment": round(slo_met / intervals, 6) if intervals else 1.0,
            "service_level": round(served / offered, 6) if offered else 1.0,
            "switches": switches,
        }

    def frontier(self) -> dict[str, dict]:
        """Per-policy aggregate energy/SLO over the whole grid.

        The delta column is ``None`` (``n/a`` in the table) when the
        sweep did not include the performance policy — a delta against a
        missing baseline would be a lie, not a zero.
        """
        rows = {
            policy: self._aggregate(
                c for c in self.cells if c.cell.policy == policy
            )
            for policy in self.policies
        }
        base = rows.get("performance")
        base_energy = base["energy_j"] if base else 0.0
        for row in rows.values():
            row["energy_delta_vs_performance"] = (
                round((row["energy_j"] - base_energy) / base_energy, 6)
                if base_energy > 0.0
                else None
            )
        return rows

    def by_trace(self) -> dict[str, dict[str, dict]]:
        """Per-trace-family breakdown of the per-policy aggregates."""
        return {
            kind: {
                policy: self._aggregate(
                    c
                    for c in self.cells
                    if c.cell.policy == policy and c.cell.trace == kind
                )
                for policy in self.policies
            }
            for kind in self.traces
        }

    def to_dict(self) -> dict:
        return {
            "model": self.model,
            "machines": self.machines,
            "peak_capacity": self.peak_capacity,
            "intervals": self.intervals,
            "interval_s": self.interval_s,
            "request_ops": self.request_ops,
            "engine": self.engine,
            "policies": list(self.policies),
            "traces": list(self.traces),
            "seeds": list(self.seeds),
            "cells": [c.to_dict() for c in self.cells],
            "frontier": self.frontier(),
            "by_trace": self.by_trace(),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def digest(self) -> str:
        return hashlib.sha256(self.to_json().encode()).hexdigest()

    def render_table(self) -> str:
        frontier = self.frontier()
        head = (
            f"fleet sweep {self.model}: {len(self.policies)} policies x "
            f"{len(self.traces)} traces x {len(self.seeds)} seeds = "
            f"{len(self.cells)} cells "
            f"({self.intervals}x{self.interval_s:g}s, "
            f"machines={self.machines}, peak={self.peak_capacity} "
            "req/interval)"
        )
        cols = (
            f"{'policy':<14} {'energy [kJ]':>12} {'vs perf':>8} "
            f"{'SLO':>7} {'service':>8} {'switches':>9}"
        )
        lines = [head, cols, "-" * len(cols)]
        for policy in self.policies:
            row = frontier[policy]
            delta = row["energy_delta_vs_performance"]
            delta_s = f"{delta:+8.1%}" if delta is not None else f"{'n/a':>8}"
            lines.append(
                f"{policy:<14} {row['energy_j'] / 1e3:>12.3f} {delta_s} "
                f"{row['slo_attainment']:>7.1%} "
                f"{row['service_level']:>8.1%} {row['switches']:>9d}"
            )
        by_trace = self.by_trace()
        lines.append("")
        lines.append(
            f"{'per-trace energy [kJ]':<22} "
            + " ".join(f"{p:>14}" for p in self.policies)
        )
        for kind in self.traces:
            lines.append(
                f"{kind:<22} "
                + " ".join(
                    f"{by_trace[kind][p]['energy_j'] / 1e3:>14.3f}"
                    for p in self.policies
                )
            )
        return "\n".join(lines)


@dataclass
class SweepStats:
    """Run-shape facts that legitimately vary with ``--jobs``."""

    jobs: int
    workers: int
    cells: int
    wall_s: float
    worker_s: tuple[float, ...]
    counters: dict[str, int]

    @property
    def cells_per_s(self) -> float:
        return self.cells / self.wall_s if self.wall_s > 0 else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "jobs": self.jobs,
            "workers": self.workers,
            "cells": self.cells,
            "wall_s": round(self.wall_s, 6),
            "cells_per_s": round(self.cells_per_s, 3),
            "worker_s": [round(w, 6) for w in self.worker_s],
            "counters": dict(sorted(self.counters.items())),
        }


def run_sweep(
    testbed: SimTestbed,
    *,
    policies: Iterable[str],
    traces: Iterable[str],
    seeds: Iterable[int],
    intervals: int = 72,
    interval_s: float = 60.0,
    request_ops: int = DEFAULT_REQUEST_OPS,
    image_path: str | None = None,
    state_catalog: Mapping[str, frozenset[str]] | None = None,
    jobs: int | None = None,
    engine: str = "memo",
    observer: Observer | None = None,
) -> tuple[SweepReport, SweepStats]:
    """Shard the grid across workers and merge one digest-stable report.

    ``image_path`` points at a persisted XPDLRT02 runtime image; each
    worker mmaps it and derives the state catalog through the compiled
    query engine.  Without an image, ``state_catalog`` (built once by the
    caller) is shipped to the workers instead; with neither, cells run
    uncatalogued (no per-decision validation) — fine for synthetic
    testbeds that never went through the toolchain.

    Returns ``(report, stats)``: the report is byte-identical for any
    ``jobs``; the stats (wall, workers, merged counters) are not part of
    the digest.  Pool creation failures (fork-restricted sandboxes)
    degrade to in-process execution, recorded as
    ``fleet.sweep.pool_fallback``.
    """
    from ..toolchain.batch import default_jobs

    policy_list = tuple(dict.fromkeys(policies))
    if not policy_list:
        raise XpdlError("no policies requested for fleet sweep")
    for policy in policy_list:
        if policy not in GOVERNORS:
            raise XpdlError(
                f"unknown governor {policy!r}; "
                f"policies: {', '.join(GOVERNORS)}"
            )
    trace_list = tuple(dict.fromkeys(traces))
    if not trace_list:
        raise XpdlError("no trace kinds requested for fleet sweep")
    for kind in trace_list:
        if kind not in TRACE_KINDS:
            raise XpdlError(
                f"unknown trace kind {kind!r}; "
                f"kinds: {', '.join(TRACE_KINDS)}"
            )
    seed_list = tuple(dict.fromkeys(int(s) for s in seeds))
    if not seed_list:
        raise XpdlError("no seeds requested for fleet sweep")

    cells = [
        SweepCell(policy, kind, seed)
        for kind in trace_list
        for seed in seed_list
        for policy in policy_list
    ]
    if jobs is None:
        jobs = default_jobs()
    jobs = max(1, jobs)
    n_workers = min(jobs, len(cells))

    # Workers only need the machines: links and descriptor-side
    # instruction models are irrelevant to the interval loop and would
    # bloat every task pickle.
    pruned = SimTestbed(name=testbed.name, machines=dict(testbed.machines))
    shards: list[list[tuple[int, SweepCell]]] = [[] for _ in range(n_workers)]
    for i, cell in enumerate(cells):
        shards[i % n_workers].append((i, cell))
    tasks = [
        _SweepTask(
            worker_index=w,
            testbed=pruned,
            image_path=image_path,
            catalog=dict(state_catalog) if state_catalog is not None else None,
            cells=tuple(shard),
            intervals=intervals,
            interval_s=interval_s,
            request_ops=request_ops,
            engine=engine,
        )
        for w, shard in enumerate(shards)
    ]

    merged = Observer()
    t0 = time.perf_counter()
    if n_workers == 1:
        outs = [_run_sweep_cells(task) for task in tasks]
    else:
        try:
            with ProcessPoolExecutor(max_workers=n_workers) as pool:
                outs = list(pool.map(_run_sweep_cells, tasks))
        except (OSError, RuntimeError):
            # Fork-restricted sandbox: degrade to in-process, same cells,
            # same report bytes.
            merged.count("fleet.sweep.pool_fallback")
            outs = [_run_sweep_cells(task) for task in tasks]
    wall_s = time.perf_counter() - t0

    results: list[PolicyResult | None] = [None] * len(cells)
    worker_s = []
    for out in sorted(outs, key=lambda o: o.worker_index):
        merged.merge(out.observations)
        worker_s.append(out.duration_s)
        for cell_index, result in out.results:
            results[cell_index] = result
    missing = [i for i, r in enumerate(results) if r is None]
    if missing:
        raise XpdlError(
            f"sweep workers returned no result for {len(missing)} cell(s)"
        )
    merged.count("fleet.sweep.workers", len(outs))

    caller = observer if observer is not None else get_observer()
    caller.merge(merged.snapshot())

    sizer = FleetSimulator(
        pruned, state_catalog=None, request_ops=request_ops
    )
    report = SweepReport(
        model=testbed.name,
        machines=len(testbed.machines),
        peak_capacity=sizer.peak_capacity(interval_s),
        intervals=intervals,
        interval_s=interval_s,
        request_ops=request_ops,
        engine=engine,
        policies=policy_list,
        traces=trace_list,
        seeds=seed_list,
        cells=tuple(
            SweepCellResult(cell, result)
            for cell, result in zip(cells, results)
            if result is not None
        ),
    )
    stats = SweepStats(
        jobs=jobs,
        workers=len(outs),
        cells=len(cells),
        wall_s=wall_s,
        worker_s=tuple(worker_s),
        counters=dict(merged.counters),
    )
    return report, stats
