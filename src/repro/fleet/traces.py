"""Synthetic traffic traces for the fleet simulator.

A :class:`Trace` is a per-interval sequence of *offered load* fractions —
relative to the fleet's peak capacity with every machine in its fastest
state — plus an optional per-machine downtime overlay for node-failure
scenarios.  Every draw is seeded through the corpus convention
``random.Random(f"{seed}:{purpose}:{i}")``, so a (kind, seed, intervals,
machines) tuple always produces byte-identical traces regardless of
``PYTHONHASHSEED`` or platform.

Families:

``diurnal``
    A day/night sinusoid with period 24 intervals plus small noise — the
    canonical datacenter load shape.
``poisson``
    A low baseline with seeded exponential-magnitude bursts.
``step``
    A low plateau stepping to a high plateau mid-trace (capacity
    re-planning shape).
``spike``
    A low baseline with rare overload spikes *above* fleet capacity, to
    exercise queue backlog and SLO misses.
``failures``
    The diurnal shape plus contiguous per-machine outage windows.
"""

from __future__ import annotations

import math
import random
from collections.abc import Sequence
from dataclasses import dataclass, field

from ..diagnostics import XpdlError

_EMPTY: frozenset[int] = frozenset()


@dataclass(frozen=True)
class Trace:
    """A seeded, immutable load trace."""

    kind: str
    seed: int
    interval_s: float
    #: Offered load per interval, as a fraction of fleet peak capacity.
    offered: tuple[float, ...]
    #: Machine name -> intervals during which the machine is down.
    downtime: dict[str, frozenset[int]] = field(default_factory=dict)

    @property
    def intervals(self) -> int:
        return len(self.offered)

    def is_down(self, machine: str, interval: int) -> bool:
        return interval in self.downtime.get(machine, _EMPTY)

    def peak(self) -> float:
        return max(self.offered) if self.offered else 0.0


def _rng(seed: int, purpose: str, i: object) -> random.Random:
    return random.Random(f"{seed}:{purpose}:{i}")


def _clamp(x: float, lo: float, hi: float) -> float:
    return max(lo, min(hi, x))


def _diurnal_offered(seed: int, intervals: int, purpose: str) -> tuple[float, ...]:
    out = []
    for i in range(intervals):
        base = 0.45 + 0.35 * math.sin(2.0 * math.pi * i / 24.0)
        noise = _rng(seed, purpose, i).uniform(-0.03, 0.03)
        out.append(_clamp(base + noise, 0.02, 1.0))
    return tuple(out)


def _poisson_offered(seed: int, intervals: int) -> tuple[float, ...]:
    out = []
    for i in range(intervals):
        rng = _rng(seed, "trace.poisson", i)
        load = 0.3 + rng.uniform(-0.02, 0.02)
        if rng.random() < 0.15:
            load += rng.expovariate(2.0)
        out.append(_clamp(load, 0.02, 1.5))
    return tuple(out)


def _step_offered(seed: int, intervals: int) -> tuple[float, ...]:
    out = []
    for i in range(intervals):
        base = 0.2 if i < intervals // 2 else 0.7
        noise = _rng(seed, "trace.step", i).uniform(-0.01, 0.01)
        out.append(_clamp(base + noise, 0.02, 1.0))
    return tuple(out)


def _spike_offered(seed: int, intervals: int) -> tuple[float, ...]:
    out = []
    for i in range(intervals):
        rng = _rng(seed, "trace.spike", i)
        load = 0.25 + rng.uniform(-0.02, 0.02)
        if rng.random() < 0.08:
            load = 1.3  # deliberate overload: backlog must queue
        out.append(_clamp(load, 0.02, 1.5))
    return tuple(out)


def _failure_downtime(
    seed: int, intervals: int, machines: Sequence[str]
) -> dict[str, frozenset[int]]:
    downtime: dict[str, frozenset[int]] = {}
    for machine in sorted(machines):
        rng = _rng(seed, "trace.failures.down", machine)
        if rng.random() >= 0.25:
            continue
        start = rng.randrange(intervals)
        length = 1 + rng.randrange(max(1, intervals // 6))
        window = frozenset(range(start, min(intervals, start + length)))
        if window:
            downtime[machine] = window
    return downtime


def make_trace(
    kind: str,
    *,
    seed: int,
    intervals: int = 72,
    interval_s: float = 60.0,
    machines: Sequence[str] = (),
) -> Trace:
    """Build a byte-stable trace of one of the :data:`TRACE_KINDS`."""
    if intervals <= 0:
        raise XpdlError(f"trace needs at least one interval, got {intervals}")
    if interval_s <= 0.0:
        raise XpdlError(f"interval length must be positive, got {interval_s}")
    downtime: dict[str, frozenset[int]] = {}
    if kind == "diurnal":
        offered = _diurnal_offered(seed, intervals, "trace.diurnal")
    elif kind == "poisson":
        offered = _poisson_offered(seed, intervals)
    elif kind == "step":
        offered = _step_offered(seed, intervals)
    elif kind == "spike":
        offered = _spike_offered(seed, intervals)
    elif kind == "failures":
        offered = _diurnal_offered(seed, intervals, "trace.failures")
        downtime = _failure_downtime(seed, intervals, machines)
    else:
        raise XpdlError(
            f"unknown trace kind {kind!r}; kinds: {', '.join(TRACE_KINDS)}"
        )
    return Trace(
        kind=kind,
        seed=seed,
        interval_s=interval_s,
        offered=offered,
        downtime=downtime,
    )


TRACE_KINDS: tuple[str, ...] = (
    "diurnal",
    "poisson",
    "step",
    "spike",
    "failures",
)
