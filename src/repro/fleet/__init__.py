"""Fleet-scale energy simulation under time-varying load (paper Sec. V).

The deployment-time loop the paper's power-state-machine data exists to
feed: a discrete-interval simulator drives a
:class:`~repro.simhw.factory.SimTestbed` — typically built from a
generated cluster model — with seeded synthetic traffic traces, while a
pluggable DVFS *governor* picks a P-state per machine per interval.  The
simulator accounts busy/idle/transition energy exactly (through
:class:`~repro.simhw.machine.SimMachine` and PSM switch plans), tracks
SLO attainment against the offered load, and emits a per-policy
energy/SLO report.
"""

from .traces import TRACE_KINDS, Trace, make_trace
from .governors import (
    GOVERNORS,
    Governor,
    OndemandGovernor,
    PerformanceGovernor,
    PowersaveGovernor,
    RaceToIdleGovernor,
    make_governor,
)
from .simulator import (
    ENGINES,
    FleetReport,
    FleetSimulator,
    PolicyResult,
    index_state_catalog,
    simulate_fleet,
)
from .sweep import (
    SweepCell,
    SweepCellResult,
    SweepReport,
    SweepStats,
    parse_seeds,
    run_sweep,
)

__all__ = [
    "ENGINES",
    "SweepCell",
    "SweepCellResult",
    "SweepReport",
    "SweepStats",
    "parse_seeds",
    "run_sweep",
    "TRACE_KINDS",
    "Trace",
    "make_trace",
    "GOVERNORS",
    "Governor",
    "OndemandGovernor",
    "PerformanceGovernor",
    "PowersaveGovernor",
    "RaceToIdleGovernor",
    "make_governor",
    "FleetReport",
    "FleetSimulator",
    "PolicyResult",
    "index_state_catalog",
    "simulate_fleet",
]
