"""The discrete-interval fleet simulator.

Load model: a *request* is a fixed instruction mix (drawn from each
machine's ISA ground truth) of ``request_ops`` total instructions.  The
trace's offered fraction is scaled by the fleet's *peak capacity* — the
requests per interval the fleet serves with every machine pinned to its
fastest state — into an integer request count per interval.  Unserved
requests queue: the next interval's demand is ``offered + backlog``.

Per interval, for every machine:

1. its governor picks a P-state from the machine's PSM (validated
   against the compiled :class:`~repro.runtime.index.IRIndex` state
   catalog when one is supplied), and the cursor switches — paying the
   declared transition time/energy, multi-hop if needed;
2. the fleet allocates demand greedily, fastest machines first; each
   machine serves up to ``floor((interval - switch_time) / request_time)``
   requests;
3. energy is accounted exactly: served requests through
   :meth:`~repro.simhw.machine.SimMachine.run_stream`, the idle tail
   through :meth:`~repro.simhw.machine.SimMachine.run_idle` (optionally
   parked in the PSM's lowest-power state for race-to-idle governors),
   switches through the cursor deltas.

A machine inside a trace downtime window serves nothing and consumes
nothing (hard power-off).  Everything is deterministic given (testbed,
trace, policy): reports hash byte-identically across runs.

Two engines produce the same physics:

``memo`` (default)
    Flat per-machine lookup tables keyed by interned state index
    (:class:`_MachineTables`): switch plans, busy power, per-state
    dynamic energy per mix entry, request times and zero-switch
    capacities are each computed once per simulator and reused across
    every interval, policy and trace.  The per-interval arithmetic
    replays the cursor path's floating-point operations term-for-term
    (same operand order, same association), so results are *bit*
    identical — not merely close — to the reference engine.

``cursor``
    The original object-walking loop (fresh
    :class:`~repro.power.PsmCursor` per policy, ``run_stream`` /
    ``run_idle`` on the live machines).  Kept as the executable
    specification; the equivalence tests pin ``memo`` against it.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

from ..diagnostics import XpdlError
from ..obs import get_observer
from ..power import PsmCursor
from ..simhw import SimMachine, SimTestbed
from ..units import TIME, Quantity
from .governors import Governor, make_governor
from .traces import Trace

#: Instructions per request; split evenly across the machine's ISA mix.
DEFAULT_REQUEST_OPS = 200_000

#: Engine names accepted by :meth:`FleetSimulator.run_policy`.
ENGINES = ("memo", "cursor")


def _request_mix(machine: SimMachine, request_ops: int) -> dict[str, int]:
    names = sorted(machine.truth.names())
    if not names:
        raise XpdlError(
            f"machine {machine.name!r} has no instruction ground truth"
        )
    per = max(1, request_ops // len(names))
    return {name: per for name in names}


def _request_cycles(machine: SimMachine, mix: Mapping[str, int]) -> float:
    cycles = 0.0
    for name, count in mix.items():
        cycles += count * machine.truth.entry(name).cpi / machine.issue_width
    return cycles


@dataclass
class PolicyResult:
    """Energy/SLO outcome of one policy over one trace."""

    policy: str
    intervals: int
    offered: int
    served: int
    final_backlog: int
    slo_met_intervals: int
    busy_j: float
    idle_j: float
    switch_j: float
    switches: int

    @property
    def energy_j(self) -> float:
        return self.busy_j + self.idle_j + self.switch_j

    @property
    def slo_attainment(self) -> float:
        return self.slo_met_intervals / self.intervals if self.intervals else 1.0

    @property
    def service_level(self) -> float:
        return self.served / self.offered if self.offered else 1.0

    def to_dict(self) -> dict:
        return {
            "policy": self.policy,
            "intervals": self.intervals,
            "offered": self.offered,
            "served": self.served,
            "final_backlog": self.final_backlog,
            "slo_met_intervals": self.slo_met_intervals,
            "slo_attainment": round(self.slo_attainment, 6),
            "service_level": round(self.service_level, 6),
            "busy_j": round(self.busy_j, 6),
            "idle_j": round(self.idle_j, 6),
            "switch_j": round(self.switch_j, 6),
            "energy_j": round(self.energy_j, 6),
            "switches": self.switches,
        }


@dataclass
class FleetReport:
    """Per-policy comparison over one trace on one fleet."""

    model: str
    trace: str
    seed: int
    intervals: int
    interval_s: float
    machines: int
    peak_capacity: int
    results: list[PolicyResult] = field(default_factory=list)

    def result(self, policy: str) -> PolicyResult:
        for r in self.results:
            if r.policy == policy:
                return r
        raise XpdlError(
            f"report has no policy {policy!r}; "
            f"policies: {', '.join(r.policy for r in self.results)}"
        )

    def performance_baseline(self) -> PolicyResult | None:
        """The ``performance`` row used as the energy-delta baseline.

        ``None`` when the run did not include the performance policy (or
        its energy is zero), in which case deltas are not comparable and
        render as ``n/a`` rather than a misleading ``0.0%``.
        """
        for r in self.results:
            if r.policy == "performance" and r.energy_j > 0.0:
                return r
        return None

    def to_dict(self) -> dict:
        baseline = self.performance_baseline()
        out = {
            "model": self.model,
            "trace": self.trace,
            "seed": self.seed,
            "intervals": self.intervals,
            "interval_s": self.interval_s,
            "machines": self.machines,
            "peak_capacity": self.peak_capacity,
            "policies": [r.to_dict() for r in self.results],
        }
        if baseline is not None:
            out["energy_delta_vs_performance"] = {
                r.policy: round(
                    (r.energy_j - baseline.energy_j) / baseline.energy_j, 6
                )
                for r in self.results
            }
        return out

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def digest(self) -> str:
        return hashlib.sha256(self.to_json().encode()).hexdigest()

    def render_table(self) -> str:
        baseline = self.performance_baseline()
        head = (
            f"fleet {self.model}: trace={self.trace} seed={self.seed} "
            f"intervals={self.intervals}x{self.interval_s:g}s "
            f"machines={self.machines} peak={self.peak_capacity} req/interval"
        )
        cols = (
            f"{'policy':<14} {'energy [kJ]':>12} {'vs perf':>8} "
            f"{'SLO':>7} {'service':>8} {'switches':>9}"
        )
        lines = [head, cols, "-" * len(cols)]
        for r in self.results:
            if baseline is not None:
                delta = (r.energy_j - baseline.energy_j) / baseline.energy_j
                delta_s = f"{delta:+8.1%}"
            else:
                delta_s = f"{'n/a':>8}"
            lines.append(
                f"{r.policy:<14} {r.energy_j / 1e3:>12.3f} {delta_s} "
                f"{r.slo_attainment:>7.1%} {r.service_level:>8.1%} "
                f"{r.switches:>9d}"
            )
        return "\n".join(lines)


def index_state_catalog(ctx, testbed: SimTestbed) -> dict[str, frozenset[str]]:
    """Per-machine P-state catalog read through the compiled query API.

    For each simulated machine, browse the runtime :class:`IRIndex` for
    the matching unit (by id) and collect its declared ``power_state``
    names; machines the index cannot pin down fall back to the model-wide
    state set.  The simulator uses the catalog to cross-check every
    governor decision against the *compiled* model — the query engine as
    the optimizer's inner loop.

    Building the catalog walks the whole index, so callers running many
    policies or sweep cells against one (ctx, testbed) pair must build it
    once and share it; the ``fleet.catalog_builds`` counter makes the
    once-per-cell-set discipline assertable.
    """
    obs = get_observer()
    obs.count("fleet.catalog_builds")
    all_states = frozenset(
        h.attr("name") or h.label() for h in ctx.find_all("power_state")
    )
    catalog: dict[str, frozenset[str]] = {}
    for name in testbed.machines:
        handle = ctx.by_id(name)
        obs.count("fleet.query.lookups")
        if handle is not None:
            states = frozenset(
                h.attr("name") or h.label()
                for h in handle.descendants("power_state")
            )
            if states:
                catalog[name] = states
                continue
        catalog[name] = all_states
    return catalog


class _MachineTables:
    """Flat per-machine lookup tables for the ``memo`` engine.

    States are interned to list indices once; everything the interval
    loop needs becomes an indexed load: ``freq[s]``, ``run_power[s]``
    (state + base power, the idle/busy static draw), ``req_t[s]``
    (seconds per request), lazily-filled switch-plan costs
    ``(time, energy, hops)`` per ``(src, dst)`` pair, per-state dynamic
    energy per mix entry, and memoized ``run_stream`` outcomes per
    ``(state, n_requests)``.  Every float here is produced by the exact
    expression the cursor engine evaluates, so downstream accumulation
    is bit-identical.
    """

    __slots__ = (
        "machine",
        "names",
        "index",
        "freq",
        "run_power",
        "req_t",
        "req_cycles",
        "mix_counts",
        "cpi",
        "iw",
        "fastest_idx",
        "idle_idx",
        "catalog",
        "_entries",
        "_dyn",
        "_plans",
        "_busy",
    )

    def __init__(
        self,
        machine: SimMachine,
        mix: Mapping[str, int],
        req_cycles: float,
        catalog: frozenset[str] | None,
    ) -> None:
        self.machine = machine
        self.req_cycles = req_cycles
        self.catalog = catalog
        self.iw = machine.issue_width
        # Mix entries in dict (= sorted-name) order: run_stream iterates
        # the counts dict in insertion order, and the memoized loop must
        # accumulate in the same order to keep float sums identical.
        self._entries = [machine.truth.entry(name) for name in mix]
        self.mix_counts = list(mix.values())
        self.cpi = [e.cpi for e in self._entries]
        psm = machine.psm
        if psm is not None:
            self.names = list(psm.order)
            self.index = {n: i for i, n in enumerate(self.names)}
            states = [psm.state(n) for n in self.names]
            self.freq = [s.frequency.magnitude for s in states]
            base = machine.base_power.magnitude
            self.run_power = [s.power.magnitude + base for s in states]
            self.fastest_idx = self.index[psm.fastest().name]
            self.idle_idx = self.index[psm.idle_state().name]
        else:
            self.names = ["<fixed>"]
            self.index = {"<fixed>": 0}
            self.freq = [machine.fixed_frequency.magnitude]
            self.run_power = [0.0 + machine.base_power.magnitude]
            self.fastest_idx = 0
            self.idle_idx = 0
        self.req_t = [
            req_cycles / f if f > 0.0 else 0.0 for f in self.freq
        ]
        self._dyn: list[list[float] | None] = [None] * len(self.names)
        self._plans: dict[tuple[int, int], tuple[float, float, int]] = {}
        self._busy: dict[tuple[int, int], tuple[float, float]] = {}

    def plan(self, src: int, dst: int) -> tuple[float, float, int]:
        """Switch cost ``(time_s, energy_j, hops)``; lazy so unreachable
        pairs only raise when actually demanded, like the cursor."""
        hit = self._plans.get((src, dst))
        if hit is None:
            psm = self.machine.psm
            assert psm is not None
            p = psm.switch_plan(self.names[src], self.names[dst])
            hit = (p.time.magnitude, p.energy.magnitude, p.hops)
            self._plans[(src, dst)] = hit
        return hit

    def _dyn_at(self, s: int) -> list[float]:
        d = self._dyn[s]
        if d is None:
            f = self.freq[s]
            d = [e.energy_at(f) for e in self._entries]
            self._dyn[s] = d
        return d

    def busy(self, s: int, n: int) -> tuple[float, float]:
        """``(duration_s, energy_j)`` of ``n`` requests at state ``s``.

        Term-for-term mirror of ``run_stream`` on the scaled mix:
        ``cycles += (count*n) * cpi / issue_width`` and
        ``dyn += (count*n) * energy_at(f)`` per entry in mix order, then
        ``duration = cycles / f`` and
        ``energy = (state_power + base_power) * duration + dyn``.
        """
        hit = self._busy.get((s, n))
        if hit is None:
            dyn_e = self._dyn_at(s)
            iw = self.iw
            cycles = 0.0
            dyn = 0.0
            for count, cpi_k, e_k in zip(self.mix_counts, self.cpi, dyn_e):
                c = count * n
                cycles += c * cpi_k / iw
                dyn += c * e_k
            bt = cycles / self.freq[s]
            hit = (bt, self.run_power[s] * bt + dyn)
            self._busy[(s, n)] = hit
        return hit


@dataclass
class _MachineState:
    """Per-run bookkeeping for one machine (cursor engine)."""

    machine: SimMachine
    governor: Governor | None
    mix: dict[str, int]
    req_cycles: float
    last_util: float
    pred_cycles: float


class FleetSimulator:
    """Drives one testbed through traces under different governors."""

    def __init__(
        self,
        testbed: SimTestbed,
        *,
        state_catalog: Mapping[str, frozenset[str]] | None = None,
        request_ops: int = DEFAULT_REQUEST_OPS,
    ) -> None:
        if not testbed.machines:
            raise XpdlError(f"testbed {testbed.name!r} has no machines")
        self.testbed = testbed
        self.state_catalog = dict(state_catalog or {})
        self.request_ops = request_ops
        self._mixes = {
            name: _request_mix(m, request_ops)
            for name, m in testbed.machines.items()
        }
        self._cycles = {
            name: _request_cycles(m, self._mixes[name])
            for name, m in testbed.machines.items()
        }
        self._names = sorted(testbed.machines)
        self._tables = {
            name: _MachineTables(
                testbed.machines[name],
                self._mixes[name],
                self._cycles[name],
                self.state_catalog.get(name),
            )
            for name in self._names
        }
        #: Allocation order memo, shared across policies and traces: the
        #: greedy sort key depends only on the current-state vector.
        self._order_cache: dict[tuple[int, ...], list[int]] = {}
        #: Zero-switch capacities per machine per state, keyed interval_s.
        self._cap0_cache: dict[float, list[list[int]]] = {}
        self._peak_cache: dict[float, int] = {}

    # -- capacity ------------------------------------------------------------
    def _fastest_frequency(self, m: SimMachine) -> float:
        if m.psm is not None:
            return m.psm.fastest().frequency.magnitude
        return m.fixed_frequency.magnitude

    def _machine_peak(self, m: SimMachine, interval_s: float) -> int:
        req_t = self._cycles[m.name] / self._fastest_frequency(m)
        return int(interval_s / req_t)

    def peak_capacity(self, interval_s: float) -> int:
        """Requests/interval with every machine pinned to its fastest state."""
        peak = self._peak_cache.get(interval_s)
        if peak is None:
            peak = sum(
                self._machine_peak(m, interval_s)
                for m in self.testbed.machines.values()
            )
            self._peak_cache[interval_s] = peak
        return peak

    def _cap0_for(self, interval_s: float) -> list[list[int]]:
        caps = self._cap0_cache.get(interval_s)
        if caps is None:
            caps = [
                [
                    max(0, int(interval_s / rt)) if rt > 0.0 else 0
                    for rt in self._tables[name].req_t
                ]
                for name in self._names
            ]
            self._cap0_cache[interval_s] = caps
        return caps

    # -- policy run ----------------------------------------------------------
    def _fresh_states(self, policy: str, interval_s: float) -> list[_MachineState]:
        states = []
        for name in sorted(self.testbed.machines):
            m = self.testbed.machines[name]
            if m.psm is not None:
                # Fresh cursor per policy run: byte-stable, no cross-policy
                # contamination of switch accounting.
                m.cursor = PsmCursor(m.psm, m.psm.fastest().name)
                governor: Governor | None = make_governor(policy, m.psm)
                governor.reset()
            else:
                governor = None
            states.append(
                _MachineState(
                    machine=m,
                    governor=governor,
                    mix=self._mixes[name],
                    req_cycles=self._cycles[name],
                    last_util=1.0,
                    pred_cycles=self._machine_peak(m, interval_s)
                    * self._cycles[name],
                )
            )
        return states

    def _checked_state(self, machine: str, state: str) -> str:
        catalog = self.state_catalog.get(machine)
        if catalog is not None:
            get_observer().count("fleet.query.state_checks")
            if state not in catalog:
                raise XpdlError(
                    f"governor chose state {state!r} for machine "
                    f"{machine!r}, absent from the compiled index catalog"
                )
        return state

    def run_policy(
        self, policy: str, trace: Trace, *, engine: str = "memo"
    ) -> PolicyResult:
        if engine == "memo":
            return self._run_policy_memo(policy, trace)
        if engine == "cursor":
            return self._run_policy_cursor(policy, trace)
        raise XpdlError(
            f"unknown fleet engine {engine!r}; engines: {', '.join(ENGINES)}"
        )

    # -- memo engine ---------------------------------------------------------
    def _run_policy_memo(self, policy: str, trace: Trace) -> PolicyResult:
        obs = get_observer()
        interval_s = trace.interval_s
        interval_q = Quantity(interval_s, TIME)
        peak = self.peak_capacity(interval_s)
        names = self._names
        nm = len(names)
        tables = [self._tables[name] for name in names]
        cap0 = self._cap0_for(interval_s)

        govs: list[Governor | None] = []
        parking: list[bool] = []
        cur: list[int] = []
        last_util = [1.0] * nm
        pred: list[float] = []
        for name, tbl in zip(names, tables):
            m = self.testbed.machines[name]
            if m.psm is not None:
                g: Governor | None = make_governor(policy, m.psm)
                assert g is not None
                g.reset()
            else:
                g = None
            govs.append(g)
            parking.append(g is not None and g.wants_idle_parking)
            cur.append(tbl.fastest_idx)
            pred.append(self._machine_peak(m, interval_s) * tbl.req_cycles)

        backlog = 0
        offered_total = 0
        served_total = 0
        slo_met = 0
        busy_j = idle_j = switch_j = 0.0
        switches = 0
        checks = 0

        sw_t_arr = [0.0] * nm
        sw_e_arr = [0.0] * nm
        caps = [0] * nm
        down_arr = [False] * nm
        order_cache = self._order_cache
        prev_alloc_key: tuple | None = None
        prev_alloc: list[int] = []
        prev_served = 0
        prev_remaining = 0

        try:
            for i in range(trace.intervals):
                offered = int(round(trace.offered[i] * peak))
                offered_total += offered
                demand = offered + backlog

                # Pass A: governor decisions + switches + capacities.
                for k in range(nm):
                    tbl = tables[k]
                    if trace.is_down(names[k], i):
                        down_arr[k] = True
                        sw_t_arr[k] = sw_e_arr[k] = 0.0
                        caps[k] = 0
                        continue
                    down_arr[k] = False
                    g = govs[k]
                    s = cur[k]
                    sw_t = sw_e = 0.0
                    if g is not None:
                        target = g.decide(
                            tbl.names[s],
                            last_util[k],
                            backlog,
                            pred[k],
                            interval_q,
                        )
                        if tbl.catalog is not None:
                            checks += 1
                            if target not in tbl.catalog:
                                raise XpdlError(
                                    f"governor chose state {target!r} for "
                                    f"machine {names[k]!r}, absent from the "
                                    "compiled index catalog"
                                )
                        t_idx = tbl.index[target]
                        if t_idx != s:
                            sw_t, sw_e, hops = tbl.plan(s, t_idx)
                            switches += hops
                            cur[k] = s = t_idx
                    if sw_t == 0.0:
                        # interval_s - 0.0 == interval_s: the precomputed
                        # zero-switch capacity is the exact same value.
                        caps[k] = cap0[k][s]
                    else:
                        caps[k] = max(
                            0, int((interval_s - sw_t) / tbl.req_t[s])
                        )
                    sw_t_arr[k] = sw_t
                    sw_e_arr[k] = sw_e

                # Pass B: greedy allocation, fastest machines first.  The
                # sort order depends only on the current-state vector and
                # the whole allocation only on (states, downs, capacities,
                # demand) — both memoized, so an interval in which every
                # governor holds its P-state under an unchanged backlog
                # shape reuses the previous allocation outright.
                cur_t = tuple(cur)
                alloc_key = (cur_t, tuple(down_arr), tuple(caps), demand)
                if alloc_key == prev_alloc_key:
                    allocation = prev_alloc
                    served = prev_served
                    remaining = prev_remaining
                else:
                    order = order_cache.get(cur_t)
                    if order is None:
                        order = sorted(
                            range(nm),
                            key=lambda k: (-tables[k].freq[cur[k]], names[k]),
                        )
                        order_cache[cur_t] = order
                    allocation = [0] * nm
                    remaining = demand
                    for k in order:
                        if down_arr[k] or remaining <= 0:
                            continue
                        n = min(caps[k], remaining)
                        allocation[k] = n
                        remaining -= n
                    served = demand - remaining
                    prev_alloc_key = alloc_key
                    prev_alloc = allocation
                    prev_served = served
                    prev_remaining = remaining
                backlog = remaining
                served_total += served
                if backlog == 0:
                    slo_met += 1

                # Pass C: exact energy accounting.
                for k in range(nm):
                    if down_arr[k]:
                        last_util[k] = 0.0
                        pred[k] = 0.0
                        continue
                    tbl = tables[k]
                    n = allocation[k]
                    sw_t = sw_t_arr[k]
                    switch_j += sw_e_arr[k]
                    s = cur[k]
                    busy_t = 0.0
                    if n > 0:
                        busy_t, be = tbl.busy(s, n)
                        busy_j += be
                    idle_t = max(0.0, interval_s - sw_t - busy_t)
                    if idle_t > 0.0:
                        if parking[k]:
                            park = tbl.idle_idx
                            if park != s:
                                p_t, p_e, p_h = tbl.plan(s, park)
                                if p_t < idle_t:
                                    switch_j += p_e
                                    switches += p_h
                                    idle_t -= p_t
                                    cur[k] = s = park
                        idle_j += tbl.run_power[s] * idle_t
                    u = min(1.0, (busy_t + sw_t) / interval_s)
                    last_util[k] = u
                    pred[k] = n * tbl.req_cycles
                    obs.record("fleet.machine.util", u)

                obs.gauge("fleet.backlog", float(backlog))
        finally:
            # Counter totals match the cursor engine even on a mid-run
            # catalog-mismatch raise: the failing check is included.
            if checks:
                obs.count("fleet.query.state_checks", checks)

        obs.count("fleet.intervals", trace.intervals)
        obs.count("fleet.requests.offered", offered_total)
        obs.count("fleet.requests.served", served_total)
        obs.count("fleet.switches", switches)
        obs.mark(
            "fleet.policy",
            policy=policy,
            trace=trace.kind,
            seed=trace.seed,
            energy_j=round(busy_j + idle_j + switch_j, 6),
        )
        return PolicyResult(
            policy=policy,
            intervals=trace.intervals,
            offered=offered_total,
            served=served_total,
            final_backlog=backlog,
            slo_met_intervals=slo_met,
            busy_j=busy_j,
            idle_j=idle_j,
            switch_j=switch_j,
            switches=switches,
        )

    # -- cursor (reference) engine -------------------------------------------
    def _run_policy_cursor(self, policy: str, trace: Trace) -> PolicyResult:
        obs = get_observer()
        interval_s = trace.interval_s
        interval_q = Quantity(interval_s, TIME)
        peak = self.peak_capacity(interval_s)
        states = self._fresh_states(policy, interval_s)

        backlog = 0
        offered_total = 0
        served_total = 0
        slo_met = 0
        busy_j = idle_j = switch_j = 0.0
        switches = 0

        for i in range(trace.intervals):
            offered = int(round(trace.offered[i] * peak))
            offered_total += offered
            demand = offered + backlog

            # Pass A: governor decisions + switches + capacities.
            plans: list[tuple[_MachineState, bool, float, float, int]] = []
            for st in states:
                m = st.machine
                down = trace.is_down(m.name, i)
                sw_t = sw_e = 0.0
                if down:
                    plans.append((st, True, 0.0, 0.0, 0))
                    continue
                if st.governor is not None and m.cursor is not None:
                    target = self._checked_state(
                        m.name,
                        st.governor.decide(
                            m.cursor.current,
                            st.last_util,
                            backlog,
                            st.pred_cycles,
                            interval_q,
                        ),
                    )
                    if target != m.cursor.current:
                        plan = m.cursor.go(target)
                        sw_t = plan.time.magnitude
                        sw_e = plan.energy.magnitude
                        switches += plan.hops
                req_t = st.req_cycles / m.frequency.magnitude
                capacity = max(0, int((interval_s - sw_t) / req_t))
                plans.append((st, False, sw_t, sw_e, capacity))

            # Pass B: greedy allocation, fastest machines first.
            order = sorted(
                range(len(plans)),
                key=lambda k: (
                    -plans[k][0].machine.frequency.magnitude,
                    plans[k][0].machine.name,
                ),
            )
            allocation = [0] * len(plans)
            remaining = demand
            for k in order:
                st, down, _sw_t, _sw_e, capacity = plans[k]
                if down or remaining <= 0:
                    continue
                n = min(capacity, remaining)
                allocation[k] = n
                remaining -= n
            served = demand - remaining
            backlog = remaining
            served_total += served
            if backlog == 0:
                slo_met += 1

            # Pass C: exact energy accounting.
            for k, (st, down, sw_t, sw_e, _capacity) in enumerate(plans):
                m = st.machine
                if down:
                    st.last_util = 0.0
                    st.pred_cycles = 0.0
                    continue
                n = allocation[k]
                switch_j += sw_e
                busy_t = 0.0
                if n > 0:
                    counts = {
                        name: count * n for name, count in st.mix.items()
                    }
                    run = m.run_stream(counts)
                    busy_j += run.energy.magnitude
                    busy_t = run.duration.magnitude
                idle_t = max(0.0, interval_s - sw_t - busy_t)
                if idle_t > 0.0:
                    if (
                        st.governor is not None
                        and st.governor.wants_idle_parking
                        and m.psm is not None
                        and m.cursor is not None
                    ):
                        park = m.psm.idle_state().name
                        if park != m.cursor.current:
                            plan = m.psm.switch_plan(m.cursor.current, park)
                            if plan.time.magnitude < idle_t:
                                plan = m.cursor.go(park)
                                switch_j += plan.energy.magnitude
                                switches += plan.hops
                                idle_t -= plan.time.magnitude
                    rest = m.run_idle(Quantity(idle_t, TIME))
                    idle_j += rest.energy.magnitude
                st.last_util = min(1.0, (busy_t + sw_t) / interval_s)
                st.pred_cycles = n * st.req_cycles
                obs.record("fleet.machine.util", st.last_util)

            obs.count("fleet.intervals")
            obs.gauge("fleet.backlog", float(backlog))

        obs.count("fleet.requests.offered", offered_total)
        obs.count("fleet.requests.served", served_total)
        obs.count("fleet.switches", switches)
        obs.mark(
            "fleet.policy",
            policy=policy,
            trace=trace.kind,
            seed=trace.seed,
            energy_j=round(busy_j + idle_j + switch_j, 6),
        )
        return PolicyResult(
            policy=policy,
            intervals=trace.intervals,
            offered=offered_total,
            served=served_total,
            final_backlog=backlog,
            slo_met_intervals=slo_met,
            busy_j=busy_j,
            idle_j=idle_j,
            switch_j=switch_j,
            switches=switches,
        )


def simulate_fleet(
    testbed: SimTestbed,
    trace: Trace,
    policies: Iterable[str],
    *,
    state_catalog: Mapping[str, frozenset[str]] | None = None,
    request_ops: int = DEFAULT_REQUEST_OPS,
    engine: str = "memo",
) -> FleetReport:
    """Run every policy over the trace and assemble the comparison report."""
    sim = FleetSimulator(
        testbed, state_catalog=state_catalog, request_ops=request_ops
    )
    report = FleetReport(
        model=testbed.name,
        trace=trace.kind,
        seed=trace.seed,
        intervals=trace.intervals,
        interval_s=trace.interval_s,
        machines=len(testbed.machines),
        peak_capacity=sim.peak_capacity(trace.interval_s),
    )
    seen = set()
    for policy in policies:
        if policy in seen:
            continue
        seen.add(policy)
        report.results.append(sim.run_policy(policy, trace, engine=engine))
    if not report.results:
        raise XpdlError("no policies requested for fleet simulation")
    return report
