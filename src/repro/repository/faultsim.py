"""Deterministic fault injection for simulated remote stores.

The paper's distributed repository (Sec. II) downloads descriptors from
manufacturer sites; exercising the toolchain's resilience needs *scripted*
failures, not flaky ones.  A :class:`FaultPlan` maps descriptor paths (exact
or fnmatch patterns) to :class:`FaultSchedule`\\ s and replays them
deterministically: the n-th request for a given path always produces the
same :class:`FaultOutcome`, so a failing test reproduces bit-for-bit.

Schedules cover the canonical failure shapes:

* :class:`FailKTimes` — fail the first ``k`` requests per path, then
  succeed (a recovering outage; a ``k < attempts`` retry policy absorbs it);
* :class:`AlwaysFail` — a dead remote (only an offline mirror helps);
* :class:`SlowThenFail` — degrade latency for a while, then go dark (the
  classic brown-out that should trip a circuit breaker);
* :class:`FailEvery` — every ``k``-th request over the whole store fails
  (the legacy ``fail_every`` counter, kept for compatibility).

Plans are plain picklable data, so a repository carrying one survives the
``xpdl build`` process-pool boundary (each worker replays its own copy).
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field

from ..diagnostics import XpdlError

#: Pseudo-path under which a store's *listing* request is scheduled; a plan
#: whose schedule fails this path makes ``list_paths()`` fail too (a dead
#: remote cannot even be enumerated).
LISTING_PATH = "<list>"


@dataclass(frozen=True, slots=True)
class FaultOutcome:
    """What the fault injector decided for one request."""

    fail: bool = False
    #: Multiplier on the store's base latency (slow brown-outs).
    latency_factor: float = 1.0
    reason: str = ""


#: The common case: no fault, nominal latency.
OK_OUTCOME = FaultOutcome()


class FaultSchedule:
    """Deterministic per-path failure policy.

    ``outcome(path, n_path, n_total)`` is a pure function of the request
    ordinals — ``n_path`` counts requests for this path (1-based),
    ``n_total`` counts requests across the whole plan — so replaying the
    same request sequence replays the same faults.
    """

    def outcome(self, path: str, n_path: int, n_total: int) -> FaultOutcome:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


@dataclass(frozen=True, slots=True)
class NoFaults(FaultSchedule):
    """Always succeed (the default schedule)."""

    def outcome(self, path: str, n_path: int, n_total: int) -> FaultOutcome:
        return OK_OUTCOME

    def describe(self) -> str:
        return "none"


@dataclass(frozen=True, slots=True)
class FailKTimes(FaultSchedule):
    """Fail the first ``k`` requests for each path, then succeed."""

    k: int

    def outcome(self, path: str, n_path: int, n_total: int) -> FaultOutcome:
        if n_path <= self.k:
            return FaultOutcome(
                fail=True, reason=f"scripted failure {n_path}/{self.k}"
            )
        return OK_OUTCOME

    def describe(self) -> str:
        return f"fail:{self.k}"


@dataclass(frozen=True, slots=True)
class AlwaysFail(FaultSchedule):
    """A permanently dead remote."""

    def outcome(self, path: str, n_path: int, n_total: int) -> FaultOutcome:
        return FaultOutcome(fail=True, reason="remote permanently down")

    def describe(self) -> str:
        return "dead"


@dataclass(frozen=True, slots=True)
class SlowThenFail(FaultSchedule):
    """Serve the first ``slow_requests`` per path slowly, then go dark."""

    slow_requests: int
    latency_factor: float = 4.0

    def outcome(self, path: str, n_path: int, n_total: int) -> FaultOutcome:
        if n_path <= self.slow_requests:
            return FaultOutcome(
                latency_factor=self.latency_factor,
                reason=f"brown-out {n_path}/{self.slow_requests}",
            )
        return FaultOutcome(fail=True, reason="remote down after brown-out")

    def describe(self) -> str:
        return f"slow-fail:{self.slow_requests}:{self.latency_factor:g}"


@dataclass(frozen=True, slots=True)
class FailEvery(FaultSchedule):
    """Every ``k``-th request across the whole plan fails (legacy shape)."""

    k: int

    def outcome(self, path: str, n_path: int, n_total: int) -> FaultOutcome:
        if self.k and n_total % self.k == 0:
            return FaultOutcome(fail=True, reason=f"every-{self.k} failure")
        return OK_OUTCOME

    def describe(self) -> str:
        return f"every:{self.k}"


@dataclass
class FaultPlan:
    """Scripted failure schedules per descriptor path.

    Rules pair an fnmatch pattern with a schedule; the first matching rule
    wins, ``default`` covers the rest.  The plan owns the request counters,
    so one plan instance must not be shared between stores that should
    fault independently.
    """

    default: FaultSchedule = field(default_factory=NoFaults)
    rules: list[tuple[str, FaultSchedule]] = field(default_factory=list)
    _path_counts: dict[str, int] = field(default_factory=dict, repr=False)
    _total: int = field(default=0, repr=False)

    def add(self, pattern: str, schedule: FaultSchedule) -> "FaultPlan":
        self.rules.append((pattern, schedule))
        return self

    def schedule_for(self, path: str) -> FaultSchedule:
        for pattern, schedule in self.rules:
            if path == pattern or fnmatch.fnmatch(path, pattern):
                return schedule
        return self.default

    def outcome_for(self, path: str) -> FaultOutcome:
        """Advance the counters and script the next outcome for ``path``."""
        self._total += 1
        n = self._path_counts.get(path, 0) + 1
        self._path_counts[path] = n
        return self.schedule_for(path).outcome(path, n, self._total)

    def reset(self) -> None:
        """Rewind every counter; the plan replays from the beginning."""
        self._path_counts.clear()
        self._total = 0

    @property
    def requests(self) -> int:
        return self._total

    def describe(self) -> str:
        parts = [self.default.describe()]
        parts.extend(f"{pat}={s.describe()}" for pat, s in self.rules)
        return ";".join(parts)

    # -- the CLI spec grammar ----------------------------------------------
    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from a compact spec string.

        ``spec`` is ``;``-separated rules of ``[PATTERN=]SCHEDULE`` where a
        bare schedule sets the default.  Schedules::

            none                  no faults
            fail:K                fail the first K requests per path
            dead                  always fail
            every:K               every K-th request (store-wide) fails
            slow-fail:N[:FACTOR]  N slow requests per path, then dead
        """
        plan = cls()
        for raw in spec.split(";"):
            raw = raw.strip()
            if not raw:
                continue
            pattern, sep, sched_spec = raw.partition("=")
            if not sep:
                pattern, sched_spec = "", pattern
            schedule = _parse_schedule(sched_spec.strip())
            if pattern:
                plan.add(pattern.strip(), schedule)
            else:
                plan.default = schedule
        return plan


def _positive(raw: str, spec: str) -> int:
    value = int(raw)
    if value < 1:
        raise XpdlError(f"bad fault schedule {spec!r}: count must be >= 1")
    return value


def _parse_schedule(spec: str) -> FaultSchedule:
    name, _, rest = spec.partition(":")
    args = [a for a in rest.split(":") if a] if rest else []
    try:
        if name == "none" and not args:
            return NoFaults()
        if name == "dead" and not args:
            return AlwaysFail()
        if name == "fail" and len(args) == 1:
            return FailKTimes(_positive(args[0], spec))
        if name == "every" and len(args) == 1:
            return FailEvery(_positive(args[0], spec))
        if name == "slow-fail" and len(args) in (1, 2):
            factor = float(args[1]) if len(args) == 2 else 4.0
            return SlowThenFail(_positive(args[0], spec), factor)
    except ValueError as exc:
        raise XpdlError(f"bad fault schedule {spec!r}: {exc}") from None
    raise XpdlError(
        f"bad fault schedule {spec!r} (expected none, dead, fail:K, "
        "every:K or slow-fail:N[:FACTOR])"
    )
