"""The XPDL model repository: indexing, lookup and recursive loading.

A repository is an ordered list of :class:`DescriptorStore`s (the model
search path, possibly ending in simulated remote stores).  Each ``.xpdl``
descriptor file contributes its root element's identifier — ``name`` for
meta-models, ``id`` for concrete models — to the index; identifiers must be
unique across the repository ("the strings used as name and id should be
unique across the XPDL repository for reference nonambiguity", Sec. III-A).

:meth:`ModelRepository.load_closure` performs the recursive reference
browsing of Sec. IV: starting from a concrete model it follows every
``type=``/``extends=``/``mb=``/``instruction_set=`` reference, parses each
referenced descriptor once, detects reference cycles and returns the full
set of models needed to compose the system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..diagnostics import (
    DiagnosticSink,
    ResolutionError,
    SourceSpan,
)
from ..model import ModelElement, from_document
from ..obs import get_observer
from ..schema import SchemaValidator
from ..xpdlxml import parse_xml
from .store import DescriptorStore, MemoryStore

#: Attributes whose value references another descriptor by identifier.
REFERENCE_ATTRS = ("type", "mb", "instruction_set", "power_domain")

#: References whose target gets *folded into* the referring tree at
#: composition time.  Only these can form true composition cycles; ``mb``/
#: ``instruction_set``/``power_domain`` are navigational by-name links and
#: may legally be mutual (an instruction set and its microbenchmark suite
#: reference each other, Listings 14/15).
STRUCTURAL_REFERENCE_ATTRS = ("type",)


@dataclass(slots=True)
class IndexEntry:
    """Where one descriptor lives and what it defines."""

    identifier: str
    path: str
    store: DescriptorStore
    root_tag: str


@dataclass
class LoadedModel:
    """A parsed descriptor plus provenance."""

    identifier: str
    model: ModelElement
    entry: IndexEntry | None
    text: str = field(repr=False, default="")


class ModelRepository:
    """Ordered multi-store repository with an identifier index."""

    def __init__(
        self,
        stores: list[DescriptorStore] | None = None,
        *,
        validate: bool = True,
    ) -> None:
        self.stores: list[DescriptorStore] = list(stores or [])
        self.validate = validate
        self._validator = SchemaValidator()
        self._index: dict[str, IndexEntry] | None = None
        self._models: dict[str, LoadedModel] = {}
        self._inline_store = MemoryStore(url="inline:")

    # -- store management -----------------------------------------------------
    def add_store(self, store: DescriptorStore) -> None:
        self.stores.append(store)
        self._index = None  # force re-index

    def add_inline(self, path: str, text: str) -> None:
        """Register descriptor text directly (tests, generated models)."""
        if self._inline_store not in self.stores:
            self.stores.insert(0, self._inline_store)
        self._inline_store.put(path, text)
        self._index = None

    # -- index ------------------------------------------------------------------
    def _root_identifier(self, text: str, path: str) -> tuple[str | None, str]:
        """Extract (identifier, root tag) cheaply from descriptor text."""
        doc = parse_xml(text, source_name=path)
        root = doc.root
        ident = root.get("name") or root.get("id")
        return ident, root.tag

    def index(self, sink: DiagnosticSink | None = None) -> dict[str, IndexEntry]:
        """Build (or return cached) identifier -> location index."""
        if self._index is not None:
            return self._index
        obs = get_observer()
        sink = sink if sink is not None else DiagnosticSink()
        index: dict[str, IndexEntry] = {}
        for store in self.stores:
            for path in store.list_paths():
                try:
                    text = store.fetch(path)
                except ResolutionError:
                    continue  # transient failure during indexing: skip
                ident, tag = self._root_identifier(text, path)
                if ident is None:
                    sink.warning(
                        "XPDL0200",
                        f"descriptor {path} in {store.url} has no name/id",
                        SourceSpan.unknown(path),
                    )
                    continue
                if ident in index:
                    prev = index[ident]
                    # First store on the search path wins (shadowing),
                    # like PATH lookup; shadowed copies are reported.
                    sink.warning(
                        "XPDL0201",
                        f"identifier {ident!r} in {store.url}{path} shadows "
                        f"{prev.store.url}{prev.path}",
                        SourceSpan.unknown(path),
                    )
                    continue
                index[ident] = IndexEntry(ident, path, store, tag)
        self._index = index
        if obs.enabled:
            obs.count("repo.index.builds")
            obs.count("repo.index.descriptors", len(index))
        return index

    def identifiers(self) -> list[str]:
        return sorted(self.index())

    def systems(self) -> list[str]:
        """Identifiers of the concrete ``<system>`` descriptors — the
        compilation units of a batch build (``xpdl build``)."""
        return [
            ident
            for ident, entry in sorted(self.index().items())
            if entry.root_tag == "system"
        ]

    def __contains__(self, identifier: str) -> bool:
        return identifier in self.index()

    # -- loading ----------------------------------------------------------------
    def load(
        self,
        identifier: str,
        sink: DiagnosticSink | None = None,
    ) -> LoadedModel:
        """Load and parse the descriptor defining ``identifier``."""
        obs = get_observer()
        if identifier in self._models:
            obs.count("repo.load.cached")
            return self._models[identifier]
        sink = sink if sink is not None else DiagnosticSink()
        entry = self.index().get(identifier)
        if entry is None:
            close = [i for i in self.index() if i.lower() == identifier.lower()]
            hint = f"; did you mean {close[0]!r}?" if close else ""
            raise ResolutionError(
                f"no descriptor defines {identifier!r} in the repository{hint}",
                sink.diagnostics,
            )
        text = entry.store.fetch(entry.path)
        obs.count("repo.load.parsed")
        doc = parse_xml(text, source_name=f"{entry.store.url}{entry.path}", sink=sink)
        model = from_document(doc)
        if self.validate:
            self._validator.validate(model, sink)
        loaded = LoadedModel(identifier, model, entry, text)
        self._models[identifier] = loaded
        return loaded

    def load_model(self, identifier: str, sink: DiagnosticSink | None = None) -> ModelElement:
        return self.load(identifier, sink).model

    # -- recursive closure ---------------------------------------------------------
    def references_of(self, root: ModelElement) -> set[str]:
        """All identifiers referenced from ``root``'s subtree.

        Includes ``type``/``mb``/``instruction_set``/``power_domain``
        attribute values and every ``extends`` supertype.  Values that do not
        match any repository identifier are returned too; the caller decides
        whether they are category tags (``type="DDR3"``) or dangling refs.
        """
        refs: set[str] = set()
        for elem in root.walk():
            for attr in REFERENCE_ATTRS:
                value = elem.attrs.get(attr)
                if value:
                    refs.add(value.strip())
            refs.update(elem.extends)
        return refs

    def typed_references_of(self, root: ModelElement) -> set[tuple[str, bool]]:
        """Like :meth:`references_of`, tagging each ref as structural."""
        refs: set[tuple[str, bool]] = set()
        for elem in root.walk():
            for attr in REFERENCE_ATTRS:
                value = elem.attrs.get(attr)
                if value:
                    refs.add(
                        (value.strip(), attr in STRUCTURAL_REFERENCE_ATTRS)
                    )
            for sup in elem.extends:
                refs.add((sup, True))
        return refs

    def load_closure(
        self,
        identifier: str,
        sink: DiagnosticSink | None = None,
    ) -> dict[str, LoadedModel]:
        """Load ``identifier`` and, recursively, everything it references.

        Returns a mapping of identifier -> LoadedModel for all resolvable
        references.  Unresolvable references are recorded as NOTE diagnostics
        (they are frequently plain category strings such as ``type="DDR3"``
        or ``type="CMX"``); reference cycles are reported as errors but do
        not loop.
        """
        sink = sink if sink is not None else DiagnosticSink()
        obs = get_observer()
        loaded: dict[str, LoadedModel] = {}
        in_progress: list[str] = []

        def visit(ident: str, structural: bool) -> None:
            if ident in in_progress:
                if structural:
                    cycle = " -> ".join(
                        in_progress[in_progress.index(ident):] + [ident]
                    )
                    sink.error(
                        "XPDL0210",
                        f"reference cycle between descriptors: {cycle}",
                        SourceSpan.unknown(ident),
                    )
                return  # navigational back-reference: legal, already loading
            if ident in loaded:
                return
            try:
                lm = self.load(ident, sink)
            except ResolutionError:
                obs.count("repo.refs.unresolved")
                sink.note(
                    "XPDL0211",
                    f"reference {ident!r} has no descriptor "
                    "(treated as a category tag)",
                    SourceSpan.unknown(ident),
                )
                return
            obs.count("repo.refs.resolved")
            in_progress.append(ident)
            loaded[ident] = lm
            for ref, is_structural in sorted(self.typed_references_of(lm.model)):
                visit(ref, is_structural)
            in_progress.pop()

        visit(identifier, True)
        return loaded

    # -- cache invalidation ---------------------------------------------------------
    def invalidate(self, identifiers: Iterable[str] | None = None) -> None:
        """Drop cached parses (and the index) so changed sources re-read.

        With ``identifiers`` only those parsed models are dropped; without,
        everything is.  The identifier index is rebuilt either way because a
        changed descriptor may define a different identifier.
        """
        if identifiers is None:
            self._models.clear()
        else:
            for ident in identifiers:
                self._models.pop(ident, None)
        self._index = None

    def source_text(self, identifier: str) -> str | None:
        """Current on-store text of the descriptor defining ``identifier``.

        Bypasses the parsed-model cache — this is what cache fingerprinting
        uses to notice edits underneath a warm repository.
        """
        entry = self.index().get(identifier)
        if entry is None:
            return None
        try:
            return entry.store.fetch(entry.path)
        except ResolutionError:
            return None

    # -- statistics -----------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        idx = self.index()
        return {
            "stores": len(self.stores),
            "descriptors": len(idx),
            "loaded": len(self._models),
        }
