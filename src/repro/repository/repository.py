"""The XPDL model repository: indexing, lookup and recursive loading.

A repository is an ordered list of :class:`DescriptorStore`s (the model
search path, possibly ending in simulated remote stores).  Each ``.xpdl``
descriptor file contributes its root element's identifier — ``name`` for
meta-models, ``id`` for concrete models — to the index; identifiers must be
unique across the repository ("the strings used as name and id should be
unique across the XPDL repository for reference nonambiguity", Sec. III-A).

:meth:`ModelRepository.load_closure` performs the recursive reference
browsing of Sec. IV: starting from a concrete model it follows every
``type=``/``extends=``/``mb=``/``instruction_set=`` reference, parses each
referenced descriptor once, detects reference cycles and returns the full
set of models needed to compose the system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..diagnostics import (
    DiagnosticSink,
    ResolutionError,
    SourceSpan,
    TransientFetchError,
)
from ..model import ModelElement, from_document
from ..obs import get_observer
from ..schema import SchemaValidator
from ..xpdlxml import parse_xml
from .store import DescriptorStore, MemoryStore, iter_store_chain

#: Attributes whose value references another descriptor by identifier.
REFERENCE_ATTRS = ("type", "mb", "instruction_set", "power_domain")

#: References whose target gets *folded into* the referring tree at
#: composition time.  Only these can form true composition cycles; ``mb``/
#: ``instruction_set``/``power_domain`` are navigational by-name links and
#: may legally be mutual (an instruction set and its microbenchmark suite
#: reference each other, Listings 14/15).
STRUCTURAL_REFERENCE_ATTRS = ("type",)


@dataclass(slots=True)
class IndexEntry:
    """Where one descriptor lives and what it defines.

    ``text`` keeps the descriptor body the indexer already downloaded, so
    :meth:`ModelRepository.load` never pays a second (possibly remote,
    possibly failing) fetch for it; :meth:`ModelRepository.invalidate`
    drops the index and therefore the kept texts.
    """

    identifier: str
    path: str
    store: DescriptorStore
    root_tag: str
    text: str | None = field(default=None, repr=False)


@dataclass
class LoadedModel:
    """A parsed descriptor plus provenance."""

    identifier: str
    model: ModelElement
    entry: IndexEntry | None
    text: str = field(repr=False, default="")


class ModelRepository:
    """Ordered multi-store repository with an identifier index."""

    def __init__(
        self,
        stores: list[DescriptorStore] | None = None,
        *,
        validate: bool = True,
    ) -> None:
        self.stores: list[DescriptorStore] = list(stores or [])
        self.validate = validate
        self._validator = SchemaValidator()
        self._index: dict[str, IndexEntry] | None = None
        self._models: dict[str, LoadedModel] = {}
        self._inline_store = MemoryStore(url="inline:")

    # -- store management -----------------------------------------------------
    def add_store(self, store: DescriptorStore) -> None:
        self.stores.append(store)
        self._index = None  # force re-index

    def add_inline(self, path: str, text: str) -> None:
        """Register descriptor text directly (tests, generated models)."""
        if self._inline_store not in self.stores:
            self.stores.insert(0, self._inline_store)
        self._inline_store.put(path, text)
        self._index = None

    # -- index ------------------------------------------------------------------
    def _root_identifier(self, text: str, path: str) -> tuple[str | None, str]:
        """Extract (identifier, root tag) cheaply from descriptor text."""
        doc = parse_xml(text, source_name=path)
        root = doc.root
        ident = root.get("name") or root.get("id")
        return ident, root.tag

    def index(self, sink: DiagnosticSink | None = None) -> dict[str, IndexEntry]:
        """Build (or return cached) identifier -> location index."""
        if self._index is not None:
            return self._index
        obs = get_observer()
        sink = sink if sink is not None else DiagnosticSink()
        index: dict[str, IndexEntry] = {}
        for store in self.stores:
            try:
                paths = store.list_paths()
            except TransientFetchError as exc:
                obs.count("repo.index.unreachable_stores")
                sink.warning(
                    "XPDL0202",
                    f"store {store.url} unreachable while indexing: {exc}",
                    SourceSpan.unknown(store.url),
                    "its descriptors are missing from this index; retry, or "
                    "warm an offline mirror while the store is reachable",
                )
                continue
            for path in paths:
                try:
                    text = store.fetch(path)
                except TransientFetchError as exc:
                    obs.count("repo.index.fetch_failures")
                    sink.warning(
                        "XPDL0203",
                        f"could not fetch descriptor {path} from "
                        f"{store.url}: {exc}",
                        SourceSpan.unknown(path),
                        "the descriptor is omitted from this index; "
                        "references to it will not resolve",
                    )
                    continue
                except ResolutionError as exc:
                    # Listed but gone: permanent, but still worth surfacing —
                    # a vanished descriptor is never silently dropped.
                    sink.warning(
                        "XPDL0203",
                        f"descriptor {path} listed by {store.url} but not "
                        f"fetchable: {exc}",
                        SourceSpan.unknown(path),
                    )
                    continue
                ident, tag = self._root_identifier(text, path)
                if ident is None:
                    sink.warning(
                        "XPDL0200",
                        f"descriptor {path} in {store.url} has no name/id",
                        SourceSpan.unknown(path),
                    )
                    continue
                if ident in index:
                    prev = index[ident]
                    # First store on the search path wins (shadowing),
                    # like PATH lookup; shadowed copies are reported.
                    sink.warning(
                        "XPDL0201",
                        f"identifier {ident!r} in {store.url}{path} shadows "
                        f"{prev.store.url}{prev.path}",
                        SourceSpan.unknown(path),
                    )
                    continue
                index[ident] = IndexEntry(ident, path, store, tag, text)
        self._index = index
        self._drain_store_notices(sink)
        if obs.enabled:
            obs.count("repo.index.builds")
            obs.count("repo.index.descriptors", len(index))
        return index

    def identifiers(self) -> list[str]:
        return sorted(self.index())

    def systems(self) -> list[str]:
        """Identifiers of the concrete ``<system>`` descriptors — the
        compilation units of a batch build (``xpdl build``)."""
        return [
            ident
            for ident, entry in sorted(self.index().items())
            if entry.root_tag == "system"
        ]

    def __contains__(self, identifier: str) -> bool:
        return identifier in self.index()

    # -- loading ----------------------------------------------------------------
    def load(
        self,
        identifier: str,
        sink: DiagnosticSink | None = None,
    ) -> LoadedModel:
        """Load and parse the descriptor defining ``identifier``."""
        obs = get_observer()
        if identifier in self._models:
            obs.count("repo.load.cached")
            return self._models[identifier]
        sink = sink if sink is not None else DiagnosticSink()
        # Pass the sink through: if this load triggers the lazy first index
        # build, its diagnostics (unreachable stores, mirror degradation)
        # must land here, not in a throwaway sink.
        entry = self.index(sink).get(identifier)
        if entry is None:
            close = [i for i in self.index() if i.lower() == identifier.lower()]
            hint = f"; did you mean {close[0]!r}?" if close else ""
            raise ResolutionError(
                f"no descriptor defines {identifier!r} in the repository{hint}",
                sink.diagnostics,
            )
        if entry.text is not None:
            # The indexer already downloaded this descriptor; loading it
            # again must not pay (or risk) a second remote fetch.
            text = entry.text
            obs.count("repo.load.from_index")
        else:
            try:
                text = entry.store.fetch(entry.path)
            finally:
                self._drain_store_notices(sink)
        obs.count("repo.load.parsed")
        doc = parse_xml(text, source_name=f"{entry.store.url}{entry.path}", sink=sink)
        model = from_document(doc)
        if self.validate:
            self._validator.validate(model, sink)
        loaded = LoadedModel(identifier, model, entry, text)
        self._models[identifier] = loaded
        return loaded

    def load_model(self, identifier: str, sink: DiagnosticSink | None = None) -> ModelElement:
        return self.load(identifier, sink).model

    # -- recursive closure ---------------------------------------------------------
    def references_of(self, root: ModelElement) -> set[str]:
        """All identifiers referenced from ``root``'s subtree.

        Includes ``type``/``mb``/``instruction_set``/``power_domain``
        attribute values and every ``extends`` supertype.  Values that do not
        match any repository identifier are returned too; the caller decides
        whether they are category tags (``type="DDR3"``) or dangling refs.
        """
        refs: set[str] = set()
        for elem in root.walk():
            for attr in REFERENCE_ATTRS:
                value = elem.attrs.get(attr)
                if value:
                    refs.add(value.strip())
            refs.update(elem.extends)
        return refs

    def typed_references_of(self, root: ModelElement) -> set[tuple[str, bool]]:
        """Like :meth:`references_of`, tagging each ref as structural."""
        refs: set[tuple[str, bool]] = set()
        for elem in root.walk():
            for attr in REFERENCE_ATTRS:
                value = elem.attrs.get(attr)
                if value:
                    refs.add(
                        (value.strip(), attr in STRUCTURAL_REFERENCE_ATTRS)
                    )
            for sup in elem.extends:
                refs.add((sup, True))
        return refs

    def load_closure(
        self,
        identifier: str,
        sink: DiagnosticSink | None = None,
    ) -> dict[str, LoadedModel]:
        """Load ``identifier`` and, recursively, everything it references.

        Returns a mapping of identifier -> LoadedModel for all resolvable
        references.  Unresolvable references are recorded as NOTE diagnostics
        (they are frequently plain category strings such as ``type="DDR3"``
        or ``type="CMX"``); reference cycles are reported as errors but do
        not loop.
        """
        sink = sink if sink is not None else DiagnosticSink()
        obs = get_observer()
        loaded: dict[str, LoadedModel] = {}
        in_progress: list[str] = []

        def visit(ident: str, structural: bool) -> None:
            if ident in in_progress:
                if structural:
                    cycle = " -> ".join(
                        in_progress[in_progress.index(ident):] + [ident]
                    )
                    sink.error(
                        "XPDL0210",
                        f"reference cycle between descriptors: {cycle}",
                        SourceSpan.unknown(ident),
                    )
                return  # navigational back-reference: legal, already loading
            if ident in loaded:
                return
            try:
                lm = self.load(ident, sink)
            except TransientFetchError as exc:
                # A flaky fetch is NOT a category tag: surface it loudly so
                # the degraded composition is never mistaken for a clean one.
                obs.count("repo.refs.transient")
                sink.warning(
                    "XPDL0212",
                    f"reference {ident!r} could not be fetched "
                    f"(transient failure): {exc}",
                    SourceSpan.unknown(ident),
                    "the composition may be incomplete; retry, or warm the "
                    "offline mirror while the store is reachable",
                )
                return
            except ResolutionError:
                obs.count("repo.refs.unresolved")
                sink.note(
                    "XPDL0211",
                    f"reference {ident!r} has no descriptor "
                    "(treated as a category tag)",
                    SourceSpan.unknown(ident),
                )
                return
            obs.count("repo.refs.resolved")
            in_progress.append(ident)
            loaded[ident] = lm
            for ref, is_structural in sorted(self.typed_references_of(lm.model)):
                visit(ref, is_structural)
            in_progress.pop()

        visit(identifier, True)
        return loaded

    # -- cache invalidation ---------------------------------------------------------
    def invalidate(self, identifiers: Iterable[str] | None = None) -> None:
        """Drop cached parses (and the index) so changed sources re-read.

        With ``identifiers`` only those parsed models are dropped; without,
        everything is.  The identifier index is rebuilt either way because a
        changed descriptor may define a different identifier.
        """
        if identifiers is None:
            self._models.clear()
        else:
            for ident in identifiers:
                self._models.pop(ident, None)
        self._index = None

    def source_text(
        self, identifier: str, *, sink: DiagnosticSink | None = None
    ) -> str | None:
        """Current on-store text of the descriptor defining ``identifier``.

        Bypasses the parsed-model cache — this is what cache fingerprinting
        uses to notice edits underneath a warm repository.  A *transient*
        fetch failure falls back to the text the indexer downloaded (the
        last-known-good copy), so an unreachable remote — or a mirror
        serving identical bytes — never poisons stage-cache fingerprints;
        only a permanent not-found reads as missing.  With ``sink`` given,
        store notices (mirror degradation etc.) are surfaced on it.
        """
        entry = self.index(sink).get(identifier)
        if entry is None:
            return None
        try:
            return entry.store.fetch(entry.path)
        except TransientFetchError:
            get_observer().count("repo.source_text.degraded")
            return entry.text
        except ResolutionError:
            return None
        finally:
            if sink is not None:
                self._drain_store_notices(sink)

    # -- store notices ---------------------------------------------------------
    def _drain_store_notices(self, sink: DiagnosticSink) -> None:
        """Surface out-of-band store conditions (mirror serves, breaker
        trips) as diagnostics on ``sink``."""
        for store in self.stores:
            for notice in store.drain_notices():
                span = SourceSpan.unknown(notice.path or store.url)
                if notice.warning:
                    sink.warning("XPDL0204", notice.message, span)
                else:
                    sink.note("XPDL0204", notice.message, span)

    # -- statistics -----------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        idx = self.index()
        return {
            "stores": len(self.stores),
            "descriptors": len(idx),
            "loaded": len(self._models),
        }

    def store_stats(self) -> list[dict]:
        """Per-store health rows (resilience wrappers unrolled), for
        ``xpdl repo stats``."""
        rows: list[dict] = []
        for store in self.stores:
            for layer in iter_store_chain(store):
                stats = layer.stats()
                if stats or layer is store:
                    rows.append({"url": layer.url, **stats})
        return rows
