"""Descriptor stores: where ``.xpdl`` files live.

The paper envisions a *distributed* model repository: descriptors are local
files on a search path, but "may, ideally, even be provided for download e.g.
at hardware manufacturer web sites".  A :class:`DescriptorStore` abstracts
one such location; :class:`LocalDirStore` serves a directory tree,
:class:`MemoryStore` serves in-process content (tests, generated models) and
:class:`RemoteSimStore` simulates a manufacturer download site — it accounts
for fetch latency and can inject failures, exercising the toolchain's
retry/caching behaviour without a network.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterable

from ..diagnostics import ResolutionError

XPDL_SUFFIX = ".xpdl"


class DescriptorStore:
    """Abstract store of named descriptor texts."""

    #: Stable identifier used in provenance and error messages.
    url: str = "store:"

    def list_paths(self) -> list[str]:
        """All descriptor paths (relative, '/'-separated) in this store."""
        raise NotImplementedError

    def fetch(self, path: str) -> str:
        """Return the text of one descriptor; raise ResolutionError if absent."""
        raise NotImplementedError

    def describe(self) -> str:
        return self.url


class MemoryStore(DescriptorStore):
    """An in-memory store, useful for tests and generated descriptors."""

    def __init__(self, files: dict[str, str] | None = None, *, url: str = "mem:") -> None:
        self.url = url
        self._files: dict[str, str] = dict(files or {})

    def put(self, path: str, text: str) -> None:
        self._files[path] = text

    def list_paths(self) -> list[str]:
        return sorted(self._files)

    def fetch(self, path: str) -> str:
        try:
            return self._files[path]
        except KeyError:
            raise ResolutionError(
                f"descriptor {path!r} not found in {self.url}"
            ) from None


class LocalDirStore(DescriptorStore):
    """Serves ``*.xpdl`` files under a directory (the model search path)."""

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(root)
        self.url = f"file:{self.root}/"

    def list_paths(self) -> list[str]:
        out: list[str] = []
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for fn in filenames:
                if fn.endswith(XPDL_SUFFIX):
                    full = os.path.join(dirpath, fn)
                    out.append(os.path.relpath(full, self.root).replace(os.sep, "/"))
        return sorted(out)

    def fetch(self, path: str) -> str:
        full = os.path.join(self.root, path.replace("/", os.sep))
        if not os.path.isfile(full):
            raise ResolutionError(f"descriptor {path!r} not found in {self.url}")
        with open(full, "r", encoding="utf-8") as fh:
            return fh.read()


@dataclass
class FetchLog:
    """Accounting of simulated remote transfers."""

    fetches: int = 0
    bytes: int = 0
    failures: int = 0
    simulated_latency_s: float = 0.0
    history: list[str] = field(default_factory=list)


class RemoteSimStore(DescriptorStore):
    """Simulated manufacturer web repository.

    Wraps a backing store and models per-request latency plus deterministic
    injected failures: request ``k`` fails when ``k % fail_every == 0``
    (``fail_every=0`` disables failures).  Latency is *accounted*, never
    slept, so tests stay fast while scaling benches can report realistic
    download cost.
    """

    def __init__(
        self,
        backing: DescriptorStore,
        *,
        host: str = "models.example.com",
        latency_s: float = 0.05,
        bandwidth_bps: float = 1e6,
        fail_every: int = 0,
    ) -> None:
        self.backing = backing
        self.host = host
        self.url = f"https://{host}/"
        self.latency_s = latency_s
        self.bandwidth_bps = bandwidth_bps
        self.fail_every = fail_every
        self.log = FetchLog()

    def list_paths(self) -> list[str]:
        return self.backing.list_paths()

    def fetch(self, path: str) -> str:
        self.log.fetches += 1
        self.log.history.append(path)
        if self.fail_every and self.log.fetches % self.fail_every == 0:
            self.log.failures += 1
            raise ResolutionError(
                f"simulated transient failure fetching {self.url}{path}"
            )
        text = self.backing.fetch(path)
        nbytes = len(text.encode("utf-8"))
        self.log.bytes += nbytes
        self.log.simulated_latency_s += self.latency_s + nbytes / self.bandwidth_bps
        return text


class RetryingStore(DescriptorStore):
    """Retries transient fetch failures from an unreliable backing store.

    Descriptor downloads from remote repositories can fail transiently; a
    bounded retry keeps toolchain runs deterministic-ish without hiding
    persistent problems (the last error propagates after ``attempts``).
    """

    def __init__(self, backing: DescriptorStore, *, attempts: int = 3) -> None:
        if attempts < 1:
            raise ValueError("attempts must be >= 1")
        self.backing = backing
        self.attempts = attempts
        self.url = f"retry({backing.url})"
        self.retries = 0

    def list_paths(self) -> list[str]:
        return self.backing.list_paths()

    def fetch(self, path: str) -> str:
        last: ResolutionError | None = None
        for attempt in range(self.attempts):
            try:
                return self.backing.fetch(path)
            except ResolutionError as exc:
                last = exc
                if attempt + 1 < self.attempts:
                    self.retries += 1
        assert last is not None
        raise last


class CachingStore(DescriptorStore):
    """Memoizes fetches from a slower (e.g. remote) store."""

    def __init__(self, backing: DescriptorStore) -> None:
        self.backing = backing
        self.url = f"cache({backing.url})"
        self._cache: dict[str, str] = {}
        self.hits = 0
        self.misses = 0

    def list_paths(self) -> list[str]:
        return self.backing.list_paths()

    def fetch(self, path: str) -> str:
        if path in self._cache:
            self.hits += 1
            return self._cache[path]
        self.misses += 1
        text = self.backing.fetch(path)
        self._cache[path] = text
        return text


def store_from_paths(paths: Iterable[str]) -> list[DescriptorStore]:
    """Build LocalDirStores for each existing directory on a search path."""
    return [LocalDirStore(p) for p in paths if os.path.isdir(p)]
