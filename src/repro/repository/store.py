"""Descriptor stores: where ``.xpdl`` files live.

The paper envisions a *distributed* model repository: descriptors are local
files on a search path, but "may, ideally, even be provided for download e.g.
at hardware manufacturer web sites".  A :class:`DescriptorStore` abstracts
one such location; :class:`LocalDirStore` serves a directory tree,
:class:`MemoryStore` serves in-process content (tests, generated models) and
:class:`RemoteSimStore` simulates a manufacturer download site — it accounts
for fetch latency and replays scripted faults from a
:class:`~repro.repository.faultsim.FaultPlan`.

Failures are typed: a :class:`~repro.diagnostics.TransientFetchError` is
retryable (the network blinked), a
:class:`~repro.diagnostics.ResolutionError` is permanent (the store answered
"no such descriptor").  The resilience wrappers compose around that split:

* :class:`RetryingStore` — bounded retries of *transient* errors only, with
  deterministic exponential backoff (accounted, never slept);
* :class:`CircuitBreakerStore` — after N consecutive transient failures it
  opens and fails fast for a cooldown window instead of hammering a dead
  remote;
* :class:`OfflineMirrorStore` — write-through persistence of every fetched
  text under ``.xpdl-cache/mirror/`` so a dead remote degrades to the
  last-known-good copy (with a surfaced notice, never silently);
* :class:`CachingStore` — in-process memoization of fetches *and* the
  listing.

:func:`resilient_stack` builds the canonical composition
``cache(mirror(breaker(retry(remote))))``.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import tempfile
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from ..diagnostics import ResolutionError, TransientFetchError
from ..obs import get_observer
from .faultsim import LISTING_PATH, FaultPlan, FailEvery

try:  # advisory locking is POSIX-only; the mirror degrades gracefully
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

XPDL_SUFFIX = ".xpdl"

#: Default offline-mirror root, next to the persistent stage cache.
DEFAULT_MIRROR_DIR = os.path.join(".xpdl-cache", "mirror")


@dataclass(slots=True)
class StoreNotice:
    """An out-of-band condition a store wants surfaced as a diagnostic.

    Stores have no :class:`~repro.diagnostics.DiagnosticSink`; they record
    notices (e.g. "served from offline mirror") and the repository drains
    them into the sink of whatever operation triggered the fetch.
    """

    message: str
    path: str = ""
    warning: bool = True


class DescriptorStore:
    """Abstract store of named descriptor texts."""

    #: Stable identifier used in provenance and error messages.
    url: str = "store:"

    def list_paths(self) -> list[str]:
        """All descriptor paths (relative, '/'-separated) in this store.

        May raise :class:`TransientFetchError` when the store is remote
        and unreachable.
        """
        raise NotImplementedError

    def fetch(self, path: str) -> str:
        """Return the text of one descriptor.

        Raises :class:`ResolutionError` when the descriptor does not exist
        (permanent) and :class:`TransientFetchError` when the store could
        not be reached (retryable).
        """
        raise NotImplementedError

    def describe(self) -> str:
        return self.url

    def stats(self) -> dict[str, Any]:
        """Health/traffic counters for ``xpdl repo stats``."""
        return {}

    # -- notices ------------------------------------------------------------
    def _notice(self, message: str, path: str = "", *, warning: bool = True) -> None:
        self.__dict__.setdefault("_notices", []).append(
            StoreNotice(message, path, warning)
        )

    def drain_notices(self) -> list[StoreNotice]:
        """Pop accumulated notices, innermost (backing) stores first."""
        own: list[StoreNotice] = self.__dict__.pop("_notices", [])
        backing = getattr(self, "backing", None)
        if isinstance(backing, DescriptorStore):
            return backing.drain_notices() + own
        return own


def iter_store_chain(store: DescriptorStore) -> Iterator[DescriptorStore]:
    """A store followed by its transitive ``backing`` chain (outermost first)."""
    current: DescriptorStore | None = store
    while isinstance(current, DescriptorStore):
        yield current
        current = getattr(current, "backing", None)


class MemoryStore(DescriptorStore):
    """An in-memory store, useful for tests and generated descriptors."""

    def __init__(self, files: dict[str, str] | None = None, *, url: str = "mem:") -> None:
        self.url = url
        self._files: dict[str, str] = dict(files or {})

    def put(self, path: str, text: str) -> None:
        self._files[path] = text

    def list_paths(self) -> list[str]:
        return sorted(self._files)

    def fetch(self, path: str) -> str:
        try:
            return self._files[path]
        except KeyError:
            raise ResolutionError(
                f"descriptor {path!r} not found in {self.url}"
            ) from None

    def stats(self) -> dict[str, Any]:
        return {"descriptors": len(self._files)}


class LocalDirStore(DescriptorStore):
    """Serves ``*.xpdl`` files under a directory (the model search path)."""

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(root)
        self.url = f"file:{self.root}/"

    def list_paths(self) -> list[str]:
        out: list[str] = []
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for fn in filenames:
                if fn.endswith(XPDL_SUFFIX):
                    full = os.path.join(dirpath, fn)
                    out.append(os.path.relpath(full, self.root).replace(os.sep, "/"))
        return sorted(out)

    def fetch(self, path: str) -> str:
        full = os.path.join(self.root, path.replace("/", os.sep))
        if not os.path.isfile(full):
            raise ResolutionError(f"descriptor {path!r} not found in {self.url}")
        with open(full, "r", encoding="utf-8") as fh:
            return fh.read()


@dataclass
class FetchLog:
    """Accounting of simulated remote transfers."""

    fetches: int = 0
    bytes: int = 0
    failures: int = 0
    simulated_latency_s: float = 0.0
    history: list[str] = field(default_factory=list)


class RemoteSimStore(DescriptorStore):
    """Simulated manufacturer web repository.

    Wraps a backing store and models per-request latency plus deterministic
    scripted faults (a :class:`~repro.repository.faultsim.FaultPlan`; the
    legacy ``fail_every=K`` shorthand builds an equivalent plan).  Injected
    failures raise :class:`TransientFetchError` — the network failed, the
    descriptor may well exist.  Latency is *accounted*, never slept, so
    tests stay fast while scaling benches can report realistic download
    cost.
    """

    def __init__(
        self,
        backing: DescriptorStore,
        *,
        host: str = "models.example.com",
        latency_s: float = 0.05,
        bandwidth_bps: float = 1e6,
        fail_every: int = 0,
        faults: FaultPlan | None = None,
    ) -> None:
        self.backing = backing
        self.host = host
        self.url = f"https://{host}/"
        self.latency_s = latency_s
        self.bandwidth_bps = bandwidth_bps
        if faults is None and fail_every:
            faults = FaultPlan(default=FailEvery(fail_every))
        self.faults = faults
        self.log = FetchLog()

    def _outcome(self, path: str):
        if self.faults is None:
            return None
        return self.faults.outcome_for(path)

    def list_paths(self) -> list[str]:
        outcome = self._outcome(LISTING_PATH)
        self.log.simulated_latency_s += self.latency_s * (
            outcome.latency_factor if outcome else 1.0
        )
        if outcome and outcome.fail:
            self.log.failures += 1
            get_observer().count("repo.fetch.transient")
            raise TransientFetchError(
                f"simulated transient failure listing {self.url}: {outcome.reason}"
            )
        return self.backing.list_paths()

    def fetch(self, path: str) -> str:
        self.log.fetches += 1
        self.log.history.append(path)
        outcome = self._outcome(path)
        latency_factor = outcome.latency_factor if outcome else 1.0
        if outcome and outcome.fail:
            self.log.failures += 1
            self.log.simulated_latency_s += self.latency_s * latency_factor
            get_observer().count("repo.fetch.transient")
            raise TransientFetchError(
                f"simulated transient failure fetching {self.url}{path}"
                + (f": {outcome.reason}" if outcome.reason else "")
            )
        text = self.backing.fetch(path)
        nbytes = len(text.encode("utf-8"))
        self.log.bytes += nbytes
        self.log.simulated_latency_s += (
            self.latency_s * latency_factor + nbytes / self.bandwidth_bps
        )
        return text

    def stats(self) -> dict[str, Any]:
        return {
            "fetches": self.log.fetches,
            "failures": self.log.failures,
            "bytes": self.log.bytes,
            "simulated_latency_s": round(self.log.simulated_latency_s, 6),
            "faults": self.faults.describe() if self.faults else "none",
        }


class RetryingStore(DescriptorStore):
    """Retries *transient* fetch failures with deterministic backoff.

    Only :class:`TransientFetchError` is retried; a permanent
    :class:`ResolutionError` (the store answered "not found") propagates
    immediately — retrying a miss ``attempts`` times is pure waste and used
    to be this class's signature bug.  Backoff is exponential with seeded
    jitter and — like :class:`RemoteSimStore` latency — *accounted* in
    :attr:`backoff_s`, never slept, so runs stay fast and reproducible.
    """

    def __init__(
        self,
        backing: DescriptorStore,
        *,
        attempts: int = 3,
        base_delay_s: float = 0.05,
        multiplier: float = 2.0,
        jitter: float = 0.1,
        seed: int = 0,
    ) -> None:
        if attempts < 1:
            raise ValueError("attempts must be >= 1")
        self.backing = backing
        self.attempts = attempts
        self.base_delay_s = base_delay_s
        self.multiplier = multiplier
        self.jitter = jitter
        self.seed = seed
        self.url = f"retry({backing.url})"
        self.retries = 0
        self.backoff_s = 0.0

    def _backoff(self, what: str, attempt: int) -> float:
        """Deterministic delay before retry ``attempt`` (0-based) of ``what``."""
        u = random.Random(f"{self.seed}\0{what}\0{attempt}").random()
        return self.base_delay_s * (self.multiplier**attempt) * (1.0 + self.jitter * u)

    def _with_retries(self, what: str, call):
        last: TransientFetchError | None = None
        for attempt in range(self.attempts):
            try:
                return call()
            except TransientFetchError as exc:
                last = exc
                if attempt + 1 < self.attempts:
                    self.retries += 1
                    self.backoff_s += self._backoff(what, attempt)
                    get_observer().count("repo.fetch.retries")
        assert last is not None
        raise last

    def list_paths(self) -> list[str]:
        return self._with_retries(LISTING_PATH, self.backing.list_paths)

    def fetch(self, path: str) -> str:
        return self._with_retries(path, lambda: self.backing.fetch(path))

    def stats(self) -> dict[str, Any]:
        return {
            "retries": self.retries,
            "backoff_s": round(self.backoff_s, 6),
            "attempts": self.attempts,
        }


class CircuitBreakerStore(DescriptorStore):
    """Fails fast after repeated transient failures from the backing store.

    After ``failure_threshold`` *consecutive* transient failures the breaker
    opens: the next ``cooldown_requests`` requests fail immediately (no
    backing traffic, no retry bursts against a dead remote).  The request
    after the cooldown is a half-open probe — success closes the breaker,
    another transient failure reopens it.  Cooldown is counted in requests,
    not wall time, keeping the behaviour deterministic under test.

    A permanent :class:`ResolutionError` resets the consecutive-failure
    count: the remote answered, so it is healthy.
    """

    def __init__(
        self,
        backing: DescriptorStore,
        *,
        failure_threshold: int = 4,
        cooldown_requests: int = 8,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.backing = backing
        self.failure_threshold = failure_threshold
        self.cooldown_requests = cooldown_requests
        self.url = f"breaker({backing.url})"
        self.state = "closed"  # closed | open | half_open
        self.opens = 0
        self.fast_failures = 0
        self._consecutive = 0
        self._cooldown_left = 0

    def _guarded(self, what: str, call):
        obs = get_observer()
        if self.state == "open":
            if self._cooldown_left > 0:
                self._cooldown_left -= 1
                self.fast_failures += 1
                obs.count("repo.breaker.fastfail")
                raise TransientFetchError(
                    f"circuit breaker open for {self.backing.url} "
                    f"(cooling down, {self._cooldown_left} request(s) left); "
                    f"not fetching {what!r}"
                )
            self.state = "half_open"
        try:
            value = call()
        except TransientFetchError:
            self._consecutive += 1
            if self.state == "half_open" or self._consecutive >= self.failure_threshold:
                if self.state != "open":
                    self.opens += 1
                    obs.count("repo.breaker.open")
                    # Only the first trip warns; a failed half-open probe
                    # re-opening the breaker is routine while the remote
                    # stays dead and would flood the diagnostics.
                    if self.state == "closed":
                        self._notice(
                            f"circuit breaker opened for {self.backing.url} "
                            f"after {self._consecutive} consecutive transient "
                            "failure(s)",
                            warning=True,
                        )
                self.state = "open"
                self._cooldown_left = self.cooldown_requests
            raise
        except ResolutionError:
            self._consecutive = 0
            raise
        if self.state == "half_open":
            obs.count("repo.breaker.close")
        self.state = "closed"
        self._consecutive = 0
        return value

    def list_paths(self) -> list[str]:
        return self._guarded(LISTING_PATH, self.backing.list_paths)

    def fetch(self, path: str) -> str:
        return self._guarded(path, lambda: self.backing.fetch(path))

    def stats(self) -> dict[str, Any]:
        return {
            "state": self.state,
            "opens": self.opens,
            "fast_failures": self.fast_failures,
            "threshold": self.failure_threshold,
        }


class MirrorIndex:
    """On-disk layout of one offline descriptor mirror.

    Follows the :mod:`repro.toolchain.diskcache` conventions::

        <root>/index.json            # path -> {sha256, size}, version-stamped
        <root>/objects/ab/<sha>.xpdl # content-addressed descriptor texts

    Blobs and the index are written atomically (same-directory temp file +
    ``os.replace``); index merges are serialized by an advisory ``fcntl``
    lock where available.  Corrupt or version-mismatched indexes read as
    empty — the mirror rebuilds on the next successful fetch.
    """

    VERSION = 1
    INDEX_NAME = "index.json"
    OBJECTS_DIR = "objects"
    LOCK_NAME = ".lock"

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(root)
        self._entries: dict[str, dict[str, Any]] | None = None

    # -- paths ---------------------------------------------------------------
    @property
    def index_path(self) -> str:
        return os.path.join(self.root, self.INDEX_NAME)

    def _blob_path(self, sha256: str) -> str:
        return os.path.join(
            self.root, self.OBJECTS_DIR, sha256[:2], f"{sha256}{XPDL_SUFFIX}"
        )

    # -- atomic I/O ----------------------------------------------------------
    @staticmethod
    def _atomic_write(path: str, data: bytes) -> None:
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, prefix=".tmp-")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    @contextmanager
    def _lock(self) -> Iterator[None]:
        if fcntl is None:
            yield
            return
        os.makedirs(self.root, exist_ok=True)
        with open(os.path.join(self.root, self.LOCK_NAME), "a+") as fh:
            fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(fh.fileno(), fcntl.LOCK_UN)

    # -- index ---------------------------------------------------------------
    def _read_index(self) -> dict[str, dict[str, Any]]:
        try:
            with open(self.index_path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            return {}
        if not isinstance(data, dict) or data.get("version") != self.VERSION:
            return {}
        entries = data.get("entries")
        return dict(entries) if isinstance(entries, dict) else {}

    def _write_index(self, entries: dict[str, dict[str, Any]]) -> None:
        payload = {"version": self.VERSION, "entries": dict(sorted(entries.items()))}
        self._atomic_write(
            self.index_path,
            json.dumps(payload, indent=1, sort_keys=True).encode("utf-8"),
        )

    def entries(self, *, refresh: bool = False) -> dict[str, dict[str, Any]]:
        if self._entries is None or refresh:
            self._entries = self._read_index()
        return self._entries

    def paths(self) -> list[str]:
        return sorted(self.entries())

    # -- content -------------------------------------------------------------
    def get(self, path: str) -> str | None:
        """Last-known-good text of ``path``, or None (missing/corrupt)."""
        entry = self.entries().get(path)
        if not entry:
            return None
        sha = str(entry.get("sha256", ""))
        try:
            with open(self._blob_path(sha), "rb") as fh:
                data = fh.read()
        except OSError:
            return None
        if hashlib.sha256(data).hexdigest() != sha:
            return None
        return data.decode("utf-8")

    def put(self, path: str, text: str) -> bool:
        """Persist ``text`` as the mirror copy of ``path``.

        Returns True when the mirror changed (new path or new content);
        an identical copy is a cheap no-op.
        """
        data = text.encode("utf-8")
        sha = hashlib.sha256(data).hexdigest()
        current = self.entries().get(path)
        if current and current.get("sha256") == sha:
            return False
        blob = self._blob_path(sha)
        if not os.path.exists(blob):
            self._atomic_write(blob, data)
        with self._lock():
            merged = self._read_index()
            merged[path] = {"sha256": sha, "size": len(data)}
            self._write_index(merged)
        self._entries = None
        return True

    def stats(self) -> dict[str, Any]:
        entries = self.entries(refresh=True)
        return {
            "path": self.root,
            "entries": len(entries),
            "bytes": sum(int(e.get("size", 0)) for e in entries.values()),
        }


class OfflineMirrorStore(DescriptorStore):
    """Write-through offline mirror of a (possibly unreliable) store.

    Every successfully fetched text is persisted in a :class:`MirrorIndex`
    under ``root`` (default ``.xpdl-cache/mirror/``).  When the backing
    store fails *transiently* — retries exhausted, breaker open, remote
    dead — the mirror serves the last-known-good copy and records a notice
    so the repository can surface a WARNING diagnostic instead of silently
    mislabeling the reference.  A permanent not-found propagates: the
    remote answered, and serving a deleted descriptor would be wrong.
    """

    def __init__(self, backing: DescriptorStore, root: str = DEFAULT_MIRROR_DIR) -> None:
        self.backing = backing
        self.mirror = MirrorIndex(root)
        self.url = f"mirror({backing.url})"
        self.mirror_hits = 0
        self.mirror_stores = 0
        self._warned = False

    def _degrade(self, exc: TransientFetchError, what: str) -> None:
        self.mirror_hits += 1
        get_observer().count("repo.mirror.hits")
        if not self._warned:
            self._warned = True
            self._notice(
                f"store {self.backing.url} unreachable; serving last-known-good "
                f"descriptors from the offline mirror at {self.mirror.root} ({exc})",
                warning=True,
            )
        else:
            self._notice(
                f"{what} served from the offline mirror", path=what, warning=False
            )

    def _store(self, path: str, text: str) -> None:
        try:
            if self.mirror.put(path, text):
                self.mirror_stores += 1
                get_observer().count("repo.mirror.stores")
        except OSError as exc:  # a full/read-only disk must not fail the fetch
            self._notice(
                f"offline mirror write failed for {path!r}: {exc}",
                path=path,
                warning=True,
            )

    def list_paths(self) -> list[str]:
        try:
            paths = self.backing.list_paths()
        except TransientFetchError as exc:
            paths = self.mirror.paths()
            if not paths:
                raise
            self._degrade(exc, "<listing>")
            return paths
        self._warned = False
        return paths

    def fetch(self, path: str) -> str:
        try:
            text = self.backing.fetch(path)
        except TransientFetchError as exc:
            cached = self.mirror.get(path)
            if cached is None:
                raise
            self._degrade(exc, path)
            return cached
        self._store(path, text)
        return text

    def stats(self) -> dict[str, Any]:
        return {
            "mirror_hits": self.mirror_hits,
            "mirror_stores": self.mirror_stores,
            **self.mirror.stats(),
        }


class CachingStore(DescriptorStore):
    """Memoizes fetches — and the listing — from a slower backing store."""

    def __init__(self, backing: DescriptorStore) -> None:
        self.backing = backing
        self.url = f"cache({backing.url})"
        self._cache: dict[str, str] = {}
        self._paths: list[str] | None = None
        self.hits = 0
        self.misses = 0
        self.list_hits = 0

    def list_paths(self) -> list[str]:
        if self._paths is not None:
            self.list_hits += 1
            return list(self._paths)
        self._paths = self.backing.list_paths()
        return list(self._paths)

    def fetch(self, path: str) -> str:
        if path in self._cache:
            self.hits += 1
            return self._cache[path]
        self.misses += 1
        text = self.backing.fetch(path)
        self._cache[path] = text
        return text

    def invalidate(self) -> None:
        """Drop the memoized texts and listing; the next request refetches."""
        self._cache.clear()
        self._paths = None

    def stats(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "list_hits": self.list_hits,
            "entries": len(self._cache),
        }


def resilient_stack(
    backing: DescriptorStore,
    *,
    attempts: int = 3,
    base_delay_s: float = 0.05,
    seed: int = 0,
    breaker_threshold: int = 4,
    breaker_cooldown: int = 8,
    mirror_dir: str | None = None,
    cache: bool = True,
) -> DescriptorStore:
    """The canonical resilience composition around an unreliable store.

    ``cache(mirror(breaker(retry(backing))))`` — retries absorb short
    transient bursts, the breaker stops retry storms against a dead remote,
    the mirror degrades to last-known-good texts, and the cache keeps the
    whole stack off the hot path after the first fetch.  ``mirror_dir=None``
    omits the mirror layer; ``cache=False`` the memoization.
    """
    store: DescriptorStore = RetryingStore(
        backing, attempts=attempts, base_delay_s=base_delay_s, seed=seed
    )
    store = CircuitBreakerStore(
        store,
        failure_threshold=breaker_threshold,
        cooldown_requests=breaker_cooldown,
    )
    if mirror_dir:
        store = OfflineMirrorStore(store, mirror_dir)
    if cache:
        store = CachingStore(store)
    return store


def store_from_paths(paths: Iterable[str]) -> list[DescriptorStore]:
    """Build LocalDirStores for each existing directory on a search path."""
    return [LocalDirStore(p) for p in paths if os.path.isdir(p)]
