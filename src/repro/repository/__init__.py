"""Distributed XPDL model repository: stores, index, recursive loading."""

from .store import (
    CachingStore,
    DescriptorStore,
    FetchLog,
    LocalDirStore,
    MemoryStore,
    RemoteSimStore,
    RetryingStore,
    XPDL_SUFFIX,
    store_from_paths,
)
from .repository import (
    IndexEntry,
    LoadedModel,
    ModelRepository,
    REFERENCE_ATTRS,
)

__all__ = [
    "CachingStore",
    "DescriptorStore",
    "FetchLog",
    "LocalDirStore",
    "MemoryStore",
    "RemoteSimStore",
    "RetryingStore",
    "XPDL_SUFFIX",
    "store_from_paths",
    "IndexEntry",
    "LoadedModel",
    "ModelRepository",
    "REFERENCE_ATTRS",
]
