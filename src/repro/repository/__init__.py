"""Distributed XPDL model repository: stores, index, recursive loading.

Fetch failures are typed — :class:`~repro.diagnostics.TransientFetchError`
(retryable) vs :class:`~repro.diagnostics.ResolutionError` (permanent) —
and the resilience wrappers (:class:`RetryingStore`,
:class:`CircuitBreakerStore`, :class:`OfflineMirrorStore`,
:class:`CachingStore`; composed by :func:`resilient_stack`) make the
paper's "download from manufacturer web sites" scenario production-shaped:
bounded backoff retries, fail-fast on dead remotes, graceful degradation
to a persisted last-known-good mirror.  Deterministic fault scripting
lives in :mod:`repro.repository.faultsim`.
"""

from .faultsim import (
    AlwaysFail,
    FailEvery,
    FailKTimes,
    FaultOutcome,
    FaultPlan,
    FaultSchedule,
    LISTING_PATH,
    NoFaults,
    SlowThenFail,
)
from .store import (
    CachingStore,
    CircuitBreakerStore,
    DEFAULT_MIRROR_DIR,
    DescriptorStore,
    FetchLog,
    LocalDirStore,
    MemoryStore,
    MirrorIndex,
    OfflineMirrorStore,
    RemoteSimStore,
    RetryingStore,
    StoreNotice,
    XPDL_SUFFIX,
    iter_store_chain,
    resilient_stack,
    store_from_paths,
)
from .repository import (
    IndexEntry,
    LoadedModel,
    ModelRepository,
    REFERENCE_ATTRS,
)

__all__ = [
    "AlwaysFail",
    "CachingStore",
    "CircuitBreakerStore",
    "DEFAULT_MIRROR_DIR",
    "DescriptorStore",
    "FailEvery",
    "FailKTimes",
    "FaultOutcome",
    "FaultPlan",
    "FaultSchedule",
    "FetchLog",
    "LISTING_PATH",
    "LocalDirStore",
    "MemoryStore",
    "MirrorIndex",
    "NoFaults",
    "OfflineMirrorStore",
    "RemoteSimStore",
    "RetryingStore",
    "SlowThenFail",
    "StoreNotice",
    "XPDL_SUFFIX",
    "iter_store_chain",
    "resilient_stack",
    "store_from_paths",
    "IndexEntry",
    "LoadedModel",
    "ModelRepository",
    "REFERENCE_ATTRS",
]
