"""The ``xpdl`` command-line toolchain (paper Sec. IV).

Subcommands cover the whole processing pipeline::

    xpdl list                          # descriptors in the repository
    xpdl validate <ident>              # schema validation + lint
    xpdl compose <ident> [-o out.xir]  # compose + analyses + runtime IR
    xpdl query <file.xir> <path>       # path queries over a runtime model
    xpdl info <file.xir>               # analysis functions (cores, power...)
    xpdl benchgen <suite> -d DIR       # generate microbenchmark drivers
    xpdl bootstrap <ident>             # run simulated microbenchmarking
    xpdl codegen-cpp [-o file.hpp]     # generate the C++ query API
    xpdl codegen-py [-o file.py]       # generate the Python facade
    xpdl uml [--model <ident>]         # PlantUML views
    xpdl schema [-o xpdl_schema.xml]   # export the core schema
    xpdl discover [-d DIR]             # probe this host, emit descriptors
    xpdl to-pdl <ident>                # flatten to PEPPHER PDL (comparison)

Extra search-path directories are added with ``-I DIR`` (repeatable).
"""

from __future__ import annotations

import argparse
import os
import sys

from .analysis import (
    count_placeholders,
    downgrade_bandwidths,
    lint_model,
    runtime_default_filter,
    filter_model,
)
from .composer import Composer
from .diagnostics import XpdlError
from .ir import IRModel
from .modellib import standard_repository
from .runtime import xpdl_init, query_all
from .schema import CORE_SCHEMA, schema_to_xml


def _repository(args):
    return standard_repository(*(args.include or []))


def _print_diagnostics(sink) -> None:
    text = sink.render()
    if text:
        print(text, file=sys.stderr)


def cmd_list(args) -> int:
    repo = _repository(args)
    for ident in repo.identifiers():
        entry = repo.index()[ident]
        print(f"{ident:32s} <{entry.root_tag}>  {entry.store.url}{entry.path}")
    return 0


def cmd_validate(args) -> int:
    repo = _repository(args)
    from .diagnostics import DiagnosticSink
    from .schema import SchemaValidator

    identifiers = (
        repo.identifiers() if args.all else [args.identifier]
    )
    if not identifiers or identifiers == [None]:
        print("xpdl: error: give an identifier or --all", file=sys.stderr)
        return 2
    worst = 0
    for ident in identifiers:
        sink = DiagnosticSink()
        model = repo.load(ident, sink).model
        SchemaValidator().validate(model, sink)
        lint_model(model, sink)
        _print_diagnostics(sink)
        print(
            f"{ident}: {sink.error_count} error(s), "
            f"{sink.warning_count} warning(s), "
            f"{count_placeholders(model)} placeholder(s)"
        )
        if sink.has_errors():
            worst = 1
    return worst


def cmd_compose(args) -> int:
    repo = _repository(args)
    composed = Composer(repo).compose(args.identifier)
    downgrade_bandwidths(composed.root, composed.sink)
    lint_model(composed.root, composed.sink)
    _print_diagnostics(composed.sink)
    root = composed.root
    if not args.keep_all:
        root, dropped_attrs, dropped_elems = filter_model(
            root, runtime_default_filter()
        )
    ir = IRModel.from_model(
        root,
        {
            "system": args.identifier,
            "tool": "xpdl compose",
            "schema": f"{CORE_SCHEMA.name} {CORE_SCHEMA.version}",
        },
    )
    out = args.output or f"{args.identifier}.xir"
    ir.save(out)
    print(
        f"composed {args.identifier}: {len(ir)} elements, "
        f"{len(composed.referenced)} descriptors -> {out}"
    )
    return 1 if composed.sink.has_errors() else 0


def cmd_query(args) -> int:
    ctx = xpdl_init(args.file)
    for handle in query_all(ctx, args.path):
        attrs = " ".join(f'{k}="{v}"' for k, v in handle.attrs().items())
        print(f"<{handle.kind} {attrs}>")
    return 0


def cmd_info(args) -> int:
    ctx = xpdl_init(args.file)
    print(f"system:          {ctx.meta('system', '?')}")
    print(f"elements:        {len(ctx.ir)}")
    print(f"cores:           {ctx.count_cores()}")
    print(f"cpus:            {ctx.count_kind('cpu')}")
    print(f"devices:         {ctx.count_kind('device')}")
    print(f"cuda devices:    {ctx.count_cuda_devices()}")
    print(f"static power:    {ctx.total_static_power()}")
    installed = [h.label() for h in ctx.installed_software()]
    print(f"installed:       {', '.join(installed) if installed else '-'}")
    return 0


def cmd_benchgen(args) -> int:
    from .microbench import generate_build_script, generate_marker_library, generate_suite
    from .model import Microbenchmarks

    repo = _repository(args)
    suite = repo.load_model(args.suite)
    if not isinstance(suite, Microbenchmarks):
        raise XpdlError(f"{args.suite!r} is not a microbenchmark suite")
    drivers = generate_suite(suite)
    os.makedirs(args.directory, exist_ok=True)
    for d in drivers:
        with open(os.path.join(args.directory, d.filename), "w") as fh:
            fh.write(d.source)
    with open(os.path.join(args.directory, "mb_markers.c"), "w") as fh:
        fh.write(generate_marker_library())
    script = generate_build_script(suite, drivers)
    script_path = os.path.join(args.directory, suite.attrs.get("command", "mbscript.sh"))
    with open(script_path, "w") as fh:
        fh.write(script)
    os.chmod(script_path, 0o755)
    print(f"generated {len(drivers)} drivers + script in {args.directory}")
    return 0


def cmd_bootstrap(args) -> int:
    from .microbench import bootstrap_instruction_model
    from .model import Instructions, Microbenchmarks
    from .simhw import PowerMeter, testbed_from_model

    repo = _repository(args)
    composed = Composer(repo).compose(args.identifier)
    bed = testbed_from_model(composed.root)
    meter = PowerMeter(seed=args.seed, noise_std_w=args.noise)
    total = 0
    for machine in bed.machines.values():
        isa = machine.truth.isa_name
        instrs = next(
            (
                i
                for i in composed.root.find_all(Instructions)
                if (i.name or i.ident) == isa
            ),
            None,
        )
        if instrs is None:
            continue
        suite = next(iter(composed.root.find_all(Microbenchmarks)), None)
        _model, report = bootstrap_instruction_model(
            instrs,
            machine,
            suite=suite,
            meter=meter,
            repetitions=args.repetitions,
        )
        for run in report.runs:
            print(
                f"{machine.name:16s} {run.instruction:12s} "
                f"{run.energy_per_instruction.magnitude * 1e12:10.2f} pJ "
                f"(+-{run.relative_spread():.1%} over {run.repetitions} reps)"
            )
        total += len(report.runs)
    print(f"bootstrapped {total} instruction energies")
    return 0


def cmd_codegen_cpp(args) -> int:
    from .codegen import generate_cpp_header

    text = generate_cpp_header(CORE_SCHEMA)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def cmd_codegen_py(args) -> int:
    from .codegen import generate_python_api

    text = generate_python_api(CORE_SCHEMA)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def cmd_uml(args) -> int:
    from .codegen import model_to_plantuml, schema_to_plantuml

    if args.model:
        repo = _repository(args)
        composed = Composer(repo).compose(args.model)
        print(model_to_plantuml(composed.root))
    else:
        print(schema_to_plantuml(CORE_SCHEMA))
    return 0


def cmd_schema(args) -> int:
    text = schema_to_xml(CORE_SCHEMA)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def cmd_discover(args) -> int:
    from .discovery import canned_spec, emit_descriptors, probe_linux

    spec = probe_linux() if not args.canned else None
    if spec is None:
        spec = canned_spec()
        print("using canned host spec (probe unavailable or --canned)", file=sys.stderr)
    for relpath, text in emit_descriptors(spec).items():
        path = os.path.join(args.directory, relpath)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as fh:
            fh.write(text)
        print(f"wrote {path}")
    return 0


def cmd_diff(args) -> int:
    from .model import from_document
    from .tools import diff_models, render_diff
    from .xpdlxml import parse_xml_file

    repo = _repository(args)

    def load_side(spec: str):
        if os.path.isfile(spec):
            return from_document(parse_xml_file(spec))
        return repo.load_model(spec)

    old = load_side(args.old)
    new = load_side(args.new)
    changes = diff_models(old, new)
    print(render_diff(changes))
    return 1 if changes else 0


def cmd_to_json(args) -> int:
    from .codegen import model_to_json

    repo = _repository(args)
    if args.compose:
        model = Composer(repo).compose(args.identifier).root
    else:
        model = repo.load_model(args.identifier)
    text = model_to_json(model)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def cmd_control(args) -> int:
    from .analysis import control_summary, infer_control_relation

    repo = _repository(args)
    composed = Composer(repo).compose(args.identifier)
    relations = infer_control_relation(composed.root, composed.sink)
    _print_diagnostics(composed.sink)
    for rel in relations:
        src = "explicit" if rel.explicit else "inferred"
        print(f"scope {rel.scope} ({src}):")
        if rel.root is None:
            print("  (no processing units)")
            continue

        def show(node, depth=1):
            print(f"{'  ' * depth}{node.ident} [{node.role}]")
            for c in node.children:
                show(c, depth + 1)

        show(rel.root)
    return 0


def cmd_to_pdl(args) -> int:
    from .pdl import write_pdl, xpdl_to_pdl

    repo = _repository(args)
    composed = Composer(repo).compose(args.identifier)
    for platform in xpdl_to_pdl(composed.root):
        print(f"<!-- platform {platform.name} -->")
        print(write_pdl(platform))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="xpdl", description="XPDL platform-description toolchain"
    )
    parser.add_argument(
        "-I",
        "--include",
        action="append",
        metavar="DIR",
        help="extra model search-path directory (repeatable)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list repository descriptors").set_defaults(
        fn=cmd_list
    )

    p = sub.add_parser(
        "validate", help="validate one descriptor (or --all of them)"
    )
    p.add_argument("identifier", nargs="?")
    p.add_argument(
        "--all", action="store_true", help="validate every repository descriptor"
    )
    p.set_defaults(fn=cmd_validate)

    p = sub.add_parser("compose", help="compose a system and emit runtime IR")
    p.add_argument("identifier")
    p.add_argument("-o", "--output")
    p.add_argument(
        "--keep-all",
        action="store_true",
        help="skip the uninteresting-value filter",
    )
    p.set_defaults(fn=cmd_compose)

    p = sub.add_parser("query", help="path query over a runtime model file")
    p.add_argument("file")
    p.add_argument("path")
    p.set_defaults(fn=cmd_query)

    p = sub.add_parser("info", help="analysis summary of a runtime model file")
    p.add_argument("file")
    p.set_defaults(fn=cmd_info)

    p = sub.add_parser("benchgen", help="generate microbenchmark drivers")
    p.add_argument("suite")
    p.add_argument("-d", "--directory", default="mb_out")
    p.set_defaults(fn=cmd_benchgen)

    p = sub.add_parser(
        "bootstrap", help="bootstrap energy models on the simulated testbed"
    )
    p.add_argument("identifier")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--noise", type=float, default=0.05, help="meter noise (W)")
    p.add_argument("-r", "--repetitions", type=int, default=5)
    p.set_defaults(fn=cmd_bootstrap)

    p = sub.add_parser("codegen-cpp", help="generate the C++ query API header")
    p.add_argument("-o", "--output")
    p.set_defaults(fn=cmd_codegen_cpp)

    p = sub.add_parser("codegen-py", help="generate the Python query facade")
    p.add_argument("-o", "--output")
    p.set_defaults(fn=cmd_codegen_py)

    p = sub.add_parser("uml", help="PlantUML view of the schema or a model")
    p.add_argument("--model")
    p.set_defaults(fn=cmd_uml)

    p = sub.add_parser("schema", help="export the core schema as XML")
    p.add_argument("-o", "--output")
    p.set_defaults(fn=cmd_schema)

    p = sub.add_parser("discover", help="probe this host and emit descriptors")
    p.add_argument("-d", "--directory", default="discovered")
    p.add_argument("--canned", action="store_true", help="use the canned spec")
    p.set_defaults(fn=cmd_discover)

    p = sub.add_parser("to-pdl", help="flatten a system to PEPPHER PDL")
    p.add_argument("identifier")
    p.set_defaults(fn=cmd_to_pdl)

    p = sub.add_parser("to-json", help="JSON view of a descriptor or system")
    p.add_argument("identifier")
    p.add_argument("-o", "--output")
    p.add_argument(
        "--compose",
        action="store_true",
        help="emit the composed tree rather than the raw descriptor",
    )
    p.set_defaults(fn=cmd_to_json)

    p = sub.add_parser(
        "control", help="show the (inferred or explicit) control hierarchy"
    )
    p.add_argument("identifier")
    p.set_defaults(fn=cmd_control)

    p = sub.add_parser(
        "diff",
        help="semantic diff of two descriptors (identifiers or .xpdl paths)",
    )
    p.add_argument("old")
    p.add_argument("new")
    p.set_defaults(fn=cmd_diff)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except XpdlError as exc:
        print(f"xpdl: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
