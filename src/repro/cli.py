"""The ``xpdl`` command-line toolchain (paper Sec. IV).

Subcommands cover the whole processing pipeline::

    xpdl list                          # descriptors in the repository
    xpdl validate <ident>              # schema validation + lint
    xpdl compose <ident> [-o out.xir]  # compose + analyses + runtime IR
    xpdl build [ident ...]             # parallel batch build of all systems
    xpdl doctor [ident ...]            # cross-descriptor static analysis
    xpdl gen --seed S --scale N -d DIR # seeded synthetic descriptor corpus
    xpdl fleet --model <ident>         # fleet energy/SLO policy simulation
    xpdl import model.yaml -d DIR      # CESDM YAML/JSON or PDL subset
    xpdl export DIR -o model.yaml      # descriptor tree -> CESDM document
    xpdl cache stats|clear|verify      # manage the persistent stage cache
    xpdl repo stats|mirror|check       # repository resilience & offline mirror
    xpdl query <file.xir> <path>       # path queries over a runtime model
    xpdl info <file.xir>               # analysis functions (cores, power...)
    xpdl benchgen <suite> -d DIR       # generate microbenchmark drivers
    xpdl bootstrap <ident>             # run simulated microbenchmarking
    xpdl codegen-cpp [-o file.hpp]     # generate the C++ query API
    xpdl codegen-py [-o file.py]       # generate the Python facade
    xpdl uml [--model <ident>]         # PlantUML views
    xpdl schema [-o xpdl_schema.xml]   # export the core schema
    xpdl discover [-d DIR]             # probe this host, emit descriptors
    xpdl to-pdl <ident>                # flatten to PEPPHER PDL (comparison)
    xpdl stats [ident ...]             # pipeline timings, counters, cache
    xpdl serve                         # long-lived model service (HTTP/JSON)

Every command that touches the repository obtains its artifacts through a
:class:`~repro.toolchain.ToolchainSession`: one repository, one shared
diagnostics sink (rendered once per invocation, with stage provenance) and
a stage cache, so e.g. a composition is performed once however many
downstream presentations consume it.

Extra search-path directories are added with ``-I DIR`` (repeatable).
``--trace`` (before the subcommand) streams the observability events of
the run as JSON-lines to stderr; ``--trace-out FILE`` writes them to a
file instead.  ``--simulate-remote`` serves the whole search path through
a simulated manufacturer download site wrapped in the resilience stack
(retries with backoff, circuit breaker, offline mirror); ``--fault SPEC``
injects a deterministic failure schedule into it.
"""

from __future__ import annotations

import argparse
import os
import sys

from .diagnostics import XpdlError
from .modellib import PAPER_SYSTEMS
from .obs import NULL_OBSERVER, Observer, get_observer, use_observer
from .schema import CORE_SCHEMA, schema_to_xml
from .service.options import (
    RepositoryOptions,
    ServiceOptions,
    build_repository,
    repository_parent_parser,
)
from .toolchain import ToolchainSession


def _repository(args):
    """The model repository for this invocation (one shared factory).

    The flags live in :func:`repro.service.options.repository_parent_parser`
    and the assembly in :func:`repro.service.options.build_repository`, so
    the CLI and the ``xpdl serve`` daemon wire stores identically.
    """
    return build_repository(RepositoryOptions.from_args(args))


def _session(args) -> ToolchainSession:
    return ToolchainSession(_repository(args))


def _print_diagnostics(session: ToolchainSession) -> None:
    """Render the session's diagnostics exactly once, to stderr.

    Deduplicated: a diagnostic re-emitted by several systems or repeat
    rounds (shared unresolved refs, e.g.) prints once per invocation.
    """
    text = session.sink.render(dedupe=True)
    if text:
        print(text, file=sys.stderr)


def cmd_list(args) -> int:
    repo = _session(args).repository
    for ident in repo.identifiers():
        entry = repo.index()[ident]
        print(f"{ident:32s} <{entry.root_tag}>  {entry.store.url}{entry.path}")
    return 0


def cmd_validate(args) -> int:
    session = _session(args)
    identifiers = (
        session.repository.identifiers() if args.all else [args.identifier]
    )
    if not identifiers or identifiers == [None]:
        print("xpdl: error: give an identifier or --all", file=sys.stderr)
        return 2
    for ident in identifiers:
        result = session.validate(ident)
        print(
            f"{ident}: {result.errors} error(s), "
            f"{result.warnings} warning(s), "
            f"{result.placeholders} placeholder(s)"
        )
    _print_diagnostics(session)
    return 1 if session.sink.has_errors() else 0


def cmd_compose(args) -> int:
    session = _session(args)
    result = session.emit_ir(args.identifier, keep_all=args.keep_all)
    _print_diagnostics(session)
    out = args.output or f"{args.identifier}.xir"
    result.ir.save(out)
    print(
        f"composed {args.identifier}: {len(result.ir)} elements, "
        f"{len(result.composed.referenced)} descriptors -> {out}"
    )
    return 1 if session.sink.has_errors() else 0


def cmd_build(args) -> int:
    """Batch-compile systems in parallel against the persistent cache."""
    import json

    from .diagnostics import DiagnosticSink
    from .toolchain import run_batch

    observer = get_observer()
    if not observer.enabled:
        observer = Observer()  # build always reports merged counters
    sink = DiagnosticSink()
    cache_dir = None if args.no_cache else args.cache_dir
    report = run_batch(
        repository=_repository(args),
        identifiers=tuple(args.identifiers or ()),
        jobs=args.jobs,
        cache_dir=cache_dir,
        out_dir=args.out_dir,
        keep_all=args.keep_all,
        observer=observer,
        sink=sink,
    )
    text = sink.render(dedupe=True)
    if text:
        print(text, file=sys.stderr)
    for b in report.builds:
        if b.ok:
            sha = (b.ir_sha256 or "")[:12]
            where = f" -> {b.out_path}" if b.out_path else ""
            print(
                f"{b.identifier:24s} ok    {b.elements:5d} elements  "
                f"{b.referenced:3d} descriptors  {b.duration_s * 1e3:8.1f} ms  "
                f"[{sha}]{where}"
            )
        else:
            print(f"{b.identifier:24s} FAIL  {b.error}")
    built = sum(1 for b in report.builds if b.ok)
    cache = report.cache
    print(
        f"built {built}/{len(report.builds)} systems in {report.wall_s:.2f}s "
        f"({report.models_per_s:.1f} models/s, jobs={report.jobs}, "
        f"shards={len(report.shards)})"
    )
    print(
        f"stage cache: {cache.get('hits', 0)} memory + "
        f"{cache.get('disk_hits', 0)} disk hits, "
        f"{cache.get('misses', 0)} misses "
        f"(hit rate {report.hit_rate:.0%})"
        + (f"; persistent cache at {report.cache_dir}" if report.cache_dir else "")
    )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report.to_dict(), fh, indent=1, sort_keys=True)
        print(f"wrote report {args.json}")
    return 0 if report.ok and not sink.has_errors() else 1


def cmd_cache(args) -> int:
    """Inspect or maintain the persistent stage cache."""
    from .toolchain import PersistentStageCache

    cache = PersistentStageCache(args.cache_dir)
    if args.action == "stats":
        stats = cache.stats()
        print(f"cache:    {stats['path']}")
        print(f"version:  {stats['version']}")
        print(f"entries:  {stats['entries']}")
        print(f"bytes:    {stats['bytes']}")
        for stage, n in stats["stages"].items():
            print(f"  {stage:12s} {n}")
        print(f"images:   {stats['images']} ({stats['image_bytes']} bytes)")
        return 0
    if args.action == "clear":
        n = cache.clear()
        print(f"cleared {n} entr{'y' if n == 1 else 'ies'} from {cache.root}")
        return 0
    # verify
    checked, problems = cache.verify()
    for problem in problems:
        print(f"xpdl cache: {problem}", file=sys.stderr)
    print(
        f"verified {checked} entr{'y' if checked == 1 else 'ies'}: "
        f"{len(problems)} problem(s)"
    )
    return 1 if problems else 0


def cmd_repo(args) -> int:
    """Distributed-repository resilience tools (``xpdl repo ...``).

    ``stats``  — index summary, per-store health (fetches, retries,
    breaker state, mirror contents) and the ``repo.*`` counters.
    ``mirror`` — warm the offline mirror: fetch every descriptor through
    the resilience stack so a later run with a dead remote degrades to
    last-known-good copies (implies ``--simulate-remote``).
    ``check``  — fetch every indexed descriptor once and report typed
    failures; exits 1 when any descriptor is unreachable.
    """
    from .diagnostics import ResolutionError, TransientFetchError

    if args.action == "mirror" and not (args.simulate_remote or args.fault):
        args.simulate_remote = True  # mirroring needs the resilience stack
    observer = get_observer()
    if not observer.enabled:
        observer = Observer()
    with use_observer(observer):
        session = _session(args)
        repo = session.repository
        index = repo.index(session.sink)

        if args.action == "stats":
            stats = repo.stats()
            print(f"stores:      {stats['stores']}")
            print(f"descriptors: {stats['descriptors']}")
            print(f"loaded:      {stats['loaded']}")
            for row in repo.store_stats():
                url = row.pop("url")
                detail = "  ".join(f"{k}={v}" for k, v in sorted(row.items()))
                print(f"  {url}")
                if detail:
                    print(f"      {detail}")
            counters = observer.counters_with_prefix("repo.")
            if counters:
                print("counters:")
                for name, total in counters.items():
                    print(f"  {name:34s} {total}")
            _print_diagnostics(session)
            return 0

        if args.action == "mirror":
            # Indexing fetched every descriptor through the stack, which
            # write-through-populated the mirror; report what it holds.
            from .repository import OfflineMirrorStore, iter_store_chain

            entries = total_bytes = stored = 0
            roots = []
            for store in repo.stores:
                for layer in iter_store_chain(store):
                    if isinstance(layer, OfflineMirrorStore):
                        s = layer.stats()
                        entries += s["entries"]
                        total_bytes += s["bytes"]
                        stored += s["mirror_stores"]
                        roots.append(s["path"])
            _print_diagnostics(session)
            if not roots:
                print(
                    "xpdl repo mirror: no offline mirror in the store stack "
                    "(use --mirror-dir)",
                    file=sys.stderr,
                )
                return 2
            print(
                f"mirror: {entries} descriptor(s), {total_bytes} bytes "
                f"({stored} newly stored) under "
                + ", ".join(sorted(set(os.path.dirname(r) or r for r in roots)))
            )
            return 1 if session.sink.has_errors() else 0

        # check: one real fetch per indexed descriptor, typed accounting.
        ok = transient = permanent = 0
        for ident in sorted(index):
            entry = index[ident]
            try:
                entry.store.fetch(entry.path)
                ok += 1
            except TransientFetchError as exc:
                transient += 1
                print(f"{ident}: transient: {exc}", file=sys.stderr)
            except ResolutionError as exc:
                permanent += 1
                print(f"{ident}: not found: {exc}", file=sys.stderr)
        _print_diagnostics(session)
        print(
            f"checked {len(index)} descriptor(s): {ok} ok, "
            f"{transient} transient failure(s), {permanent} missing"
        )
        if not index and repo.stores:
            # Stores are configured but nothing indexed: every one of them
            # was unreachable (diagnosed above as XPDL0202).
            print("xpdl repo check: nothing indexed", file=sys.stderr)
            return 1
        return 1 if (transient or permanent or session.sink.has_errors()) else 0


def cmd_doctor(args) -> int:
    """Cross-descriptor static analysis: the model doctor (Sec. V)."""
    import json

    from .analysis import rule_catalog
    from .service.core import merged_doctor_report

    if args.list_rules:
        for row in rule_catalog():
            print(
                f"{row['rule']}  {row['severity']:8s} {row['scope']:11s} "
                f"{row['name']}: {row['summary']}"
            )
        return 0

    session = _session(args)
    suppress = tuple(args.suppress or ())
    # The merge lives in the service core so `xpdl doctor` and the
    # daemon's doctor op produce byte-identical JSON reports.
    merged = merged_doctor_report(
        session, list(args.identifiers or ()) or None, suppress=suppress
    )

    # Diagnostics of upstream stages (compose errors, ...) render as usual;
    # doctor findings are rendered from the report so warm cache runs —
    # which re-emit nothing through the sink — print identically.
    other = [d for d in session.sink if d.stage != "doctor"]
    if other:
        from .diagnostics import render_diagnostics

        text = render_diagnostics(other, sources=session.sink.sources, dedupe=True)
        if text:
            print(text, file=sys.stderr)

    if args.format == "json":
        payload = json.dumps(merged.to_dict(), indent=1, sort_keys=True)
        if args.output:
            with open(args.output, "w", encoding="utf-8") as fh:
                fh.write(payload + "\n")
            print(f"wrote {args.output}")
        else:
            print(payload)
    else:
        for f in sorted(
            merged.findings,
            key=lambda f: (f.rule, f.subject, f.location, f.message),
        ):
            print(f"{f.location}: {f.severity}: {f.message} [{f.rule}]")
        n = len(merged.findings)
        print(
            f"doctor: {merged.errors} error(s), {merged.warnings} warning(s), "
            f"{merged.notes} note(s) — {n} finding(s) over "
            f"{len(merged.checked)} subject(s), "
            f"{len(merged.rules_run)} rule(s)"
            + (
                f", suppressed: {', '.join(merged.suppressed)}"
                if merged.suppressed
                else ""
            )
        )
    return 1 if (not merged.ok() or session.sink.has_errors()) else 0


def cmd_gen(args) -> int:
    """Generate a seeded synthetic descriptor corpus (``xpdl gen``)."""
    from .corpus import GeneratorConfig, generate_corpus

    cfg = GeneratorConfig(seed=args.seed, scale=args.scale)
    corpus = generate_corpus(config=cfg)
    root = corpus.write_to(args.directory)
    print(
        f"generated {len(corpus)} descriptors "
        f"({len(corpus.systems)} systems, seed={cfg.seed}, "
        f"scale={cfg.scale}) -> {root}"
    )
    # The digest is the determinism contract: same seed+scale, same
    # sha256, in any process.
    print(f"sha256 {corpus.digest()}")
    return 0


def cmd_fleet(args) -> int:
    """Fleet-scale energy simulation under a time-varying load trace.

    Composes the model, compiles its runtime index, builds the simulated
    testbed and runs every requested DVFS governor policy over the same
    seeded trace, reporting per-policy energy and SLO attainment.
    """
    from .fleet import (
        GOVERNORS,
        index_state_catalog,
        make_trace,
        simulate_fleet,
    )
    from .runtime import xpdl_init_from_model
    from .simhw import testbed_from_model

    if getattr(args, "fleet_cmd", None) == "sweep":
        return cmd_fleet_sweep(args)
    if not args.model:
        print("xpdl: error: fleet requires --model", file=sys.stderr)
        return 2
    session = _session(args)
    result = session.emit_ir(args.model)
    _print_diagnostics(session)
    if session.sink.has_errors():
        return 1
    testbed = testbed_from_model(result.composed.root, name=args.model)
    ctx = xpdl_init_from_model(result.ir)
    catalog = index_state_catalog(ctx, testbed)
    trace = make_trace(
        args.trace_kind,
        seed=args.seed,
        intervals=args.intervals,
        interval_s=args.interval_s,
        machines=sorted(testbed.machines),
    )
    policies = list(args.policy or GOVERNORS)
    report = simulate_fleet(
        testbed,
        trace,
        policies,
        state_catalog=catalog,
        request_ops=args.request_ops,
    )
    if args.format == "json":
        text = report.to_json()
    else:
        text = report.render_table() + "\n"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {args.output} [{report.digest()[:12]}]")
    else:
        print(text, end="")
    return 0


def cmd_fleet_sweep(args) -> int:
    """Parallel (policy, trace, seed) grid sweep over one fleet model.

    Composes the model once (persisting its XPDLRT02 image into the
    content-addressed cache), then shards the grid across worker
    processes that each reopen the image zero-copy and derive the
    power-state catalog through the compiled query engine.  The report
    is byte-identical for any ``--jobs``.
    """
    import json as _json

    from .fleet import GOVERNORS, index_state_catalog, parse_seeds, run_sweep
    from .runtime import xpdl_init_from_model
    from .simhw import testbed_from_model
    from .toolchain import PersistentStageCache

    cache = None if args.no_cache else PersistentStageCache(args.cache_dir)
    session = ToolchainSession(_repository(args), disk_cache=cache)
    result = session.emit_ir(args.model)
    _print_diagnostics(session)
    if session.sink.has_errors():
        return 1
    testbed = testbed_from_model(result.composed.root, name=args.model)
    image_path = None
    catalog = None
    if cache is not None and result.image_key:
        image_path = cache.find_image(result.image_key)
    if image_path is None:
        # No persisted image to hand the workers: build the catalog once
        # here and ship it, so workers still never re-index per cell.
        ctx = xpdl_init_from_model(result.ir)
        catalog = index_state_catalog(ctx, testbed)

    def _split(value: str) -> tuple[str, ...]:
        return tuple(s for s in (p.strip() for p in value.split(",")) if s)

    policies = _split(args.policy) if args.policy else tuple(GOVERNORS)
    report, stats = run_sweep(
        testbed,
        policies=policies,
        traces=_split(args.trace),
        seeds=parse_seeds(args.seeds),
        intervals=args.intervals,
        interval_s=args.interval_s,
        request_ops=args.request_ops,
        image_path=image_path,
        state_catalog=catalog,
        jobs=args.jobs,
        engine=args.engine,
    )
    if args.format == "json":
        text = report.to_json()
    else:
        text = report.render_table() + "\n"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {args.output} [{report.digest()[:12]}]")
    else:
        print(text, end="")
    if args.stats_out:
        with open(args.stats_out, "w", encoding="utf-8") as fh:
            _json.dump(stats.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(
            f"sweep stats: {stats.cells} cells, jobs={stats.jobs}, "
            f"{stats.wall_s:.2f}s -> {args.stats_out}",
            file=sys.stderr,
        )
    return 0


def _import_files(args) -> dict[str, str]:
    from .corpus import import_cesdm, import_pdl, load_cesdm

    with open(args.file, encoding="utf-8") as fh:
        text = fh.read()
    fmt = args.format
    if fmt == "auto":
        lower = args.file.lower()
        if lower.endswith((".yaml", ".yml", ".json")):
            fmt = "cesdm"
        elif lower.endswith((".pdl", ".xml")):
            fmt = "pdl"
        else:
            fmt = "cesdm" if text.lstrip().startswith(("{", "cesdm")) else "pdl"
    if fmt == "pdl":
        return import_pdl(text, source_name=args.file)
    return import_cesdm(load_cesdm(text, source_name=args.file))


def cmd_import(args) -> int:
    """Import a foreign platform model (CESDM YAML/JSON or PDL subset)."""
    import os as _os

    from .corpus import corpus_digest

    files = _import_files(args)
    for relpath, content in sorted(files.items()):
        path = _os.path.join(args.directory, relpath)
        _os.makedirs(_os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(content)
    print(
        f"imported {len(files)} descriptor(s) -> {args.directory}"
    )
    print(f"sha256 {corpus_digest(files.items())}")
    if not args.check:
        return 0
    # --check: round-trip the imported tree through the doctor.
    from .service.core import merged_doctor_report

    opts = RepositoryOptions.from_args(args)
    opts = opts.with_(include=(args.directory, *opts.include))
    session = ToolchainSession(build_repository(opts))
    merged = merged_doctor_report(session, None)
    _print_diagnostics(session)
    print(
        f"doctor: {merged.errors} error(s), {merged.warnings} warning(s) "
        f"over the imported tree"
    )
    return 1 if (not merged.ok() or session.sink.has_errors()) else 0


def cmd_export(args) -> int:
    """Export a descriptor tree as one CESDM YAML/JSON document."""
    import os as _os

    from .corpus import export_cesdm

    files: dict[str, str] = {}
    for dirpath, _dirnames, filenames in sorted(_os.walk(args.directory)):
        for fname in sorted(filenames):
            if not fname.endswith(".xpdl"):
                continue
            path = _os.path.join(dirpath, fname)
            rel = _os.path.relpath(path, args.directory)
            with open(path, encoding="utf-8") as fh:
                files[rel] = fh.read()
    if not files:
        print(
            f"xpdl export: no .xpdl descriptors under {args.directory}",
            file=sys.stderr,
        )
        return 2
    text = export_cesdm(files, fmt=args.format)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"exported {len(files)} descriptor(s) -> {args.output}")
    else:
        print(text, end="")
    return 0


def cmd_query(args) -> int:
    from .runtime import query_all, xpdl_init
    from .service.core import format_query_results, handle_payload

    ctx = xpdl_init(args.file)
    # Render through the shared service helpers: the daemon's query op
    # and this command must print byte-identical results.
    results = [handle_payload(h) for h in query_all(ctx, args.path)]
    text = format_query_results(results)
    if text:
        print(text)
    return 0


def cmd_info(args) -> int:
    from .runtime import xpdl_init
    from .service.core import format_info, info_payload

    ctx = xpdl_init(args.file)
    print(format_info(info_payload(ctx)))
    return 0


def cmd_benchgen(args) -> int:
    from .microbench import generate_build_script, generate_marker_library, generate_suite
    from .model import Microbenchmarks

    session = _session(args)
    suite = session.load(args.suite).model
    if not isinstance(suite, Microbenchmarks):
        raise XpdlError(f"{args.suite!r} is not a microbenchmark suite")
    drivers = generate_suite(suite)
    os.makedirs(args.directory, exist_ok=True)
    for d in drivers:
        with open(os.path.join(args.directory, d.filename), "w") as fh:
            fh.write(d.source)
    with open(os.path.join(args.directory, "mb_markers.c"), "w") as fh:
        fh.write(generate_marker_library())
    script = generate_build_script(suite, drivers)
    script_path = os.path.join(args.directory, suite.attrs.get("command", "mbscript.sh"))
    with open(script_path, "w") as fh:
        fh.write(script)
    os.chmod(script_path, 0o755)
    print(f"generated {len(drivers)} drivers + script in {args.directory}")
    return 0


def cmd_bootstrap(args) -> int:
    session = _session(args)
    result = session.bootstrap(
        args.identifier,
        seed=args.seed,
        noise=args.noise,
        repetitions=args.repetitions,
    )
    _print_diagnostics(session)
    total = 0
    for machine_name, report in result.reports:
        for run in report.runs:
            print(
                f"{machine_name:16s} {run.instruction:12s} "
                f"{run.energy_per_instruction.magnitude * 1e12:10.2f} pJ "
                f"(+-{run.relative_spread():.1%} over {run.repetitions} reps)"
            )
        total += len(report.runs)
    print(f"bootstrapped {total} instruction energies")
    return 0


def cmd_codegen_cpp(args) -> int:
    from .codegen import generate_cpp_header

    text = generate_cpp_header(CORE_SCHEMA)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def cmd_codegen_py(args) -> int:
    from .codegen import generate_python_api

    text = generate_python_api(CORE_SCHEMA)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def cmd_uml(args) -> int:
    from .codegen import model_to_plantuml, schema_to_plantuml

    if args.model:
        session = _session(args)
        composed = session.compose(args.model)
        print(model_to_plantuml(composed.root))
    else:
        print(schema_to_plantuml(CORE_SCHEMA))
    return 0


def cmd_schema(args) -> int:
    text = schema_to_xml(CORE_SCHEMA)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def cmd_discover(args) -> int:
    from .discovery import canned_spec, emit_descriptors, probe_linux

    spec = probe_linux() if not args.canned else None
    if spec is None:
        spec = canned_spec()
        print("using canned host spec (probe unavailable or --canned)", file=sys.stderr)
    for relpath, text in emit_descriptors(spec).items():
        path = os.path.join(args.directory, relpath)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as fh:
            fh.write(text)
        print(f"wrote {path}")
    return 0


def cmd_diff(args) -> int:
    from .model import from_document
    from .tools import diff_models, render_diff
    from .xpdlxml import parse_xml_file

    session = _session(args)

    def load_side(spec: str):
        if os.path.isfile(spec):
            return from_document(parse_xml_file(spec))
        return session.load(spec).model

    old = load_side(args.old)
    new = load_side(args.new)
    changes = diff_models(old, new)
    print(render_diff(changes))
    return 1 if changes else 0


def cmd_to_json(args) -> int:
    from .codegen import model_to_json

    session = _session(args)
    if args.compose:
        model = session.compose(args.identifier).root
    else:
        model = session.load(args.identifier).model
    text = model_to_json(model)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def cmd_control(args) -> int:
    from .analysis import infer_control_relation

    session = _session(args)
    composed = session.compose(args.identifier)
    relations = infer_control_relation(composed.root, session.sink)
    _print_diagnostics(session)
    for rel in relations:
        src = "explicit" if rel.explicit else "inferred"
        print(f"scope {rel.scope} ({src}):")
        if rel.root is None:
            print("  (no processing units)")
            continue

        def show(node, depth=1):
            print(f"{'  ' * depth}{node.ident} [{node.role}]")
            for c in node.children:
                show(c, depth + 1)

        show(rel.root)
    return 0


def cmd_to_pdl(args) -> int:
    from .pdl import write_pdl, xpdl_to_pdl

    session = _session(args)
    composed = session.compose(args.identifier)
    for platform in xpdl_to_pdl(composed.root):
        print(f"<!-- platform {platform.name} -->")
        print(write_pdl(platform))
    return 0


def cmd_stats(args) -> int:
    observer = get_observer()
    if not observer.enabled:
        observer = Observer()  # stats always observes, --trace or not
    with use_observer(observer):
        session = _session(args)
        identifiers = args.identifiers or list(PAPER_SYSTEMS)
        index = session.repository.index()
        for ident in identifiers:
            if ident not in index:
                raise XpdlError(f"unknown identifier {ident!r}")
        for _round in range(args.repeat):
            for ident in identifiers:
                if index[ident].root_tag == "system":
                    session.emit_ir(ident)  # full pipeline
                else:
                    session.validate(ident)  # meta-models: load + validate
    _print_diagnostics(session)

    print(f"{'stage':28s} {'runs':>5s} {'total ms':>10s} {'mean ms':>10s}")
    for name in sorted(observer.stages):
        st = observer.stages[name]
        print(
            f"{name:28s} {st.runs:5d} {st.total_s * 1e3:10.2f} "
            f"{st.mean_s() * 1e3:10.2f}"
        )
    print("counters:")
    for name in sorted(observer.counters):
        print(f"  {name:34s} {observer.counters[name]}")
    cache = session.cache_stats()
    print(
        f"cache: hits={cache['hits']} misses={cache['misses']} "
        f"invalidations={cache['invalidations']}"
    )
    return 1 if session.sink.has_errors() else 0


def cmd_serve(args) -> int:
    """Run the long-lived model service (``xpdl serve``).

    Loads the repository once, keeps compiled query indexes hot across
    requests and serves query/info/analysis/compose/doctor over
    HTTP/JSON until SIGINT/SIGTERM, then shuts down cleanly.
    """
    import asyncio
    import signal

    from .service import ModelHost, run_server

    observer = get_observer()
    if not observer.enabled:
        observer = Observer()  # /stats always carries data, --trace or not
    host = ModelHost(
        observer=observer,
        repo_options=RepositoryOptions.from_args(args),
        max_model_bytes=args.max_model_bytes,
        reload_ttl_s=args.reload_ttl,
        cache_dir=None if args.no_cache else args.cache_dir,
    )

    async def _main() -> None:
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except NotImplementedError:  # pragma: no cover - non-POSIX loop
                pass

        def announce(address: str, port: int) -> None:
            print(
                f"xpdl serve: listening on http://{address}:{port}",
                flush=True,
            )

        await run_server(
            host,
            address=args.address,
            port=args.port,
            workers=args.workers,
            stop=stop,
            announce=announce,
        )

    asyncio.run(_main())
    print("xpdl serve: shutdown complete", flush=True)
    return 0


def build_parser() -> argparse.ArgumentParser:
    # Repository wiring flags (-I, --simulate-remote, --fault, ...) are
    # declared exactly once, in the shared parent parser.
    parser = argparse.ArgumentParser(
        prog="xpdl",
        description="XPDL platform-description toolchain",
        parents=[repository_parent_parser()],
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="stream observability events as JSON-lines to stderr",
    )
    parser.add_argument(
        "--trace-out",
        metavar="FILE",
        help="write the JSON-lines event stream to FILE (implies --trace)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list repository descriptors").set_defaults(
        fn=cmd_list
    )

    p = sub.add_parser(
        "validate", help="validate one descriptor (or --all of them)"
    )
    p.add_argument("identifier", nargs="?")
    p.add_argument(
        "--all", action="store_true", help="validate every repository descriptor"
    )
    p.set_defaults(fn=cmd_validate)

    p = sub.add_parser("compose", help="compose a system and emit runtime IR")
    p.add_argument("identifier")
    p.add_argument("-o", "--output")
    p.add_argument(
        "--keep-all",
        action="store_true",
        help="skip the uninteresting-value filter",
    )
    p.set_defaults(fn=cmd_compose)

    p = sub.add_parser(
        "build",
        help="batch-compile every system (or the given ones) in parallel",
    )
    p.add_argument(
        "identifiers",
        nargs="*",
        help="systems to build (default: every <system> in the repository)",
    )
    p.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="parallel worker processes (default: the CPUs available to "
        "this process — sched_getaffinity, falling back to cpu_count)",
    )
    p.add_argument(
        "--cache-dir",
        default=".xpdl-cache",
        metavar="DIR",
        help="persistent stage cache directory (default: .xpdl-cache)",
    )
    p.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent stage cache for this build",
    )
    p.add_argument(
        "-o",
        "--out-dir",
        default=None,
        metavar="DIR",
        help="write one <ident>.xir runtime model per system into DIR",
    )
    p.add_argument(
        "--keep-all",
        action="store_true",
        help="skip the uninteresting-value filter",
    )
    p.add_argument(
        "--json",
        metavar="FILE",
        help="also write the merged build report as JSON to FILE",
    )
    p.set_defaults(fn=cmd_build)

    p = sub.add_parser(
        "cache", help="persistent stage cache maintenance"
    )
    p.add_argument("action", choices=("stats", "clear", "verify"))
    p.add_argument(
        "--cache-dir",
        default=".xpdl-cache",
        metavar="DIR",
        help="persistent stage cache directory (default: .xpdl-cache)",
    )
    p.set_defaults(fn=cmd_cache)

    p = sub.add_parser(
        "repo",
        help="distributed-repository resilience: stats, offline mirror, "
        "fetch health check",
    )
    p.add_argument("action", choices=("stats", "mirror", "check"))
    p.set_defaults(fn=cmd_repo)

    p = sub.add_parser(
        "doctor",
        help="cross-descriptor static analysis over the repository",
    )
    p.add_argument(
        "identifiers",
        nargs="*",
        help="systems to check (default: every <system>; the repository-wide "
        "pass always runs)",
    )
    p.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format (default: human)",
    )
    p.add_argument(
        "-o",
        "--output",
        metavar="FILE",
        help="write the JSON report to FILE (with --format json)",
    )
    p.add_argument(
        "--suppress",
        action="append",
        metavar="RULE",
        help="suppress a rule by id (XPDL0703) or name "
        "(unused-descriptor); repeatable",
    )
    p.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    p.set_defaults(fn=cmd_doctor)

    p = sub.add_parser(
        "gen",
        help="generate a seeded synthetic descriptor corpus in "
        "repository layout",
    )
    p.add_argument(
        "--seed", type=int, default=0, help="generator seed (default 0)"
    )
    p.add_argument(
        "--scale",
        type=int,
        default=100,
        metavar="N",
        help="target descriptor count (default 100)",
    )
    p.add_argument(
        "-d",
        "--directory",
        default="corpus",
        metavar="DIR",
        help="output directory (default: corpus)",
    )
    p.set_defaults(fn=cmd_gen)

    p = sub.add_parser(
        "fleet",
        help="simulate a fleet under a load trace and compare DVFS "
        "governor policies (energy vs. SLO)",
    )
    p.add_argument(
        "--model",
        help="system identifier to compose into the simulated fleet",
    )
    p.add_argument(
        "--trace",
        dest="trace_kind",
        choices=("diurnal", "poisson", "step", "spike", "failures"),
        default="diurnal",
        help="traffic trace family (default: diurnal)",
    )
    p.add_argument(
        "--policy",
        action="append",
        choices=("performance", "powersave", "ondemand", "race-to-idle"),
        metavar="NAME",
        help="governor policy to run; repeatable (default: all four)",
    )
    p.add_argument(
        "--seed", type=int, default=0, help="trace seed (default 0)"
    )
    p.add_argument(
        "--intervals",
        type=int,
        default=72,
        metavar="N",
        help="simulated intervals; the diurnal period is 24 (default 72)",
    )
    p.add_argument(
        "--interval-s",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="length of one interval (default 60)",
    )
    p.add_argument(
        "--request-ops",
        type=int,
        default=200_000,
        metavar="N",
        help="instructions per request (default 200000)",
    )
    p.add_argument(
        "--format",
        choices=("table", "json"),
        default="table",
        help="report format (default: table)",
    )
    p.add_argument("-o", "--output", metavar="FILE")
    p.set_defaults(fn=cmd_fleet, fleet_cmd=None)

    fleet_sub = p.add_subparsers(dest="fleet_cmd", metavar="COMMAND")
    ps = fleet_sub.add_parser(
        "sweep",
        help="parallel (policy, trace, seed) grid sweep; workers reopen "
        "the model zero-copy from the image cache",
    )
    ps.add_argument(
        "--model",
        required=True,
        help="system identifier to compose into the simulated fleet",
    )
    ps.add_argument(
        "--policy",
        metavar="A,B,...",
        help="comma-separated governor policies (default: all four)",
    )
    ps.add_argument(
        "--trace",
        default="diurnal",
        metavar="A,B,...",
        help="comma-separated trace families (default: diurnal)",
    )
    ps.add_argument(
        "--seeds",
        default="0",
        metavar="SPEC",
        help="trace seeds: '1..32', '0,3,7' or a mix (default: 0)",
    )
    ps.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes (default: the CPUs available to this "
        "process)",
    )
    ps.add_argument(
        "--intervals",
        type=int,
        default=24,
        metavar="N",
        help="simulated intervals per cell; the diurnal period is 24 "
        "(default 24)",
    )
    ps.add_argument(
        "--interval-s",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="length of one interval (default 60)",
    )
    ps.add_argument(
        "--request-ops",
        type=int,
        default=200_000,
        metavar="N",
        help="instructions per request (default 200000)",
    )
    ps.add_argument(
        "--engine",
        choices=("memo", "cursor"),
        default="memo",
        help="simulation inner loop: memoized tables or the cursor-walk "
        "reference (default: memo)",
    )
    ps.add_argument(
        "--cache-dir",
        default=".xpdl-cache",
        metavar="DIR",
        help="persistent cache holding the runtime image workers reopen "
        "(default: .xpdl-cache)",
    )
    ps.add_argument(
        "--no-cache",
        action="store_true",
        help="skip the image store; the catalog is built once in-process "
        "and shipped to workers",
    )
    ps.add_argument(
        "--format",
        choices=("table", "json"),
        default="table",
        help="report format (default: table)",
    )
    ps.add_argument("-o", "--output", metavar="FILE")
    ps.add_argument(
        "--stats-out",
        metavar="FILE",
        help="write run-shape stats (wall, jobs, merged counters) as "
        "JSON; kept out of the report so its digest is jobs-invariant",
    )
    ps.set_defaults(fn=cmd_fleet, fleet_cmd="sweep")

    p = sub.add_parser(
        "import",
        help="import a foreign platform model (CESDM YAML/JSON, PDL subset)",
    )
    p.add_argument("file", help="foreign model document to import")
    p.add_argument(
        "--format",
        choices=("auto", "cesdm", "pdl"),
        default="auto",
        help="input format (default: auto-detect from extension/content)",
    )
    p.add_argument(
        "-d",
        "--directory",
        default="imported",
        metavar="DIR",
        help="output directory for descriptor files (default: imported)",
    )
    p.add_argument(
        "--check",
        action="store_true",
        help="round-trip the imported tree through the doctor",
    )
    p.set_defaults(fn=cmd_import)

    p = sub.add_parser(
        "export",
        help="export a descriptor tree as one CESDM YAML/JSON document",
    )
    p.add_argument(
        "directory", help="descriptor tree to export (.xpdl files, recursive)"
    )
    p.add_argument(
        "--format",
        choices=("yaml", "json"),
        default="yaml",
        help="output format (default: yaml)",
    )
    p.add_argument("-o", "--output", metavar="FILE")
    p.set_defaults(fn=cmd_export)

    p = sub.add_parser("query", help="path query over a runtime model file")
    p.add_argument("file")
    p.add_argument("path")
    p.set_defaults(fn=cmd_query)

    p = sub.add_parser("info", help="analysis summary of a runtime model file")
    p.add_argument("file")
    p.set_defaults(fn=cmd_info)

    p = sub.add_parser("benchgen", help="generate microbenchmark drivers")
    p.add_argument("suite")
    p.add_argument("-d", "--directory", default="mb_out")
    p.set_defaults(fn=cmd_benchgen)

    p = sub.add_parser(
        "bootstrap", help="bootstrap energy models on the simulated testbed"
    )
    p.add_argument("identifier")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--noise", type=float, default=0.05, help="meter noise (W)")
    p.add_argument("-r", "--repetitions", type=int, default=5)
    p.set_defaults(fn=cmd_bootstrap)

    p = sub.add_parser("codegen-cpp", help="generate the C++ query API header")
    p.add_argument("-o", "--output")
    p.set_defaults(fn=cmd_codegen_cpp)

    p = sub.add_parser("codegen-py", help="generate the Python query facade")
    p.add_argument("-o", "--output")
    p.set_defaults(fn=cmd_codegen_py)

    p = sub.add_parser("uml", help="PlantUML view of the schema or a model")
    p.add_argument("--model")
    p.set_defaults(fn=cmd_uml)

    p = sub.add_parser("schema", help="export the core schema as XML")
    p.add_argument("-o", "--output")
    p.set_defaults(fn=cmd_schema)

    p = sub.add_parser("discover", help="probe this host and emit descriptors")
    p.add_argument("-d", "--directory", default="discovered")
    p.add_argument("--canned", action="store_true", help="use the canned spec")
    p.set_defaults(fn=cmd_discover)

    p = sub.add_parser("to-pdl", help="flatten a system to PEPPHER PDL")
    p.add_argument("identifier")
    p.set_defaults(fn=cmd_to_pdl)

    p = sub.add_parser("to-json", help="JSON view of a descriptor or system")
    p.add_argument("identifier")
    p.add_argument("-o", "--output")
    p.add_argument(
        "--compose",
        action="store_true",
        help="emit the composed tree rather than the raw descriptor",
    )
    p.set_defaults(fn=cmd_to_json)

    p = sub.add_parser(
        "control", help="show the (inferred or explicit) control hierarchy"
    )
    p.add_argument("identifier")
    p.set_defaults(fn=cmd_control)

    p = sub.add_parser(
        "diff",
        help="semantic diff of two descriptors (identifiers or .xpdl paths)",
    )
    p.add_argument("old")
    p.add_argument("new")
    p.set_defaults(fn=cmd_diff)

    p = sub.add_parser(
        "stats",
        help="run the pipeline and report stage timings, counters, cache",
    )
    p.add_argument(
        "identifiers",
        nargs="*",
        help="descriptors to push through the pipeline "
        "(default: the paper's concrete systems)",
    )
    p.add_argument(
        "--repeat",
        type=int,
        default=2,
        metavar="N",
        help="pipeline rounds; round 2+ should be all cache hits (default 2)",
    )
    p.set_defaults(fn=cmd_stats)

    serve_defaults = ServiceOptions()
    p = sub.add_parser(
        "serve",
        help="run the long-lived model service (HTTP/JSON daemon)",
    )
    p.add_argument(
        "--address",
        default=serve_defaults.address,
        help=f"bind address (default {serve_defaults.address})",
    )
    p.add_argument(
        "--port",
        type=int,
        default=serve_defaults.port,
        help=f"listen port, 0 for ephemeral (default {serve_defaults.port})",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=serve_defaults.workers,
        metavar="N",
        help=f"request worker threads (default {serve_defaults.workers})",
    )
    p.add_argument(
        "--max-model-bytes",
        type=int,
        default=serve_defaults.max_model_bytes,
        metavar="BYTES",
        help="hosted-model LRU byte budget "
        f"(default {serve_defaults.max_model_bytes})",
    )
    p.add_argument(
        "--reload-ttl",
        type=float,
        default=serve_defaults.reload_ttl_s,
        metavar="SECONDS",
        help="seconds a hosted model stays trusted before its source "
        f"fingerprints are re-checked (default {serve_defaults.reload_ttl_s})",
    )
    p.add_argument(
        "--cache-dir",
        default=serve_defaults.cache_dir,
        metavar="DIR",
        help="persistent cache holding stage artifacts and mmap'd runtime "
        f"images (default {serve_defaults.cache_dir})",
    )
    p.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent cache (models are compiled in-process)",
    )
    p.set_defaults(fn=cmd_serve)

    return parser


def _write_trace(observer: Observer, path: str | None) -> bool:
    """Emit the event stream; returns False if the trace file is unwritable."""
    text = observer.to_jsonl()
    if not text:
        return True
    if path is None:
        print(text, file=sys.stderr)
        return True
    try:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    except OSError as exc:
        print(f"xpdl: error: cannot write trace to {path}: {exc}", file=sys.stderr)
        return False
    return True


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    tracing = args.trace or args.trace_out
    observer = Observer() if tracing else NULL_OBSERVER
    try:
        with use_observer(observer):
            code = args.fn(args)
    except XpdlError as exc:
        print(f"xpdl: error: {exc}", file=sys.stderr)
        code = 2
    if tracing and not _write_trace(observer, args.trace_out):
        code = code or 1
    return code


if __name__ == "__main__":
    sys.exit(main())
