"""Consts, params, constraints and the XPDL expression language."""

from .expr import (
    Binary,
    Call,
    Expr,
    Name,
    Num,
    Token,
    Unary,
    names_in,
    parse_expr,
    tokenize,
)
from .eval import BUILTINS, Evaluator, Value, evaluate
from .symbols import ParamDecl, ParamSpace, declared_value

__all__ = [
    "Binary",
    "Call",
    "Expr",
    "Name",
    "Num",
    "Token",
    "Unary",
    "names_in",
    "parse_expr",
    "tokenize",
    "BUILTINS",
    "Evaluator",
    "Value",
    "evaluate",
    "ParamDecl",
    "ParamSpace",
    "declared_value",
]
