"""The XPDL constraint/parameter expression language.

Listings 8–10 of the paper use expressions like
``L1size + shmsize == shmtotalsize`` in ``<constraint expr=...>`` and param
references like ``quantity="num_SM"`` or ``frequency="cfrq"``.  This module
provides the tokenizer, a Pratt parser building a small AST, and a printer.
Evaluation lives in :mod:`repro.params.eval`.

Grammar (C-like precedence):

    expr    := or
    or      := and ('||' and)*
    and     := cmp ('&&' cmp)*
    cmp     := add (('=='|'!='|'<='|'>='|'<'|'>') add)?
    add     := mul (('+'|'-') mul)*
    mul     := unary (('*'|'/'|'%') unary)*
    unary   := ('-'|'!') unary | primary
    primary := NUMBER UNIT? | NAME ('(' args ')')? | '(' expr ')'
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..diagnostics import ConstraintError


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Expr:
    """Base class of expression AST nodes."""


@dataclass(frozen=True, slots=True)
class Num(Expr):
    value: float
    unit: str | None = None

    def __str__(self) -> str:
        # repr round-trips floats exactly; %g would truncate to 6 digits.
        v = repr(self.value)
        return f"{v} {self.unit}" if self.unit else v


@dataclass(frozen=True, slots=True)
class Name(Expr):
    ident: str

    def __str__(self) -> str:
        return self.ident


@dataclass(frozen=True, slots=True)
class Unary(Expr):
    op: str
    operand: Expr

    def __str__(self) -> str:
        return f"{self.op}({self.operand})"


@dataclass(frozen=True, slots=True)
class Binary(Expr):
    op: str
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True, slots=True)
class Call(Expr):
    func: str
    args: tuple[Expr, ...]

    def __str__(self) -> str:
        return f"{self.func}({', '.join(map(str, self.args))})"


# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

_TWO_CHAR_OPS = ("==", "!=", "<=", ">=", "&&", "||")
_ONE_CHAR_OPS = "+-*/%<>!(),"


@dataclass(frozen=True, slots=True)
class Token:
    kind: str  # 'num' | 'name' | 'op' | 'end'
    text: str
    pos: int


def tokenize(text: str) -> Iterator[Token]:
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch in " \t\r\n":
            i += 1
            continue
        if text[i : i + 2] in _TWO_CHAR_OPS:
            yield Token("op", text[i : i + 2], i)
            i += 2
            continue
        if ch in _ONE_CHAR_OPS:
            yield Token("op", ch, i)
            i += 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i + 1
            while j < n and (text[j].isdigit() or text[j] in ".eE" or
                             (text[j] in "+-" and text[j - 1] in "eE")):
                j += 1
            yield Token("num", text[i:j], i)
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] in "_./"):
                j += 1
            yield Token("name", text[i:j], i)
            i = j
            continue
        raise ConstraintError(
            f"unexpected character {ch!r} at position {i} in expression {text!r}"
        )
    yield Token("end", "", n)


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = list(tokenize(text))
        self.i = 0

    def peek(self) -> Token:
        return self.tokens[self.i]

    def next(self) -> Token:
        tok = self.tokens[self.i]
        self.i += 1
        return tok

    def expect_op(self, op: str) -> None:
        tok = self.next()
        if tok.kind != "op" or tok.text != op:
            raise ConstraintError(
                f"expected {op!r} at position {tok.pos} in {self.text!r}, "
                f"found {tok.text!r}"
            )

    # precedence-climbing levels
    def parse(self) -> Expr:
        e = self.parse_or()
        tok = self.peek()
        if tok.kind != "end":
            raise ConstraintError(
                f"trailing input at position {tok.pos} in {self.text!r}: "
                f"{tok.text!r}"
            )
        return e

    def parse_or(self) -> Expr:
        left = self.parse_and()
        while self.peek().kind == "op" and self.peek().text == "||":
            self.next()
            left = Binary("||", left, self.parse_and())
        return left

    def parse_and(self) -> Expr:
        left = self.parse_cmp()
        while self.peek().kind == "op" and self.peek().text == "&&":
            self.next()
            left = Binary("&&", left, self.parse_cmp())
        return left

    def parse_cmp(self) -> Expr:
        left = self.parse_add()
        tok = self.peek()
        if tok.kind == "op" and tok.text in ("==", "!=", "<=", ">=", "<", ">"):
            self.next()
            return Binary(tok.text, left, self.parse_add())
        return left

    def parse_add(self) -> Expr:
        left = self.parse_mul()
        while self.peek().kind == "op" and self.peek().text in "+-":
            op = self.next().text
            left = Binary(op, left, self.parse_mul())
        return left

    def parse_mul(self) -> Expr:
        left = self.parse_unary()
        while self.peek().kind == "op" and self.peek().text in ("*", "/", "%"):
            op = self.next().text
            left = Binary(op, left, self.parse_unary())
        return left

    def parse_unary(self) -> Expr:
        tok = self.peek()
        if tok.kind == "op" and tok.text in ("-", "!"):
            self.next()
            return Unary(tok.text, self.parse_unary())
        return self.parse_primary()

    def parse_primary(self) -> Expr:
        tok = self.next()
        if tok.kind == "num":
            value = float(tok.text)
            unit = None
            nxt = self.peek()
            # A name directly after a number is a unit suffix ("48 KB").
            if nxt.kind == "name":
                unit = self.next().text
            return Num(value, unit)
        if tok.kind == "name":
            if self.peek().kind == "op" and self.peek().text == "(":
                self.next()
                args: list[Expr] = []
                if not (self.peek().kind == "op" and self.peek().text == ")"):
                    args.append(self.parse_or())
                    while self.peek().kind == "op" and self.peek().text == ",":
                        self.next()
                        args.append(self.parse_or())
                self.expect_op(")")
                return Call(tok.text, tuple(args))
            return Name(tok.text)
        if tok.kind == "op" and tok.text == "(":
            e = self.parse_or()
            self.expect_op(")")
            return e
        raise ConstraintError(
            f"unexpected token {tok.text!r} at position {tok.pos} in "
            f"{self.text!r}"
        )


def parse_expr(text: str) -> Expr:
    """Parse an expression string into an AST."""
    return _Parser(text).parse()


def names_in(expr: Expr) -> set[str]:
    """Free identifiers referenced by ``expr``."""
    if isinstance(expr, Name):
        return {expr.ident}
    if isinstance(expr, Unary):
        return names_in(expr.operand)
    if isinstance(expr, Binary):
        return names_in(expr.left) | names_in(expr.right)
    if isinstance(expr, Call):
        out: set[str] = set()
        for a in expr.args:
            out |= names_in(a)
        return out
    return set()
