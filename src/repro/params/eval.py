"""Evaluation of XPDL expressions over parameter environments.

Values are :class:`~repro.units.Quantity` (covers plain numbers as
dimensionless quantities) or ``bool``.  Arithmetic is unit-aware: adding a
size to a frequency is a :class:`ConstraintError`, multiplying sizes by
counts works, and equality compares with a relative tolerance so that
``64 KB == 65536`` holds in data-sheet arithmetic.
"""

from __future__ import annotations

import math
from typing import Callable, Mapping, Union

from ..diagnostics import ConstraintError, UnitError
from ..units import DEFAULT_REGISTRY, Quantity, UnitRegistry
from .expr import Binary, Call, Expr, Name, Num, Unary, parse_expr

Value = Union[Quantity, bool]

#: Built-in functions available in constraint expressions.
Builtin = Callable[..., Value]


def _as_quantity(v: Value, what: str) -> Quantity:
    if isinstance(v, bool):
        raise ConstraintError(f"{what} must be numeric, got boolean")
    return v


def _builtin_min(*args: Value) -> Value:
    qs = [_as_quantity(a, "min() argument") for a in args]
    out = qs[0]
    for q in qs[1:]:
        if q < out:
            out = q
    return out


def _builtin_max(*args: Value) -> Value:
    qs = [_as_quantity(a, "max() argument") for a in args]
    out = qs[0]
    for q in qs[1:]:
        if q > out:
            out = q
    return out


def _builtin_abs(x: Value) -> Value:
    return abs(_as_quantity(x, "abs() argument"))


BUILTINS: dict[str, Builtin] = {
    "min": _builtin_min,
    "max": _builtin_max,
    "abs": _builtin_abs,
}


class Evaluator:
    """Evaluates expression ASTs against an environment of named values."""

    def __init__(
        self,
        env: Mapping[str, Value] | None = None,
        *,
        registry: UnitRegistry = DEFAULT_REGISTRY,
        rel_tol: float = 1e-9,
    ) -> None:
        self.env = dict(env or {})
        self.registry = registry
        self.rel_tol = rel_tol

    # -- public ------------------------------------------------------------
    def eval(self, expr: Expr | str) -> Value:
        if isinstance(expr, str):
            expr = parse_expr(expr)
        return self._eval(expr)

    def eval_bool(self, expr: Expr | str) -> bool:
        v = self.eval(expr)
        if isinstance(v, bool):
            return v
        raise ConstraintError(f"expression is not boolean: {expr}")

    def eval_quantity(self, expr: Expr | str) -> Quantity:
        v = self.eval(expr)
        return _as_quantity(v, "expression")

    def eval_int(self, expr: Expr | str) -> int:
        q = self.eval_quantity(expr)
        if not q.is_dimensionless():
            raise ConstraintError(f"expected a count, got {q}")
        if abs(q.magnitude - round(q.magnitude)) > 1e-9:
            raise ConstraintError(f"expected an integer, got {q.magnitude}")
        return round(q.magnitude)

    # -- internals ----------------------------------------------------------
    def _eval(self, expr: Expr) -> Value:
        if isinstance(expr, Num):
            if expr.unit is None:
                return Quantity.dimensionless(expr.value)
            try:
                return Quantity.of(expr.value, expr.unit, self.registry)
            except UnitError as exc:
                raise ConstraintError(str(exc)) from None
        if isinstance(expr, Name):
            try:
                return self.env[expr.ident]
            except KeyError:
                raise ConstraintError(
                    f"unbound name {expr.ident!r} in expression"
                ) from None
        if isinstance(expr, Unary):
            v = self._eval(expr.operand)
            if expr.op == "-":
                return -_as_quantity(v, "negation operand")
            if expr.op == "!":
                if not isinstance(v, bool):
                    raise ConstraintError("'!' needs a boolean operand")
                return not v
            raise ConstraintError(f"unknown unary operator {expr.op!r}")
        if isinstance(expr, Binary):
            return self._eval_binary(expr)
        if isinstance(expr, Call):
            fn = BUILTINS.get(expr.func)
            if fn is None:
                raise ConstraintError(f"unknown function {expr.func!r}()")
            args = [self._eval(a) for a in expr.args]
            return fn(*args)
        raise ConstraintError(f"cannot evaluate {expr!r}")  # pragma: no cover

    def _eval_binary(self, expr: Binary) -> Value:
        op = expr.op
        if op in ("&&", "||"):
            left = self._eval(expr.left)
            if not isinstance(left, bool):
                raise ConstraintError(f"{op!r} needs boolean operands")
            if op == "&&" and not left:
                return False
            if op == "||" and left:
                return True
            right = self._eval(expr.right)
            if not isinstance(right, bool):
                raise ConstraintError(f"{op!r} needs boolean operands")
            return right

        lv = self._eval(expr.left)
        rv = self._eval(expr.right)
        if op in ("==", "!="):
            eq = self._equal(lv, rv)
            return eq if op == "==" else not eq

        lq = _as_quantity(lv, f"left operand of {op!r}")
        rq = _as_quantity(rv, f"right operand of {op!r}")
        try:
            if op == "+":
                return lq + rq
            if op == "-":
                return lq - rq
            if op == "*":
                return lq * rq
            if op == "/":
                return lq / rq
            if op == "%":
                if not (lq.is_dimensionless() and rq.is_dimensionless()):
                    raise ConstraintError("'%' needs dimensionless operands")
                return Quantity.dimensionless(math.fmod(lq.magnitude, rq.magnitude))
            if op == "<":
                return lq < rq
            if op == "<=":
                return lq <= rq
            if op == ">":
                return lq > rq
            if op == ">=":
                return lq >= rq
        except UnitError as exc:
            raise ConstraintError(f"in {expr}: {exc}") from None
        raise ConstraintError(f"unknown operator {op!r}")  # pragma: no cover

    def _equal(self, a: Value, b: Value) -> bool:
        if isinstance(a, bool) or isinstance(b, bool):
            return a is b if isinstance(a, bool) and isinstance(b, bool) else False
        if a.dimension != b.dimension:
            # Mixed-dimension equality compares magnitudes only when one side
            # is a bare (dimensionless) number, matching data-sheet habits
            # ("sets == 2"); anything else is simply unequal.
            if a.is_dimensionless() or b.is_dimensionless():
                return math.isclose(
                    a.magnitude, b.magnitude, rel_tol=self.rel_tol
                )
            return False
        return math.isclose(a.magnitude, b.magnitude, rel_tol=self.rel_tol)


def evaluate(expr: str, env: Mapping[str, Value] | None = None) -> Value:
    """One-shot convenience evaluation."""
    return Evaluator(env).eval(expr)
