"""Parameter spaces: consts, params, bindings and configuration enumeration.

A :class:`ParamSpace` gathers the ``const``/``param``/``constraints``
declarations of one meta-model (e.g. Listing 8's Nvidia_Kepler), tracks which
params are bound (by subtypes like K20c, Listing 9, or concrete instances,
Listing 10), evaluates constraints, and enumerates the valid configurations
of configurable params — e.g. the three legal L1/shared-memory splits of a
Kepler SM.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Mapping

from ..diagnostics import ConstraintError, UnitError
from ..model import Const, Constraint, Constraints, ModelElement, Param
from ..units import DEFAULT_REGISTRY, Quantity, UnitRegistry
from .eval import Evaluator, Value
from .expr import names_in, parse_expr

#: Metric attributes a const/param may use to carry its value.
_VALUE_METRICS = ("size", "frequency", "power", "energy", "time", "bandwidth")


def declared_value(
    elem: ModelElement, registry: UnitRegistry = DEFAULT_REGISTRY
) -> Quantity | None:
    """Extract the value a ``const``/``param`` element declares, if any.

    Priority: an explicit ``value`` attribute (number, with optional ``unit``
    attribute), then any recognized metric attribute (``size``,
    ``frequency``, ...) with its paired unit, falling back to the plain
    ``unit`` attribute as the paper's listings do
    (``<param name="cfrq" frequency="706" unit="MHz"/>``).
    """
    raw = elem.attrs.get("value")
    if raw is not None and raw.strip() != "?":
        unit = elem.attrs.get("unit")
        try:
            return Quantity.parse(raw, registry, default_unit=unit)
        except UnitError:
            return None  # non-numeric value (string param); no quantity
    for metric in _VALUE_METRICS:
        if metric in elem.attrs:
            mraw = elem.attrs[metric].strip()
            if mraw == "?":
                continue
            try:
                float(mraw)
            except ValueError:
                continue  # itself a param reference
            unit = (
                elem.attrs.get(f"{metric}_unit")
                or elem.attrs.get("unit")
            )
            return Quantity.parse(mraw, registry, default_unit=unit)
    return None


@dataclass
class ParamDecl:
    """One param with its domain and (possibly absent) binding."""

    name: str
    element: Param
    configurable: bool
    value: Quantity | None
    candidates: tuple[Quantity, ...] = ()

    def is_bound(self) -> bool:
        return self.value is not None


@dataclass
class ParamSpace:
    """Consts, params and constraints of one scope."""

    consts: dict[str, Quantity] = field(default_factory=dict)
    params: dict[str, ParamDecl] = field(default_factory=dict)
    constraints: list[str] = field(default_factory=list)
    registry: UnitRegistry = field(default=DEFAULT_REGISTRY, repr=False)

    # -- construction ----------------------------------------------------------
    @staticmethod
    def from_element(
        root: ModelElement, registry: UnitRegistry = DEFAULT_REGISTRY
    ) -> "ParamSpace":
        """Collect declarations in ``root``'s subtree.

        Nested scopes are rare in practice (params sit directly under the
        device); when they do nest, inner declarations shadow outer ones in
        document order.
        """
        space = ParamSpace(registry=registry)
        for elem in root.walk():
            if isinstance(elem, Const) and elem.name:
                v = declared_value(elem, registry)
                if v is not None:
                    space.consts[elem.name] = v
            elif isinstance(elem, Param) and elem.name:
                unit = elem.attrs.get("unit")
                candidates: list[Quantity] = []
                for c in elem.range_values():
                    try:
                        candidates.append(
                            Quantity.parse(c, registry, default_unit=unit)
                        )
                    except UnitError:
                        pass  # range entry referencing another param
                space.params[elem.name] = ParamDecl(
                    name=elem.name,
                    element=elem,
                    configurable=bool(elem.configurable),
                    value=declared_value(elem, registry),
                    candidates=tuple(candidates),
                )
            elif isinstance(elem, (Constraints, Constraint)):
                if isinstance(elem, Constraint):
                    expr = elem.attrs.get("expr")
                    if expr and expr not in space.constraints:
                        space.constraints.append(expr)
        return space

    # -- environment ---------------------------------------------------------------
    def environment(
        self, bindings: Mapping[str, Value] | None = None
    ) -> dict[str, Value]:
        """Evaluation environment: consts + bound params + extra bindings."""
        env: dict[str, Value] = dict(self.consts)
        for p in self.params.values():
            if p.value is not None:
                env[p.name] = p.value
        if bindings:
            env.update(bindings)
        return env

    def bind(self, name: str, value: Quantity) -> None:
        """Bind a param by name; unknown names raise ConstraintError."""
        decl = self.params.get(name)
        if decl is None:
            raise ConstraintError(f"unknown param {name!r}")
        if decl.candidates and not any(
            value.close_to(c, rel=1e-9) for c in decl.candidates
        ):
            allowed = ", ".join(str(c) for c in decl.candidates)
            raise ConstraintError(
                f"value {value} for param {name!r} outside range [{allowed}]"
            )
        decl.value = value

    def unbound(self) -> list[str]:
        return [p.name for p in self.params.values() if p.value is None]

    # -- constraints ---------------------------------------------------------------
    def check_constraints(
        self, bindings: Mapping[str, Value] | None = None
    ) -> list[tuple[str, bool | None]]:
        """Evaluate every constraint; ``None`` marks not-yet-decidable ones."""
        env = self.environment(bindings)
        results: list[tuple[str, bool | None]] = []
        for expr in self.constraints:
            ast = parse_expr(expr)
            if not names_in(ast) <= set(env):
                results.append((expr, None))
                continue
            results.append((expr, Evaluator(env, registry=self.registry).eval_bool(ast)))
        return results

    def violated_constraints(
        self, bindings: Mapping[str, Value] | None = None
    ) -> list[str]:
        return [e for e, ok in self.check_constraints(bindings) if ok is False]

    # -- configuration enumeration ----------------------------------------------------
    def configurations(self, *, max_count: int = 10_000) -> Iterator[dict[str, Quantity]]:
        """All constraint-satisfying assignments of configurable params.

        For the Kepler example this yields exactly the three legal
        (L1size, shmsize) splits.  Unbound non-configurable params are left
        out of the bindings (constraints over them stay undecided and are
        not treated as violations).
        """
        free = [
            p
            for p in self.params.values()
            if p.configurable and p.candidates and p.value is None
        ]
        if not free:
            if not self.violated_constraints():
                yield {}
            return
        domains = [p.candidates for p in free]
        names = [p.name for p in free]
        count = 0
        for combo in itertools.product(*domains):
            count += 1
            if count > max_count:
                raise ConstraintError(
                    f"configuration space exceeds {max_count} combinations"
                )
            bindings = dict(zip(names, combo))
            if not self.violated_constraints(bindings):
                yield bindings

    def configuration_count(self) -> int:
        return sum(1 for _ in self.configurations())
