"""Topological ordering of schema declarations (bases before subclasses)."""

from __future__ import annotations

from ..schema import ElementDecl, Schema


def decls_in_base_order(schema: Schema) -> list[ElementDecl]:
    """Declarations sorted so every base precedes its subclasses.

    Stable: among independent declarations, alphabetical order is kept.
    """
    ordered: list[ElementDecl] = []
    emitted: set[str] = set()

    def emit(decl: ElementDecl) -> None:
        if decl.tag in emitted:
            return
        emitted.add(decl.tag)  # pre-mark: tolerate accidental cycles
        for base in decl.bases:
            base_decl = schema.get(base)
            if base_decl is not None:
                emit(base_decl)
        ordered.append(decl)

    for decl in schema.decls():
        emit(decl)
    return ordered
