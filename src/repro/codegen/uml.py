"""UML view generation.

"Generally, XPDL offers multiple views: XML, UML, and C++ ... These views
only differ in syntax but are semantically equivalent" (Sec. III).  This
generator renders the schema (the metamodel) and concrete model trees as
PlantUML text — the textual UML interchange form, renderable by any PlantUML
toolchain.
"""

from __future__ import annotations

from ..model import ModelElement
from ..schema import AttrKind, Schema
from .naming import class_name, strip_namespace


def schema_to_plantuml(schema: Schema) -> str:
    """The metamodel as a UML class diagram."""
    out: list[str] = ["@startuml", "hide empty members", ""]
    w = out.append
    for decl in schema.decls():
        cname = class_name(decl.tag)
        stereotype = " <<abstract>>" if decl.tag.startswith("xpdl:") else ""
        w(f"class {cname}{stereotype} {{")
        for attr in sorted(decl.attributes.values(), key=lambda a: a.name):
            type_label = attr.kind.value
            if attr.kind is AttrKind.QUANTITY and attr.dimension is not None:
                from ..units import dimension_name

                type_label = dimension_name(attr.dimension)
            marker = " {required}" if attr.required else ""
            w(f"  {attr.name} : {type_label}{marker}")
        w("}")
    w("")
    for decl in schema.decls():
        cname = class_name(decl.tag)
        for base in decl.bases:
            w(f"{class_name(base)} <|-- {cname}")
        for spec in decl.children.values():
            if spec.tag not in schema:
                continue
            hi = "*" if spec.max is None else str(spec.max)
            w(f'{cname} *-- "{spec.min}..{hi}" {class_name(spec.tag)}')
    w("")
    w("@enduml")
    return "\n".join(out) + "\n"


def model_to_plantuml(root: ModelElement, *, max_nodes: int = 400) -> str:
    """A concrete model tree as a UML object diagram.

    Large expanded trees are truncated at ``max_nodes`` with a note, since
    object diagrams of 20 000 cores help nobody.
    """
    out: list[str] = ["@startuml", ""]
    w = out.append
    count = 0
    truncated = False
    names: dict[int, str] = {}

    def obj_name(elem: ModelElement) -> str:
        return f"o{names[id(elem)]}"

    def emit(elem: ModelElement) -> None:
        nonlocal count, truncated
        if count >= max_nodes:
            truncated = True
            return
        names[id(elem)] = str(count)
        count += 1
        title = elem.label().replace('"', "'")
        w(f'object "{title}" as {obj_name(elem)} <<{strip_namespace(elem.kind)}>>')
        shown = 0
        for k, v in elem.plain_attrs().items():
            if shown >= 4:
                break
            w(f"{obj_name(elem)} : {k} = {v}")
            shown += 1
        for child in elem.children:
            emit(child)
            if id(child) in names:
                w(f"{obj_name(elem)} *-- {obj_name(child)}")

    emit(root)
    if truncated:
        w(f"note top : truncated at {max_nodes} objects")
    w("")
    w("@enduml")
    return "\n".join(out) + "\n"
