"""Code generation and alternative views: C++ API, UML, Python facade."""

from .naming import (
    children_member,
    class_name,
    getter_name,
    member_name,
    sanitize,
    setter_name,
    strip_namespace,
)
from .cpp import api_surface, generate_cpp_header
from .uml import model_to_plantuml, schema_to_plantuml
from .pyapi import generate_python_api, materialize_python_api
from .jsonview import (
    model_from_json,
    model_from_json_dict,
    model_to_json,
    model_to_json_dict,
)

__all__ = [
    "children_member",
    "class_name",
    "getter_name",
    "member_name",
    "sanitize",
    "setter_name",
    "strip_namespace",
    "api_surface",
    "generate_cpp_header",
    "model_to_plantuml",
    "schema_to_plantuml",
    "generate_python_api",
    "model_from_json",
    "model_from_json_dict",
    "model_to_json",
    "model_to_json_dict",
    "materialize_python_api",
]
