"""Python query-API generation — the executable twin of the C++ generator.

Generates Python source for a typed facade over
:class:`~repro.runtime.query.ModelHandle`: one class per schema element
declaration with a typed property per attribute.  The generated module is
plain importable source; :func:`materialize_python_api` also exec-compiles
it so callers can use the classes without touching the filesystem —
demonstrating the paper's schema->API generation end to end in a language
that runs here.
"""

from __future__ import annotations

from types import ModuleType

from ..schema import AttrKind, Schema
from .order import decls_in_base_order
from .naming import class_name, sanitize

_PY_CONVERTERS: dict[AttrKind, str] = {
    AttrKind.STRING: "_identity",
    AttrKind.NAME: "_identity",
    AttrKind.REF: "_identity",
    AttrKind.EXPR: "_identity",
    AttrKind.ENUM: "_identity",
    AttrKind.LIST: "_to_list",
    AttrKind.INT: "_to_int",
    AttrKind.FLOAT: "_to_float",
    AttrKind.BOOL: "_to_bool",
    AttrKind.QUANTITY: "_to_quantity",
}


def generate_python_api(schema: Schema, *, module_doc: str | None = None) -> str:
    """Generate the facade module source."""
    out: list[str] = []
    w = out.append
    w('"""%s"""' % (module_doc or f"Generated XPDL query facade ({schema.name} {schema.version}). Do not edit."))
    w("")
    w("from repro.runtime import ModelHandle")
    w("from repro.units import read_metric")
    w("")
    w("")
    w("def _identity(v):")
    w("    return v")
    w("")
    w("")
    w("def _to_list(v):")
    w("    return [p.strip() for p in v.split(',') if p.strip()] if v else []")
    w("")
    w("")
    w("def _to_int(v):")
    w("    return int(v) if v is not None else None")
    w("")
    w("")
    w("def _to_float(v):")
    w("    return float(v) if v is not None else None")
    w("")
    w("")
    w("def _to_bool(v):")
    w("    return v.strip().lower() in ('true', '1', 'yes') if v is not None else None")
    w("")
    w("")
    w("class _Facade:")
    w('    """Base wrapper pairing a schema class with a runtime handle."""')
    w("")
    w("    KIND = None")
    w("")
    w("    def __init__(self, handle: ModelHandle):")
    w("        self.handle = handle")
    w("")
    w("    def __repr__(self):")
    w("        return f'{type(self).__name__}({self.handle.label()})'")
    w("")
    w("")
    facade_names: dict[str, str] = {}
    for decl in decls_in_base_order(schema):
        cname = class_name(decl.tag)
        facade_names[decl.tag] = cname
        bases = [class_name(b) for b in decl.bases] or ["_Facade"]
        w(f"class {cname}({', '.join(bases)}):")
        if decl.doc:
            w(f'    """{decl.doc}"""')
        w("")
        w(f"    KIND = {decl.tag!r}")
        w("")
        attrs = sorted(decl.attributes.values(), key=lambda a: a.name)
        if not attrs:
            w("    pass")
            w("")
            w("")
            continue
        for attr in attrs:
            prop = sanitize(attr.name)
            w("    @property")
            w(f"    def {prop}(self):")
            if attr.doc:
                w(f'        """{attr.doc}"""')
            if attr.kind is AttrKind.QUANTITY:
                w(
                    f"        return read_metric(self.handle.attrs(), {attr.name!r})"
                )
            else:
                conv = _PY_CONVERTERS[attr.kind]
                w(
                    f"        return {conv}(self.handle.attr({attr.name!r}))"
                )
            w("")
        w("")
    w("#: Element kind -> facade class, for wrapping arbitrary handles.")
    w("FACADES = {")
    for tag, cname in facade_names.items():
        if tag.startswith("xpdl:"):
            continue
        w(f"    {tag!r}: {cname},")
    w("}")
    w("")
    w("")
    w("def wrap(handle: ModelHandle):")
    w('    """Wrap a runtime handle in its generated facade class."""')
    w("    cls = FACADES.get(handle.kind, _Facade)")
    w("    return cls(handle)")
    w("")
    return "\n".join(out)


def materialize_python_api(schema: Schema) -> ModuleType:
    """Exec-compile the generated facade into a live module object."""
    source = generate_python_api(schema)
    module = ModuleType(f"xpdl_api_{sanitize(schema.name)}")
    module.__dict__["__source__"] = source
    exec(compile(source, f"<generated {schema.name}>", "exec"), module.__dict__)
    return module
