"""JSON view of XPDL models.

Sec. V compares against HPP-DL, whose "syntax is based on JSON rather than
XML"; the paper's own position is that XPDL's views "only differ in syntax
but are semantically equivalent, and are (basically) convertible to each
other".  This module adds the JSON view: a nested-document form of any
model tree (distinct from the flat runtime-IR JSON), round-trip convertible
with the XML view.

Mapping: an element becomes an object with ``"kind"``, its attributes
verbatim (strings, as in the XML), and ``"children"`` (omitted when empty).
"""

from __future__ import annotations

import json

from ..diagnostics import XpdlError
from ..model import ELEMENT_REGISTRY, ModelElement


def model_to_json_dict(model: ModelElement) -> dict:
    """Nested-document form of a model tree."""
    doc: dict = {"kind": model.kind}
    if model.attrs:
        doc["attrs"] = dict(model.attrs)
    if model.children:
        doc["children"] = [model_to_json_dict(c) for c in model.children]
    return doc


def model_to_json(model: ModelElement, *, indent: int = 2) -> str:
    return json.dumps(model_to_json_dict(model), indent=indent)


def model_from_json_dict(doc: dict) -> ModelElement:
    if not isinstance(doc, dict) or "kind" not in doc:
        raise XpdlError("JSON model document needs a 'kind' field")
    elem = ELEMENT_REGISTRY.create(doc["kind"], dict(doc.get("attrs") or {}))
    for child in doc.get("children") or []:
        elem.add(model_from_json_dict(child))
    return elem


def model_from_json(text: str) -> ModelElement:
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise XpdlError(f"malformed JSON model: {exc}") from None
    return model_from_json_dict(doc)
