"""Name derivation shared by the code generators.

The paper: "C++ class names are derived from name attributes, getter and
setter names are based on the declared attribute names etc."  These helpers
fix the derivation rules so every generator (C++, UML, Python) agrees.
"""

from __future__ import annotations

import re

_IDENT_CLEAN = re.compile(r"[^0-9A-Za-z_]")


def strip_namespace(tag: str) -> str:
    """Drop the ``xpdl:`` pseudo-namespace of abstract base declarations."""
    return tag.split(":", 1)[1] if ":" in tag else tag


def class_name(tag: str) -> str:
    """Element tag -> class name: ``power_state_machine`` -> ``PowerStateMachine``."""
    bare = strip_namespace(tag)
    parts = re.split(r"[_\-.]", bare)
    return "".join(p[:1].upper() + p[1:] for p in parts if p)


def member_name(attr: str) -> str:
    """Attribute -> member variable: ``static_power`` -> ``static_power_``."""
    return sanitize(attr) + "_"


def getter_name(attr: str) -> str:
    """Attribute -> getter: ``id`` -> ``get_id`` (paper's m.get_id())."""
    return "get_" + sanitize(attr)


def setter_name(attr: str) -> str:
    return "set_" + sanitize(attr)


def sanitize(name: str) -> str:
    """Make an attribute name a legal C/C++/Python identifier."""
    out = _IDENT_CLEAN.sub("_", name)
    if out and out[0].isdigit():
        out = "_" + out
    return out


def children_member(tag: str) -> str:
    """Child element kind -> containment member: ``cache`` -> ``caches_``."""
    bare = sanitize(strip_namespace(tag))
    if bare.endswith("s"):
        return bare + "_list_"
    return bare + "s_"
