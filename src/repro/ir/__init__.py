"""Light-weight runtime model IR and its binary/JSON file formats."""

from .format import MAGIC, IRModel, IRNode

__all__ = ["MAGIC", "IRModel", "IRNode"]
