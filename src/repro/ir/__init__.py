"""Light-weight runtime model IR and its binary/JSON file formats."""

from .format import MAGIC, MAGIC_V1, IRModel, IRNode
from .image import XirImageWarning, build_image, read_section_table, verify_image

__all__ = [
    "MAGIC",
    "MAGIC_V1",
    "IRModel",
    "IRNode",
    "XirImageWarning",
    "build_image",
    "read_section_table",
    "verify_image",
]
