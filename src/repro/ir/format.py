"""The light-weight runtime model representation and its file formats.

Sec. IV: the processing tool "builds a light-weight run-time data structure
for the composed model that is finally written into a file"; the application
loads it at startup through the query API.

The IR flattens the composed tree into arrays — a string pool plus one
record per node (kind, parent index, attribute name/value index pairs) — so
loading is a single linear scan with no XML parsing.  Three encodings are
understood:

* **v2 binary** (magic ``XPDLRT02``, :mod:`repro.ir.image`) — the default
  written format: crc-checked, offset-addressed sections carrying the
  records *and* the compiled :class:`~repro.runtime.index.IRIndex`
  artifacts.  :meth:`IRModel.load` mmaps it and views every table in
  place; nodes, strings and analyses materialize lazily on first touch,
  so opening a model costs O(file open), not O(model).
* **v1 binary** (magic ``XPDLRT01``) — the legacy record-only format;
  still read (decoded eagerly, index rebuilt live) and still writable
  via :meth:`IRModel.to_bytes_v1` for downgrade interchange.
* **JSON** (debugging, interchange).

All formats round-trip exactly.  A v2 image whose *index* sections fail
their checksums degrades to a live index rebuild with a loud
:class:`~repro.ir.image.XirImageWarning` — corruption is never answered
with wrong query results; core-section damage raises
:class:`~repro.diagnostics.QueryError`.
"""

from __future__ import annotations

import array
import json
import mmap
import struct
import sys
import warnings
from dataclasses import dataclass, field

from ..diagnostics import QueryError
from ..model import ELEMENT_REGISTRY, ModelElement
from ..obs import get_observer
from .image import IRImage, XirImageWarning, build_image

MAGIC = b"XPDLRT02"
MAGIC_V1 = b"XPDLRT01"
_NO_PARENT = 0xFFFFFFFF

#: JSON documents are accepted under either format tag — the JSON node
#: schema never changed across the binary version bump.
_JSON_FORMATS = (MAGIC.decode(), MAGIC_V1.decode())

#: The bulk-decode fast path reads the record region as one u32 array;
#: only usable when the platform's array("I") is exactly 4 bytes wide.
_U32_ARRAY_OK = array.array("I").itemsize == 4

_MISS = object()


@dataclass(slots=True)
class IRNode:
    """One flattened model element."""

    index: int
    kind: str
    parent: int | None
    attrs: dict[str, str]
    children: list[int] = field(default_factory=list)

    @property
    def ident(self) -> str | None:
        return self.attrs.get("id")

    @property
    def name(self) -> str | None:
        return self.attrs.get("name")

    def label(self) -> str:
        return self.name or self.ident or f"<{self.kind}#{self.index}>"


class _LazyNodes:
    """Node sequence over a mapped :class:`~repro.ir.image.IRImage`.

    Behaves like the eager ``list[IRNode]`` (len/index/slice/iterate) but
    builds each :class:`IRNode` from the record sections on first touch
    and interns it — untouched models stay as mapped pages."""

    __slots__ = ("_image", "_memo")

    def __init__(self, image: IRImage) -> None:
        self._image = image
        self._memo: list[IRNode | None] = [None] * image.n

    def __len__(self) -> int:
        return len(self._memo)

    def __iter__(self):
        for i in range(len(self._memo)):
            yield self[i]

    def __getitem__(self, i):
        if isinstance(i, slice):
            return [self[j] for j in range(*i.indices(len(self._memo)))]
        if i < 0:
            i += len(self._memo)
        node = self._memo[i]
        if node is None:
            node = self._memo[i] = self._materialize(i)
        return node

    def _materialize(self, i: int) -> IRNode:
        im = self._image
        pool = im.pool
        pairs = im.attr_pairs
        lo, hi = im.attr_off[i], im.attr_off[i + 1]
        attrs: dict[str, str] = {}
        for j in range(lo, hi):
            attrs[pool[pairs[2 * j]]] = pool[pairs[2 * j + 1]]
        parent = im.parents[i]
        return IRNode(
            i,
            pool[im.kind_ids[i]],
            None if parent == _NO_PARENT else parent,
            attrs,
            list(im.child_idx[im.child_off[i] : im.child_off[i + 1]]),
        )


class IRModel:
    """The flattened runtime model (eager node list or mapped image)."""

    def __init__(self, nodes, meta: dict[str, str] | None = None):
        self.nodes = nodes
        self.meta = dict(meta or {})
        self._by_id: dict[str, int] | None = None
        self._index = None  # lazily built IRIndex (the IR is read-only)
        self._image: IRImage | None = None
        self._id_memo: dict[str, int | None] | None = None
        # Set when this model came from a persisted source *without* a
        # usable index (v1 file, degraded v2 image): the live IRIndex
        # build then counts as an ``index.rebuilds`` — the startup tax
        # the image format exists to avoid.
        self._load_origin: str | None = None

    # -- construction -------------------------------------------------------
    @staticmethod
    def from_model(
        root: ModelElement, meta: dict[str, str] | None = None
    ) -> "IRModel":
        nodes: list[IRNode] = []

        def rec(elem: ModelElement, parent: int | None) -> int:
            idx = len(nodes)
            node = IRNode(idx, elem.kind, parent, dict(elem.attrs))
            nodes.append(node)
            for child in elem.children:
                cidx = rec(child, idx)
                node.children.append(cidx)
            return idx

        rec(root, None)
        obs = get_observer()
        if obs.enabled:
            obs.count("ir.emits")
            obs.count("ir.nodes", len(nodes))
        return IRModel(nodes, meta)

    def to_model(self) -> ModelElement:
        """Rebuild a model object tree (for tooling; the runtime query API
        works on the IR directly)."""
        if not len(self.nodes):
            raise QueryError("empty IR model")
        elems: list[ModelElement] = []
        for node in self.nodes:
            elems.append(ELEMENT_REGISTRY.create(node.kind, node.attrs))
        for node in self.nodes:
            for cidx in node.children:
                elems[node.index].add(elems[cidx])
        return elems[0]

    # -- access ----------------------------------------------------------------
    @property
    def root(self) -> IRNode:
        return self.nodes[0]

    def __len__(self) -> int:
        return len(self.nodes)

    def node(self, index: int) -> IRNode:
        return self.nodes[index]

    def children_of(self, node: IRNode) -> list[IRNode]:
        return [self.nodes[i] for i in node.children]

    def parent_of(self, node: IRNode) -> IRNode | None:
        return self.nodes[node.parent] if node.parent is not None else None

    def by_id(self, ident: str) -> IRNode | None:
        image = self._image
        if image is not None and image.index_ok:
            # Serve single lookups straight from the mapped IDTB section
            # (memoized per id, hits and misses alike) — no full table.
            memo = self._id_memo
            if memo is None:
                memo = self._id_memo = {}
            idx = memo.get(ident, _MISS)
            if idx is _MISS:
                idx = memo[ident] = image.id_index(ident)
            return self.nodes[idx] if idx is not None else None
        idx = self._id_table().get(ident)
        return self.nodes[idx] if idx is not None else None

    def _id_table(self) -> dict[str, int]:
        """The id → node-index table (first occurrence wins).

        Duplicate ids are resolved first-wins, but *loudly*: every
        shadowed occurrence bumps the ``ir.id_shadowed`` counter and
        leaves a mark naming the id and both nodes, so silent aliasing in
        composed models is visible in ``xpdl stats`` / traces.
        """
        if self._by_id is None:
            table: dict[str, int] = {}
            obs = get_observer()
            for n in self.nodes:
                nid = n.attrs.get("id")
                if nid is None:
                    continue
                kept = table.setdefault(nid, n.index)
                if kept != n.index:
                    obs.count("ir.id_shadowed")
                    if obs.enabled:
                        obs.mark(
                            "ir.id_shadowed",
                            id=nid,
                            kept_index=kept,
                            kept_kind=self.nodes[kept].kind,
                            shadowed_index=n.index,
                            shadowed_kind=n.kind,
                        )
            self._by_id = table
        return self._by_id

    def index(self):
        """The compiled query index (built once; the IR never mutates, so
        it is never invalidated).  Image-backed models serve the index
        straight from the mapped sections — zero construction."""
        if self._index is None:
            from ..runtime.index import IRIndex  # late: avoids an import cycle

            self._index = IRIndex(self)
        return self._index

    def approx_size_bytes(self) -> int:
        """Rough resident footprint of this IR plus its compiled index.

        Used by the model service's LRU byte accounting: exactness does
        not matter (eviction compares models against each other and a
        budget), but the estimate must be monotone in model size and
        cheap.  Image-backed models are dominated by the mapped file
        plus whatever lazily materialized; ~3x the file size bounds a
        fully-touched model without walking it.  For eager models the
        constants approximate CPython object headers for an
        :class:`IRNode` (+ its interned handle and index rows): ~200
        bytes of fixed overhead per node plus ~100 per attribute pair
        plus the string payloads themselves.
        """
        if self._image is not None:
            return 4096 + 3 * self._image.nbytes
        total = 4096  # model object + tables overhead
        for node in self.nodes:
            total += 200 + 8 * len(node.children) + len(node.kind)
            for k, v in node.attrs.items():
                total += 100 + len(k) + len(v)
        for k, v in self.meta.items():
            total += 100 + len(k) + len(v)
        return total

    def walk(self, start: IRNode | None = None):
        """Pre-order traversal from ``start`` (default: root)."""
        stack = [start.index if start else 0]
        while stack:
            idx = stack.pop()
            node = self.nodes[idx]
            yield node
            stack.extend(reversed(node.children))

    # -- pickling (stage caches ship IRModels across processes) -------------
    def __getstate__(self):
        if self._image is not None:
            # An image-backed model pickles as its serialized form: views
            # into an mmap cannot cross process boundaries, the bytes can.
            return {"image": self.to_bytes()}
        return {"nodes": self.nodes, "meta": self.meta}

    def __setstate__(self, state):
        blob = state.get("image")
        if blob is not None:
            other = IRModel.from_bytes(blob)
            self.__dict__.update(other.__dict__)
        else:
            self.__init__(state["nodes"], state["meta"])

    # -- binary encoding -----------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize as a v2 image (records + index sections).

        Deterministic for a given model.  A model opened from an intact
        image re-serializes as the identical bytes without touching a
        single lazy structure."""
        if self._image is not None and self._image.index_ok:
            blob = bytes(self._image.buffer)
        else:
            blob = build_image(self)
        get_observer().count("ir.bytes", len(blob))
        return blob

    def to_bytes_v1(self) -> bytes:
        """Serialize in the legacy record-only ``XPDLRT01`` format."""
        pool: dict[str, int] = {}
        pool_list: list[str] = []

        def intern(s: str) -> int:
            idx = pool.get(s)
            if idx is None:
                idx = len(pool_list)
                pool[s] = idx
                pool_list.append(s)
            return idx

        records: list[bytes] = []
        for node in self.nodes:
            kind_idx = intern(node.kind)
            parent = _NO_PARENT if node.parent is None else node.parent
            attr_items = list(node.attrs.items())
            rec = [struct.pack("<III", kind_idx, parent, len(attr_items))]
            for k, v in attr_items:
                rec.append(struct.pack("<II", intern(k), intern(v)))
            records.append(b"".join(rec))

        meta_items = list(self.meta.items())
        out = [MAGIC_V1]
        out.append(struct.pack("<I", len(meta_items)))
        for k, v in meta_items:
            kb, vb = k.encode("utf-8"), v.encode("utf-8")
            out.append(struct.pack("<II", len(kb), len(vb)))
            out.append(kb)
            out.append(vb)
        out.append(struct.pack("<I", len(pool_list)))
        for s in pool_list:
            b = s.encode("utf-8")
            out.append(struct.pack("<I", len(b)))
            out.append(b)
        out.append(struct.pack("<I", len(records)))
        out.extend(records)
        blob = b"".join(out)
        get_observer().count("ir.bytes", len(blob))
        return blob

    @staticmethod
    def from_bytes(data) -> "IRModel":
        """Decode either binary format; v2 buffers are viewed in place.

        ``data`` may be bytes or any buffer (an ``mmap`` in particular);
        a v2 model keeps views into it, so the buffer must outlive the
        model — which reference counting guarantees."""
        view = memoryview(data)
        head = bytes(view[:8])
        if head == MAGIC:
            return IRModel._from_image(data)
        if head == MAGIC_V1:
            return IRModel._from_bytes_v1(view)
        raise QueryError("not an XPDL runtime model file (bad magic)")

    @staticmethod
    def _from_image(data) -> "IRModel":
        image = IRImage(data)  # raises QueryError on core damage
        model = IRModel(_LazyNodes(image), image.meta)
        model._image = image
        obs = get_observer()
        if not image.index_ok:
            model._load_origin = f"degraded image ({image.index_problem})"
            warnings.warn(
                "XPDL v2 runtime image has unusable index sections "
                f"({image.index_problem}); rebuilding the index live — "
                "re-run the toolchain (or `xpdl cache clear`) to restore "
                "zero-copy startup",
                XirImageWarning,
                stacklevel=3,
            )
            if obs.enabled:
                obs.mark("index.degraded", problem=image.index_problem)
        obs.count("ir.loads")
        return model

    @staticmethod
    def _from_bytes_v1(view: memoryview) -> "IRModel":
        off = 8

        def read_u32() -> int:
            nonlocal off
            (v,) = struct.unpack_from("<I", view, off)
            off += 4
            return v

        def read_str(n: int) -> str:
            nonlocal off
            s = bytes(view[off : off + n]).decode("utf-8")
            off += n
            return s

        meta: dict[str, str] = {}
        for _ in range(read_u32()):
            klen = read_u32()
            vlen = read_u32()
            k = read_str(klen)
            v = read_str(vlen)
            meta[k] = v
        pool: list[str] = []
        for _ in range(read_u32()):
            pool.append(read_str(read_u32()))

        # Fast path: past the string pool the file is nothing but u32
        # words (count, then per node kind/parent/nattrs + attr pairs), so
        # decode the whole tail with one array copy instead of a
        # struct.unpack_from call per word — xpdl_init sits on an
        # application's startup path.
        nodes: list[IRNode] = []
        if _U32_ARRAY_OK:
            tail = bytes(view[off:])
            if len(tail) % 4:
                raise QueryError("truncated XPDL runtime model file")
            words = array.array("I")
            words.frombytes(tail)
            if sys.byteorder == "big":  # file format is little-endian
                words.byteswap()
            w = 1
            for idx in range(words[0]):
                kind_idx, parent, nattrs = words[w], words[w + 1], words[w + 2]
                w += 3
                attrs: dict[str, str] = {}
                for _ in range(nattrs):
                    attrs[pool[words[w]]] = pool[words[w + 1]]
                    w += 2
                nodes.append(
                    IRNode(
                        idx,
                        pool[kind_idx],
                        None if parent == _NO_PARENT else parent,
                        attrs,
                    )
                )
        else:  # pragma: no cover - exotic array("I") width
            for idx in range(read_u32()):
                kind_idx = read_u32()
                parent = read_u32()
                nattrs = read_u32()
                attrs = {}
                for _ in range(nattrs):
                    k = pool[read_u32()]
                    v = pool[read_u32()]
                    attrs[k] = v
                nodes.append(
                    IRNode(
                        idx,
                        pool[kind_idx],
                        None if parent == _NO_PARENT else parent,
                        attrs,
                    )
                )
        for node in nodes:
            if node.parent is not None:
                nodes[node.parent].children.append(node.index)
        get_observer().count("ir.loads")
        model = IRModel(nodes, meta)
        model._load_origin = "v1 format (no persisted index)"
        return model

    # -- JSON encoding -----------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(
            {
                "format": MAGIC.decode(),
                "meta": self.meta,
                "nodes": [
                    {
                        "kind": n.kind,
                        "parent": n.parent,
                        "attrs": n.attrs,
                    }
                    for n in self.nodes
                ],
            },
            indent=1,
        )

    @staticmethod
    def from_json(text: str) -> "IRModel":
        data = json.loads(text)
        if data.get("format") not in _JSON_FORMATS:
            raise QueryError("not an XPDL runtime model JSON document")
        nodes = [
            IRNode(i, d["kind"], d["parent"], dict(d["attrs"]))
            for i, d in enumerate(data["nodes"])
        ]
        for node in nodes:
            if node.parent is not None:
                nodes[node.parent].children.append(node.index)
        return IRModel(nodes, dict(data.get("meta", {})))

    # -- files --------------------------------------------------------------------------
    def save(self, path: str) -> None:
        if path.endswith(".json"):
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(self.to_json())
        else:
            with open(path, "wb") as fh:
                fh.write(self.to_bytes())

    @staticmethod
    def load(path: str) -> "IRModel":
        if path.endswith(".json"):
            with open(path, "r", encoding="utf-8") as fh:
                return IRModel.from_json(fh.read())
        with open(path, "rb") as fh:
            try:
                buf = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
            except (ValueError, OSError):  # empty file, exotic filesystems
                buf = fh.read()
        return IRModel.from_bytes(buf)
