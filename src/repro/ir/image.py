"""The ``XPDLRT02`` zero-copy runtime image: IR records *plus* index.

PR 5 made hot-path queries cheap by compiling an
:class:`~repro.runtime.index.IRIndex` at ``xpdl_init`` — but the build
itself is O(model), paid again by every process that opens the same
file.  This module removes that startup tax: the index artifacts (pre-
order numbering, subtree sizes, kind buckets, attribute node-set
indexes, id and sorted-string tables) are serialized *next to* the
record region as aligned, offset-addressed sections, so a reader can
``mmap`` the file and view every table in place as u32 arrays — no
parsing, no allocation proportional to model size.

File layout (all integers little-endian u32 unless noted)::

    0   8   magic  b"XPDLRT02"
    8   4   total file length in bytes
    12  4   section count
    16  4   crc32 of the section table bytes
    20  4   reserved (zero)
    24  16*count  section table: (tag, offset, length, crc32) per section
    ...      sections, 8-byte aligned, zero padding between

Section tags are four ASCII bytes.  **Core** sections describe the
model itself and are validated strictly — any defect raises
:class:`~repro.diagnostics.QueryError`:

    ``META``  k/v string pairs (u32 count, then len-prefixed UTF-8)
    ``SPOL``  string pool: u32 count, u32 offsets[count+1], UTF-8 blob
    ``RECS``  u32 n, kind strid[n], parent[n] (0xFFFFFFFF = none),
              attr offset[n+1] (in pairs)
    ``ATTR``  (name strid, value strid) u32 pairs, grouped per node
    ``CHLD``  u32 child offset[n+1], child node indexes

**Index** sections are derived acceleration structures; a checksum or
shape defect there degrades the open to a live index rebuild (with a
:class:`XirImageWarning` and the ``index.rebuilds`` counter) — never a
wrong answer:

    ``SSRT``  strids sorted by UTF-8 bytes (string -> strid bisection)
    ``PREO``  pre-order position per node (0xFFFFFFFF = unreachable)
    ``SIZE``  subtree size per node (self included)
    ``DOCO``  node index per document position
    ``KNDB``  u32 nkinds, (kind strid, start, count) sorted by strid,
              then all doc positions, then all node indexes
    ``AHAS``  u32 nnames, (name strid, start, count) sorted by strid,
              then node indexes (each run sorted ascending)
    ``AEQV``  u32 npairs, (name strid, value strid, start, count)
              sorted by (name, value) strid, then node indexes
    ``IDTB``  u32 nids, (id strid, node index) sorted by id strid

Every per-section crc32 is verified at open (C speed, one pass over the
file), so a bit flip is caught before any structure is trusted.
"""

from __future__ import annotations

import array
import struct
import sys
import zlib
from typing import Any

from ..diagnostics import QueryError

MAGIC_V2 = b"XPDLRT02"

_NO_PARENT = 0xFFFFFFFF
_UNREACHABLE = 0xFFFFFFFF
_HEADER_LEN = 24
_TABLE_ENTRY = struct.Struct("<IIII")
_ALIGN = 8

#: Sanity bound on the section count — the format defines 13 sections;
#: a header claiming more is corruption, not a bigger model.
_MAX_SECTIONS = 64

CORE_SECTIONS = ("META", "SPOL", "RECS", "ATTR", "CHLD")
INDEX_SECTIONS = (
    "SSRT",
    "PREO",
    "SIZE",
    "DOCO",
    "KNDB",
    "AHAS",
    "AEQV",
    "IDTB",
)


class XirImageWarning(UserWarning):
    """A v2 runtime image was opened but its index sections were unusable.

    The model still loads (core sections are intact) and every query
    stays correct — the index is just rebuilt live, costing the O(model)
    startup the image was supposed to avoid.  Loud by design."""


def _tag_u32(tag: str) -> int:
    return int.from_bytes(tag.encode("ascii"), "little")


def _tag_str(value: int) -> str:
    return value.to_bytes(4, "little").decode("ascii", "replace")


def _crc(data) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


def _u32_bytes(values) -> bytes:
    """Little-endian u32 encoding of a sequence of ints."""
    a = array.array("I", values)
    if sys.byteorder == "big":  # pragma: no cover - BE platforms
        a.byteswap()
    return a.tobytes()


if sys.byteorder == "little":

    def _u32_view(mv: memoryview):
        """Zero-copy u32 view over a (4-aligned-length) byte view."""
        return mv.cast("I")

else:  # pragma: no cover - BE platforms copy + byteswap instead

    def _u32_view(mv: memoryview):
        a = array.array("I")
        a.frombytes(bytes(mv))
        a.byteswap()
        return a


class LazyStrings:
    """The string pool, decoded one string at a time on first touch."""

    __slots__ = ("_offsets", "_blob", "_memo")

    def __init__(self, offsets, blob: memoryview) -> None:
        self._offsets = offsets
        self._blob = blob
        self._memo: list[str | None] = [None] * (len(offsets) - 1)

    def __len__(self) -> int:
        return len(self._memo)

    def __getitem__(self, sid: int) -> str:
        s = self._memo[sid]
        if s is None:
            off = self._offsets
            s = self._memo[sid] = str(
                self._blob[off[sid] : off[sid + 1]], "utf-8"
            )
        return s

    def raw(self, sid: int) -> bytes:
        """The UTF-8 bytes of one pool string (no decode, no memo)."""
        off = self._offsets
        return bytes(self._blob[off[sid] : off[sid + 1]])


class IRImage:
    """A parsed (and checksum-verified) v2 runtime image.

    Holds zero-copy u32 views over the underlying buffer; consumers
    (:class:`~repro.ir.IRModel` lazy nodes,
    :class:`~repro.runtime.index.IRIndex`) index into these views
    directly.  ``index_ok`` is False when any index section failed
    verification — the core model is still usable, the index must be
    rebuilt live.
    """

    __slots__ = (
        "buffer",
        "nbytes",
        "meta",
        "n",
        "kind_ids",
        "parents",
        "attr_off",
        "attr_pairs",
        "child_off",
        "child_idx",
        "pool",
        "index_ok",
        "index_problem",
        "ssrt",
        "pre",
        "size",
        "doc",
        "buckets",
        "_ahas_hdr",
        "_ahas_data",
        "_aeqv",
        "_idtb",
        "_str_ids",
        "_id_memo",
    )

    # The u32 table views are memoryviews on LE hosts, array.array on BE
    # (byteswapped copies), and None while the index is degraded — typed
    # as Any so both backends satisfy one declaration.
    ssrt: Any
    pre: Any
    size: Any
    doc: Any
    _ahas_data: Any
    _aeqv: Any
    _idtb: Any

    def __init__(self, buffer) -> None:
        self.buffer = buffer
        mv = memoryview(buffer)
        self.nbytes = len(mv)
        raw, bad = self._read_sections(mv)

        def core(tag: str) -> memoryview:
            sec = raw.get(tag)
            if sec is None:
                raise QueryError(
                    "corrupt XPDL v2 runtime image: core section "
                    f"{tag} {bad.get(tag, 'missing')}"
                )
            return sec

        self.meta = self._parse_meta(core("META"))
        self.pool = self._parse_pool(core("SPOL"))
        self._parse_records(core("RECS"), core("ATTR"), core("CHLD"))

        self.index_ok = True
        self.index_problem: str | None = None
        self.ssrt = self.pre = self.size = self.doc = None
        self.buckets: dict[str, tuple] = {}
        self._ahas_hdr: dict[str, tuple[int, int]] = {}
        self._ahas_data = None
        self._aeqv = None
        self._idtb = None
        self._str_ids: dict[str, int | None] = {}
        self._id_memo: dict[str, int | None] = {}
        try:
            self._parse_index(raw, bad)
        except _IndexDefect as defect:
            self._degrade(str(defect))

    # -- parsing -----------------------------------------------------------
    @staticmethod
    def _read_sections(
        mv: memoryview,
    ) -> tuple[dict[str, memoryview], dict[str, str]]:
        """Split the buffer into crc-verified sections.

        Header/table defects raise; per-section defects are recorded in
        the second mapping so callers can decide (strict for core,
        degrade for index sections).
        """
        if len(mv) < _HEADER_LEN:
            raise QueryError("truncated XPDL runtime model file")
        if bytes(mv[:8]) != MAGIC_V2:
            raise QueryError("not an XPDL runtime model file (bad magic)")
        total, count, table_crc, _reserved = struct.unpack_from("<IIII", mv, 8)
        if total != len(mv):
            raise QueryError(
                "truncated XPDL v2 runtime image: file is "
                f"{len(mv)} bytes, header claims {total}"
            )
        if count > _MAX_SECTIONS:
            raise QueryError(
                "corrupt XPDL v2 runtime image: implausible section count"
            )
        table_end = _HEADER_LEN + _TABLE_ENTRY.size * count
        if table_end > len(mv):
            raise QueryError("truncated XPDL v2 runtime image (section table)")
        table = mv[_HEADER_LEN:table_end]
        if _crc(table) != table_crc:
            raise QueryError(
                "corrupt XPDL v2 runtime image: section table checksum "
                "mismatch"
            )
        raw: dict[str, memoryview] = {}
        bad: dict[str, str] = {}
        for k in range(count):
            tag_u32, off, length, crc = _TABLE_ENTRY.unpack_from(
                table, _TABLE_ENTRY.size * k
            )
            tag = _tag_str(tag_u32)
            if off % _ALIGN or off + length > len(mv) or off < table_end:
                bad[tag] = "out of bounds"
                continue
            sec = mv[off : off + length]
            if _crc(sec) != crc:
                bad[tag] = "checksum mismatch"
                continue
            raw[tag] = sec
        return raw, bad

    @staticmethod
    def _parse_meta(sec: memoryview) -> dict[str, str]:
        try:
            (count,) = struct.unpack_from("<I", sec, 0)
            off = 4
            meta: dict[str, str] = {}
            for _ in range(count):
                klen, vlen = struct.unpack_from("<II", sec, off)
                off += 8
                k = str(sec[off : off + klen], "utf-8")
                off += klen
                v = str(sec[off : off + vlen], "utf-8")
                off += vlen
                meta[k] = v
            return meta
        except (struct.error, UnicodeDecodeError, ValueError) as exc:
            raise QueryError(
                f"corrupt XPDL v2 runtime image: bad META section ({exc})"
            ) from None

    @staticmethod
    def _parse_pool(sec: memoryview) -> LazyStrings:
        if len(sec) < 8:  # count word + at least one offset
            raise QueryError(
                "corrupt XPDL v2 runtime image: bad SPOL section"
            )
        (count,) = struct.unpack_from("<I", sec, 0)
        offsets_end = 4 + 4 * (count + 1)
        if offsets_end > len(sec):
            raise QueryError(
                "corrupt XPDL v2 runtime image: SPOL offsets out of bounds"
            )
        offsets = _u32_view(sec[4:offsets_end])
        blob = sec[offsets_end:]
        if count and offsets[count] > len(blob):
            raise QueryError(
                "corrupt XPDL v2 runtime image: SPOL blob out of bounds"
            )
        return LazyStrings(offsets, blob)

    def _parse_records(
        self, recs: memoryview, attr: memoryview, chld: memoryview
    ) -> None:
        if len(recs) % 4 or len(attr) % 4 or len(chld) % 4:
            raise QueryError(
                "corrupt XPDL v2 runtime image: misaligned record section"
            )
        words = _u32_view(recs)
        if not len(words):
            raise QueryError(
                "corrupt XPDL v2 runtime image: empty RECS section"
            )
        n = words[0]
        if len(words) != 3 * n + 2:
            raise QueryError(
                "corrupt XPDL v2 runtime image: RECS section size mismatch"
            )
        self.n = n
        self.kind_ids = words[1 : 1 + n]
        self.parents = words[1 + n : 1 + 2 * n]
        self.attr_off = words[1 + 2 * n :]
        self.attr_pairs = _u32_view(attr)
        if len(self.attr_pairs) != 2 * self.attr_off[n]:
            raise QueryError(
                "corrupt XPDL v2 runtime image: ATTR section size mismatch"
            )
        cwords = _u32_view(chld)
        if len(cwords) < n + 1:
            raise QueryError(
                "corrupt XPDL v2 runtime image: CHLD section too short"
            )
        self.child_off = cwords[: n + 1]
        self.child_idx = cwords[n + 1 :]
        if len(self.child_idx) != self.child_off[n]:
            raise QueryError(
                "corrupt XPDL v2 runtime image: CHLD section size mismatch"
            )

    def _parse_index(
        self, raw: dict[str, memoryview], bad: dict[str, str]
    ) -> None:
        n = self.n
        secs: dict[str, object] = {}
        for tag in INDEX_SECTIONS:
            sec = raw.get(tag)
            if sec is None:
                raise _IndexDefect(
                    f"index section {tag} {bad.get(tag, 'missing')}"
                )
            if len(sec) % 4:
                raise _IndexDefect(f"index section {tag} misaligned")
            secs[tag] = _u32_view(sec)

        ssrt = secs["SSRT"]
        if len(ssrt) != len(self.pool):
            raise _IndexDefect("SSRT size mismatch")
        pre, size, doc = secs["PREO"], secs["SIZE"], secs["DOCO"]
        if len(pre) != n or len(size) != n or len(doc) > n:
            raise _IndexDefect("PREO/SIZE/DOCO size mismatch")

        kndb = secs["KNDB"]
        if not len(kndb):
            raise _IndexDefect("empty KNDB section")
        nkinds = kndb[0]
        if len(kndb) < 1 + 3 * nkinds:
            raise _IndexDefect("KNDB header out of bounds")
        total = (len(kndb) - 1 - 3 * nkinds) // 2
        if len(kndb) != 1 + 3 * nkinds + 2 * total:
            raise _IndexDefect("KNDB section size mismatch")
        pos_base = 1 + 3 * nkinds
        idx_base = pos_base + total
        buckets: dict[str, tuple] = {}
        pool_len = len(self.pool)
        for k in range(nkinds):
            strid, start, cnt = (
                kndb[1 + 3 * k],
                kndb[2 + 3 * k],
                kndb[3 + 3 * k],
            )
            if strid >= pool_len or start + cnt > total:
                raise _IndexDefect("KNDB bucket out of bounds")
            buckets[self.pool[strid]] = (
                kndb[pos_base + start : pos_base + start + cnt],
                kndb[idx_base + start : idx_base + start + cnt],
            )

        ahas = secs["AHAS"]
        if not len(ahas):
            raise _IndexDefect("empty AHAS section")
        nnames = ahas[0]
        if len(ahas) < 1 + 3 * nnames:
            raise _IndexDefect("AHAS header out of bounds")
        atotal = len(ahas) - 1 - 3 * nnames
        ahas_hdr: dict[str, tuple[int, int]] = {}
        for k in range(nnames):
            strid, start, cnt = (
                ahas[1 + 3 * k],
                ahas[2 + 3 * k],
                ahas[3 + 3 * k],
            )
            if strid >= pool_len or start + cnt > atotal:
                raise _IndexDefect("AHAS run out of bounds")
            ahas_hdr[self.pool[strid]] = (start, cnt)

        aeqv = secs["AEQV"]
        if not len(aeqv):
            raise _IndexDefect("empty AEQV section")
        npairs = aeqv[0]
        if len(aeqv) < 1 + 4 * npairs:
            raise _IndexDefect("AEQV header out of bounds")

        idtb = secs["IDTB"]
        if not len(idtb) or len(idtb) != 1 + 2 * idtb[0]:
            raise _IndexDefect("IDTB section size mismatch")

        self.ssrt = ssrt
        self.pre = pre
        self.size = size
        self.doc = doc
        self.buckets = buckets
        self._ahas_hdr = ahas_hdr
        self._ahas_data = ahas[1 + 3 * nnames :]
        self._aeqv = aeqv
        self._idtb = idtb

    def _degrade(self, problem: str) -> None:
        self.index_ok = False
        self.index_problem = problem
        self.ssrt = self.pre = self.size = self.doc = None
        self.buckets = {}
        self._ahas_hdr = {}
        self._ahas_data = None
        self._aeqv = None
        self._idtb = None

    # -- index lookups ------------------------------------------------------
    def find_str(self, s: str) -> int | None:
        """The pool strid of ``s``, via byte-wise bisection over SSRT."""
        memo = self._str_ids
        if s in memo:
            return memo[s]
        want = s.encode("utf-8")
        ssrt, pool = self.ssrt, self.pool
        lo, hi = 0, len(ssrt)
        while lo < hi:
            mid = (lo + hi) // 2
            if pool.raw(ssrt[mid]) < want:
                lo = mid + 1
            else:
                hi = mid
        sid: int | None = None
        if lo < len(ssrt) and pool.raw(ssrt[lo]) == want:
            sid = ssrt[lo]
        memo[s] = sid
        return sid

    def attr_has_set(self, name: str) -> frozenset[int]:
        """Node indexes carrying attribute ``name`` (materialized once)."""
        run = self._ahas_hdr.get(name)
        if run is None:
            return frozenset()
        start, cnt = run
        return frozenset(self._ahas_data[start : start + cnt])

    def attr_eq_set(self, name: str, value: str) -> frozenset[int]:
        """Node indexes with ``name == value`` (lazy: bisect the sorted
        pair headers, then materialize one run)."""
        nsid = self.find_str(name)
        vsid = self.find_str(value) if nsid is not None else None
        if nsid is None or vsid is None:
            return frozenset()
        a = self._aeqv
        npairs = a[0]
        lo, hi = 0, npairs
        while lo < hi:
            mid = (lo + hi) // 2
            base = 1 + 4 * mid
            if (a[base], a[base + 1]) < (nsid, vsid):
                lo = mid + 1
            else:
                hi = mid
        if lo >= npairs:
            return frozenset()
        base = 1 + 4 * lo
        if a[base] != nsid or a[base + 1] != vsid:
            return frozenset()
        start, cnt = a[base + 2], a[base + 3]
        data_base = 1 + 4 * npairs
        return frozenset(a[data_base + start : data_base + start + cnt])

    def id_index(self, ident: str) -> int | None:
        """Node index registered for id ``ident`` (first occurrence)."""
        memo = self._id_memo
        if ident in memo:
            return memo[ident]
        out: int | None = None
        sid = self.find_str(ident)
        if sid is not None:
            t = self._idtb
            nids = t[0]
            lo, hi = 0, nids
            while lo < hi:
                mid = (lo + hi) // 2
                if t[1 + 2 * mid] < sid:
                    lo = mid + 1
                else:
                    hi = mid
            if lo < nids and t[1 + 2 * lo] == sid:
                out = t[2 + 2 * lo]
        memo[ident] = out
        return out


class _IndexDefect(Exception):
    """Internal: an index section failed verification (degrade, don't die)."""


# ---------------------------------------------------------------------------
# writer
# ---------------------------------------------------------------------------


def build_image(ir, *, with_index: bool = True) -> bytes:
    """Serialize ``ir`` as a v2 image (records + index sections).

    Deterministic: the same model always produces identical bytes
    (interning follows document order, index runs are sorted), so images
    are safely content-addressed.  ``with_index=False`` writes only the
    core sections — the bench harness uses it to measure what the
    persisted index is worth.
    """
    nodes = ir.nodes
    n = len(nodes)
    pool: dict[str, int] = {}
    pool_list: list[str] = []

    def intern(s: str) -> int:
        idx = pool.get(s)
        if idx is None:
            idx = pool[s] = len(pool_list)
            pool_list.append(s)
        return idx

    kind_ids: list[int] = []
    parents: list[int] = []
    attr_off: list[int] = [0]
    pairs: list[int] = []
    child_off: list[int] = [0]
    child_idx: list[int] = []
    for node in nodes:
        kind_ids.append(intern(node.kind))
        parents.append(_NO_PARENT if node.parent is None else node.parent)
        for k, v in node.attrs.items():
            pairs.append(intern(k))
            pairs.append(intern(v))
        attr_off.append(len(pairs) // 2)
        child_idx.extend(node.children)
        child_off.append(len(child_idx))

    meta_parts = [struct.pack("<I", len(ir.meta))]
    for k, v in ir.meta.items():
        kb, vb = k.encode("utf-8"), v.encode("utf-8")
        meta_parts.append(struct.pack("<II", len(kb), len(vb)))
        meta_parts.append(kb)
        meta_parts.append(vb)

    blobs = [s.encode("utf-8") for s in pool_list]
    offsets = [0]
    for b in blobs:
        offsets.append(offsets[-1] + len(b))
    spol = b"".join(
        [struct.pack("<I", len(blobs)), _u32_bytes(offsets)] + blobs
    )

    sections: list[tuple[str, bytes]] = [
        ("META", b"".join(meta_parts)),
        ("SPOL", spol),
        ("RECS", _u32_bytes([n] + kind_ids + parents + attr_off)),
        ("ATTR", _u32_bytes(pairs)),
        ("CHLD", _u32_bytes(child_off + child_idx)),
    ]
    if with_index:
        sections.extend(
            _index_sections(ir, pool, pool_list, blobs, kind_ids)
        )
    return _assemble(sections)


def _index_sections(ir, pool, pool_list, blobs, kind_ids):
    """The derived-index sections, computed from a freshly built (or
    reused eager) :class:`~repro.runtime.index.IRIndex`."""
    from ..runtime.index import IRIndex  # late: avoids an import cycle

    index = getattr(ir, "_index", None)
    if index is None or getattr(index, "_image", None) is not None:
        index = IRIndex(ir, use_image=False)

    ssrt = sorted(range(len(pool_list)), key=blobs.__getitem__)
    pre = [_UNREACHABLE if p < 0 else p for p in index.pre]

    kndb = [len(index._buckets)]
    positions: list[int] = []
    indexes: list[int] = []
    for kind in sorted(index._buckets, key=pool.__getitem__):
        pos, idx = index._buckets[kind]
        kndb.extend((pool[kind], len(positions), len(pos)))
        positions.extend(pos)
        indexes.extend(idx)
    kndb.extend(positions)
    kndb.extend(indexes)

    ahas = [len(index._attr_has)]
    ahas_data: list[int] = []
    for name in sorted(index._attr_has, key=pool.__getitem__):
        members = sorted(index._attr_has[name])
        ahas.extend((pool[name], len(ahas_data), len(members)))
        ahas_data.extend(members)
    ahas.extend(ahas_data)

    aeqv = [len(index._attr_eq)]
    aeqv_data: list[int] = []
    for name, value in sorted(
        index._attr_eq, key=lambda kv: (pool[kv[0]], pool[kv[1]])
    ):
        members = sorted(index._attr_eq[(name, value)])
        aeqv.extend((pool[name], pool[value], len(aeqv_data), len(members)))
        aeqv_data.extend(members)
    aeqv.extend(aeqv_data)

    ids: dict[int, int] = {}
    for node in ir.nodes:
        nid = node.attrs.get("id")
        if nid is not None:
            ids.setdefault(pool[nid], node.index)
    idtb = [len(ids)]
    for sid in sorted(ids):
        idtb.extend((sid, ids[sid]))

    return [
        ("SSRT", _u32_bytes(ssrt)),
        ("PREO", _u32_bytes(pre)),
        ("SIZE", _u32_bytes(index.size)),
        ("DOCO", _u32_bytes(index.doc)),
        ("KNDB", _u32_bytes(kndb)),
        ("AHAS", _u32_bytes(ahas)),
        ("AEQV", _u32_bytes(aeqv)),
        ("IDTB", _u32_bytes(idtb)),
    ]


def _assemble(sections: list[tuple[str, bytes]]) -> bytes:
    """Lay sections out 8-byte aligned and prepend header + crc table."""
    table_end = _HEADER_LEN + _TABLE_ENTRY.size * len(sections)
    out: list[bytes] = []
    entries: list[bytes] = []
    offset = table_end
    for tag, payload in sections:
        pad = -offset % _ALIGN
        if pad:
            out.append(b"\x00" * pad)
            offset += pad
        entries.append(
            _TABLE_ENTRY.pack(
                _tag_u32(tag), offset, len(payload), _crc(payload)
            )
        )
        out.append(payload)
        offset += len(payload)
    table = b"".join(entries)
    header = MAGIC_V2 + struct.pack(
        "<IIII", offset, len(sections), _crc(table), 0
    )
    return b"".join([header, table] + out)


# ---------------------------------------------------------------------------
# tooling helpers
# ---------------------------------------------------------------------------


def read_section_table(data) -> list[tuple[str, int, int, int]]:
    """``(tag, offset, length, crc32)`` rows of a v2 image (tooling/tests).

    Validates only the header and table checksum — corrupt *sections*
    are still listed, which is exactly what corruption tooling needs."""
    mv = memoryview(data)
    if len(mv) < _HEADER_LEN or bytes(mv[:8]) != MAGIC_V2:
        raise QueryError("not an XPDL v2 runtime image")
    _total, count, table_crc, _reserved = struct.unpack_from("<IIII", mv, 8)
    table_end = _HEADER_LEN + _TABLE_ENTRY.size * count
    if count > _MAX_SECTIONS or table_end > len(mv):
        raise QueryError("corrupt XPDL v2 runtime image header")
    table = mv[_HEADER_LEN:table_end]
    if _crc(table) != table_crc:
        raise QueryError("corrupt XPDL v2 runtime image: table checksum")
    return [
        (
            _tag_str(row[0]),
            row[1],
            row[2],
            row[3],
        )
        for row in _TABLE_ENTRY.iter_unpack(bytes(table))
    ]


def verify_image(data) -> list[str]:
    """Every defect of a serialized image, as human-readable problems.

    Empty list == fully usable, index included.  Used by
    ``xpdl cache verify`` and the CI cold-start smoke job."""
    try:
        image = IRImage(data)
    except QueryError as exc:
        return [str(exc)]
    if not image.index_ok:
        return [f"index degraded: {image.index_problem}"]
    return []
