"""Microbenchmark driver code generation.

Sec. IV: the toolchain "generates microbenchmarking driver code" that is
built and run by the suite's ``command`` script (Listing 15's
``mbscript.sh``) to populate unknown energy entries.

We generate exactly that artifact set: one C driver per instruction (an
unrolled measurement loop between power-meter markers, plus a baseline loop
for subtraction) and the build/run shell script.  The generated C is valid,
self-contained C99; on the simulated testbed the *semantics* of the driver
(instruction counts, loop structure) are interpreted by the runner instead
of being compiled — the generated text is the contract, golden-tested to
stay stable.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..diagnostics import XpdlError
from ..model import Microbenchmark, Microbenchmarks, ModelElement

#: Instruction-name -> C statement bodies for the measurement kernel.  The
#: volatile accumulator defeats dead-code elimination at -O0/-O2 alike.
_KERNELS: dict[str, str] = {
    "fmul": "acc = acc * 1.0000000001;",
    "fadd": "acc = acc + 1.0e-9;",
    "divsd": "acc = acc / 1.0000000001;",
    "mov": "tmp = (long)acc; acc = (double)tmp;",
    "add": "itmp = itmp + 1;",
    "mul": "itmp = itmp * 3 + 1;",
    "load": "dtmp = buffer[i & MASK];",
    "store": "buffer[i & MASK] = dtmp;",
    "nop": "__asm__ __volatile__(\"nop\");",
}

_DEFAULT_KERNEL = "acc = acc + 1.0e-9; /* generic ALU op */"


@dataclass(frozen=True, slots=True)
class GeneratedDriver:
    """One generated microbenchmark source file."""

    benchmark_id: str
    instruction: str
    filename: str
    source: str
    unroll: int
    iterations: int

    @property
    def instructions_per_run(self) -> int:
        return self.unroll * self.iterations


def generate_driver(
    benchmark_id: str,
    instruction: str,
    *,
    filename: str | None = None,
    unroll: int = 64,
    iterations: int = 1_000_000,
) -> GeneratedDriver:
    """Generate the C driver measuring one instruction."""
    kernel = _KERNELS.get(instruction, _DEFAULT_KERNEL)
    body = "\n".join(f"        {kernel}" for _ in range(unroll))
    fname = filename or f"{instruction}.c"
    source = f"""\
/* Auto-generated XPDL microbenchmark driver.
 * benchmark: {benchmark_id}   instruction: {instruction}
 * protocol: measure loop energy with the external meter between the
 * MB_MARK_START/STOP markers, subtract the baseline loop, divide by
 * {unroll} x {iterations} executed instructions.
 */
#include <stdio.h>
#include <stdlib.h>

#define UNROLL {unroll}
#define ITERATIONS {iterations}L
#define MASK 4095

extern void MB_MARK_START(const char *tag);
extern void MB_MARK_STOP(const char *tag);

static volatile double acc = 1.0;
static volatile long itmp = 1;
static volatile double dtmp = 1.0;
static volatile double buffer[MASK + 1];

static void measured_loop(void) {{
    long i;
    MB_MARK_START("{benchmark_id}:{instruction}");
    for (i = 0; i < ITERATIONS; ++i) {{
{body}
    }}
    MB_MARK_STOP("{benchmark_id}:{instruction}");
}}

static void baseline_loop(void) {{
    long i;
    MB_MARK_START("{benchmark_id}:baseline");
    for (i = 0; i < ITERATIONS; ++i) {{
        /* empty: loop overhead only */
    }}
    MB_MARK_STOP("{benchmark_id}:baseline");
}}

int main(void) {{
    baseline_loop();
    measured_loop();
    printf("%s %ld\\n", "{instruction}", (long)UNROLL * ITERATIONS);
    return EXIT_SUCCESS;
}}
"""
    return GeneratedDriver(
        benchmark_id=benchmark_id,
        instruction=instruction,
        filename=fname,
        source=source,
        unroll=unroll,
        iterations=iterations,
    )


def generate_suite(
    suite: ModelElement,
    *,
    unroll: int = 64,
    iterations: int = 1_000_000,
) -> list[GeneratedDriver]:
    """Generate drivers for every benchmark in a ``<microbenchmarks>`` suite."""
    if not isinstance(suite, Microbenchmarks):
        raise XpdlError(f"expected <microbenchmarks>, got <{suite.kind}>")
    drivers: list[GeneratedDriver] = []
    for mb in suite.find_all(Microbenchmark):
        instruction = mb.attrs.get("type")
        ident = mb.ident or mb.name
        if not instruction or not ident:
            continue
        drivers.append(
            generate_driver(
                ident,
                instruction,
                filename=mb.attrs.get("file"),
                unroll=unroll,
                iterations=iterations,
            )
        )
    return drivers


def generate_build_script(
    suite: ModelElement, drivers: list[GeneratedDriver]
) -> str:
    """Generate the suite's build-and-run script (the paper's mbscript.sh)."""
    if not isinstance(suite, Microbenchmarks):
        raise XpdlError(f"expected <microbenchmarks>, got <{suite.kind}>")
    lines = [
        "#!/bin/sh",
        "# Auto-generated XPDL microbenchmark build/run script.",
        f"# suite: {suite.ident or suite.name}",
        "set -e",
        'CC="${CC:-cc}"',
        'OUT="${1:-./mb_results.txt}"',
        ': > "$OUT"',
    ]
    by_id = {
        (mb.ident or mb.name): mb for mb in suite.find_all(Microbenchmark)
    }
    for d in drivers:
        mb = by_id.get(d.benchmark_id)
        cflags = (mb.attrs.get("cflags") if mb else "") or ""
        lflags = (mb.attrs.get("lflags") if mb else "") or ""
        exe = d.filename.rsplit(".", 1)[0]
        lines.append(
            f'"$CC" {cflags} -o {exe} {d.filename} mb_markers.c {lflags}'.rstrip()
        )
        lines.append(f'./{exe} >> "$OUT"')
    lines.append('echo "microbenchmark suite complete: $OUT"')
    return "\n".join(lines) + "\n"


def generate_marker_library() -> str:
    """The tiny marker library the drivers link against."""
    return """\
/* Auto-generated XPDL microbenchmark marker library.
 * On real hardware these markers toggle the external power meter's
 * capture window (e.g. over GPIO or a serial command); stdout lines let
 * a host-side script align meter logs with benchmark sections.
 */
#include <stdio.h>

void MB_MARK_START(const char *tag) { printf("MB-START %s\\n", tag); }
void MB_MARK_STOP(const char *tag)  { printf("MB-STOP %s\\n", tag); }
"""
