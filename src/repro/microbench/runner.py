"""Execution of microbenchmarks on the simulated testbed.

Implements the measurement protocol the generated drivers encode: run the
baseline loop, run the measured loop, observe both with the power meter,
subtract, divide by the executed instruction count.  Repetitions average
meter noise; the derived per-instruction energy is what deployment-time
bootstrapping writes back into the model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..units import ENERGY, Quantity
from ..simhw import PowerMeter, SimMachine
from .codegen import GeneratedDriver

#: The loop counter/branch overhead of the driver loop, charged per
#: iteration: one add + one (predicted) branch, modeled as 'add'-class work
#: when the ISA has it, else skipped.
_LOOP_OVERHEAD_INSTS = ("add",)


@dataclass
class BenchmarkRun:
    """One derived energy value with its measurement statistics."""

    benchmark_id: str
    instruction: str
    frequency: Quantity
    energy_per_instruction: Quantity
    repetitions: int
    samples_j: np.ndarray = field(repr=False, default_factory=lambda: np.empty(0))

    @property
    def std_j(self) -> float:
        return float(np.std(self.samples_j)) if self.samples_j.size else 0.0

    def relative_spread(self) -> float:
        mean = self.energy_per_instruction.magnitude
        return self.std_j / mean if mean else 0.0


class MicrobenchRunner:
    """Runs generated drivers against a simulated machine + meter."""

    def __init__(
        self,
        machine: SimMachine,
        meter: PowerMeter | None = None,
        *,
        repetitions: int = 5,
    ) -> None:
        self.machine = machine
        self.meter = meter or PowerMeter()
        self.repetitions = repetitions

    # -- measurement protocol ------------------------------------------------
    def _loop_counts(
        self, driver: GeneratedDriver, *, baseline: bool
    ) -> dict[str, int]:
        counts: dict[str, int] = {}
        overhead = next(
            (i for i in _LOOP_OVERHEAD_INSTS if i in self.machine.truth),
            None,
        )
        if overhead is not None:
            counts[overhead] = driver.iterations
        if not baseline:
            counts[driver.instruction] = (
                counts.get(driver.instruction, 0) + driver.instructions_per_run
            )
        return counts

    def measure_once(self, driver: GeneratedDriver) -> float:
        """One idle-referenced energy-per-instruction sample (joules).

        Wall-meter protocol: dynamic power is the *difference* between the
        loaded loop's mean power and idle power; per-iteration loop overhead
        is removed the same way via the baseline (empty) loop.  Power
        differences integrate over the loop's own duration, so meter noise
        averages out with run length instead of swamping the signal.
        """
        loaded_run = self.machine.run_stream(
            self._loop_counts(driver, baseline=False)
        )
        base_counts = self._loop_counts(driver, baseline=True)
        base_run = (
            self.machine.run_stream(base_counts) if base_counts else None
        )
        idle_run = self.machine.run_idle(loaded_run.duration)
        loaded = self.meter.observe(loaded_run)
        idle = self.meter.observe(idle_run)
        p_idle = idle.mean_power.magnitude
        energy = (loaded.mean_power.magnitude - p_idle) * (
            loaded.duration.magnitude
        )
        if base_run is not None:
            base = self.meter.observe(base_run)
            energy -= (base.mean_power.magnitude - p_idle) * (
                base.duration.magnitude
            )
        return energy / driver.instructions_per_run

    def run(
        self,
        driver: GeneratedDriver,
        *,
        frequency: Quantity | None = None,
        repetitions: int | None = None,
    ) -> BenchmarkRun:
        """Derive the instruction's energy at the given (or current) frequency."""
        if frequency is not None:
            self.machine.set_frequency(frequency)
        reps = repetitions or self.repetitions
        samples = np.array([self.measure_once(driver) for _ in range(reps)])
        energy = float(np.mean(samples))
        return BenchmarkRun(
            benchmark_id=driver.benchmark_id,
            instruction=driver.instruction,
            frequency=self.machine.frequency,
            energy_per_instruction=Quantity(max(energy, 0.0), ENERGY),
            repetitions=reps,
            samples_j=samples,
        )

    def run_frequency_sweep(
        self,
        driver: GeneratedDriver,
        frequencies: list[Quantity] | None = None,
        *,
        repetitions: int | None = None,
    ) -> list[BenchmarkRun]:
        """Measure the instruction at each available DVFS level."""
        freqs = frequencies or self.machine.available_frequencies()
        return [
            self.run(driver, frequency=f, repetitions=repetitions)
            for f in freqs
        ]
