"""Microbenchmarking: driver codegen, simulated execution, bootstrapping."""

from .codegen import (
    GeneratedDriver,
    generate_build_script,
    generate_driver,
    generate_marker_library,
    generate_suite,
)
from .runner import BenchmarkRun, MicrobenchRunner
from .bootstrap import (
    BootstrapItem,
    BootstrapReport,
    bootstrap_instruction_model,
    plan_bootstrap,
)

__all__ = [
    "GeneratedDriver",
    "generate_build_script",
    "generate_driver",
    "generate_marker_library",
    "generate_suite",
    "BenchmarkRun",
    "MicrobenchRunner",
    "BootstrapItem",
    "BootstrapReport",
    "bootstrap_instruction_model",
    "plan_bootstrap",
]
