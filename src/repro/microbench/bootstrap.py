"""Deployment-time bootstrapping of energy models.

The toolchain step of Sec. IV: find every instruction whose energy is the
``?`` placeholder, generate its driver, run it on the (simulated) machine,
and write the derived value back into the model — "the processor's energy
model can be bootstrapped at system deployment time automatically by running
the microbenchmarks to derive the unspecified entries" (Sec. III-C).

"On request, microbenchmarking can also be applied to instructions with
given energy cost and will then override the specified values" —
``force=True``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..diagnostics import DiagnosticSink, XpdlError
from ..model import Inst, Instructions, Microbenchmark, Microbenchmarks, ModelElement
from ..obs import get_observer
from ..power import InstructionEnergyModel
from ..simhw import PowerMeter, SimMachine
from ..units import Quantity
from .codegen import GeneratedDriver, generate_driver
from .runner import BenchmarkRun, MicrobenchRunner


@dataclass
class BootstrapItem:
    """One instruction scheduled for benchmarking."""

    instruction: str
    benchmark_id: str
    inst_element: Inst
    reason: str  # 'placeholder' | 'forced'


@dataclass
class BootstrapReport:
    """Everything a bootstrap pass did."""

    items: list[BootstrapItem] = field(default_factory=list)
    runs: list[BenchmarkRun] = field(default_factory=list)
    updated: int = 0
    skipped: list[str] = field(default_factory=list)

    def derived_energies(self) -> dict[str, Quantity]:
        out: dict[str, Quantity] = {}
        for r in self.runs:
            out[r.instruction] = r.energy_per_instruction
        return out


def plan_bootstrap(
    instrs: ModelElement,
    suite: ModelElement | None = None,
    *,
    force: bool = False,
) -> list[BootstrapItem]:
    """Decide which instructions need benchmarking.

    ``suite`` supplies benchmark ids; instructions referencing a benchmark
    absent from the suite are planned with their own name as id (the runner
    can generate a driver for any instruction).
    """
    if not isinstance(instrs, Instructions):
        raise XpdlError(f"expected <instructions>, got <{instrs.kind}>")
    suite_ids: set[str] = set()
    if suite is not None and isinstance(suite, Microbenchmarks):
        suite_ids = {
            mb.ident or "" for mb in suite.find_all(Microbenchmark)
        }
    items: list[BootstrapItem] = []
    for inst in instrs.find_all(Inst):
        if not inst.name:
            continue
        if inst.needs_benchmarking():
            reason = "placeholder"
        elif force:
            reason = "forced"
        else:
            continue
        mb_ref = inst.attrs.get("mb")
        bench_id = mb_ref if (mb_ref and (not suite_ids or mb_ref in suite_ids)) else inst.name
        items.append(
            BootstrapItem(
                instruction=inst.name,
                benchmark_id=bench_id,
                inst_element=inst,
                reason=reason,
            )
        )
    return items


def bootstrap_instruction_model(
    instrs: ModelElement,
    machine: SimMachine,
    *,
    suite: ModelElement | None = None,
    meter: PowerMeter | None = None,
    repetitions: int = 5,
    force: bool = False,
    frequency_sweep: bool = False,
    write_back: bool = True,
    sink: DiagnosticSink | None = None,
) -> tuple[InstructionEnergyModel, BootstrapReport]:
    """Run the full bootstrap loop for one instruction set.

    Returns the populated :class:`InstructionEnergyModel` plus a report.
    With ``write_back`` the derived energies replace the ``?`` placeholders
    in the descriptor tree itself (what the paper's toolchain persists).
    """
    sink = sink if sink is not None else DiagnosticSink()
    model = InstructionEnergyModel.from_element(instrs)
    runner = MicrobenchRunner(machine, meter, repetitions=repetitions)
    report = BootstrapReport(items=plan_bootstrap(instrs, suite, force=force))
    for item in report.items:
        if item.instruction not in machine.truth:
            report.skipped.append(item.instruction)
            sink.warning(
                "XPDL0700",
                f"machine {machine.name!r} cannot execute "
                f"{item.instruction!r}; benchmark skipped",
                item.inst_element.span,
            )
            continue
        driver: GeneratedDriver = generate_driver(
            item.benchmark_id, item.instruction
        )
        if frequency_sweep and machine.psm is not None:
            runs = runner.run_frequency_sweep(driver)
            for r in runs:
                model.set_energy(
                    item.instruction,
                    r.energy_per_instruction,
                    frequency=r.frequency,
                )
            report.runs.extend(runs)
        else:
            r = runner.run(driver)
            model.set_energy(item.instruction, r.energy_per_instruction)
            report.runs.append(r)
    if write_back:
        report.updated = model.write_back(instrs)
    obs = get_observer()
    if obs.enabled:
        obs.count("bench.instructions.planned", len(report.items))
        obs.count("bench.runs", len(report.runs))
        obs.count("bench.skipped", len(report.skipped))
    return model, report
