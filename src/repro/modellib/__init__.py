"""The bundled XPDL model library.

Contains every descriptor the paper's Listings 1–15 define (plus the small
set of supporting descriptors they reference), organized as a distributed
model repository: one ``.xpdl`` file per reusable hardware/software entity.

Use :func:`standard_repository` to get a ready-to-use
:class:`~repro.repository.ModelRepository` over this library, optionally
extended with extra search-path directories.
"""

from __future__ import annotations

import os

from ..repository import LocalDirStore, ModelRepository

#: Identifiers of the paper's concrete (composable) system models.
PAPER_SYSTEMS = ("myriad_server", "liu_gpu_server", "XScluster")

#: Identifiers of the paper's reusable meta-models, by listing.
PAPER_LISTINGS: dict[str, tuple[str, ...]] = {
    "listing1": ("Intel_Xeon_E5_2630L",),
    "listing2": ("ShaveL2", "DDR3_16G"),
    "listing3": ("pcie3", "SPI"),
    "listing4": ("myriad_server",),
    "listing5": ("Movidius_MV153",),
    "listing6": ("Movidius_Myriad1",),
    "listing7": ("liu_gpu_server",),
    "listing8": ("Nvidia_Kepler",),
    "listing9": ("Nvidia_K20c",),
    "listing10": ("liu_gpu_server",),  # gpu1 instance with fixed config
    "listing11": ("XScluster",),
    "listing12": ("Myriad1_power_domains",),
    "listing13": ("power_state_machine1",),
    "listing14": ("x86_base_isa",),
    "listing15": ("mb_x86_base_1",),
}


#: Environment variable holding extra model search-path directories
#: (colon-separated), consulted before the bundled library — the paper's
#: "XPDL models can be stored locally (retrieved via the model search
#: path)".
SEARCH_PATH_ENV = "XPDL_MODEL_PATH"


def data_dir() -> str:
    """Absolute path of the bundled descriptor directory."""
    return os.path.join(os.path.dirname(__file__), "data")


def search_path_dirs(env: dict[str, str] | None = None) -> list[str]:
    """Directories named by :data:`SEARCH_PATH_ENV` that exist."""
    raw = (env if env is not None else os.environ).get(SEARCH_PATH_ENV, "")
    return [p for p in raw.split(os.pathsep) if p and os.path.isdir(p)]


def standard_repository(
    *extra_paths: str, validate: bool = True, use_env: bool = True
) -> ModelRepository:
    """A repository over the bundled library plus optional extra directories.

    Search order (first hit wins, like PATH): explicit ``extra_paths``,
    then ``$XPDL_MODEL_PATH`` entries, then the bundled library.
    """
    stores = [LocalDirStore(p) for p in extra_paths]
    if use_env:
        stores.extend(LocalDirStore(p) for p in search_path_dirs())
    stores.append(LocalDirStore(data_dir()))
    return ModelRepository(stores, validate=validate)
