"""Seeded, deterministic platform-descriptor generator (``xpdl gen``).

The generator synthesizes a *descriptor library* in repository layout —
the same category directories the bundled model library uses — so the rest
of the toolchain consumes it with a plain ``-I DIR``:

* per **family** (one hardware generation of one vendor) a septet of
  cross-referencing component descriptors: an instruction-set energy model,
  its microbenchmark suite, a power model (power domains + a complete DVFS
  power-state machine), a CPU with a cache hierarchy, a memory module, an
  interconnect technology and an accelerator device;
* per **system** a concrete cluster: a node group replicated via the
  ``prefix``/``quantity`` group construct, sockets with typed CPU
  references, memory DIMM groups, accelerator devices, intra-node links
  and an inter-node ring — every ``head=``/``tail=`` endpoint resolving in
  the composed model.

Determinism contract: everything is derived from ``random.Random`` seeded
with *strings* built from ``(seed, purpose, index)``.  String seeding
hashes with SHA-512 inside :mod:`random`, so the emitted bytes are
identical across runs, processes and ``PYTHONHASHSEED`` values; the tree
digest (:func:`corpus_digest`) is the observable contract.

The output is **doctor-clean by construction**: every reference resolves
(XPDL0700/0701/0713), PSMs enumerate complete transition matrices with
non-negative costs (XPDL0710/0711), power is monotone in frequency
(XPDL0712), only registry units appear (XPDL0704), endpoints stay within
group cardinality (XPDL0714) and no ``effective_bandwidth`` is asserted
(XPDL0715).  All names carry the config prefix (default ``gen``) so the
bundled library is never shadowed (XPDL0201).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from pathlib import Path

from ..xpdlxml import XmlElement, comment, document, element, write_xml

# Realistic-sounding vocabulary.  Tuples, not sets: iteration order is part
# of the determinism contract.
_VENDORS = ("acme", "borealis", "cirrus", "dynavolt", "ember", "fluxion")
_ARCHES = ("nova", "quark", "talon", "vega", "wisp", "zephyr")
_OPS = (
    "add",
    "sub",
    "mul",
    "div",
    "fma_f32",
    "vadd_f32",
    "vmul_f32",
    "ldr",
    "str",
    "mov",
    "cmp",
    "nop",
)
_MEM_KINDS = ("DDR4", "DDR5", "LPDDR5", "HBM2e", "GDDR6")
_IC_KINDS = ("mesh", "torus", "xbar", "ring", "fabric")
_OS_NAMES = ("Linux_5.15", "Linux_6.1", "Linux_6.6")

# Discrete DVFS frequency menu (GHz) — ascending, so sampled subsequences
# are ascending too and monotone power assignment is trivial.
_FREQ_MENU = (0.6, 0.8, 1.0, 1.2, 1.5, 1.8, 2.0, 2.4, 2.8, 3.2, 3.6)


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of the platform generator (see DESIGN.md for the paper map).

    ``scale`` is the target descriptor count; the emitted corpus has at
    least that many descriptors (exactly ``scale`` for ``scale >= 8``).
    """

    seed: int = 0
    scale: int = 100
    prefix: str = "gen"
    max_nodes: int = 8  # nodes per generated cluster group
    max_states: int = 5  # DVFS states per power-state machine

    def family_count(self) -> int:
        # A family is 7 component descriptors; systems fill the remainder
        # (about two systems referencing each family at scale).
        return max(1, self.scale // 9)

    def system_count(self) -> int:
        return max(1, self.scale - 7 * self.family_count())


@dataclass(frozen=True)
class Corpus:
    """An in-memory generated corpus: repository-layout relpath -> text."""

    seed: int
    scale: int
    files: tuple[tuple[str, str], ...]  # sorted (relpath, content)
    systems: tuple[str, ...]
    config: GeneratorConfig = field(default=GeneratorConfig())

    def __len__(self) -> int:
        return len(self.files)

    def digest(self) -> str:
        """SHA-256 over the sorted (relpath, content) pairs."""
        return corpus_digest(self.files)

    def write_to(self, directory: str | Path) -> Path:
        """Materialize the corpus under ``directory`` (created if needed)."""
        root = Path(directory)
        for relpath, content in self.files:
            path = root / relpath
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(content, encoding="utf-8")
        return root


def corpus_digest(files) -> str:
    """SHA-256 digest of an iterable of (relpath, content) pairs."""
    h = hashlib.sha256()
    for relpath, content in sorted(files):
        h.update(relpath.encode("utf-8"))
        h.update(b"\0")
        h.update(content.encode("utf-8"))
        h.update(b"\0")
    return h.hexdigest()


def generate_corpus(
    seed: int = 0, scale: int = 100, *, config: GeneratorConfig | None = None
) -> Corpus:
    """Generate a deterministic descriptor corpus.

    ``generate_corpus(s, n)`` is byte-stable: same arguments, same files,
    in any process.
    """
    cfg = config or GeneratorConfig(seed=seed, scale=scale)
    gen = _Generator(cfg)
    files, systems = gen.run()
    return Corpus(
        seed=cfg.seed,
        scale=cfg.scale,
        files=tuple(sorted(files.items())),
        systems=tuple(systems),
        config=cfg,
    )


def write_corpus(corpus: Corpus, directory: str | Path) -> Path:
    """Write ``corpus`` into ``directory`` in repository layout."""
    return corpus.write_to(directory)


# -- internals ---------------------------------------------------------------


@dataclass(frozen=True)
class _Family:
    """Identifiers of one generated hardware family (all cross-referenced)."""

    index: int
    vendor: str
    arch: str
    isa: str
    mb: str
    power: str
    cpu: str
    cores_group: str
    memory: str
    interconnect: str
    device: str


class _Generator:
    def __init__(self, cfg: GeneratorConfig) -> None:
        self.cfg = cfg

    def _rng(self, purpose: str, index: int) -> random.Random:
        # String seeding goes through SHA-512 inside random.Random: stable
        # across processes regardless of PYTHONHASHSEED.
        return random.Random(f"{self.cfg.seed}:{purpose}:{index}")

    def run(self) -> tuple[dict[str, str], list[str]]:
        cfg = self.cfg
        files: dict[str, str] = {}
        families = [
            self._family(i) for i in range(cfg.family_count())
        ]
        for fam in families:
            self._emit_family(fam, files)
        systems = []
        for j in range(cfg.system_count()):
            systems.append(self._emit_system(j, families, files))
        return files, systems

    # -- naming ------------------------------------------------------------

    def _family(self, i: int) -> _Family:
        rng = self._rng("family", i)
        vendor = rng.choice(_VENDORS)
        arch = rng.choice(_ARCHES)
        p = self.cfg.prefix
        base = f"{p}_{vendor}_{arch}{i}"
        return _Family(
            index=i,
            vendor=vendor,
            arch=arch,
            isa=f"{p}_isa_{arch}{i}",
            mb=f"{p}_mb_{arch}{i}",
            power=f"{p}_pm_{base[len(p) + 1:]}",
            cpu=f"{base}_cpu",
            cores_group=f"{base}_cores",
            memory=f"{base}_mem",
            interconnect=f"{base}_link",
            device=f"{base}_acc",
        )

    # -- emission helpers --------------------------------------------------

    def _emit(
        self,
        files: dict[str, str],
        category: str,
        name: str,
        root: XmlElement,
        note: str,
    ) -> None:
        doc = document(root, source_name=f"{name}.xpdl")
        doc.prolog.append(
            comment(
                f" {note}  Generated by `xpdl gen` "
                f"(seed={self.cfg.seed}, scale={self.cfg.scale}). "
            )
        )
        files[f"{category}/{name}.xpdl"] = write_xml(doc)

    # -- component descriptors ---------------------------------------------

    def _emit_family(self, fam: _Family, files: dict[str, str]) -> None:
        self._emit_isa_and_mb(fam, files)
        self._emit_power_model(fam, files)
        self._emit_cpu(fam, files)
        self._emit_memory(fam, files)
        self._emit_interconnect(fam, files)
        self._emit_device(fam, files)

    def _emit_isa_and_mb(self, fam: _Family, files: dict[str, str]) -> None:
        rng = self._rng("isa", fam.index)
        ops = sorted(rng.sample(_OPS, rng.randint(4, 8)))
        insts = []
        benches = []
        for k, op in enumerate(ops):
            mb_id = f"b{k}"
            insts.append(
                element(
                    "inst",
                    {
                        "name": op,
                        "energy": "?",
                        "energy_unit": "pJ",
                        "mb": mb_id,
                    },
                )
            )
            benches.append(
                element(
                    "microbenchmark",
                    {
                        "id": mb_id,
                        "type": op,
                        "file": f"{op}.c",
                        "cflags": "-O0",
                    },
                )
            )
        isa_root = element("instructions", {"name": fam.isa, "mb": fam.mb}, insts)
        self._emit(
            files,
            "isa",
            fam.isa,
            isa_root,
            f"Instruction energy meta-model for the {fam.vendor} "
            f"{fam.arch} family.",
        )
        mb_root = element(
            "microbenchmarks",
            {
                "id": fam.mb,
                "instruction_set": fam.isa,
                "path": f"mb/src/{fam.arch}{fam.index}",
                "command": "mbscript.sh",
            },
            benches,
        )
        self._emit(
            files,
            "mb",
            fam.mb,
            mb_root,
            f"Microbenchmark suite for the {fam.isa} ISA.",
        )

    def _emit_power_model(self, fam: _Family, files: dict[str, str]) -> None:
        rng = self._rng("power", fam.index)
        n_states = rng.randint(3, self.cfg.max_states)
        # Ascending frequency menu sample -> ascending frequencies; power
        # strictly increases with them (XPDL0712 monotone by construction).
        freq_idx = sorted(rng.sample(range(len(_FREQ_MENU)), n_states))
        freqs = [_FREQ_MENU[i] for i in freq_idx]
        power_mw = []
        level = rng.randint(60, 400)  # mW at the lowest state
        for _ in freqs:
            power_mw.append(level)
            level += rng.randint(80, 900)
        states = []
        names = []
        for f, p in zip(freqs, power_mw):
            name = f"P{int(round(f * 1000))}"
            names.append(name)
            states.append(
                element(
                    "power_state",
                    {
                        "name": name,
                        "frequency": _num(f),
                        "frequency_unit": "GHz",
                        "power": _num(p / 1000.0),
                        "power_unit": "W",
                    },
                )
            )
        # Complete pairwise transition matrix (XPDL0710 reachability and
        # the lint's completeness rule): costs grow with level distance.
        transitions = []
        for a, src in enumerate(names):
            for b, dst in enumerate(names):
                if a == b:
                    continue
                hops = abs(a - b)
                transitions.append(
                    element(
                        "transition",
                        {
                            "head": src,
                            "tail": dst,
                            "time": str(20 * hops + rng.randint(0, 15)),
                            "time_unit": "us",
                            "energy": str(4 * hops + rng.randint(0, 6)),
                            "energy_unit": "nJ",
                        },
                    )
                )
        domain = f"{self.cfg.prefix}_pd_{fam.arch}{fam.index}"
        root = element(
            "power_model",
            {"name": fam.power},
            [
                element(
                    "power_domains",
                    {"name": f"{fam.power}_pds"},
                    [
                        element(
                            "power_domain",
                            {"name": domain, "enableSwitchOff": "false"},
                            [element("group", {"type": fam.cores_group})],
                        )
                    ],
                ),
                element(
                    "power_state_machine",
                    {"name": f"{fam.power}_psm", "power_domain": domain},
                    [
                        element("power_states", {}, states),
                        element("transitions", {}, transitions),
                    ],
                ),
                element("instructions", {"type": fam.isa}),
                element("microbenchmarks", {"type": fam.mb}),
            ],
        )
        self._emit(
            files,
            "power",
            fam.power,
            root,
            f"Power model for the {fam.cpu} cluster: "
            f"{n_states}-state DVFS machine.",
        )

    def _emit_cpu(self, fam: _Family, files: dict[str, str]) -> None:
        rng = self._rng("cpu", fam.index)
        cores = rng.choice((2, 4, 6, 8, 12, 16))
        base_freq = rng.choice(_FREQ_MENU[3:])
        l1 = rng.choice((32, 48, 64))
        l2 = rng.choice((256, 512, 1024))
        l3 = rng.choice((4, 8, 16, 30))
        group_children = [
            element(
                "core",
                {
                    "frequency": _num(base_freq),
                    "frequency_unit": "GHz",
                    "endian": "LE",
                },
            ),
            element("cache", {"name": "L1", "size": str(l1), "unit": "KiB"}),
        ]
        children = [
            element(
                "group",
                {
                    "name": fam.cores_group,
                    "prefix": "c",
                    "quantity": str(cores),
                },
                group_children,
            ),
            element("cache", {"name": "L2", "size": str(l2), "unit": "KiB"}),
            element("cache", {"name": "L3", "size": str(l3), "unit": "MiB"}),
            element("instructions", {"type": fam.isa}),
            element("power_model", {"type": fam.power}),
        ]
        root = element(
            "cpu",
            {
                "name": fam.cpu,
                "endian": "LE",
                "issue_width": str(rng.choice((1, 2, 4))),
                "energy_per_op_scale": _num(rng.choice((0.5, 1.0, 1.5, 2.0))),
                "thermal_resistance": str(rng.randint(1, 20)),
                "thermal_resistance_unit": "K/W",
                "max_temperature": str(rng.choice((70, 85, 95))),
                "max_temperature_unit": "dC",
            },
            children,
        )
        self._emit(
            files,
            "cpu",
            fam.cpu,
            root,
            f"{cores}-core {fam.vendor} {fam.arch} CPU, three-level cache.",
        )

    def _emit_memory(self, fam: _Family, files: dict[str, str]) -> None:
        rng = self._rng("memory", fam.index)
        root = element(
            "memory",
            {
                "name": fam.memory,
                "type": rng.choice(_MEM_KINDS),
                "size": str(rng.choice((8, 16, 32, 64))),
                "unit": "GB",
                "static_power": _num(rng.choice((2, 3, 4, 5))),
                "static_power_unit": "W",
            },
        )
        self._emit(
            files,
            "memory",
            fam.memory,
            root,
            f"Memory module of the {fam.vendor} {fam.arch} family.",
        )

    def _emit_interconnect(self, fam: _Family, files: dict[str, str]) -> None:
        rng = self._rng("interconnect", fam.index)
        bw = rng.choice((4, 6, 8, 12, 16, 25))
        channels = []
        for direction in ("up_link", "down_link"):
            channels.append(
                element(
                    "channel",
                    {
                        "name": direction,
                        "max_bandwidth": str(bw),
                        "max_bandwidth_unit": "GiB/s",
                        "time_offset_per_message": "?",
                        "time_offset_per_message_unit": "ns",
                        "energy_per_byte": str(rng.randint(4, 12)),
                        "energy_per_byte_unit": "pJ",
                    },
                )
            )
        # Technology meta-model: no head/tail here, and no
        # effective_bandwidth (that is the analyzer's to derive, XPDL0715).
        root = element(
            "interconnect",
            {
                "name": fam.interconnect,
                "max_bandwidth": str(bw),
                "max_bandwidth_unit": "GiB/s",
            },
            channels,
        )
        self._emit(
            files,
            "interconnect",
            fam.interconnect,
            root,
            f"{rng.choice(_IC_KINDS)} interconnect technology "
            f"({bw} GiB/s per direction).",
        )

    def _emit_device(self, fam: _Family, files: dict[str, str]) -> None:
        rng = self._rng("device", fam.index)
        root = element(
            "device",
            {
                "name": fam.device,
                "compute_capability": f"{rng.randint(3, 9)}.{rng.randint(0, 5)}",
                "static_power": str(rng.randint(10, 60)),
                "static_power_unit": "W",
            },
            [
                element(
                    "param",
                    {"name": "num_units", "value": str(rng.choice((8, 13, 32, 64)))},
                ),
                element(
                    "param",
                    {
                        "name": "devfrq",
                        "frequency": str(rng.choice((600, 706, 900, 1100))),
                        "unit": "MHz",
                    },
                ),
                element(
                    "param",
                    {
                        "name": "devmem",
                        "size": str(rng.choice((4, 5, 8, 12, 16))),
                        "unit": "GB",
                    },
                ),
                element("power_model", {"type": fam.power}),
            ],
        )
        self._emit(
            files,
            "device",
            fam.device,
            root,
            f"Accelerator board of the {fam.vendor} {fam.arch} family.",
        )

    # -- systems -----------------------------------------------------------

    def _emit_system(
        self, j: int, families: list[_Family], files: dict[str, str]
    ) -> str:
        rng = self._rng("system", j)
        name = f"{self.cfg.prefix}_sys{j}"
        # Round-robin guarantees every family is referenced by some system
        # (keeps XPDL0703 unused-descriptor notes away from components).
        # The accelerator is referenced only through fam_b, so its first
        # lap must also be a full round-robin — a random pick alone leaves
        # coupon-collector gaps once families number in the hundreds; later
        # laps pick freely to keep clusters heterogeneous.
        fam_a = families[j % len(families)]
        if j < len(families):
            fam_b = families[(j + 1) % len(families)]
        else:
            fam_b = rng.choice(families)
        n_nodes = rng.randint(2, self.cfg.max_nodes)
        sockets = rng.choice((1, 2))
        dimms = rng.choice((2, 4, 8))

        node_children: list[XmlElement] = [
            element(
                "group",
                {"id": "cpus"},
                [
                    element(
                        "socket",
                        {},
                        [element("cpu", {"id": f"PE{s}", "type": fam_a.cpu})],
                    )
                    for s in range(sockets)
                ],
            ),
            element(
                "group",
                {"prefix": "dimm", "quantity": str(dimms)},
                [element("memory", {"type": fam_a.memory})],
            ),
            element("device", {"id": "acc0", "type": fam_b.device}),
            element(
                "interconnects",
                {},
                [
                    element(
                        "interconnect",
                        {
                            "id": "lnk0",
                            "type": fam_a.interconnect,
                            "head": "cpus",
                            "tail": "acc0",
                        },
                    )
                ],
            ),
        ]
        # Inter-node ring over the expanded member ids n0..n{q-1}
        # (XPDL0713/0714: endpoints resolve and stay within cardinality).
        links = [
            element(
                "interconnect",
                {
                    "id": f"ring{k}",
                    "type": fam_b.interconnect,
                    "head": f"n{k}",
                    "tail": f"n{(k + 1) % n_nodes}",
                },
            )
            for k in range(n_nodes)
        ]
        cluster = element(
            "cluster",
            {},
            [
                element(
                    "group",
                    {"prefix": "n", "quantity": str(n_nodes)},
                    [element("node", {}, node_children)],
                ),
                element("interconnects", {}, links),
            ],
        )
        software = element(
            "software",
            {},
            [element("hostOS", {"id": "os0", "type": rng.choice(_OS_NAMES)})],
        )
        root = element("system", {"id": name}, [cluster, software])
        self._emit(
            files,
            "system",
            name,
            root,
            f"Generated cluster: {n_nodes} nodes x {sockets} socket(s) "
            f"of {fam_a.cpu}, accelerator {fam_b.device}.",
        )
        return name


def _num(x: float) -> str:
    """Format a number without float-repr noise ('1.4', '2', '0.08')."""
    if x == int(x):
        return str(int(x))
    return repr(round(x, 6))
