"""CESDM-style schema-driven YAML/JSON platform bridge.

Energy-system toolboxes of the CESDM family describe a platform library as
one schema-tagged document: a list of *entries*, each a typed record with
scalar attributes and nested component records.  This module maps that
document model 1:1 onto XPDL descriptors:

* one entry  <->  one descriptor file ``<category>/<identifier>.xpdl``
* entry ``kind``  <->  the descriptor's root tag
* entry ``attrs``  <->  XML attributes (insertion order preserved)
* entry ``elements``  <->  child elements, recursively
* entry ``comment``  <->  the file's prolog comment (descriptor headers)

Because the mapping is structural and order-preserving, ``import ->
export -> import`` is a **fixed point at the descriptor-file level**: the
second import reproduces the first one's files byte-for-byte, so the
composed XPDLRT02 runtime IR is byte-identical as well.  That property is
what the round-trip tests (and the acceptance gate) pin down.

YAML handling is gated on :mod:`yaml` being importable; JSON always works.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field
from typing import Any

from ..diagnostics import XpdlError
from ..xpdlxml import (
    XmlComment,
    XmlElement,
    XmlText,
    comment,
    document,
    element,
    parse_xml,
    text as text_node,
    write_xml,
)

try:  # PyYAML is an optional dependency of this bridge only.
    import yaml
except ImportError:  # pragma: no cover - baked into the reference image
    yaml = None  # type: ignore[assignment]

#: Schema tag every document must carry (major version checked).
CESDM_SCHEMA = "cesdm.platform-library/1.0"

#: Root tag -> repository category directory (generator layout).  Tags
#: without an entry file under their own name.
_CATEGORY = {
    "instructions": "isa",
    "microbenchmarks": "mb",
    "power_model": "power",
    "power_state_machine": "power",
}


class CesdmError(XpdlError):
    """A malformed CESDM document or an unconvertible entry."""


@dataclass
class CesdmDocument:
    """A parsed CESDM platform library."""

    schema: str = CESDM_SCHEMA
    entries: list[dict[str, Any]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.entries)


# -- loading / dumping --------------------------------------------------------


def load_cesdm(text: str, *, source_name: str = "<cesdm>") -> CesdmDocument:
    """Parse a CESDM document from YAML or JSON text."""
    stripped = text.lstrip()
    if stripped.startswith("{"):
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CesdmError(f"{source_name}: invalid JSON: {exc}") from exc
    else:
        if yaml is None:
            raise CesdmError(
                f"{source_name}: YAML input needs the 'yaml' module, which "
                "is unavailable; use the JSON form instead"
            )
        try:
            data = yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise CesdmError(f"{source_name}: invalid YAML: {exc}") from exc
    if not isinstance(data, Mapping):
        raise CesdmError(f"{source_name}: document must be a mapping")
    schema = data.get("cesdm")
    if not isinstance(schema, str) or not schema.startswith("cesdm."):
        raise CesdmError(
            f"{source_name}: missing or malformed 'cesdm' schema tag "
            f"(expected e.g. {CESDM_SCHEMA!r})"
        )
    if schema.rsplit("/", 1)[0] != CESDM_SCHEMA.rsplit("/", 1)[0]:
        raise CesdmError(f"{source_name}: unsupported schema {schema!r}")
    entries = data.get("entries")
    if not isinstance(entries, list):
        raise CesdmError(f"{source_name}: 'entries' must be a list")
    doc = CesdmDocument(schema=schema)
    for i, raw in enumerate(entries):
        doc.entries.append(
            _check_entry(raw, f"{source_name}: entries[{i}]", top=True)
        )
    return doc


def dump_cesdm(doc: CesdmDocument, *, fmt: str = "yaml") -> str:
    """Serialize a CESDM document deterministically (``yaml`` or ``json``)."""
    data = {"cesdm": doc.schema, "entries": doc.entries}
    if fmt == "json":
        return json.dumps(data, indent=1) + "\n"
    if fmt != "yaml":
        raise CesdmError(f"unknown CESDM format {fmt!r} (yaml or json)")
    if yaml is None:
        raise CesdmError(
            "YAML output needs the 'yaml' module, which is unavailable; "
            "use --format json instead"
        )
    return yaml.safe_dump(
        data, sort_keys=False, default_flow_style=False, width=88
    )


# -- entry <-> DOM ------------------------------------------------------------


def _check_entry(raw: Any, where: str, *, top: bool = False) -> dict[str, Any]:
    if not isinstance(raw, Mapping):
        raise CesdmError(f"{where}: entry must be a mapping")
    kind = raw.get("kind")
    if not isinstance(kind, str) or not kind:
        raise CesdmError(f"{where}: entry needs a non-empty 'kind'")
    entry: dict[str, Any] = {"kind": kind}
    # A descriptor-file header comment travels with the top-level entry
    # only; nested records have no prolog to land in.
    if top and raw.get("comment") is not None:
        entry["comment"] = str(raw["comment"])
    attrs = raw.get("attrs", {})
    if not isinstance(attrs, Mapping):
        raise CesdmError(f"{where}: 'attrs' must be a mapping")
    entry["attrs"] = {str(k): _attr_text(v) for k, v in attrs.items()}
    if "text" in raw and raw["text"] is not None:
        entry["text"] = str(raw["text"])
    elements = raw.get("elements", [])
    if not isinstance(elements, list):
        raise CesdmError(f"{where}: 'elements' must be a list")
    if elements:
        entry["elements"] = [
            _check_entry(c, f"{where}.elements[{j}]")
            for j, c in enumerate(elements)
        ]
    return entry


def _attr_text(value: Any) -> str:
    """Foreign scalars -> XPDL attribute spelling (bools, ints, floats)."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    return str(value)


def _entry_to_dom(entry: Mapping[str, Any]) -> XmlElement:
    elem = element(str(entry["kind"]), dict(entry.get("attrs") or {}))
    if entry.get("text"):
        elem.append(text_node(str(entry["text"])))
    for child in entry.get("elements") or ():
        elem.append(_entry_to_dom(child))
    return elem


def _dom_to_entry(elem: XmlElement) -> dict[str, Any]:
    entry: dict[str, Any] = {"kind": elem.tag}
    entry["attrs"] = dict(elem.attr_items())
    texts = [
        c.text
        for c in elem.children
        if isinstance(c, XmlText) and not c.is_whitespace()
    ]
    if texts:
        entry["text"] = "".join(texts)
    children = [_dom_to_entry(c) for c in elem.elements()]
    if children:
        entry["elements"] = children
    return entry


# -- import / export ----------------------------------------------------------


def _identifier(entry: Mapping[str, Any]) -> str:
    attrs = entry.get("attrs") or {}
    ident = attrs.get("name") or attrs.get("id")
    if not ident:
        raise CesdmError(
            f"entry of kind {entry['kind']!r} has neither 'name' nor 'id' "
            "in attrs; descriptors need an identifier"
        )
    return str(ident)


def import_cesdm(doc: CesdmDocument) -> dict[str, str]:
    """Materialize a CESDM document as descriptor files (relpath -> text)."""
    files: dict[str, str] = {}
    for entry in doc.entries:
        kind = str(entry["kind"])
        ident = _identifier(entry)
        category = _CATEGORY.get(kind, kind)
        relpath = f"{category}/{ident}.xpdl"
        if relpath in files:
            raise CesdmError(
                f"duplicate entry {ident!r} of kind {kind!r}: descriptors "
                "must be unique per identifier"
            )
        xml_doc = document(_entry_to_dom(entry), source_name=f"{ident}.xpdl")
        if entry.get("comment") is not None:
            xml_doc.prolog.append(comment(str(entry["comment"])))
        files[relpath] = write_xml(xml_doc)
    return files


def cesdm_from_files(
    files: Mapping[str, str] | Iterable[tuple[str, str]],
) -> CesdmDocument:
    """Build a CESDM document from descriptor files (the exporter core).

    Entries are emitted in sorted-relpath order so the export is
    deterministic regardless of how ``files`` was produced.
    """
    pairs = sorted(files.items() if isinstance(files, Mapping) else files)
    doc = CesdmDocument()
    for relpath, content in pairs:
        xml_doc = parse_xml(content, source_name=relpath)
        entry = _dom_to_entry(xml_doc.root)
        comments = [
            n.text for n in xml_doc.prolog if isinstance(n, XmlComment)
        ]
        if comments:
            # Key order mirrors _check_entry so dump/load is a fixed point.
            entry = {"kind": entry["kind"], "comment": "\n".join(comments)} | {
                k: v for k, v in entry.items() if k != "kind"
            }
        doc.entries.append(entry)
    return doc


def export_cesdm(
    files: Mapping[str, str] | Iterable[tuple[str, str]],
    *,
    fmt: str = "yaml",
) -> str:
    """Serialize descriptor files as one CESDM document."""
    return dump_cesdm(cesdm_from_files(files), fmt=fmt)
