"""PDL-subset reader: foreign PEPPHER PDL files into the repository layout.

The paper compares XPDL against the PEPPHER Platform Description Language;
:mod:`repro.pdl` already implements the PDL subset parser and the
PDL -> XPDL lifting used by ``xpdl to-pdl``'s inverse direction.  This
module wraps both behind the same files-contract the CESDM bridge uses, so
``xpdl import`` lands every foreign format in a uniform descriptor tree.
"""

from __future__ import annotations

from ..model import to_document
from ..pdl import parse_pdl, pdl_to_xpdl
from ..xpdlxml import write_xml


def import_pdl(text: str, *, source_name: str = "<pdl>") -> dict[str, str]:
    """Convert one PDL platform document into descriptor files.

    Returns the repository-layout mapping ``{"system/<name>.xpdl": text}``;
    PDL describes one platform per document, so one system file comes out.
    """
    platform = parse_pdl(text, source_name=source_name)
    system = pdl_to_xpdl(platform)
    ident = system.ident or platform.name
    doc = to_document(system, source_name=f"{ident}.xpdl")
    return {f"system/{ident}.xpdl": write_xml(doc)}
