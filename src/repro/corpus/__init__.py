"""Corpus engineering: synthetic descriptor libraries and foreign formats.

The paper's evaluation (Sec. V) runs over four hand-written systems; the
roadmap's north star is a toolchain serving orders of magnitude more.  This
package closes the gap from the input side:

``generator``
    A seeded, deterministic platform generator (``xpdl gen``) that emits
    realistic descriptor libraries — heterogeneous clusters, cache
    hierarchies, DVFS power-state machines, thousands of cross-referencing
    descriptors — straight into a repository layout, so batch compilation,
    the doctor, indexing and ``ModelHost`` leasing can be stressed at
    100-1000x the bundled corpus.

``cesdm``
    A schema-driven YAML/JSON bridge (``xpdl import`` / ``xpdl export``)
    in the style of CESDM platform models: one document describes a
    library of platform entries; importing materializes one descriptor
    file per entry, and the export/import cycle is a fixed point at the
    descriptor-file level (hence byte-identical runtime IR).

``pdlin``
    A reader for the PEPPHER PDL subset the paper compares against,
    wrapping :mod:`repro.pdl` so foreign PDL files land in the same
    repository layout as everything else.
"""

from __future__ import annotations

from .cesdm import (
    CesdmError,
    cesdm_from_files,
    dump_cesdm,
    export_cesdm,
    import_cesdm,
    load_cesdm,
)
from .generator import (
    Corpus,
    GeneratorConfig,
    corpus_digest,
    generate_corpus,
    write_corpus,
)
from .pdlin import import_pdl

__all__ = [
    "Corpus",
    "GeneratorConfig",
    "generate_corpus",
    "corpus_digest",
    "write_corpus",
    "CesdmError",
    "load_cesdm",
    "dump_cesdm",
    "import_cesdm",
    "export_cesdm",
    "cesdm_from_files",
    "import_pdl",
]
