"""Hierarchical energy accounting (paper Sec. III-D).

Combines the three cost components XPDL models:

* **static** energy: per-state power of the active power state integrated
  over time (plus always-on static power of memories etc.);
* **dynamic** energy: per-instruction energies from the instruction model;
* **switching** overheads: transition time/energy from the PSM.

A workload is a sequence of :class:`Phase`s (instruction mix + optional
requested power state); :class:`EnergyAccountant` walks the phases, drives a
PSM cursor, and produces an itemized :class:`EnergyBreakdown`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..diagnostics import XpdlError
from ..units import ENERGY, POWER, TIME, Quantity
from .instr import InstructionEnergyModel
from .psm import PowerStateMachineModel, PsmCursor


@dataclass
class Phase:
    """One workload phase: an instruction mix executed back-to-back.

    ``cycles_per_instruction`` converts instruction counts to time at the
    running frequency; ``state`` optionally requests a power state for the
    phase (otherwise the current state persists).
    """

    name: str
    instruction_counts: dict[str, int]
    state: str | None = None
    cycles_per_instruction: float = 1.0

    def total_instructions(self) -> int:
        return sum(self.instruction_counts.values())


@dataclass
class PhaseCost:
    """Cost of one executed phase."""

    phase: str
    state: str
    time: Quantity
    static_energy: Quantity
    dynamic_energy: Quantity
    switch_time: Quantity
    switch_energy: Quantity

    @property
    def total_energy(self) -> Quantity:
        return self.static_energy + self.dynamic_energy + self.switch_energy


@dataclass
class EnergyBreakdown:
    """Itemized result of running a workload."""

    phases: list[PhaseCost] = field(default_factory=list)

    @property
    def time(self) -> Quantity:
        t = Quantity(0.0, TIME)
        for p in self.phases:
            t = t + p.time + p.switch_time
        return t

    @property
    def static_energy(self) -> Quantity:
        e = Quantity(0.0, ENERGY)
        for p in self.phases:
            e = e + p.static_energy
        return e

    @property
    def dynamic_energy(self) -> Quantity:
        e = Quantity(0.0, ENERGY)
        for p in self.phases:
            e = e + p.dynamic_energy
        return e

    @property
    def switch_energy(self) -> Quantity:
        e = Quantity(0.0, ENERGY)
        for p in self.phases:
            e = e + p.switch_energy
        return e

    @property
    def total_energy(self) -> Quantity:
        return self.static_energy + self.dynamic_energy + self.switch_energy

    def average_power(self) -> Quantity:
        t = self.time
        if t.magnitude == 0.0:
            return Quantity(0.0, POWER)
        return self.total_energy / t


class EnergyAccountant:
    """Executes workload phases against a PSM + instruction energy model."""

    def __init__(
        self,
        psm: PowerStateMachineModel,
        instructions: InstructionEnergyModel,
        *,
        initial_state: str | None = None,
        base_power: Quantity | None = None,
    ) -> None:
        self.psm = psm
        self.instructions = instructions
        #: Always-on power outside the PSM-controlled domain (memories,
        #: motherboard residual) charged in every phase.
        self.base_power = base_power or Quantity(0.0, POWER)
        start = initial_state or psm.by_frequency()[-1].name
        self.cursor = PsmCursor(psm, start)

    def run(self, phases: list[Phase]) -> EnergyBreakdown:
        breakdown = EnergyBreakdown()
        for phase in phases:
            breakdown.phases.append(self._run_phase(phase))
        return breakdown

    def _run_phase(self, phase: Phase) -> PhaseCost:
        switch_time = Quantity(0.0, TIME)
        switch_energy = Quantity(0.0, ENERGY)
        if phase.state is not None and phase.state != self.cursor.current:
            plan = self.cursor.go(phase.state)
            switch_time, switch_energy = plan.time, plan.energy
        state = self.cursor.state
        if state.is_off():
            raise XpdlError(
                f"phase {phase.name!r} requests execution in off state "
                f"{state.name!r}"
            )
        n_inst = phase.total_instructions()
        cycles = n_inst * phase.cycles_per_instruction
        time = Quantity(cycles / state.frequency.magnitude, TIME)
        static = (state.power + self.base_power) * time
        dynamic = Quantity(0.0, ENERGY)
        for name, count in phase.instruction_counts.items():
            per = self.instructions.energy(name, state.frequency)
            dynamic = dynamic + per * count
        return PhaseCost(
            phase=phase.name,
            state=state.name,
            time=time,
            static_energy=static,
            dynamic_energy=dynamic,
            switch_time=switch_time,
            switch_energy=switch_energy,
        )
