"""Executable power state machines.

Lifts the declarative ``<power_state_machine>`` descriptor (Listing 13) into
an executable FSM: states with frequency/power levels, transitions with
time/energy overheads, validation, and switching-path search (when a direct
transition is missing, the cheapest multi-hop switching sequence is used —
with a diagnostic, since the paper requires complete transition tables).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from ..diagnostics import XpdlError
from ..model import (
    ModelElement,
    PowerState,
    PowerStateMachine,
    Transition,
)
from ..units import ENERGY, FREQUENCY, POWER, TIME, Quantity


@dataclass(frozen=True, slots=True)
class PowerStateDef:
    """One P/C state."""

    name: str
    frequency: Quantity  # 0 Hz for sleep/off states
    power: Quantity

    def is_off(self) -> bool:
        return self.frequency.magnitude == 0.0


@dataclass(frozen=True, slots=True)
class TransitionDef:
    """A directed switching with overhead costs."""

    head: str
    tail: str
    time: Quantity
    energy: Quantity


@dataclass
class SwitchPlan:
    """The cost of getting from one state to another, possibly multi-hop."""

    path: tuple[str, ...]
    time: Quantity
    energy: Quantity
    direct: bool

    @property
    def hops(self) -> int:
        return len(self.path) - 1


class PowerStateMachineModel:
    """Executable FSM over declared power states."""

    def __init__(
        self,
        name: str,
        states: list[PowerStateDef],
        transitions: list[TransitionDef],
        *,
        power_domain: str | None = None,
    ) -> None:
        if not states:
            raise XpdlError(f"power state machine {name!r} has no states")
        self.name = name
        self.power_domain = power_domain
        self.states = {s.name: s for s in states}
        self.order = [s.name for s in states]
        self.transitions: dict[tuple[str, str], TransitionDef] = {}
        for t in transitions:
            if t.head not in self.states or t.tail not in self.states:
                raise XpdlError(
                    f"transition {t.head}->{t.tail} of PSM {name!r} names "
                    "an undeclared state"
                )
            self.transitions[(t.head, t.tail)] = t
        self._plan_cache: dict[tuple[str, str, str], SwitchPlan] = {}

    # -- construction from model elements ----------------------------------
    @staticmethod
    def from_element(psm: ModelElement) -> "PowerStateMachineModel":
        if not isinstance(psm, PowerStateMachine):
            raise XpdlError(
                f"expected a power_state_machine element, got <{psm.kind}>"
            )
        states = []
        for s in psm.find_all(PowerState):
            f = s.frequency or Quantity(0.0, FREQUENCY)
            p = s.power or Quantity(0.0, POWER)
            states.append(PowerStateDef(s.name or f"S{len(states)}", f, p))
        transitions = []
        for t in psm.find_all(Transition):
            transitions.append(
                TransitionDef(
                    t.attrs.get("head", ""),
                    t.attrs.get("tail", ""),
                    t.time or Quantity(0.0, TIME),
                    t.energy or Quantity(0.0, ENERGY),
                )
            )
        return PowerStateMachineModel(
            psm.name or psm.ident or "psm",
            states,
            transitions,
            power_domain=psm.attrs.get("power_domain"),
        )

    # -- queries ---------------------------------------------------------------
    def state(self, name: str) -> PowerStateDef:
        try:
            return self.states[name]
        except KeyError:
            raise XpdlError(
                f"PSM {self.name!r} has no state {name!r}; "
                f"states: {', '.join(self.order)}"
            ) from None

    def state_names(self) -> list[str]:
        return list(self.order)

    def by_frequency(self) -> list[PowerStateDef]:
        """States sorted by ascending frequency."""
        return sorted(self.states.values(), key=lambda s: s.frequency.magnitude)

    def fastest(self) -> PowerStateDef:
        return self.by_frequency()[-1]

    def slowest_running(self) -> PowerStateDef:
        running = [s for s in self.by_frequency() if not s.is_off()]
        if not running:
            raise XpdlError(f"PSM {self.name!r} has no running state")
        return running[0]

    def idle_state(self) -> PowerStateDef:
        """The lowest-power state (sleep state if one is modeled)."""
        return min(self.states.values(), key=lambda s: s.power.magnitude)

    def is_complete(self) -> bool:
        """True when every ordered state pair has a direct transition."""
        n = len(self.states)
        return len(self.transitions) >= n * (n - 1)

    def missing_transitions(self) -> list[tuple[str, str]]:
        return [
            (a, b)
            for a in self.order
            for b in self.order
            if a != b and (a, b) not in self.transitions
        ]

    # -- switching ------------------------------------------------------------------
    def switch_plan(
        self, src: str, dst: str, *, optimize: str = "time"
    ) -> SwitchPlan:
        """Cheapest switching sequence from ``src`` to ``dst``.

        ``optimize`` is ``"time"`` or ``"energy"``.  Uses the direct
        transition when declared; otherwise searches multi-hop sequences
        (Dijkstra over declared transitions).
        """
        if src == dst:
            return SwitchPlan((src,), Quantity(0.0, TIME), Quantity(0.0, ENERGY), True)
        self.state(src)
        self.state(dst)
        key = (src, dst, optimize)
        cached = self._plan_cache.get(key)
        if cached is not None:
            return cached
        # Dijkstra on the chosen cost metric; a declared direct transition
        # is still taken unless a multi-hop sequence is strictly cheaper.
        metric = (lambda t: t.time.magnitude) if optimize == "time" else (
            lambda t: t.energy.magnitude
        )
        dist: dict[str, float] = {src: 0.0}
        prev: dict[str, tuple[str, TransitionDef]] = {}
        heap: list[tuple[float, str]] = [(0.0, src)]
        while heap:
            d, cur = heapq.heappop(heap)
            if cur == dst:
                break
            if d > dist.get(cur, float("inf")):
                continue
            for (h, t), tr in self.transitions.items():
                if h != cur:
                    continue
                nd = d + metric(tr)
                if nd < dist.get(t, float("inf")):
                    dist[t] = nd
                    prev[t] = (cur, tr)
                    heapq.heappush(heap, (nd, t))
        if dst not in prev:
            raise XpdlError(
                f"PSM {self.name!r}: no switching path {src} -> {dst}"
            )
        path = [dst]
        total_t = Quantity(0.0, TIME)
        total_e = Quantity(0.0, ENERGY)
        cur = dst
        while cur != src:
            p, tr = prev[cur]
            total_t = total_t + tr.time
            total_e = total_e + tr.energy
            path.append(p)
            cur = p
        full_path = tuple(reversed(path))
        plan = SwitchPlan(
            full_path, total_t, total_e, direct=len(full_path) == 2
        )
        self._plan_cache[key] = plan
        return plan


@dataclass
class PsmCursor:
    """Tracks the current state of one PSM instance, accumulating costs."""

    psm: PowerStateMachineModel
    current: str
    switch_time: Quantity = field(
        default_factory=lambda: Quantity(0.0, TIME)
    )
    switch_energy: Quantity = field(
        default_factory=lambda: Quantity(0.0, ENERGY)
    )
    switches: int = 0

    def go(self, dst: str, *, optimize: str = "time") -> SwitchPlan:
        plan = self.psm.switch_plan(self.current, dst, optimize=optimize)
        self.switch_time = self.switch_time + plan.time
        self.switch_energy = self.switch_energy + plan.energy
        self.switches += plan.hops
        self.current = dst
        return plan

    @property
    def state(self) -> PowerStateDef:
        return self.psm.state(self.current)
