"""Per-instruction dynamic energy model (paper Listing 14).

Each instruction's dynamic energy is either a constant, a table of
(frequency, energy) samples — "a function / value table depending on
frequency, which was experimentally confirmed" — or unknown (``?``), to be
derived by microbenchmarking.  Lookup interpolates linearly inside the table
and clamps at its edges (extrapolation from a data sheet is guesswork; the
nearest measured point is the honest answer).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..diagnostics import XpdlError
from ..model import DataPoint, Inst, Instructions, ModelElement
from ..units import ENERGY, FREQUENCY, Quantity


@dataclass
class InstructionEntry:
    """Energy data for one instruction."""

    name: str
    constant: Quantity | None = None
    table_freq: np.ndarray | None = None  # Hz, ascending
    table_energy: np.ndarray | None = None  # J
    mb_ref: str | None = None
    source: str = "descriptor"  # 'descriptor' | 'microbenchmark'

    def is_known(self) -> bool:
        return self.constant is not None or self.table_freq is not None

    def energy_at(self, frequency: Quantity | None = None) -> Quantity:
        """Dynamic energy of one execution at ``frequency``."""
        if self.table_freq is not None:
            if frequency is None:
                raise XpdlError(
                    f"instruction {self.name!r} is frequency-dependent; "
                    "a frequency is required"
                )
            f = frequency.magnitude
            e = float(np.interp(f, self.table_freq, self.table_energy))
            return Quantity(e, ENERGY)
        if self.constant is not None:
            return self.constant
        raise XpdlError(
            f"instruction {self.name!r} has no energy data; "
            "run microbenchmarking first"
        )


class InstructionEnergyModel:
    """Energy model over a whole instruction set."""

    def __init__(self, name: str, entries: list[InstructionEntry]):
        self.name = name
        self.entries = {e.name: e for e in entries}
        self.suite_ref: str | None = None

    # -- construction ----------------------------------------------------------
    @staticmethod
    def from_element(instrs: ModelElement) -> "InstructionEnergyModel":
        if not isinstance(instrs, Instructions):
            raise XpdlError(f"expected <instructions>, got <{instrs.kind}>")
        entries: list[InstructionEntry] = []
        for inst in instrs.find_all(Inst):
            name = inst.name or f"inst{len(entries)}"
            points = []
            for dp in inst.find_all(DataPoint):
                f = dp.frequency
                e = dp.energy
                if f is not None and e is not None:
                    points.append((f.magnitude, e.magnitude))
            entry = InstructionEntry(name=name, mb_ref=inst.attrs.get("mb"))
            if points:
                points.sort()
                entry.table_freq = np.array([p[0] for p in points])
                entry.table_energy = np.array([p[1] for p in points])
            else:
                entry.constant = inst.energy  # None when '?'
            entries.append(entry)
        model = InstructionEnergyModel(
            instrs.name or instrs.ident or "instructions", entries
        )
        model.suite_ref = instrs.attrs.get("mb")
        return model

    # -- access ---------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self.entries

    def names(self) -> list[str]:
        return sorted(self.entries)

    def entry(self, name: str) -> InstructionEntry:
        try:
            return self.entries[name]
        except KeyError:
            raise XpdlError(
                f"instruction set {self.name!r} has no instruction {name!r}"
            ) from None

    def energy(self, name: str, frequency: Quantity | None = None) -> Quantity:
        return self.entry(name).energy_at(frequency)

    def unknown_instructions(self) -> list[str]:
        """Instructions still needing microbenchmarking."""
        return sorted(
            n for n, e in self.entries.items() if not e.is_known()
        )

    # -- updates (bootstrapping) --------------------------------------------------------
    def set_energy(
        self,
        name: str,
        energy: Quantity,
        *,
        frequency: Quantity | None = None,
        source: str = "microbenchmark",
    ) -> None:
        """Record a derived energy value.

        With ``frequency`` the value becomes/extends a frequency table;
        without, it replaces the constant.
        """
        entry = self.entries.setdefault(name, InstructionEntry(name))
        entry.source = source
        if frequency is None:
            entry.constant = energy
            return
        f, e = frequency.magnitude, energy.magnitude
        if entry.table_freq is None:
            entry.table_freq = np.array([f])
            entry.table_energy = np.array([e])
        else:
            idx = int(np.searchsorted(entry.table_freq, f))
            if (
                idx < len(entry.table_freq)
                and entry.table_freq[idx] == f
            ):
                entry.table_energy[idx] = e
            else:
                entry.table_freq = np.insert(entry.table_freq, idx, f)
                entry.table_energy = np.insert(entry.table_energy, idx, e)

    def write_back(self, instrs: ModelElement) -> int:
        """Write derived energies into an ``<instructions>`` element tree.

        Returns the number of entries updated.  Constant energies replace
        the '?' placeholder in pJ; tables become ``<data>`` rows.
        """
        updated = 0
        by_name = {i.name: i for i in instrs.find_all(Inst) if i.name}
        for name, entry in self.entries.items():
            inst = by_name.get(name)
            if inst is None or entry.source != "microbenchmark":
                continue
            if entry.constant is not None:
                inst.set_quantity("energy", entry.constant, unit="pJ")
                updated += 1
            elif entry.table_freq is not None:
                for c in list(inst.children):
                    if isinstance(c, DataPoint):
                        inst.remove(c)
                for f, e in zip(entry.table_freq, entry.table_energy):
                    dp = DataPoint(attrs={})
                    dp.set_quantity("frequency", Quantity(float(f), FREQUENCY), unit="GHz")
                    dp.set_quantity("energy", Quantity(float(e), ENERGY), unit="nJ")
                    inst.add(dp)
                inst.attrs.pop("energy", None)
                updated += 1
        return updated
