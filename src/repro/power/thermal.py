"""Thermal modeling extension.

Sec. II-A motivates XPDL's hardware-structural organization precisely
because "power consumption and *temperature* metrics and measurement values
naturally can be attributed to coarse-grain hardware blocks".  This module
gives those blocks a first-order thermal model and a DVFS throttle on top:

* a component with ``thermal_resistance`` (K/W, junction-to-ambient),
  ``thermal_capacitance`` (J/K) and ``max_temperature`` attributes becomes
  a :class:`ThermalNode` — the standard lumped RC:
  ``C dT/dt = P - (T - T_amb) / R``;
* :class:`ThermalThrottler` runs a sustained workload against a PSM,
  stepping the RC model and moving down/up the DVFS ladder around the
  component's temperature limit — the mechanism real governors implement
  with exactly the data XPDL models.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..diagnostics import XpdlError
from ..model import ModelElement
from ..units import POWER, TEMPERATURE, Quantity
from .psm import PowerStateMachineModel

#: Default ambient temperature (25 C above absolute-zero-free delta scale).
DEFAULT_AMBIENT_C = 25.0


@dataclass
class ThermalNode:
    """First-order (lumped RC) thermal model of one hardware block."""

    name: str
    resistance_k_per_w: float
    capacitance_j_per_k: float
    ambient_c: float = DEFAULT_AMBIENT_C
    max_temperature_c: float | None = None
    temperature_c: float = field(default=DEFAULT_AMBIENT_C)

    def __post_init__(self) -> None:
        if self.resistance_k_per_w <= 0 or self.capacitance_j_per_k <= 0:
            raise XpdlError(
                f"thermal node {self.name!r} needs positive R and C"
            )
        self.temperature_c = self.ambient_c

    # -- physics -----------------------------------------------------------
    @property
    def time_constant_s(self) -> float:
        return self.resistance_k_per_w * self.capacitance_j_per_k

    def steady_state_c(self, power_w: float) -> float:
        """Temperature this power level settles at."""
        return self.ambient_c + power_w * self.resistance_k_per_w

    def step(self, dt_s: float, power_w: float) -> float:
        """Advance the RC model by ``dt_s`` under constant ``power_w``.

        Uses the exact exponential solution, so large steps stay stable.
        """
        t_inf = self.steady_state_c(power_w)
        alpha = math.exp(-dt_s / self.time_constant_s)
        self.temperature_c = t_inf + (self.temperature_c - t_inf) * alpha
        return self.temperature_c

    def reset(self) -> None:
        self.temperature_c = self.ambient_c

    def over_limit(self, margin_c: float = 0.0) -> bool:
        if self.max_temperature_c is None:
            return False
        return self.temperature_c > self.max_temperature_c - margin_c

    # -- construction from descriptors ------------------------------------------
    @staticmethod
    def from_element(
        elem: ModelElement, *, ambient_c: float = DEFAULT_AMBIENT_C
    ) -> "ThermalNode | None":
        """Thermal node for a component, or None if not thermally modeled."""
        r = elem.quantity("thermal_resistance", TEMPERATURE / POWER)
        c = elem.quantity("thermal_capacitance")
        if r is None or c is None:
            return None
        tmax = elem.quantity("max_temperature", TEMPERATURE)
        return ThermalNode(
            name=elem.label(),
            resistance_k_per_w=r.magnitude,
            capacitance_j_per_k=c.magnitude,
            ambient_c=ambient_c,
            max_temperature_c=tmax.magnitude if tmax is not None else None,
        )


@dataclass
class ThrottleSample:
    """One simulation step of the throttler."""

    time_s: float
    state: str
    frequency_hz: float
    power_w: float
    temperature_c: float


@dataclass
class ThrottleTrace:
    """The throttler's full trajectory plus summary metrics."""

    samples: list[ThrottleSample] = field(default_factory=list)
    throttle_events: int = 0

    def average_frequency_hz(self) -> float:
        if not self.samples:
            return 0.0
        return sum(s.frequency_hz for s in self.samples) / len(self.samples)

    def max_temperature_c(self) -> float:
        return max((s.temperature_c for s in self.samples), default=0.0)

    def time_throttled_s(self, full_state: str) -> float:
        if not self.samples:
            return 0.0
        dt = self.samples[0].time_s if len(self.samples) == 1 else (
            self.samples[1].time_s - self.samples[0].time_s
        )
        return sum(dt for s in self.samples if s.state != full_state)


class ThermalThrottler:
    """A thermal governor over a PSM and an RC node.

    Policy (mirrors common hardware governors): when the temperature
    crosses ``limit - margin``, step one state down the DVFS ladder; when
    it cools below ``limit - margin - hysteresis``, step back up.
    """

    def __init__(
        self,
        psm: PowerStateMachineModel,
        node: ThermalNode,
        *,
        margin_c: float = 3.0,
        hysteresis_c: float = 5.0,
    ) -> None:
        if node.max_temperature_c is None:
            raise XpdlError(
                f"thermal node {node.name!r} declares no max_temperature"
            )
        self.psm = psm
        self.node = node
        self.margin_c = margin_c
        self.hysteresis_c = hysteresis_c
        self._ladder = [s for s in psm.by_frequency() if not s.is_off()]

    def run(
        self,
        duration_s: float,
        *,
        dt_s: float = 0.05,
        dynamic_power_w: float = 0.0,
        start_state: str | None = None,
    ) -> ThrottleTrace:
        """Simulate a sustained load for ``duration_s``.

        ``dynamic_power_w`` is the extra activity power at the fastest
        level; it scales with f^2 down the ladder (voltage tracks
        frequency).
        """
        trace = ThrottleTrace()
        idx = (
            next(
                i
                for i, s in enumerate(self._ladder)
                if s.name == start_state
            )
            if start_state
            else len(self._ladder) - 1
        )
        f_top = self._ladder[-1].frequency.magnitude
        limit = self.node.max_temperature_c
        t = 0.0
        while t < duration_s:
            state = self._ladder[idx]
            ratio = state.frequency.magnitude / f_top
            power = (
                state.power.magnitude + dynamic_power_w * ratio * ratio
            )
            self.node.step(dt_s, power)
            trace.samples.append(
                ThrottleSample(
                    time_s=t,
                    state=state.name,
                    frequency_hz=state.frequency.magnitude,
                    power_w=power,
                    temperature_c=self.node.temperature_c,
                )
            )
            if (
                self.node.temperature_c > limit - self.margin_c
                and idx > 0
            ):
                idx -= 1
                trace.throttle_events += 1
            elif (
                self.node.temperature_c
                < limit - self.margin_c - self.hysteresis_c
                and idx < len(self._ladder) - 1
            ):
                idx += 1
            t += dt_s
        return trace
