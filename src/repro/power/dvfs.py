"""DVFS optimization over a power state machine.

The classic deployment-time question the XPDL power model answers: *given a
workload of C cycles and a deadline D, which power state (or state schedule)
minimizes energy?*  Two regimes compete:

* **race-to-idle**: run at a high state, finish early, idle in the
  lowest-power state for the rest of the deadline;
* **pace**: run at the slowest state that still meets the deadline.

Which wins depends on the state power curve and the idle power — exactly
the data the PSM carries.  :func:`optimize_state` evaluates every state
(including switching overheads to enter it and to reach idle afterwards)
and returns the full ranking, which E5's bench sweeps across deadlines to
show the crossover.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..units import ENERGY, TIME, Quantity
from .psm import PowerStateMachineModel


@dataclass
class StateChoice:
    """Evaluation of running the whole workload in one state."""

    state: str
    feasible: bool
    run_time: Quantity
    idle_time: Quantity
    energy: Quantity
    switch_energy: Quantity

    @property
    def total_energy(self) -> Quantity:
        return self.energy + self.switch_energy


def evaluate_state(
    psm: PowerStateMachineModel,
    state_name: str,
    cycles: float,
    deadline: Quantity,
    *,
    start_state: str | None = None,
    idle_state: str | None = None,
    dynamic_energy_per_cycle: Quantity | None = None,
) -> StateChoice:
    """Cost of running ``cycles`` in ``state_name`` within ``deadline``.

    The remaining deadline is spent in ``idle_state`` (default: the PSM's
    lowest-power state).  Switch costs from ``start_state`` into the run
    state and from the run state into idle are included.
    """
    state = psm.state(state_name)
    idle = psm.state(idle_state) if idle_state else psm.idle_state()
    start = start_state or state_name

    if state.is_off():
        return StateChoice(
            state_name,
            False,
            Quantity(float("inf"), TIME),
            Quantity(0.0, TIME),
            Quantity(float("inf"), ENERGY),
            Quantity(0.0, ENERGY),
        )
    run_time = Quantity(cycles / state.frequency.magnitude, TIME)
    switch_energy = Quantity(0.0, ENERGY)
    switch_time = Quantity(0.0, TIME)
    if start != state_name:
        plan = psm.switch_plan(start, state_name)
        switch_energy = switch_energy + plan.energy
        switch_time = switch_time + plan.time
    total_busy = run_time + switch_time
    idle_time = deadline - total_busy
    feasible = idle_time.magnitude >= 0.0
    energy = state.power * run_time
    if dynamic_energy_per_cycle is not None:
        energy = energy + dynamic_energy_per_cycle * cycles
    if feasible and idle_time.magnitude > 0.0 and idle.name != state_name:
        plan = psm.switch_plan(state_name, idle.name)
        # Entering idle only pays off if its overhead fits the slack.
        if plan.time.magnitude <= idle_time.magnitude:
            switch_energy = switch_energy + plan.energy
            idle_run = idle_time - plan.time
            energy = energy + idle.power * idle_run
        else:
            energy = energy + state.power * idle_time
    elif feasible and idle_time.magnitude > 0.0:
        energy = energy + idle.power * idle_time
    return StateChoice(
        state_name, feasible, run_time, max(idle_time, Quantity(0.0, TIME), key=lambda q: q.magnitude), energy, switch_energy
    )


def optimize_state(
    psm: PowerStateMachineModel,
    cycles: float,
    deadline: Quantity,
    *,
    start_state: str | None = None,
    dynamic_energy_per_cycle: Quantity | None = None,
) -> list[StateChoice]:
    """Rank all running states for the workload; best (feasible) first."""
    choices = [
        evaluate_state(
            psm,
            s.name,
            cycles,
            deadline,
            start_state=start_state,
            dynamic_energy_per_cycle=dynamic_energy_per_cycle,
        )
        for s in psm.by_frequency()
        if not s.is_off()
    ]
    choices.sort(
        key=lambda c: (not c.feasible, c.total_energy.magnitude)
    )
    return choices


def best_state(
    psm: PowerStateMachineModel,
    cycles: float,
    deadline: Quantity,
    **kwargs,
) -> StateChoice | None:
    """The energy-optimal feasible state, or None if the deadline is
    unmeetable at every state."""
    ranked = optimize_state(psm, cycles, deadline, **kwargs)
    for choice in ranked:
        if choice.feasible:
            return choice
    return None


def energy_delay_product(choice: StateChoice) -> float:
    """EDP of a state choice — a common secondary metric."""
    return choice.total_energy.magnitude * choice.run_time.magnitude


def thermally_sustainable_states(
    psm: PowerStateMachineModel,
    node,
    *,
    dynamic_power_w: float = 0.0,
    margin_c: float = 0.0,
) -> list[str]:
    """Running states whose steady-state temperature stays under the limit.

    Combines the two data sets the descriptors carry — the PSM's per-state
    power and the component's thermal RC + ``max_temperature`` — into the
    feasible DVFS range for *sustained* operation.  ``dynamic_power_w`` is
    activity power at the fastest level, scaled by (f/f_top)^2 down the
    ladder.  States above the limit remain usable in bursts (the throttler
    governs those); this filter is for steady-state planning.
    """
    from ..diagnostics import XpdlError

    if node.max_temperature_c is None:
        raise XpdlError(
            f"thermal node {node.name!r} declares no max_temperature"
        )
    running = [s for s in psm.by_frequency() if not s.is_off()]
    if not running:
        return []
    f_top = running[-1].frequency.magnitude
    out = []
    for s in running:
        ratio = s.frequency.magnitude / f_top
        power = s.power.magnitude + dynamic_power_w * ratio * ratio
        if node.steady_state_c(power) <= node.max_temperature_c - margin_c:
            out.append(s.name)
    return out


def best_sustainable_state(
    psm: PowerStateMachineModel,
    node,
    cycles: float,
    deadline: Quantity,
    *,
    dynamic_power_w: float = 0.0,
    margin_c: float = 0.0,
    **kwargs,
) -> StateChoice | None:
    """Energy-optimal state that is both deadline- and thermally-feasible."""
    allowed = set(
        thermally_sustainable_states(
            psm, node, dynamic_power_w=dynamic_power_w, margin_c=margin_c
        )
    )
    ranked = optimize_state(psm, cycles, deadline, **kwargs)
    for choice in ranked:
        if choice.feasible and choice.state in allowed:
            return choice
    return None
