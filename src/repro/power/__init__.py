"""Power and energy modeling: PSMs, power domains, instruction energy,
hierarchical accounting and DVFS optimization."""

from .psm import (
    PowerStateDef,
    PowerStateMachineModel,
    PsmCursor,
    SwitchPlan,
    TransitionDef,
)
from .domains import (
    ConditionClause,
    PowerDomainDef,
    PowerDomainSet,
    ResidencyRecord,
    ResidencyTracker,
    parse_condition,
)
from .instr import InstructionEnergyModel, InstructionEntry
from .energy import (
    EnergyAccountant,
    EnergyBreakdown,
    Phase,
    PhaseCost,
)
from .thermal import (
    ThermalNode,
    ThermalThrottler,
    ThrottleSample,
    ThrottleTrace,
)
from .dvfs import (
    StateChoice,
    best_state,
    best_sustainable_state,
    energy_delay_product,
    evaluate_state,
    optimize_state,
    thermally_sustainable_states,
)

__all__ = [
    "PowerStateDef",
    "PowerStateMachineModel",
    "PsmCursor",
    "SwitchPlan",
    "TransitionDef",
    "ConditionClause",
    "PowerDomainDef",
    "PowerDomainSet",
    "ResidencyRecord",
    "ResidencyTracker",
    "parse_condition",
    "InstructionEnergyModel",
    "InstructionEntry",
    "EnergyAccountant",
    "EnergyBreakdown",
    "Phase",
    "PhaseCost",
    "ThermalNode",
    "ThermalThrottler",
    "ThrottleSample",
    "ThrottleTrace",
    "StateChoice",
    "best_state",
    "best_sustainable_state",
    "thermally_sustainable_states",
    "energy_delay_product",
    "evaluate_state",
    "optimize_state",
]
