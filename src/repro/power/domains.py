"""Power domains with switching semantics (paper Listing 12).

A power domain ("power island") is a group of hardware blocks switched
together.  ``enableSwitchOff="false"`` marks the main island (always on);
``switchoffCondition`` expresses dependencies between islands — the Myriad1
CMX memory island "can only be turned off if all the Shave cores are
switched off", written ``switchoffCondition="Shave_pds off"``.

The condition mini-language (induced from the paper's one example, kept
deliberately small):

    condition := clause ('&&' clause)*
    clause    := NAME ('off' | 'on')

where ``NAME`` is a power domain name or the name of a *group* of power
domains; a group clause quantifies over every member.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..diagnostics import XpdlError
from ..model import Group, ModelElement, PowerDomain, PowerDomains
from ..units import ENERGY, POWER, TIME, Quantity


@dataclass(frozen=True, slots=True)
class ConditionClause:
    """One ``NAME on|off`` clause of a switch-off condition."""

    name: str
    required_state: str  # 'on' | 'off'


def parse_condition(text: str) -> tuple[ConditionClause, ...]:
    """Parse a ``switchoffCondition`` string."""
    clauses: list[ConditionClause] = []
    for part in text.split("&&"):
        tokens = part.split()
        if len(tokens) != 2 or tokens[1] not in ("on", "off"):
            raise XpdlError(
                f"malformed switchoffCondition clause {part.strip()!r}; "
                "expected '<domain-or-group> on|off'"
            )
        clauses.append(ConditionClause(tokens[0], tokens[1]))
    return tuple(clauses)


@dataclass
class PowerDomainDef:
    """One power island."""

    name: str
    enable_switch_off: bool
    condition: tuple[ConditionClause, ...]
    member_kinds: tuple[str, ...]
    groups: tuple[str, ...] = ()  # groups this domain belongs to


class PowerDomainSet:
    """All islands of a component, with on/off state tracking.

    Domain state changes are validated: the main island rejects switch-off,
    and conditioned islands check their clauses against the *current* states
    of the referenced domains/groups.
    """

    def __init__(self, name: str, domains: list[PowerDomainDef]) -> None:
        self.name = name
        self.domains = {d.name: d for d in domains}
        self.groups: dict[str, list[str]] = {}
        for d in domains:
            for g in d.groups:
                self.groups.setdefault(g, []).append(d.name)
        self.state: dict[str, bool] = {d.name: True for d in domains}  # True=on

    # -- construction --------------------------------------------------------
    @staticmethod
    def from_element(pds: ModelElement) -> "PowerDomainSet":
        if not isinstance(pds, PowerDomains):
            raise XpdlError(f"expected <power_domains>, got <{pds.kind}>")
        domains: list[PowerDomainDef] = []
        seen: set[str] = set()

        def rec(elem: ModelElement, group_stack: tuple[str, ...]) -> None:
            for child in elem.children:
                if isinstance(child, Group):
                    gname = child.name or child.ident or ""
                    rec(child, group_stack + ((gname,) if gname else ()))
                elif isinstance(child, PowerDomain):
                    base = child.name or child.ident or "pd"
                    name = base
                    if name in seen:
                        # Expanded group members share the declared name;
                        # disambiguate by rank (or a running counter).
                        rank = child.attrs.get("rank")
                        name = f"{base}_{rank}" if rank is not None else base
                        serial = 1
                        while name in seen:
                            name = f"{base}#{serial}"
                            serial += 1
                    seen.add(name)
                    cond_text = child.attrs.get("switchoffCondition")
                    domains.append(
                        PowerDomainDef(
                            name=name,
                            enable_switch_off=bool(child.enable_switch_off),
                            condition=(
                                parse_condition(cond_text) if cond_text else ()
                            ),
                            member_kinds=tuple(
                                f"{m.kind}:{m.attrs.get('type', m.label())}"
                                for m in child.children
                            ),
                            groups=group_stack,
                        )
                    )

        rec(pds, ())
        return PowerDomainSet(pds.name or pds.ident or "power_domains", domains)

    # -- queries ------------------------------------------------------------------
    def names(self) -> list[str]:
        return list(self.domains)

    def is_on(self, name: str) -> bool:
        self._require(name)
        return self.state[name]

    def group_members(self, group: str) -> list[str]:
        return list(self.groups.get(group, []))

    def _require(self, name: str) -> PowerDomainDef:
        d = self.domains.get(name)
        if d is None:
            raise XpdlError(
                f"unknown power domain {name!r}; "
                f"domains: {', '.join(self.domains)}"
            )
        return d

    # -- condition evaluation ---------------------------------------------------------
    def _clause_holds(self, clause: ConditionClause) -> bool:
        want_on = clause.required_state == "on"
        if clause.name in self.groups:
            members = self.groups[clause.name]
            return all(self.state[m] == want_on for m in members)
        if clause.name in self.domains:
            return self.state[clause.name] == want_on
        raise XpdlError(
            f"switchoffCondition references unknown domain/group "
            f"{clause.name!r}"
        )

    def can_switch_off(self, name: str) -> tuple[bool, str]:
        """Whether ``name`` may be switched off now; (ok, reason)."""
        d = self._require(name)
        if not d.enable_switch_off:
            return False, f"{name} is a main power domain (enableSwitchOff=false)"
        for clause in d.condition:
            if not self._clause_holds(clause):
                return (
                    False,
                    f"condition '{clause.name} {clause.required_state}' "
                    "does not hold",
                )
        return True, ""

    # -- switching ------------------------------------------------------------------
    def switch_off(self, name: str) -> None:
        ok, reason = self.can_switch_off(name)
        if not ok:
            raise XpdlError(f"cannot switch off {name!r}: {reason}")
        self.state[name] = False

    def switch_on(self, name: str) -> None:
        self._require(name)
        self.state[name] = True

    def on_domains(self) -> list[str]:
        return [n for n, on in self.state.items() if on]

    def off_domains(self) -> list[str]:
        return [n for n, on in self.state.items() if not on]


@dataclass
class ResidencyRecord:
    """Accumulated on-time/energy of one domain over a simulated schedule."""

    domain: str
    on_time: Quantity = field(default_factory=lambda: Quantity(0.0, TIME))
    off_time: Quantity = field(default_factory=lambda: Quantity(0.0, TIME))
    energy: Quantity = field(default_factory=lambda: Quantity(0.0, ENERGY))


class ResidencyTracker:
    """Integrates per-domain residency and static energy over time.

    ``advance(dt, power_by_domain)`` charges each *on* domain its static
    power for ``dt``; off domains accumulate off-time only.
    """

    def __init__(self, domains: PowerDomainSet) -> None:
        self.domains = domains
        self.records = {
            n: ResidencyRecord(n) for n in domains.names()
        }
        self.total_time = Quantity(0.0, TIME)

    def advance(self, dt: Quantity, power_by_domain: dict[str, Quantity]) -> None:
        self.total_time = self.total_time + dt
        for name, rec in self.records.items():
            if self.domains.is_on(name):
                rec.on_time = rec.on_time + dt
                p = power_by_domain.get(name, Quantity(0.0, POWER))
                rec.energy = rec.energy + p * dt
            else:
                rec.off_time = rec.off_time + dt

    def total_energy(self) -> Quantity:
        total = Quantity(0.0, ENERGY)
        for rec in self.records.values():
            total = total + rec.energy
        return total
