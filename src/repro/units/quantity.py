"""Unit-aware quantities.

A :class:`Quantity` stores its magnitude normalized to base units (bytes,
seconds, joules, ...) together with its :class:`Dimension`.  Arithmetic
checks dimensions; conversion and formatting go through a
:class:`~repro.units.registry.UnitRegistry`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Union

from ..diagnostics import UnitError
from .dimension import DIMENSIONLESS, Dimension, dimension_name
from .registry import DEFAULT_REGISTRY, UnitRegistry

Number = Union[int, float]


@dataclass(frozen=True, slots=True)
class Quantity:
    """A magnitude in base units plus its dimension."""

    magnitude: float
    dimension: Dimension

    # -- constructors ------------------------------------------------------
    @staticmethod
    def of(
        value: Number,
        unit: str,
        registry: UnitRegistry = DEFAULT_REGISTRY,
    ) -> "Quantity":
        """Build a quantity from a value and a spelled unit."""
        u = registry.get(unit)
        return Quantity(float(value) * u.factor, u.dimension)

    @staticmethod
    def parse(
        text: str,
        registry: UnitRegistry = DEFAULT_REGISTRY,
        *,
        default_unit: str | None = None,
    ) -> "Quantity":
        """Parse ``"16 GiB"``, ``"2GHz"``, ``"3.5"`` (with ``default_unit``).

        Accepts an optional space between number and unit.
        """
        s = text.strip()
        i = 0
        n = len(s)
        while i < n and (s[i].isdigit() or s[i] in "+-.eE"):
            # Stop a bare 'e'/'E' from eating a unit like 'eV'; require a
            # digit after the exponent marker.
            if s[i] in "eE" and not (i + 1 < n and (s[i + 1].isdigit() or s[i + 1] in "+-")):
                break
            i += 1
        num_text, unit_text = s[:i].strip(), s[i:].strip()
        if not num_text:
            raise UnitError(f"cannot parse quantity from {text!r}: no number")
        try:
            value = float(num_text)
        except ValueError:
            raise UnitError(f"cannot parse quantity from {text!r}") from None
        if not unit_text:
            if default_unit is None:
                return Quantity(value, DIMENSIONLESS)
            unit_text = default_unit
        return Quantity.of(value, unit_text, registry)

    @staticmethod
    def dimensionless(value: Number) -> "Quantity":
        return Quantity(float(value), DIMENSIONLESS)

    # -- conversion --------------------------------------------------------
    def to(self, unit: str, registry: UnitRegistry = DEFAULT_REGISTRY) -> float:
        """Magnitude expressed in ``unit``; dimension-checked."""
        u = registry.get(unit)
        if u.dimension != self.dimension:
            raise UnitError(
                f"cannot express {dimension_name(self.dimension)} in "
                f"{unit!r} ({dimension_name(u.dimension)})"
            )
        return self.magnitude / u.factor

    def format(
        self,
        unit: str | None = None,
        registry: UnitRegistry = DEFAULT_REGISTRY,
        *,
        precision: int = 6,
    ) -> str:
        if self.dimension == DIMENSIONLESS and unit is None:
            return f"{self.magnitude:.{precision}g}"
        sym = unit or registry.canonical_symbol(self.dimension)
        return f"{self.to(sym, registry):.{precision}g} {sym}"

    # -- arithmetic ---------------------------------------------------------
    def _require_same(self, other: "Quantity", op: str) -> None:
        if other.dimension != self.dimension:
            raise UnitError(
                f"cannot {op} {dimension_name(self.dimension)} and "
                f"{dimension_name(other.dimension)}"
            )

    def __add__(self, other: "Quantity") -> "Quantity":
        self._require_same(other, "add")
        return Quantity(self.magnitude + other.magnitude, self.dimension)

    def __sub__(self, other: "Quantity") -> "Quantity":
        self._require_same(other, "subtract")
        return Quantity(self.magnitude - other.magnitude, self.dimension)

    def __mul__(self, other: "Quantity | Number") -> "Quantity":
        if isinstance(other, Quantity):
            return Quantity(
                self.magnitude * other.magnitude, self.dimension * other.dimension
            )
        return Quantity(self.magnitude * float(other), self.dimension)

    __rmul__ = __mul__

    def __truediv__(self, other: "Quantity | Number") -> "Quantity":
        if isinstance(other, Quantity):
            return Quantity(
                self.magnitude / other.magnitude, self.dimension / other.dimension
            )
        return Quantity(self.magnitude / float(other), self.dimension)

    def __rtruediv__(self, other: Number) -> "Quantity":
        return Quantity(float(other) / self.magnitude, DIMENSIONLESS / self.dimension)

    def __neg__(self) -> "Quantity":
        return Quantity(-self.magnitude, self.dimension)

    def __abs__(self) -> "Quantity":
        return Quantity(abs(self.magnitude), self.dimension)

    def __pow__(self, k: int) -> "Quantity":
        return Quantity(self.magnitude**k, self.dimension**k)

    # -- comparison ----------------------------------------------------------
    def __lt__(self, other: "Quantity") -> bool:
        self._require_same(other, "compare")
        return self.magnitude < other.magnitude

    def __le__(self, other: "Quantity") -> bool:
        self._require_same(other, "compare")
        return self.magnitude <= other.magnitude

    def __gt__(self, other: "Quantity") -> bool:
        self._require_same(other, "compare")
        return self.magnitude > other.magnitude

    def __ge__(self, other: "Quantity") -> bool:
        self._require_same(other, "compare")
        return self.magnitude >= other.magnitude

    def close_to(self, other: "Quantity", *, rel: float = 1e-9, abs_: float = 0.0) -> bool:
        self._require_same(other, "compare")
        return math.isclose(self.magnitude, other.magnitude, rel_tol=rel, abs_tol=abs_)

    def is_dimensionless(self) -> bool:
        return self.dimension == DIMENSIONLESS

    def __float__(self) -> float:
        if not self.is_dimensionless():
            raise UnitError(
                f"refusing to coerce {dimension_name(self.dimension)} to bare float"
            )
        return self.magnitude

    def __str__(self) -> str:
        try:
            return self.format()
        except UnitError:
            return f"{self.magnitude:.6g} [{self.dimension}]"
