"""Unit-aware quantities and the XPDL paired-attribute unit convention."""

from .dimension import (
    BANDWIDTH,
    BASE_AXES,
    DIMENSIONLESS,
    ENERGY,
    FREQUENCY,
    INFORMATION,
    POWER,
    TEMPERATURE,
    TIME,
    VOLTAGE,
    Dimension,
    dimension_name,
)
from .quantity import Quantity
from .registry import DEFAULT_REGISTRY, UnitDef, UnitRegistry
from .convention import (
    SIZE_METRICS,
    UNIT_SUFFIX,
    is_placeholder,
    is_unit_attribute,
    metric_for_unit_attribute,
    read_metric,
    unit_attribute_for,
    write_metric,
)

__all__ = [
    "BANDWIDTH",
    "BASE_AXES",
    "DIMENSIONLESS",
    "ENERGY",
    "FREQUENCY",
    "INFORMATION",
    "POWER",
    "TEMPERATURE",
    "TIME",
    "VOLTAGE",
    "Dimension",
    "dimension_name",
    "Quantity",
    "DEFAULT_REGISTRY",
    "UnitDef",
    "UnitRegistry",
    "SIZE_METRICS",
    "UNIT_SUFFIX",
    "is_placeholder",
    "is_unit_attribute",
    "metric_for_unit_attribute",
    "read_metric",
    "unit_attribute_for",
    "write_metric",
]
