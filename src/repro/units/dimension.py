"""Dimension algebra for XPDL quantities.

A :class:`Dimension` is an immutable mapping from base dimensions to integer
exponents.  XPDL needs a pragmatic basis, not full SI: information (bytes),
time, energy, voltage and temperature are the base axes; power, frequency and
bandwidth are derived (J/s, 1/s, B/s).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterator, Mapping

#: Base axis names, fixed order for canonical printing.
BASE_AXES = ("byte", "second", "joule", "volt", "kelvin")


@dataclass(frozen=True, slots=True)
class Dimension:
    """Exponent vector over :data:`BASE_AXES`."""

    exponents: tuple[Fraction, ...]

    def __post_init__(self) -> None:
        if len(self.exponents) != len(BASE_AXES):
            raise ValueError("dimension exponent vector has wrong arity")

    # -- constructors ------------------------------------------------------
    @staticmethod
    def from_map(mapping: Mapping[str, int | Fraction]) -> "Dimension":
        vec = []
        for axis in BASE_AXES:
            vec.append(Fraction(mapping.get(axis, 0)))
        unknown = set(mapping) - set(BASE_AXES)
        if unknown:
            raise ValueError(f"unknown dimension axes: {sorted(unknown)}")
        return Dimension(tuple(vec))

    # -- algebra -----------------------------------------------------------
    def __mul__(self, other: "Dimension") -> "Dimension":
        return Dimension(tuple(a + b for a, b in zip(self.exponents, other.exponents)))

    def __truediv__(self, other: "Dimension") -> "Dimension":
        return Dimension(tuple(a - b for a, b in zip(self.exponents, other.exponents)))

    def __pow__(self, k: int | Fraction) -> "Dimension":
        k = Fraction(k)
        return Dimension(tuple(a * k for a in self.exponents))

    def is_dimensionless(self) -> bool:
        return all(e == 0 for e in self.exponents)

    def items(self) -> Iterator[tuple[str, Fraction]]:
        for axis, exp in zip(BASE_AXES, self.exponents):
            if exp != 0:
                yield axis, exp

    def __str__(self) -> str:
        if self.is_dimensionless():
            return "1"
        num = [
            f"{axis}^{exp}" if exp != 1 else axis
            for axis, exp in self.items()
            if exp > 0
        ]
        den = [
            f"{axis}^{-exp}" if exp != -1 else axis
            for axis, exp in self.items()
            if exp < 0
        ]
        head = "*".join(num) if num else "1"
        return head + ("/" + "/".join(den) if den else "")


DIMENSIONLESS = Dimension.from_map({})
INFORMATION = Dimension.from_map({"byte": 1})
TIME = Dimension.from_map({"second": 1})
ENERGY = Dimension.from_map({"joule": 1})
VOLTAGE = Dimension.from_map({"volt": 1})
TEMPERATURE = Dimension.from_map({"kelvin": 1})
FREQUENCY = DIMENSIONLESS / TIME
POWER = ENERGY / TIME
BANDWIDTH = INFORMATION / TIME
THERMAL_RESISTANCE = TEMPERATURE / POWER
THERMAL_CAPACITANCE = ENERGY / TEMPERATURE

#: Friendly names for common dimensions, used in error messages.
DIMENSION_NAMES: dict[Dimension, str] = {
    DIMENSIONLESS: "dimensionless",
    INFORMATION: "size",
    TIME: "time",
    ENERGY: "energy",
    VOLTAGE: "voltage",
    TEMPERATURE: "temperature",
    FREQUENCY: "frequency",
    POWER: "power",
    BANDWIDTH: "bandwidth",
    THERMAL_RESISTANCE: "thermal_resistance",
    THERMAL_CAPACITANCE: "thermal_capacitance",
}


def dimension_name(dim: Dimension) -> str:
    """Return a human-friendly name for ``dim`` (falls back to algebra form)."""
    return DIMENSION_NAMES.get(dim, str(dim))
