"""XPDL's paired-attribute unit convention.

The paper (Sec. III-A) specifies: *"For a metric such as static power, if
specified as an attribute, its unit should also be specified, in
metric_unit form such as static_power_unit for static_power.  As an
exception, the unit for the metric size is implicitly specified as unit."*

This module implements that convention: given an attribute map, pair each
metric with its unit attribute and produce :class:`Quantity` values, plus the
inverse (emitting attributes from quantities).
"""

from __future__ import annotations

from ..diagnostics import UnitError
from .dimension import Dimension
from .quantity import Quantity
from .registry import DEFAULT_REGISTRY, UnitRegistry

#: Metrics whose unit attribute is literally ``unit`` (paper's exception).
SIZE_METRICS = frozenset({"size"})

#: Attribute-name suffix carrying the unit for a metric attribute.
UNIT_SUFFIX = "_unit"


def unit_attribute_for(metric: str) -> str:
    """Name of the attribute that carries ``metric``'s unit."""
    if metric in SIZE_METRICS:
        return "unit"
    return metric + UNIT_SUFFIX


def is_unit_attribute(name: str) -> bool:
    """True when ``name`` is a unit carrier rather than a metric itself."""
    return name == "unit" or name.endswith(UNIT_SUFFIX)


def metric_for_unit_attribute(name: str) -> str:
    """Inverse of :func:`unit_attribute_for`."""
    if name == "unit":
        return "size"
    if name.endswith(UNIT_SUFFIX):
        return name[: -len(UNIT_SUFFIX)]
    raise ValueError(f"{name!r} is not a unit attribute")


def read_metric(
    attrs: dict[str, str],
    metric: str,
    *,
    registry: UnitRegistry = DEFAULT_REGISTRY,
    default_unit: str | None = None,
    expect: Dimension | None = None,
) -> Quantity | None:
    """Read ``metric`` (+ paired unit attribute) from raw XML attributes.

    Returns ``None`` when the metric attribute is absent or is the ``?``
    placeholder (to be filled by microbenchmarking).  Raises
    :class:`UnitError` on malformed values or a dimension mismatch against
    ``expect``.
    """
    raw = attrs.get(metric)
    if raw is None or raw.strip() == "?":
        return None
    unit = attrs.get(unit_attribute_for(metric), default_unit)
    try:
        value = float(raw)
    except ValueError:
        raise UnitError(f"attribute {metric}={raw!r} is not a number") from None
    if unit is None:
        q = Quantity.dimensionless(value)
    else:
        q = Quantity.of(value, unit, registry)
    if expect is not None and not q.is_dimensionless() and q.dimension != expect:
        raise UnitError(
            f"attribute {metric!r} has wrong dimension: got unit {unit!r}"
        )
    return q


def write_metric(
    attrs: dict[str, str],
    metric: str,
    quantity: Quantity | None,
    *,
    unit: str | None = None,
    registry: UnitRegistry = DEFAULT_REGISTRY,
    precision: int = 12,
) -> None:
    """Store ``quantity`` into ``attrs`` using the paired convention.

    ``None`` writes the ``?`` placeholder (unknown, to be microbenchmarked).
    """
    if quantity is None:
        attrs[metric] = "?"
        return
    if quantity.is_dimensionless() and unit is None:
        attrs[metric] = f"{quantity.magnitude:.{precision}g}"
        return
    sym = unit or registry.canonical_symbol(quantity.dimension)
    attrs[metric] = f"{quantity.to(sym, registry):.{precision}g}"
    attrs[unit_attribute_for(metric)] = sym


def is_placeholder(raw: str | None) -> bool:
    """True for the paper's ``?`` placeholder value."""
    return raw is not None and raw.strip() == "?"
