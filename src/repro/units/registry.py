"""The unit registry: spelled units -> (scale factor, dimension).

XPDL descriptors spell units the way hardware data sheets do, which is
inconsistent by nature (the paper itself mixes ``KiB``, ``KB`` and ``kB``).
The registry therefore supports aliases and the JEDEC convention where
``KB``/``MB``/``GB`` in memory contexts mean powers of 1024; the strict SI
decadic prefixes remain available as ``kB``/``MB_dec``/etc.  All values are
normalized to the base unit of their dimension (bytes, seconds, joules,
volts, kelvin and their derived combinations).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..diagnostics import UnitError
from .dimension import (
    BANDWIDTH,
    DIMENSIONLESS,
    ENERGY,
    FREQUENCY,
    INFORMATION,
    POWER,
    TEMPERATURE,
    TIME,
    VOLTAGE,
    Dimension,
    dimension_name,
)


@dataclass(frozen=True, slots=True)
class UnitDef:
    """One spelled unit: multiply by ``factor`` to reach the base unit."""

    symbol: str
    factor: float
    dimension: Dimension


_SI = {
    "p": 1e-12,
    "n": 1e-9,
    "u": 1e-6,
    "µ": 1e-6,
    "m": 1e-3,
    "": 1.0,
    "k": 1e3,
    "M": 1e6,
    "G": 1e9,
    "T": 1e12,
    "P": 1e15,
}

_IEC = {"Ki": 2**10, "Mi": 2**20, "Gi": 2**30, "Ti": 2**40, "Pi": 2**50}

#: JEDEC-style binary capacity prefixes as memory data sheets use them.
_JEDEC = {"K": 2**10, "k": 2**10, "M": 2**20, "G": 2**30, "T": 2**40}


class UnitRegistry:
    """Registry of spelled units; extensible at runtime.

    The default registry covers everything the XPDL paper's listings use:
    sizes (``KiB``/``KB``/``kB``/``MB``/``GB``...), frequencies
    (``Hz``..``GHz``), power (``pW``..``kW``), energy (``pJ``..``J``,
    plus ``Wh``/``kWh``), time (``ns``..``h``), bandwidth
    (``B/s``, ``GiB/s``, ``Gbit/s``...), voltage and temperature.
    """

    def __init__(self) -> None:
        self._units: dict[str, UnitDef] = {}
        self._canonical: dict[Dimension, str] = {}
        self._install_defaults()

    # -- registration ------------------------------------------------------
    def define(
        self, symbol: str, factor: float, dimension: Dimension, *, overwrite: bool = False
    ) -> None:
        """Register a unit spelling.

        Duplicate definitions with a *different* meaning raise
        :class:`UnitError`; identical re-definitions are ignored so model
        libraries can defensively re-register.
        """
        existing = self._units.get(symbol)
        if existing is not None and not overwrite:
            if existing.factor == factor and existing.dimension == dimension:
                return
            raise UnitError(
                f"unit {symbol!r} already defined with a different meaning"
            )
        self._units[symbol] = UnitDef(symbol, factor, dimension)

    def set_canonical(self, dimension: Dimension, symbol: str) -> None:
        """Choose the unit used when formatting quantities of ``dimension``."""
        if symbol not in self._units:
            raise UnitError(f"unknown unit {symbol!r}")
        self._canonical[dimension] = symbol

    # -- lookup ------------------------------------------------------------
    def __contains__(self, symbol: str) -> bool:
        return symbol in self._units

    def get(self, symbol: str) -> UnitDef:
        try:
            return self._units[symbol]
        except KeyError:
            hint = self._suggest(symbol)
            msg = f"unknown unit {symbol!r}"
            if hint:
                msg += f" (did you mean {hint!r}?)"
            raise UnitError(msg) from None

    def factor(self, symbol: str) -> float:
        return self.get(symbol).factor

    def dimension(self, symbol: str) -> Dimension:
        return self.get(symbol).dimension

    def canonical_symbol(self, dimension: Dimension) -> str:
        try:
            return self._canonical[dimension]
        except KeyError:
            raise UnitError(
                f"no canonical unit registered for {dimension_name(dimension)}"
            ) from None

    def symbols(self, dimension: Dimension | None = None) -> list[str]:
        if dimension is None:
            return sorted(self._units)
        return sorted(
            s for s, d in self._units.items() if d.dimension == dimension
        )

    def _suggest(self, symbol: str) -> str | None:
        """Case-insensitive nearest spelling, for error hints."""
        lowered = symbol.lower()
        for cand in self._units:
            if cand.lower() == lowered:
                return cand
        return None

    # -- defaults ----------------------------------------------------------
    def _install_defaults(self) -> None:
        # Information.  Data-sheet ("JEDEC") capacity spellings are binary.
        self.define("B", 1.0, INFORMATION)
        self.define("byte", 1.0, INFORMATION)
        self.define("bit", 1 / 8, INFORMATION)
        for p, f in _IEC.items():
            self.define(f"{p}B", float(f), INFORMATION)
        for p, f in _JEDEC.items():
            self.define(f"{p}B", float(f), INFORMATION)
        # Strict decadic spellings, for completeness.
        for p in ("M", "G", "T"):
            self.define(f"{p}B_dec", _SI[p], INFORMATION)
        self.define("kB_dec", 1e3, INFORMATION)

        # Frequency.
        for p in ("", "k", "M", "G", "T"):
            self.define(f"{p}Hz", _SI[p], FREQUENCY)

        # Power.
        for p in ("p", "n", "u", "µ", "m", "", "k", "M"):
            self.define(f"{p}W", _SI[p], POWER)

        # Energy.
        for p in ("p", "n", "u", "µ", "m", "", "k", "M"):
            self.define(f"{p}J", _SI[p], ENERGY)
        self.define("Wh", 3600.0, ENERGY)
        self.define("kWh", 3.6e6, ENERGY)

        # Time.
        for p in ("p", "n", "u", "µ", "m", ""):
            self.define(f"{p}s", _SI[p], TIME)
        self.define("min", 60.0, TIME)
        self.define("h", 3600.0, TIME)

        # Bandwidth: transfer rates are decadic even on memory data sheets
        # (DDR3-1600 is 12.8e9 B/s); only the IEC spellings are binary.
        self.define("B/s", 1.0, BANDWIDTH)
        for p, f in _IEC.items():
            self.define(f"{p}B/s", float(f), BANDWIDTH)
        for p in ("k", "K", "M", "G", "T"):
            self.define(f"{p}B/s", _SI[p.lower() if p == "K" else p], BANDWIDTH)
        for p in ("k", "M", "G", "T"):
            self.define(f"{p}bit/s", _SI[p] / 8, BANDWIDTH)
            self.define(f"{p}b/s", _SI[p] / 8, BANDWIDTH)

        # Voltage / temperature.
        for p in ("m", "", "k"):
            self.define(f"{p}V", _SI[p], VOLTAGE)
        self.define("K", 1.0, TEMPERATURE)
        # Celsius appears on data sheets; model it as offset-free delta-K,
        # which is what thermal headroom arithmetic needs.
        self.define("dC", 1.0, TEMPERATURE)
        # Thermal RC parameters (junction-to-ambient resistance, heat
        # capacity), for the thermal extension of hardware components.
        self.define("K/W", 1.0, TEMPERATURE / POWER)
        self.define("dC/W", 1.0, TEMPERATURE / POWER)
        self.define("J/K", 1.0, ENERGY / TEMPERATURE)

        # Dimensionless helpers.
        self.define("1", 1.0, DIMENSIONLESS)
        self.define("%", 0.01, DIMENSIONLESS)

        for dim, sym in (
            (INFORMATION, "B"),
            (FREQUENCY, "Hz"),
            (POWER, "W"),
            (ENERGY, "J"),
            (TIME, "s"),
            (BANDWIDTH, "B/s"),
            (VOLTAGE, "V"),
            (TEMPERATURE, "K"),
            (DIMENSIONLESS, "1"),
        ):
            self.set_canonical(dim, sym)


#: Shared default registry; model loading uses this unless told otherwise.
DEFAULT_REGISTRY = UnitRegistry()
