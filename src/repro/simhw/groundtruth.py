"""Hidden ground-truth energy/timing models for the simulated hardware.

The paper's toolchain bootstraps energy models by running microbenchmarks on
real hardware with external power meters.  Offline we substitute a
*simulated* machine whose true per-instruction energies are defined here.
The toolchain never reads this module's truth directly — it only sees what
the simulated power meter reports — so the entire bootstrapping code path is
exercised faithfully.

Two truth sources:

* where the descriptor carries an experimentally confirmed value table
  (Listing 14's ``divsd``), the truth *is* that table, so bootstrapped
  values reproduce the paper's numbers;
* for ``?`` entries the truth is synthesized deterministically from the
  instruction name: a base energy drawn from a name hash, scaled with
  frequency by the CMOS-flavoured law  e(f) = e0 * (0.55 + 0.45 (f/f0)^2)
  (energy per op grows with frequency because voltage scales up with it).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from ..diagnostics import XpdlError
from ..model import DataPoint, Inst, Instructions, ModelElement
from ..units import ENERGY, FREQUENCY, Quantity


def _name_hash_unit(name: str, salt: str = "") -> float:
    """Deterministic uniform [0,1) value from an instruction name."""
    digest = hashlib.sha256(f"{salt}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True, slots=True)
class TruthEntry:
    """True energy of one instruction as a function of frequency."""

    name: str
    base_energy_j: float  # at reference frequency
    ref_frequency_hz: float
    table_freq: tuple[float, ...] | None = None
    table_energy: tuple[float, ...] | None = None
    #: True cycles per instruction (timing truth).
    cpi: float = 1.0

    def energy_at(self, frequency_hz: float) -> float:
        if self.table_freq is not None:
            return float(
                np.interp(frequency_hz, self.table_freq, self.table_energy)
            )
        ratio = frequency_hz / self.ref_frequency_hz
        return self.base_energy_j * (0.55 + 0.45 * ratio * ratio)


class GroundTruth:
    """True per-instruction energies for one ISA."""

    def __init__(self, isa_name: str, entries: dict[str, TruthEntry]):
        self.isa_name = isa_name
        self.entries = entries

    @staticmethod
    def for_isa(
        instrs: ModelElement,
        *,
        ref_frequency: Quantity | None = None,
        base_range_pj: tuple[float, float] = (15.0, 400.0),
        cpi_range: tuple[float, float] = (1.0, 24.0),
        energy_scale: float = 1.0,
    ) -> "GroundTruth":
        """Build the truth for an ``<instructions>`` descriptor.

        ``energy_scale`` multiplies the *synthesized* per-instruction
        energies (not descriptor-declared tables): two microarchitectures
        sharing an ISA (big.LITTLE clusters) burn different energy per op.
        """
        if not isinstance(instrs, Instructions):
            raise XpdlError(f"expected <instructions>, got <{instrs.kind}>")
        isa_name = instrs.name or instrs.ident or "isa"
        ref_hz = (ref_frequency or Quantity.of(2.0, "GHz")).magnitude
        lo, hi = base_range_pj
        entries: dict[str, TruthEntry] = {}
        for inst in instrs.find_all(Inst):
            name = inst.name
            if not name:
                continue
            points = []
            for dp in inst.find_all(DataPoint):
                f, e = dp.frequency, dp.energy
                if f is not None and e is not None:
                    points.append((f.magnitude, e.magnitude))
            if points:
                points.sort()
                entries[name] = TruthEntry(
                    name=name,
                    base_energy_j=points[0][1],
                    ref_frequency_hz=points[0][0],
                    table_freq=tuple(p[0] for p in points),
                    table_energy=tuple(p[1] for p in points),
                    cpi=cpi_range[0]
                    + (cpi_range[1] - cpi_range[0])
                    * _name_hash_unit(name, f"{isa_name}:cpi"),
                )
                continue
            declared = inst.energy
            if declared is not None:
                base = declared.magnitude
            else:
                u = _name_hash_unit(name, f"{isa_name}:energy")
                base = (lo + (hi - lo) * u) * 1e-12 * energy_scale
            cpi = (
                cpi_range[0]
                + (cpi_range[1] - cpi_range[0])
                * _name_hash_unit(name, f"{isa_name}:cpi") ** 2
            )
            entries[name] = TruthEntry(
                name=name,
                base_energy_j=base,
                ref_frequency_hz=ref_hz,
                cpi=max(1.0, round(cpi, 2)),
            )
        return GroundTruth(isa_name, entries)

    # -- queries ----------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self.entries

    def names(self) -> list[str]:
        return sorted(self.entries)

    def entry(self, name: str) -> TruthEntry:
        try:
            return self.entries[name]
        except KeyError:
            raise XpdlError(
                f"simulated ISA {self.isa_name!r} cannot execute {name!r}"
            ) from None

    def energy(self, name: str, frequency: Quantity) -> Quantity:
        return Quantity(
            self.entry(name).energy_at(frequency.magnitude), ENERGY
        )

    def cpi(self, name: str) -> float:
        return self.entry(name).cpi
