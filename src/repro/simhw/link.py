"""Simulated interconnect links.

A :class:`SimLink` executes transfers over one modeled channel with the
familiar latency+bandwidth+energy affine cost model the descriptors carry
(Listing 3).  Where the descriptor holds ``?`` placeholders (message
offsets awaiting microbenchmarking), the link's hidden ground truth supplies
deterministic values derived from the channel identity — so transfer
microbenchmarks have something real to discover.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from ..diagnostics import XpdlError
from ..model import Channel, Interconnect, ModelElement
from ..units import BANDWIDTH, ENERGY, TIME, Quantity


def _hash_in_range(key: str, lo: float, hi: float) -> float:
    digest = hashlib.sha256(key.encode()).digest()
    u = int.from_bytes(digest[:8], "big") / 2**64
    return lo + (hi - lo) * u


@dataclass
class TransferResult:
    """True cost of one transfer."""

    nbytes: int
    time: Quantity
    energy: Quantity


class SimLink:
    """One directed channel with ground-truth affine costs."""

    def __init__(
        self,
        name: str,
        bandwidth: Quantity,
        time_offset: Quantity,
        energy_per_byte: Quantity,
        energy_offset: Quantity,
    ) -> None:
        if bandwidth.magnitude <= 0:
            raise XpdlError(f"link {name!r} needs positive bandwidth")
        self.name = name
        self.bandwidth = bandwidth
        self.time_offset = time_offset
        self.energy_per_byte = energy_per_byte
        self.energy_offset = energy_offset

    @staticmethod
    def from_channel(
        channel: ModelElement, *, link_name: str | None = None
    ) -> "SimLink":
        """Build the true link behind a ``<channel>`` descriptor.

        Declared values are the truth; ``?`` placeholders get deterministic
        synthesized truth (what deployment-time benchmarking will find).
        """
        if not isinstance(channel, Channel):
            raise XpdlError(f"expected <channel>, got <{channel.kind}>")
        name = link_name or channel.name or channel.ident or "channel"
        bw = channel.max_bandwidth or channel.quantity(
            "effective_bandwidth", BANDWIDTH
        )
        if bw is None:
            raise XpdlError(f"channel {name!r} declares no bandwidth")
        t_off = channel.time_offset_per_message
        if t_off is None:
            t_off = Quantity(_hash_in_range(f"{name}:toff", 0.2e-6, 5e-6), TIME)
        e_byte = channel.energy_per_byte
        if e_byte is None:
            e_byte = Quantity(_hash_in_range(f"{name}:ebyte", 2e-12, 40e-12), ENERGY)
        e_off = channel.energy_offset_per_message
        if e_off is None:
            e_off = Quantity(_hash_in_range(f"{name}:eoff", 50e-12, 2000e-12), ENERGY)
        return SimLink(name, bw, t_off, e_byte, e_off)

    def transfer(self, nbytes: int) -> TransferResult:
        """True cost of moving ``nbytes`` as one message."""
        t = Quantity(nbytes / self.bandwidth.magnitude, TIME) + self.time_offset
        e = self.energy_per_byte * nbytes + self.energy_offset
        return TransferResult(nbytes, t, e)

    def transfer_many(self, nbytes: int, messages: int) -> TransferResult:
        """Cost of ``messages`` messages totalling ``nbytes``."""
        t = (
            Quantity(nbytes / self.bandwidth.magnitude, TIME)
            + self.time_offset * messages
        )
        e = self.energy_per_byte * nbytes + self.energy_offset * messages
        return TransferResult(nbytes, t, e)


def links_from_interconnect(ic: ModelElement) -> dict[str, SimLink]:
    """All channels of an interconnect as simulated links."""
    if not isinstance(ic, Interconnect):
        raise XpdlError(f"expected <interconnect>, got <{ic.kind}>")
    base = ic.ident or ic.name or "ic"
    out: dict[str, SimLink] = {}
    for ch in ic.find_all(Channel):
        cname = ch.name or ch.ident or f"ch{len(out)}"
        out[cname] = SimLink.from_channel(ch, link_name=f"{base}.{cname}")
    if not out and ic.max_bandwidth is not None:
        # Single implicit channel from the interconnect's own attributes.
        out["link"] = SimLink(
            f"{base}.link",
            ic.max_bandwidth,
            Quantity(_hash_in_range(f"{base}:toff", 0.2e-6, 5e-6), TIME),
            Quantity(_hash_in_range(f"{base}:ebyte", 2e-12, 40e-12), ENERGY),
            Quantity(_hash_in_range(f"{base}:eoff", 50e-12, 2000e-12), ENERGY),
        )
    return out
