"""Build simulated hardware from a composed XPDL model.

``testbed_from_model`` walks a composed system tree, creates one
:class:`~repro.simhw.machine.SimMachine` per processing unit that carries a
power model (CPU packages, GPU/accelerator devices) and one
:class:`~repro.simhw.link.SimLink` set per interconnect instance — the
simulated counterpart of the physical EXCESS testbeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..diagnostics import XpdlError
from ..model import (
    Cpu,
    Device,
    Instructions,
    Interconnect,
    ModelElement,
    PowerModel,
    PowerStateMachine,
)
from ..power import InstructionEnergyModel, PowerStateMachineModel
from ..units import POWER, Quantity
from .groundtruth import GroundTruth
from .link import SimLink, links_from_interconnect
from .machine import SimMachine


@dataclass
class SimTestbed:
    """All simulated units and links of one system."""

    name: str
    machines: dict[str, SimMachine] = field(default_factory=dict)
    links: dict[str, dict[str, SimLink]] = field(default_factory=dict)
    #: Descriptor-side instruction models (pre-bootstrap views).
    instruction_models: dict[str, InstructionEnergyModel] = field(
        default_factory=dict
    )

    def machine(self, name: str) -> SimMachine:
        try:
            return self.machines[name]
        except KeyError:
            raise XpdlError(
                f"testbed {self.name!r} has no machine {name!r}; "
                f"machines: {', '.join(self.machines)}"
            ) from None

    def link(self, interconnect: str, channel: str) -> SimLink:
        try:
            return self.links[interconnect][channel]
        except KeyError:
            raise XpdlError(
                f"testbed {self.name!r} has no link "
                f"{interconnect}/{channel}"
            ) from None


def _unit_power_model(unit: ModelElement) -> ModelElement | None:
    for pm in unit.find_children(PowerModel):
        return pm
    for pm in unit.find_all(PowerModel):
        return pm
    return None


def _static_power_of(unit: ModelElement) -> Quantity:
    total = Quantity(0.0, POWER)
    for elem in unit.walk():
        q = elem.quantity("static_power", POWER)
        if q is not None:
            total = total + q
    return total


def machine_from_unit(
    unit: ModelElement, *, name: str | None = None
) -> SimMachine | None:
    """Create a simulated machine for one cpu/device element.

    Returns ``None`` when the unit carries no power model (nothing to
    simulate energy against).
    """
    pm = _unit_power_model(unit)
    if pm is None:
        return None
    psm_elem = None
    for p in pm.find_all(PowerStateMachine):
        psm_elem = p
        break
    instrs_elem = None
    for i in pm.find_all(Instructions):
        instrs_elem = i
        break
    if instrs_elem is None:
        return None
    psm = PowerStateMachineModel.from_element(psm_elem) if psm_elem else None
    ref_freq = unit.quantity("frequency") or (
        psm.fastest().frequency if psm else None
    )
    energy_scale = float(unit.attrs.get("energy_per_op_scale", "1"))
    truth = GroundTruth.for_isa(
        instrs_elem, ref_frequency=ref_freq, energy_scale=energy_scale
    )
    mname = name or unit.ident or unit.name or unit.kind
    machine = SimMachine(
        name=mname,
        truth=truth,
        psm=psm,
        base_power=_static_power_of(unit),
        issue_width=float(unit.attrs.get("issue_width", "1")),
    )
    if ref_freq is not None and psm is None:
        machine.fixed_frequency = ref_freq
    return machine


def testbed_from_model(root: ModelElement, *, name: str | None = None) -> SimTestbed:
    """Build the full simulated testbed for a composed system model."""
    bed = SimTestbed(name or root.ident or root.name or "testbed")
    for unit in root.walk():
        if not isinstance(unit, (Cpu, Device)):
            continue
        # Skip nested CPUs inside devices that have their own machine: the
        # device machine subsumes them only when the device itself has a
        # power model; a device without one delegates to its inner CPU.
        machine = machine_from_unit(unit)
        if machine is None:
            continue
        key = machine.name
        serial = 0
        while key in bed.machines:
            serial += 1
            key = f"{machine.name}_{serial}"
        machine.name = key
        bed.machines[key] = machine
        pm = _unit_power_model(unit)
        for instrs in pm.find_all(Instructions):
            model = InstructionEnergyModel.from_element(instrs)
            bed.instruction_models.setdefault(model.name, model)
    for ic in root.find_all(Interconnect):
        if ic.attrs.get("head") is None and ic.attrs.get("tail") is None:
            continue
        key = ic.ident or ic.label()
        if key in bed.links:
            continue
        channels = links_from_interconnect(ic)
        if channels:
            bed.links[key] = channels
    return bed
