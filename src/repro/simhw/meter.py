"""The simulated external power meter.

Models the measurement chain of the EXCESS testbeds (the systems carry an
``ExternalPowerMeter`` property, Listing 11): power is sampled at a fixed
interval, each sample carries zero-mean Gaussian noise plus a calibration
offset, and energy is the trapezoidal integral of the samples.  Short runs
therefore measure noisily and long runs average the noise out — the exact
trade-off the microbenchmark runner has to manage, and what experiment E8
quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..units import ENERGY, POWER, TIME, Quantity
from .machine import RunResult


@dataclass
class Measurement:
    """What the meter reports for one observed run."""

    duration: Quantity
    energy: Quantity
    samples: np.ndarray  # watts
    sample_interval: Quantity

    @property
    def mean_power(self) -> Quantity:
        if self.duration.magnitude == 0.0:
            return Quantity(0.0, POWER)
        return self.energy / self.duration


class PowerMeter:
    """Sampling wattmeter with Gaussian noise and calibration offset."""

    def __init__(
        self,
        *,
        sample_interval: Quantity | None = None,
        noise_std_w: float = 0.05,
        offset_w: float = 0.0,
        seed: int = 0,
    ) -> None:
        self.sample_interval = sample_interval or Quantity.of(1, "ms")
        self.noise_std_w = noise_std_w
        self.offset_w = offset_w
        self._rng = np.random.default_rng(seed)

    def reseed(self, seed: int) -> None:
        self._rng = np.random.default_rng(seed)

    def observe(self, run: RunResult) -> Measurement:
        """Measure one run (assumed constant true power over its duration)."""
        true_power = run.mean_power.magnitude
        dt = self.sample_interval.magnitude
        duration = run.duration.magnitude
        # At least two samples so the trapezoid is defined; the tail sample
        # lands exactly at run end (meters are triggered by the driver).
        n = max(2, int(round(duration / dt)) + 1)
        noise = self._rng.normal(0.0, self.noise_std_w, size=n)
        samples = true_power + self.offset_w + noise
        measured_energy = float(np.trapezoid(samples, dx=duration / (n - 1)))
        return Measurement(
            duration=Quantity(duration, TIME),
            energy=Quantity(measured_energy, ENERGY),
            samples=samples,
            sample_interval=self.sample_interval,
        )

    def observe_many(self, runs: list[RunResult]) -> list[Measurement]:
        return [self.observe(r) for r in runs]


class PerfectMeter(PowerMeter):
    """A noise-free meter (unit tests, calibration baselines)."""

    def __init__(self) -> None:
        super().__init__(noise_std_w=0.0, offset_w=0.0, seed=0)
