"""Simulated hardware substrate: machines, power meters and links.

Substitutes the paper's physical EXCESS testbeds (Xeon servers, Nvidia
GPUs, Movidius boards, external power meters) with deterministic simulated
equivalents exposing the same surface, so the toolchain's benchmarking and
optimization paths run unchanged.  See DESIGN.md §2 for the substitution
rationale.
"""

from .groundtruth import GroundTruth, TruthEntry
from .machine import RunResult, SimMachine
from .meter import Measurement, PerfectMeter, PowerMeter
from .link import SimLink, TransferResult, links_from_interconnect
from .factory import SimTestbed, machine_from_unit, testbed_from_model
from .cachesim import (
    CacheGeometry,
    CacheStats,
    Replacement,
    SimCache,
    WritePolicy,
    random_trace,
    sequential_trace,
    strided_trace,
)

__all__ = [
    "GroundTruth",
    "TruthEntry",
    "RunResult",
    "SimMachine",
    "Measurement",
    "PerfectMeter",
    "PowerMeter",
    "SimLink",
    "TransferResult",
    "links_from_interconnect",
    "SimTestbed",
    "machine_from_unit",
    "testbed_from_model",
    "CacheGeometry",
    "CacheStats",
    "Replacement",
    "SimCache",
    "WritePolicy",
    "random_trace",
    "sequential_trace",
    "strided_trace",
]
