"""Trace-driven cache simulation from XPDL cache descriptors.

The descriptors model caches in data-sheet detail — ``size``, ``sets``
(associativity), ``line_size``, ``replacement`` and ``write_policy``
(Listings 1/2/6) — because those attributes are "relevant for performance
and energy optimization".  This module is the executable consumer: a
set-associative cache simulator configured straight from a ``<cache>``
element, processing address traces and accounting hit/miss/write-back
counts plus per-access energy.

Energy attributes (extension, following the instruction-energy pattern):
``hit_energy``/``miss_energy`` on the cache descriptor; missing values are
defaulted from the cache's size (bigger arrays burn more per access).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from ..diagnostics import XpdlError
from ..model import Cache, ModelElement
from ..units import ENERGY, Quantity


class Replacement(enum.Enum):
    LRU = "LRU"
    FIFO = "FIFO"
    RANDOM = "random"
    PLRU = "PLRU"


class WritePolicy(enum.Enum):
    COPYBACK = "copyback"  # write-back, write-allocate
    WRITETHROUGH = "writethrough"  # no-write-allocate


@dataclass
class CacheStats:
    """Access accounting of one simulation run."""

    hits: int = 0
    misses: int = 0
    writebacks: int = 0
    writethroughs: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


@dataclass
class CacheGeometry:
    """Resolved geometry of a set-associative cache."""

    size_bytes: int
    line_bytes: int
    ways: int

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0 or self.ways <= 0:
            raise XpdlError("cache geometry values must be positive")
        lines = self.size_bytes // self.line_bytes
        if lines == 0 or self.size_bytes % self.line_bytes:
            raise XpdlError(
                f"cache size {self.size_bytes} is not a multiple of the "
                f"line size {self.line_bytes}"
            )
        if lines % self.ways:
            raise XpdlError(
                f"{lines} lines do not divide into {self.ways} ways"
            )

    @property
    def n_sets(self) -> int:
        return (self.size_bytes // self.line_bytes) // self.ways


class SimCache:
    """A set-associative cache with selectable replacement/write policies."""

    def __init__(
        self,
        geometry: CacheGeometry,
        *,
        replacement: Replacement = Replacement.LRU,
        write_policy: WritePolicy = WritePolicy.COPYBACK,
        hit_energy_j: float = 10e-12,
        miss_energy_j: float = 100e-12,
        seed: int = 0,
        name: str = "cache",
    ) -> None:
        self.name = name
        self.geometry = geometry
        self.replacement = replacement
        self.write_policy = write_policy
        self.hit_energy_j = hit_energy_j
        self.miss_energy_j = miss_energy_j
        self._rng = np.random.default_rng(seed)
        n_sets, ways = geometry.n_sets, geometry.ways
        self._tags = np.full((n_sets, ways), -1, dtype=np.int64)
        self._dirty = np.zeros((n_sets, ways), dtype=bool)
        # LRU/FIFO bookkeeping: higher stamp = more recent (LRU) or
        # later-filled (FIFO); PLRU approximated by one MRU bit per way.
        self._stamp = np.zeros((n_sets, ways), dtype=np.int64)
        self._mru = np.zeros((n_sets, ways), dtype=bool)
        self._clock = 0
        self.stats = CacheStats()

    # -- construction from descriptors --------------------------------------
    @staticmethod
    def from_element(
        cache: ModelElement,
        *,
        line_bytes: int = 64,
        seed: int = 0,
    ) -> "SimCache":
        if not isinstance(cache, Cache):
            raise XpdlError(f"expected <cache>, got <{cache.kind}>")
        size = cache.size
        if size is None:
            raise XpdlError(f"cache {cache.label()} declares no size")
        declared_line = cache.line_size
        lb = int(declared_line.magnitude) if declared_line else line_bytes
        ways = cache.sets or 1  # the paper spells associativity 'sets'
        repl = Replacement(cache.replacement or "LRU")
        wp = WritePolicy(cache.write_policy or "copyback")
        size_b = int(size.magnitude)
        hit_e = cache.quantity("hit_energy", ENERGY)
        miss_e = cache.quantity("miss_energy", ENERGY)
        # Default energies scale gently with array size (~sqrt law).
        scale = (size_b / 32768) ** 0.5
        return SimCache(
            CacheGeometry(size_b, lb, ways),
            replacement=repl,
            write_policy=wp,
            hit_energy_j=(
                hit_e.magnitude if hit_e is not None else 8e-12 * scale
            ),
            miss_energy_j=(
                miss_e.magnitude if miss_e is not None else 25e-12 * scale
            ),
            seed=seed,
            name=cache.label(),
        )

    # -- the access path -----------------------------------------------------
    def _victim(self, set_idx: int) -> int:
        ways = self.geometry.ways
        empty = np.flatnonzero(self._tags[set_idx] == -1)
        if empty.size:
            return int(empty[0])
        if self.replacement is Replacement.RANDOM:
            return int(self._rng.integers(0, ways))
        if self.replacement is Replacement.PLRU:
            cold = np.flatnonzero(~self._mru[set_idx])
            if cold.size == 0:
                self._mru[set_idx] = False
                cold = np.arange(ways)
            return int(cold[0])
        # LRU and FIFO both evict the smallest stamp; they differ in
        # whether hits refresh it (LRU yes, FIFO no).
        return int(np.argmin(self._stamp[set_idx]))

    def access(self, address: int, *, write: bool = False) -> bool:
        """One access; returns True on hit."""
        g = self.geometry
        line = address // g.line_bytes
        set_idx = line % g.n_sets
        tag = line // g.n_sets
        self._clock += 1
        ways = self._tags[set_idx]
        hit_way = np.flatnonzero(ways == tag)
        if hit_way.size:
            way = int(hit_way[0])
            self.stats.hits += 1
            if self.replacement is Replacement.LRU:
                self._stamp[set_idx, way] = self._clock
            self._mru[set_idx, way] = True
            if np.all(self._mru[set_idx]):
                self._mru[set_idx] = False
                self._mru[set_idx, way] = True
            if write:
                if self.write_policy is WritePolicy.COPYBACK:
                    self._dirty[set_idx, way] = True
                else:
                    self.stats.writethroughs += 1
            return True
        # Miss.
        self.stats.misses += 1
        if write and self.write_policy is WritePolicy.WRITETHROUGH:
            # No-write-allocate: the write goes straight to memory.
            self.stats.writethroughs += 1
            return False
        way = self._victim(set_idx)
        if self._dirty[set_idx, way]:
            self.stats.writebacks += 1
            self._dirty[set_idx, way] = False
        self._tags[set_idx, way] = tag
        self._stamp[set_idx, way] = self._clock
        self._mru[set_idx, way] = True
        if write and self.write_policy is WritePolicy.COPYBACK:
            self._dirty[set_idx, way] = True
        return False

    def run_trace(
        self, addresses: np.ndarray, writes: np.ndarray | None = None
    ) -> CacheStats:
        """Process a whole trace; returns the accumulated stats."""
        if writes is None:
            writes = np.zeros(len(addresses), dtype=bool)
        for addr, w in zip(addresses, writes):
            self.access(int(addr), write=bool(w))
        return self.stats

    def energy(self) -> Quantity:
        """Access energy of the accumulated stats (hits + misses +
        write-through traffic at miss cost)."""
        j = (
            self.stats.hits * self.hit_energy_j
            + self.stats.misses * self.miss_energy_j
            + (self.stats.writebacks + self.stats.writethroughs)
            * self.miss_energy_j
        )
        return Quantity(j, ENERGY)

    def reset(self) -> None:
        self._tags.fill(-1)
        self._dirty.fill(False)
        self._stamp.fill(0)
        self._mru.fill(False)
        self._clock = 0
        self.stats = CacheStats()


# ---------------------------------------------------------------------------
# Trace generators
# ---------------------------------------------------------------------------


def sequential_trace(n: int, *, stride: int = 8, start: int = 0) -> np.ndarray:
    """A streaming access pattern."""
    return start + stride * np.arange(n, dtype=np.int64)


def strided_trace(
    n: int, *, stride: int, wrap: int, start: int = 0
) -> np.ndarray:
    """A strided pattern wrapping inside a working set of ``wrap`` bytes."""
    return start + (stride * np.arange(n, dtype=np.int64)) % wrap


def random_trace(
    n: int, *, working_set: int, seed: int = 0, element: int = 8
) -> np.ndarray:
    """Uniform random accesses inside a working set."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, working_set // element, size=n) * element
