"""The simulated machine: executes instruction streams against the hidden
ground truth, honoring the platform model's power state machine.

A :class:`SimMachine` stands in for one processing unit (a CPU core group, a
GPU, a SHAVE island).  It exposes exactly the surface real hardware offers
the toolchain: *set a power state, run this code, observe wall time* — while
the attached :class:`~repro.simhw.meter.PowerMeter` observes power.  Energy
bookkeeping inside the machine is exact; all measurement error lives in the
meter, as in reality.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..diagnostics import XpdlError
from ..power import PowerStateMachineModel, PsmCursor
from ..units import ENERGY, FREQUENCY, POWER, TIME, Quantity
from .groundtruth import GroundTruth


@dataclass
class RunResult:
    """Ground-truth outcome of one run (what physics did, pre-meter)."""

    duration: Quantity
    static_energy: Quantity
    dynamic_energy: Quantity
    instructions: int
    frequency: Quantity
    state: str

    @property
    def energy(self) -> Quantity:
        return self.static_energy + self.dynamic_energy

    @property
    def mean_power(self) -> Quantity:
        if self.duration.magnitude == 0.0:
            return Quantity(0.0, POWER)
        return self.energy / self.duration


@dataclass
class SimMachine:
    """One simulated processing unit."""

    name: str
    truth: GroundTruth
    psm: PowerStateMachineModel | None = None
    #: Always-on power outside the PSM domain (memories, board).
    base_power: Quantity = field(
        default_factory=lambda: Quantity(0.0, POWER)
    )
    #: Fixed frequency when no PSM is attached.
    fixed_frequency: Quantity = field(
        default_factory=lambda: Quantity.of(2.0, "GHz")
    )
    #: Superscalar width: instructions retired per cycle at CPI=1.
    issue_width: float = 1.0
    cursor: PsmCursor | None = None

    def __post_init__(self) -> None:
        if self.psm is not None:
            self.cursor = PsmCursor(self.psm, self.psm.fastest().name)

    # -- state control ------------------------------------------------------
    @property
    def frequency(self) -> Quantity:
        if self.cursor is not None:
            return self.cursor.state.frequency
        return self.fixed_frequency

    @property
    def state_power(self) -> Quantity:
        if self.cursor is not None:
            return self.cursor.state.power
        return Quantity(0.0, POWER)

    def set_state(self, state: str) -> None:
        if self.cursor is None:
            raise XpdlError(f"machine {self.name!r} has no power state machine")
        self.cursor.go(state)

    def set_frequency(self, frequency: Quantity) -> None:
        """Pick the PSM state matching ``frequency`` (or set it directly)."""
        if self.cursor is None:
            self.fixed_frequency = frequency
            return
        for s in self.psm.by_frequency():
            if abs(s.frequency.magnitude - frequency.magnitude) < 1e-6 * max(
                1.0, frequency.magnitude
            ):
                self.cursor.go(s.name)
                return
        raise XpdlError(
            f"machine {self.name!r} has no power state at {frequency}"
        )

    def available_frequencies(self) -> list[Quantity]:
        if self.psm is None:
            return [self.fixed_frequency]
        return [
            s.frequency for s in self.psm.by_frequency() if not s.is_off()
        ]

    # -- execution -----------------------------------------------------------------
    def run_stream(self, counts: dict[str, int]) -> RunResult:
        """Execute an instruction mix back-to-back; exact physics."""
        f = self.frequency
        if f.magnitude <= 0.0:
            raise XpdlError(
                f"machine {self.name!r} is in an off state; cannot execute"
            )
        cycles = 0.0
        dynamic = 0.0
        n = 0
        for name, count in counts.items():
            entry = self.truth.entry(name)
            cycles += count * entry.cpi / self.issue_width
            dynamic += count * entry.energy_at(f.magnitude)
            n += count
        duration = Quantity(cycles / f.magnitude, TIME)
        static = (self.state_power + self.base_power) * duration
        return RunResult(
            duration=duration,
            static_energy=static,
            dynamic_energy=Quantity(dynamic, ENERGY),
            instructions=n,
            frequency=f,
            state=self.cursor.current if self.cursor else "<fixed>",
        )

    def run_idle(self, duration: Quantity) -> RunResult:
        """Sit idle for ``duration`` (static power only)."""
        static = (self.state_power + self.base_power) * duration
        return RunResult(
            duration=duration,
            static_energy=static,
            dynamic_energy=Quantity(0.0, ENERGY),
            instructions=0,
            frequency=self.frequency,
            state=self.cursor.current if self.cursor else "<fixed>",
        )
