"""A small path query mini-language over runtime handles, compiled.

Complements the browsing functions with string queries like::

    node[0]/cpu
    //device[@type='Nvidia_K20c']
    //cache[@name='L3']

Reuses the grammar of :mod:`repro.xpdlxml.path` (same syntax in descriptors
and at runtime).  Each query string is parsed **once** into a
:class:`PathPlan` — a tuple of segment operations over the
:class:`~repro.runtime.index.IRIndex` — and cached in an LRU keyed by the
path text (``runtime.plan_hits``/``runtime.plan_misses`` count the cache
traffic).  Plan evaluation works on integer node indexes: the ``//tag``
axis is a bisect into the kind bucket's document-order interval instead of
a subtree walk, and ``[@attr='value']`` predicates are set-membership
probes into the attribute indexes.  Handles only materialize (interned)
for the final result set.

The original handle-walking evaluator is kept as
:func:`query_all_naive` — the reference oracle the property tests hold
the compiled engine to, result-for-result and in order.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from collections import OrderedDict
from dataclasses import dataclass

from ..diagnostics import QueryError
from ..obs import get_observer
from .query import ModelHandle, QueryContext

_SEGMENT_RE = re.compile(
    r"""^(?P<axis>//)?(?P<tag>\*|[A-Za-z_:][\w:.\-]*)
        (?P<preds>(\[[^\]]*\])*)$""",
    re.VERBOSE,
)
_PRED_RE = re.compile(
    r"""\[(?:
          (?P<index>\d+)
        | @(?P<attr>[\w:.\-]+)\s*(?:=\s*'(?P<value>[^']*)')?
        )\]""",
    re.VERBOSE,
)


def _split(path: str) -> list[str]:
    segments: list[str] = []
    i, n = 0, len(path)
    while i < n:
        if path.startswith("//", i):
            k = i + 2
            while k < n and path[k] != "/":
                k += 1
            segments.append(path[i:k])
            i = k
        elif path[i] == "/":
            i += 1
        else:
            k = i
            while k < n and path[k] != "/":
                k += 1
            segments.append(path[i:k])
            i = k
    return segments


def _parse_predicates(preds: str, segment: str) -> tuple[tuple, ...]:
    """Parse the predicate chain; unparseable brackets raise QueryError."""
    parsed: list[tuple] = []
    pos = 0
    for pm in _PRED_RE.finditer(preds):
        if pm.start() != pos:
            break
        if pm.group("index") is not None:
            parsed.append(("index", int(pm.group("index"))))
        else:
            parsed.append(("attr", pm.group("attr"), pm.group("value")))
        pos = pm.end()
    if pos != len(preds):
        raise QueryError(
            f"malformed predicate {preds[pos:]!r} in segment {segment!r}"
        )
    return tuple(parsed)


# ---------------------------------------------------------------------------
# plan compiler
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class PathStep:
    """One compiled segment: axis + tag + parsed predicate chain."""

    descend: bool
    tag: str  # element kind, or "*"
    preds: tuple[tuple, ...]


@dataclass(frozen=True, slots=True)
class PathPlan:
    """A parsed query, reusable across contexts (pure syntax)."""

    path: str
    steps: tuple[PathStep, ...]


def compile_path(path: str) -> PathPlan:
    """Parse ``path`` into a plan; raises :class:`QueryError` when malformed."""
    steps: list[PathStep] = []
    for segment in _split(path):
        m = _SEGMENT_RE.match(segment)
        if m is None:
            raise QueryError(f"malformed query segment {segment!r}")
        steps.append(
            PathStep(
                descend=m.group("axis") == "//",
                tag=m.group("tag"),
                preds=_parse_predicates(m.group("preds") or "", segment),
            )
        )
    return PathPlan(path, tuple(steps))


#: LRU of compiled plans, keyed by path text.  Plans carry no context, so
#: one cache serves every QueryContext in the process.
_PLAN_CACHE: OrderedDict[str, PathPlan] = OrderedDict()
_PLAN_CACHE_MAX = 256


def _plan_for(path: str) -> PathPlan:
    plan = _PLAN_CACHE.get(path)
    if plan is not None:
        _PLAN_CACHE.move_to_end(path)
        get_observer().count("runtime.plan_hits")
        return plan
    plan = compile_path(path)  # raises before the miss is recorded
    get_observer().count("runtime.plan_misses")
    _PLAN_CACHE[path] = plan
    if len(_PLAN_CACHE) > _PLAN_CACHE_MAX:
        _PLAN_CACHE.popitem(last=False)
    return plan


def plan_cache_stats() -> dict[str, int]:
    """Current plan-cache occupancy (counters live on the observer)."""
    return {"entries": len(_PLAN_CACHE), "max_entries": _PLAN_CACHE_MAX}


def clear_plan_cache() -> None:
    """Drop all compiled plans (tests; never needed in production — plans
    depend only on the query text)."""
    _PLAN_CACHE.clear()


# ---------------------------------------------------------------------------
# compiled evaluation
# ---------------------------------------------------------------------------


def _eval_step(ctx: QueryContext, contexts: list[int], step: PathStep) -> list[int]:
    """Apply one step to a list of context node indexes.

    Faithful to XPath-per-context semantics: candidates are produced per
    context node in document order, predicates filter each context's
    matches separately, and results deduplicate globally in first-seen
    order — exactly what :func:`query_all_naive` computes by walking.
    """
    index = ctx.index
    kinds = index.kinds
    matched: list[int] = []
    seen: set[int] = set()
    for i in contexts:
        if step.descend:
            if step.tag == "*":
                local = index.descendant_slice(i)
            else:
                lo, hi = index.interval(i)
                positions, indexes = index.bucket(step.tag)
                local = indexes[
                    bisect_left(positions, lo) : bisect_left(positions, hi)
                ]
        else:
            children = index.children[i]
            if step.tag == "*":
                local = list(children)
            else:
                local = [c for c in children if kinds[c] == step.tag]
        for pred in step.preds:
            if pred[0] == "index":
                k = pred[1]
                local = [local[k]] if k < len(local) else []
            else:
                _t, attr, value = pred
                members = (
                    index.attr_has(attr)
                    if value is None
                    else index.attr_eq(attr, value)
                )
                local = [c for c in local if c in members] if members else []
        for c in local:
            if c not in seen:
                seen.add(c)
                matched.append(c)
    return matched


def query_all(ctx: QueryContext, path: str) -> list[ModelHandle]:
    """Evaluate a path query from the model root (compiled engine)."""
    get_observer().count("runtime.queries")
    plan = _plan_for(path)
    contexts = [ctx.ir.root.index]
    for step in plan.steps:
        contexts = _eval_step(ctx, contexts, step)
        if not contexts:
            return []
    return [ctx.handle(i) for i in contexts]


def query_first(ctx: QueryContext, path: str) -> ModelHandle | None:
    matches = query_all(ctx, path)
    return matches[0] if matches else None


# ---------------------------------------------------------------------------
# reference oracle (the original walking evaluator)
# ---------------------------------------------------------------------------


def _apply_naive(
    ctx: QueryContext, nodes: list, segment: str
) -> list:
    m = _SEGMENT_RE.match(segment)
    if m is None:
        raise QueryError(f"malformed query segment {segment!r}")
    tag = m.group("tag")
    descend = m.group("axis") == "//"
    preds = _parse_predicates(m.group("preds") or "", segment)
    ir = ctx.ir
    matched: list = []
    seen: set[int] = set()
    for node in nodes:
        if descend:
            candidates = [n for n in ir.walk(node) if n is not node]
        else:
            candidates = ir.children_of(node)
        # Predicates filter per context node (XPath semantics), so an
        # index predicate picks one match under each node, not globally.
        local = [c for c in candidates if tag == "*" or c.kind == tag]
        for pred in preds:
            if pred[0] == "index":
                idx = pred[1]
                local = [local[idx]] if idx < len(local) else []
            else:
                _kind, attr, value = pred
                if value is None:
                    local = [c for c in local if attr in c.attrs]
                else:
                    local = [c for c in local if c.attrs.get(attr) == value]
        for c in local:
            if c.index not in seen:
                seen.add(c.index)
                matched.append(c)
    return matched


def query_all_naive(ctx: QueryContext, path: str) -> list[ModelHandle]:
    """The uncompiled evaluator: re-parses the path and walks the tree.

    Kept as the reference oracle for the compiled engine (property tests
    assert result-for-result, in-order equality) and as the comparison
    subject in the E9 benchmarks.  Like the compiled engine, the whole
    path is validated up front: a malformed trailing segment raises even
    when an earlier segment already matched nothing.
    """
    segments = _split(path)
    for segment in segments:  # validate the full path before evaluating
        m = _SEGMENT_RE.match(segment)
        if m is None:
            raise QueryError(f"malformed query segment {segment!r}")
        _parse_predicates(m.group("preds") or "", segment)
    nodes = [ctx.ir.root]
    for segment in segments:
        nodes = _apply_naive(ctx, nodes, segment)
        if not nodes:
            return []
    return [ModelHandle(ctx, n) for n in nodes]
