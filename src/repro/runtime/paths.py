"""A small path query mini-language over runtime handles.

Complements the browsing functions with string queries like::

    node[0]/cpu
    //device[@type='Nvidia_K20c']
    //cache[@name='L3']

Reuses the grammar of :mod:`repro.xpdlxml.path` (same syntax in descriptors
and at runtime), evaluated over IR handles.
"""

from __future__ import annotations

import re

from ..diagnostics import QueryError
from ..obs import get_observer
from .query import ModelHandle, QueryContext

_SEGMENT_RE = re.compile(
    r"""^(?P<axis>//)?(?P<tag>\*|[A-Za-z_:][\w:.\-]*)
        (?P<preds>(\[[^\]]*\])*)$""",
    re.VERBOSE,
)
_PRED_RE = re.compile(
    r"""\[(?:
          (?P<index>\d+)
        | @(?P<attr>[\w:.\-]+)\s*(?:=\s*'(?P<value>[^']*)')?
        )\]""",
    re.VERBOSE,
)


def _split(path: str) -> list[str]:
    segments: list[str] = []
    i, n = 0, len(path)
    while i < n:
        if path.startswith("//", i):
            k = i + 2
            while k < n and path[k] != "/":
                k += 1
            segments.append(path[i:k])
            i = k
        elif path[i] == "/":
            i += 1
        else:
            k = i
            while k < n and path[k] != "/":
                k += 1
            segments.append(path[i:k])
            i = k
    return segments


def _parse_predicates(preds: str, segment: str) -> list[tuple]:
    """Parse the predicate chain; unparseable brackets raise QueryError."""
    parsed: list[tuple] = []
    pos = 0
    for pm in _PRED_RE.finditer(preds):
        if pm.start() != pos:
            break
        if pm.group("index") is not None:
            parsed.append(("index", int(pm.group("index"))))
        else:
            parsed.append(("attr", pm.group("attr"), pm.group("value")))
        pos = pm.end()
    if pos != len(preds):
        raise QueryError(
            f"malformed predicate {preds[pos:]!r} in segment {segment!r}"
        )
    return parsed


def _apply(handles: list[ModelHandle], segment: str) -> list[ModelHandle]:
    m = _SEGMENT_RE.match(segment)
    if m is None:
        raise QueryError(f"malformed query segment {segment!r}")
    tag = m.group("tag")
    descend = m.group("axis") == "//"
    preds = _parse_predicates(m.group("preds") or "", segment)
    matched: list[ModelHandle] = []
    seen: set[int] = set()
    for h in handles:
        candidates = h.descendants() if descend else h.children()
        # Predicates filter per context handle (XPath semantics), so an
        # index predicate picks one match under each handle, not globally.
        local = [c for c in candidates if tag == "*" or c.kind == tag]
        for pred in preds:
            if pred[0] == "index":
                idx = pred[1]
                local = [local[idx]] if idx < len(local) else []
            else:
                _kind, attr, value = pred
                if value is None:
                    local = [c for c in local if c.attr(attr) is not None]
                else:
                    local = [c for c in local if c.attr(attr) == value]
        for c in local:
            if c.index not in seen:
                seen.add(c.index)
                matched.append(c)
    return matched


def query_all(ctx: QueryContext, path: str) -> list[ModelHandle]:
    """Evaluate a path query from the model root."""
    get_observer().count("runtime.queries")
    handles = [ctx.root]
    for segment in _split(path):
        handles = _apply(handles, segment)
        if not handles:
            return []
    return handles


def query_first(ctx: QueryContext, path: str) -> ModelHandle | None:
    matches = query_all(ctx, path)
    return matches[0] if matches else None
