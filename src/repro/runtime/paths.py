"""A small path query mini-language over runtime handles.

Complements the browsing functions with string queries like::

    node[0]/cpu
    //device[@type='Nvidia_K20c']
    //cache[@name='L3']

Reuses the grammar of :mod:`repro.xpdlxml.path` (same syntax in descriptors
and at runtime), evaluated over IR handles.
"""

from __future__ import annotations

import re

from ..diagnostics import QueryError
from ..obs import get_observer
from .query import ModelHandle, QueryContext

_SEGMENT_RE = re.compile(
    r"""^(?P<axis>//)?(?P<tag>\*|[A-Za-z_:][\w:.\-]*)
        (?P<preds>(\[[^\]]*\])*)$""",
    re.VERBOSE,
)
_PRED_RE = re.compile(
    r"""\[(?:
          (?P<index>\d+)
        | @(?P<attr>[\w:.\-]+)\s*(?:=\s*'(?P<value>[^']*)')?
        )\]""",
    re.VERBOSE,
)


def _split(path: str) -> list[str]:
    segments: list[str] = []
    i, n = 0, len(path)
    while i < n:
        if path.startswith("//", i):
            k = i + 2
            while k < n and path[k] != "/":
                k += 1
            segments.append(path[i:k])
            i = k
        elif path[i] == "/":
            i += 1
        else:
            k = i
            while k < n and path[k] != "/":
                k += 1
            segments.append(path[i:k])
            i = k
    return segments


def _apply(handles: list[ModelHandle], segment: str) -> list[ModelHandle]:
    m = _SEGMENT_RE.match(segment)
    if m is None:
        raise QueryError(f"malformed query segment {segment!r}")
    tag = m.group("tag")
    descend = m.group("axis") == "//"
    matched: list[ModelHandle] = []
    seen: set[int] = set()
    for h in handles:
        candidates = h.descendants() if descend else h.children()
        for c in candidates:
            if tag != "*" and c.kind != tag:
                continue
            if c.index not in seen:
                seen.add(c.index)
                matched.append(c)
    for pm in _PRED_RE.finditer(m.group("preds") or ""):
        if pm.group("index") is not None:
            idx = int(pm.group("index"))
            matched = [matched[idx]] if idx < len(matched) else []
        else:
            attr = pm.group("attr")
            value = pm.group("value")
            if value is None:
                matched = [h for h in matched if h.attr(attr) is not None]
            else:
                matched = [h for h in matched if h.attr(attr) == value]
    return matched


def query_all(ctx: QueryContext, path: str) -> list[ModelHandle]:
    """Evaluate a path query from the model root."""
    get_observer().count("runtime.queries")
    handles = [ctx.root]
    for segment in _split(path):
        handles = _apply(handles, segment)
        if not handles:
            return []
    return handles


def query_first(ctx: QueryContext, path: str) -> ModelHandle | None:
    matches = query_all(ctx, path)
    return matches[0] if matches else None
