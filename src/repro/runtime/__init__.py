"""Runtime query API over the light-weight model IR (paper Sec. IV)."""

from .index import IRIndex
from .query import (
    ModelHandle,
    QueryContext,
    xpdl_init,
    xpdl_init_from_model,
)
from .paths import (
    PathPlan,
    PathStep,
    clear_plan_cache,
    compile_path,
    plan_cache_stats,
    query_all,
    query_all_naive,
    query_first,
)

__all__ = [
    "IRIndex",
    "ModelHandle",
    "PathPlan",
    "PathStep",
    "QueryContext",
    "xpdl_init",
    "xpdl_init_from_model",
    "clear_plan_cache",
    "compile_path",
    "plan_cache_stats",
    "query_all",
    "query_all_naive",
    "query_first",
]
