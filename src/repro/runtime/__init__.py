"""Runtime query API over the light-weight model IR (paper Sec. IV)."""

from .query import (
    ModelHandle,
    QueryContext,
    xpdl_init,
    xpdl_init_from_model,
)
from .paths import query_all, query_first

__all__ = [
    "ModelHandle",
    "QueryContext",
    "xpdl_init",
    "xpdl_init_from_model",
    "query_all",
    "query_first",
]
