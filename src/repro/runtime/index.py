"""The compiled query index over the runtime IR (paper Sec. IV).

Sec. IV makes the runtime query API the hot path: adaptive applications
introspect the light-weight model *inside* their optimization loops, so
queries must cost near nothing.  :class:`IRIndex` is built once per IR
(the IR is read-only by design, so nothing here ever invalidates) and
turns the naive tree walks into table lookups:

* **pre-order numbering + subtree sizes** — every node gets a document
  position; "is ``d`` a descendant of ``a``" becomes an O(1) interval
  check and "all descendants of ``a``" a contiguous slice;
* **kind buckets** — node indexes per element kind, in document order,
  so ``find_all('core')`` and the ``//tag`` axis never walk the tree;
* **attribute indexes** — node-index sets per attribute presence and per
  ``(attribute, value)`` pair, serving the hot ``[@attr='value']``
  predicates with set membership instead of per-node dict probing;
* **memoized model analyses** — one lazy post-order pass per derived
  attribute (per-kind physical counts, CUDA-device counts, aggregate
  static power) makes every ``count_*``/``total_static_power`` call an
  O(1) array read, for any subtree root.

The index is pure structure — it holds no handles and no context, so one
index can back any number of :class:`~repro.runtime.query.QueryContext`
objects over the same IR (contexts intern their own handles).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import TYPE_CHECKING, Any

from ..analysis import NON_PHYSICAL_KINDS
from ..obs import get_observer
from ..units import POWER, Quantity, read_metric

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..ir import IRModel

_EMPTY_BUCKET: tuple[list[int], list[int]] = ([], [])
_EMPTY_SET: frozenset[int] = frozenset()
_ZERO_POWER = Quantity(0.0, POWER)

#: v2 images store "unreachable from root" as the u32 all-ones sentinel
#: (a mapped u32 view cannot hold the eager build's -1).
_UNREACHABLE = 0xFFFFFFFF


class _ImageKinds:
    """Kind strings viewed through the image's lazily-decoded pool."""

    __slots__ = ("_ids", "_pool")

    def __init__(self, image) -> None:
        self._ids = image.kind_ids
        self._pool = image.pool

    def __len__(self) -> int:
        return len(self._ids)

    def __getitem__(self, i: int) -> str:
        return self._pool[self._ids[i]]

    def __iter__(self):
        pool = self._pool
        return (pool[sid] for sid in self._ids)


class _ImageChildren:
    """Per-node child-index lists over the mapped CHLD section (memoized
    so hot child-axis steps don't re-slice per call)."""

    __slots__ = ("_off", "_idx", "_memo")

    def __init__(self, image) -> None:
        self._off = image.child_off
        self._idx = image.child_idx
        self._memo: list[list[int] | None] = [None] * image.n

    def __len__(self) -> int:
        return len(self._memo)

    def __getitem__(self, i: int) -> list[int]:
        c = self._memo[i]
        if c is None:
            c = self._memo[i] = list(self._idx[self._off[i] : self._off[i + 1]])
        return c


class IRIndex:
    """Read-only acceleration structures for one :class:`IRModel`.

    Built once (``IRModel.index()`` memoizes construction); never
    invalidated — the runtime IR is immutable by design.  A model backed
    by an intact v2 image skips construction entirely: the pre/size/doc
    arrays, kind buckets and attribute node sets are *views* over the
    mapped sections (attribute sets materialize lazily per key).
    """

    __slots__ = (
        "ir",
        "kinds",
        "children",
        "pre",
        "size",
        "doc",
        "_image",
        "_buckets",
        "_attr_has",
        "_attr_eq",
        "_kind_counts",
        "_cuda_counts",
        "_static_power_w",
    )

    # Eager builds use plain lists/sets; image-backed indexes adopt u32
    # memoryviews and lazy wrappers — one declaration covers both.
    kinds: Any
    children: Any
    pre: Any
    size: Any
    doc: Any
    _image: Any
    _buckets: Any
    _attr_has: Any
    _attr_eq: Any

    def __init__(self, ir: "IRModel", *, use_image: bool = True) -> None:
        self.ir = ir
        image = getattr(ir, "_image", None) if use_image else None
        if image is not None and image.index_ok:
            self._init_from_image(image)
            return
        self._image = None
        nodes = ir.nodes
        n = len(nodes)
        self.kinds = [node.kind for node in nodes]
        self.children = [node.children for node in nodes]

        # -- pre-order numbering + subtree sizes (iterative, any depth) ----
        pre = [-1] * n
        size = [1] * n
        doc: list[int] = []
        if n:
            stack: list[int] = [~0, 0]  # ~i marks the post-visit of i
            while stack:
                i = stack.pop()
                if i < 0:
                    i = ~i
                    parent = nodes[i].parent
                    if parent is not None:
                        size[parent] += size[i]
                    continue
                pre[i] = len(doc)
                doc.append(i)
                for c in reversed(nodes[i].children):
                    stack.append(~c)
                    stack.append(c)
        self.pre = pre
        self.size = size
        self.doc = doc

        # -- kind buckets + attribute indexes, in document order -----------
        buckets: dict[str, tuple[list[int], list[int]]] = {}
        attr_has: dict[str, set[int]] = {}
        attr_eq: dict[tuple[str, str], set[int]] = {}
        kinds = self.kinds
        for pos, i in enumerate(doc):
            bucket = buckets.get(kinds[i])
            if bucket is None:
                bucket = buckets[kinds[i]] = ([], [])
            bucket[0].append(pos)
            bucket[1].append(i)
            for name, value in nodes[i].attrs.items():
                has = attr_has.get(name)
                if has is None:
                    has = attr_has[name] = set()
                has.add(i)
                eq = attr_eq.get((name, value))
                if eq is None:
                    eq = attr_eq[(name, value)] = set()
                eq.add(i)
        self._buckets = buckets
        self._attr_has = attr_has
        self._attr_eq = attr_eq

        # -- derived-analysis memos (built lazily, per analysis) -----------
        self._kind_counts: dict[str, list[int]] = {}
        self._cuda_counts: list[int] | None = None
        self._static_power_w: list[float] | None = None

        obs = get_observer()
        if obs.enabled:
            obs.count("runtime.index_builds")
            obs.count("runtime.index_nodes", n)
            if getattr(ir, "_load_origin", None) is not None:
                # A persisted model was opened without a usable index:
                # this build is exactly the startup tax the v2 image
                # format exists to avoid.  CI asserts this stays 0 on
                # the warm path.
                obs.count("index.rebuilds")
                obs.mark("index.rebuild", origin=ir._load_origin)

    def _init_from_image(self, image) -> None:
        """Adopt the mapped index sections — zero construction work."""
        self._image = image
        self.kinds = _ImageKinds(image)
        self.children = _ImageChildren(image)
        self.pre = image.pre
        self.size = image.size
        self.doc = image.doc
        self._buckets = image.buckets
        # Lazy per-key materialization caches (image lookups fill them).
        self._attr_has = {}
        self._attr_eq = {}
        self._kind_counts = {}
        self._cuda_counts = None
        self._static_power_w = None
        obs = get_observer()
        if obs.enabled:
            obs.count("index.load_mmap")
            obs.count("runtime.index_nodes", image.n)

    # -- structure queries -------------------------------------------------
    def interval(self, i: int) -> tuple[int, int]:
        """Document-position interval of the *strict* descendants of ``i``."""
        p = self.pre[i]
        if p < 0 or p == _UNREACHABLE:  # unreachable from the root
            return (0, 0)
        return (p + 1, p + self.size[i])

    def bucket(self, kind: str) -> tuple[list[int], list[int]]:
        """``(doc_positions, node_indexes)`` of every ``kind`` node."""
        return self._buckets.get(kind, _EMPTY_BUCKET)

    def descendants_of_kind(self, i: int, kind: str) -> list[int]:
        """Strict descendants of ``i`` with ``kind``, in document order."""
        lo, hi = self.interval(i)
        if lo >= hi:
            return []
        positions, indexes = self.bucket(kind)
        return indexes[bisect_left(positions, lo) : bisect_left(positions, hi)]

    def descendant_slice(self, i: int) -> list[int]:
        """All strict descendants of ``i``, in document order."""
        lo, hi = self.interval(i)
        return self.doc[lo:hi]

    def is_descendant(self, d: int, a: int) -> bool:
        """O(1) strict-descendant check via the interval numbering."""
        lo, hi = self.interval(a)
        p = self.pre[d]
        return lo <= p < hi

    def attr_has(self, name: str) -> frozenset[int] | set[int]:
        image = self._image
        if image is None:
            return self._attr_has.get(name, _EMPTY_SET)
        members = self._attr_has.get(name)
        if members is None:
            members = self._attr_has[name] = image.attr_has_set(name)
        return members

    def attr_eq(self, name: str, value: str) -> frozenset[int] | set[int]:
        image = self._image
        if image is None:
            return self._attr_eq.get((name, value), _EMPTY_SET)
        members = self._attr_eq.get((name, value))
        if members is None:
            members = self._attr_eq[(name, value)] = image.attr_eq_set(
                name, value
            )
        return members

    # -- memoized model analyses -------------------------------------------
    def _physical_postorder(self, per_node, out: list) -> None:
        """Fill ``out[i]`` with ``per_node(i) + sum(out[children])`` over the
        physical containment tree (non-physical kinds contribute nothing and
        prune their subtree, matching ``physical_walk``).  Reverse document
        order visits every child before its parent without recursion."""
        kinds = self.kinds
        children = self.children
        for pos in range(len(self.doc) - 1, -1, -1):
            i = self.doc[pos]
            if kinds[i] in NON_PHYSICAL_KINDS:
                continue  # out[i] stays the zero it was initialized to
            acc = per_node(i)
            for c in children[i]:
                acc += out[c]
            out[i] = acc

    def kind_counts(self, kind: str) -> list[int]:
        """Per-node physical-subtree counts of ``kind`` (lazy, memoized)."""
        counts = self._kind_counts.get(kind)
        if counts is None:
            counts = [0] * len(self.kinds)
            if kind in self._buckets:  # absent kinds stay all-zero for free
                kinds = self.kinds
                self._physical_postorder(
                    lambda i: 1 if kinds[i] == kind else 0, counts
                )
            self._kind_counts[kind] = counts
            get_observer().count("runtime.analysis_memo_builds")
        return counts

    def cuda_counts(self) -> list[int]:
        """Per-node physical-subtree CUDA-programmable device counts."""
        counts = self._cuda_counts
        if counts is None:
            nodes = self.ir.nodes
            kinds = self.kinds

            def is_cuda_device(i: int) -> int:
                if kinds[i] not in ("device", "gpu"):
                    return 0
                for c in self.children[i]:
                    if kinds[c] == "programming_model" and "cuda" in (
                        nodes[c].attrs.get("type", "").lower()
                    ):
                        return 1
                return 0

            counts = [0] * len(kinds)
            self._physical_postorder(is_cuda_device, counts)
            self._cuda_counts = counts
            get_observer().count("runtime.analysis_memo_builds")
        return counts

    def static_power_w(self) -> list[float]:
        """Per-node physical-subtree static power in watts.

        Built lazily so malformed ``static_power`` attributes raise on the
        first *call* (as the naive walk did), not at index construction.
        """
        sums = self._static_power_w
        if sums is None:
            nodes = self.ir.nodes

            def power_of(i: int) -> float:
                q = read_metric(nodes[i].attrs, "static_power", expect=POWER)
                if q is None:
                    return 0.0
                # Reproduce the sequential accumulation's dimension check
                # (a unitless static_power must still be rejected loudly).
                return (_ZERO_POWER + q).magnitude

            sums = [0.0] * len(self.kinds)
            self._physical_postorder(power_of, sums)
            self._static_power_w = sums
            get_observer().count("runtime.analysis_memo_builds")
        return sums
