"""The compiled query index over the runtime IR (paper Sec. IV).

Sec. IV makes the runtime query API the hot path: adaptive applications
introspect the light-weight model *inside* their optimization loops, so
queries must cost near nothing.  :class:`IRIndex` is built once per IR
(the IR is read-only by design, so nothing here ever invalidates) and
turns the naive tree walks into table lookups:

* **pre-order numbering + subtree sizes** — every node gets a document
  position; "is ``d`` a descendant of ``a``" becomes an O(1) interval
  check and "all descendants of ``a``" a contiguous slice;
* **kind buckets** — node indexes per element kind, in document order,
  so ``find_all('core')`` and the ``//tag`` axis never walk the tree;
* **attribute indexes** — node-index sets per attribute presence and per
  ``(attribute, value)`` pair, serving the hot ``[@attr='value']``
  predicates with set membership instead of per-node dict probing;
* **memoized model analyses** — one lazy post-order pass per derived
  attribute (per-kind physical counts, CUDA-device counts, aggregate
  static power) makes every ``count_*``/``total_static_power`` call an
  O(1) array read, for any subtree root.

The index is pure structure — it holds no handles and no context, so one
index can back any number of :class:`~repro.runtime.query.QueryContext`
objects over the same IR (contexts intern their own handles).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import TYPE_CHECKING

from ..analysis import NON_PHYSICAL_KINDS
from ..obs import get_observer
from ..units import POWER, Quantity, read_metric

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..ir import IRModel

_EMPTY_BUCKET: tuple[list[int], list[int]] = ([], [])
_EMPTY_SET: frozenset[int] = frozenset()
_ZERO_POWER = Quantity(0.0, POWER)


class IRIndex:
    """Read-only acceleration structures for one :class:`IRModel`.

    Built once (``IRModel.index()`` memoizes construction); never
    invalidated — the runtime IR is immutable by design.
    """

    __slots__ = (
        "ir",
        "kinds",
        "children",
        "pre",
        "size",
        "doc",
        "_buckets",
        "_attr_has",
        "_attr_eq",
        "_kind_counts",
        "_cuda_counts",
        "_static_power_w",
    )

    def __init__(self, ir: "IRModel") -> None:
        self.ir = ir
        nodes = ir.nodes
        n = len(nodes)
        self.kinds: list[str] = [node.kind for node in nodes]
        self.children: list[list[int]] = [node.children for node in nodes]

        # -- pre-order numbering + subtree sizes (iterative, any depth) ----
        pre = [-1] * n
        size = [1] * n
        doc: list[int] = []
        if n:
            stack: list[int] = [~0, 0]  # ~i marks the post-visit of i
            while stack:
                i = stack.pop()
                if i < 0:
                    i = ~i
                    parent = nodes[i].parent
                    if parent is not None:
                        size[parent] += size[i]
                    continue
                pre[i] = len(doc)
                doc.append(i)
                for c in reversed(nodes[i].children):
                    stack.append(~c)
                    stack.append(c)
        self.pre = pre
        self.size = size
        self.doc = doc

        # -- kind buckets + attribute indexes, in document order -----------
        buckets: dict[str, tuple[list[int], list[int]]] = {}
        attr_has: dict[str, set[int]] = {}
        attr_eq: dict[tuple[str, str], set[int]] = {}
        kinds = self.kinds
        for pos, i in enumerate(doc):
            bucket = buckets.get(kinds[i])
            if bucket is None:
                bucket = buckets[kinds[i]] = ([], [])
            bucket[0].append(pos)
            bucket[1].append(i)
            for name, value in nodes[i].attrs.items():
                has = attr_has.get(name)
                if has is None:
                    has = attr_has[name] = set()
                has.add(i)
                eq = attr_eq.get((name, value))
                if eq is None:
                    eq = attr_eq[(name, value)] = set()
                eq.add(i)
        self._buckets = buckets
        self._attr_has = attr_has
        self._attr_eq = attr_eq

        # -- derived-analysis memos (built lazily, per analysis) -----------
        self._kind_counts: dict[str, list[int]] = {}
        self._cuda_counts: list[int] | None = None
        self._static_power_w: list[float] | None = None

        obs = get_observer()
        if obs.enabled:
            obs.count("runtime.index_builds")
            obs.count("runtime.index_nodes", n)

    # -- structure queries -------------------------------------------------
    def interval(self, i: int) -> tuple[int, int]:
        """Document-position interval of the *strict* descendants of ``i``."""
        p = self.pre[i]
        if p < 0:  # unreachable from the root
            return (0, 0)
        return (p + 1, p + self.size[i])

    def bucket(self, kind: str) -> tuple[list[int], list[int]]:
        """``(doc_positions, node_indexes)`` of every ``kind`` node."""
        return self._buckets.get(kind, _EMPTY_BUCKET)

    def descendants_of_kind(self, i: int, kind: str) -> list[int]:
        """Strict descendants of ``i`` with ``kind``, in document order."""
        lo, hi = self.interval(i)
        if lo >= hi:
            return []
        positions, indexes = self.bucket(kind)
        return indexes[bisect_left(positions, lo) : bisect_left(positions, hi)]

    def descendant_slice(self, i: int) -> list[int]:
        """All strict descendants of ``i``, in document order."""
        lo, hi = self.interval(i)
        return self.doc[lo:hi]

    def is_descendant(self, d: int, a: int) -> bool:
        """O(1) strict-descendant check via the interval numbering."""
        lo, hi = self.interval(a)
        p = self.pre[d]
        return lo <= p < hi

    def attr_has(self, name: str) -> frozenset[int] | set[int]:
        return self._attr_has.get(name, _EMPTY_SET)

    def attr_eq(self, name: str, value: str) -> frozenset[int] | set[int]:
        return self._attr_eq.get((name, value), _EMPTY_SET)

    # -- memoized model analyses -------------------------------------------
    def _physical_postorder(self, per_node, out: list) -> None:
        """Fill ``out[i]`` with ``per_node(i) + sum(out[children])`` over the
        physical containment tree (non-physical kinds contribute nothing and
        prune their subtree, matching ``physical_walk``).  Reverse document
        order visits every child before its parent without recursion."""
        kinds = self.kinds
        children = self.children
        for pos in range(len(self.doc) - 1, -1, -1):
            i = self.doc[pos]
            if kinds[i] in NON_PHYSICAL_KINDS:
                continue  # out[i] stays the zero it was initialized to
            acc = per_node(i)
            for c in children[i]:
                acc += out[c]
            out[i] = acc

    def kind_counts(self, kind: str) -> list[int]:
        """Per-node physical-subtree counts of ``kind`` (lazy, memoized)."""
        counts = self._kind_counts.get(kind)
        if counts is None:
            counts = [0] * len(self.kinds)
            if kind in self._buckets:  # absent kinds stay all-zero for free
                kinds = self.kinds
                self._physical_postorder(
                    lambda i: 1 if kinds[i] == kind else 0, counts
                )
            self._kind_counts[kind] = counts
            get_observer().count("runtime.analysis_memo_builds")
        return counts

    def cuda_counts(self) -> list[int]:
        """Per-node physical-subtree CUDA-programmable device counts."""
        counts = self._cuda_counts
        if counts is None:
            nodes = self.ir.nodes
            kinds = self.kinds

            def is_cuda_device(i: int) -> int:
                if kinds[i] not in ("device", "gpu"):
                    return 0
                for c in self.children[i]:
                    if kinds[c] == "programming_model" and "cuda" in (
                        nodes[c].attrs.get("type", "").lower()
                    ):
                        return 1
                return 0

            counts = [0] * len(kinds)
            self._physical_postorder(is_cuda_device, counts)
            self._cuda_counts = counts
            get_observer().count("runtime.analysis_memo_builds")
        return counts

    def static_power_w(self) -> list[float]:
        """Per-node physical-subtree static power in watts.

        Built lazily so malformed ``static_power`` attributes raise on the
        first *call* (as the naive walk did), not at index construction.
        """
        sums = self._static_power_w
        if sums is None:
            nodes = self.ir.nodes

            def power_of(i: int) -> float:
                q = read_metric(nodes[i].attrs, "static_power", expect=POWER)
                if q is None:
                    return 0.0
                # Reproduce the sequential accumulation's dimension check
                # (a unitless static_power must still be rejected loudly).
                return (_ZERO_POWER + q).magnitude

            sums = [0.0] * len(self.kinds)
            self._physical_postorder(power_of, sums)
            self._static_power_w = sums
            get_observer().count("runtime.analysis_memo_builds")
        return sums
