"""The XPDL runtime query API (paper Sec. IV).

The Python twin of the generated C++ API, exposing the paper's four
function categories over the light-weight runtime IR file:

1. **Initialization** — :func:`xpdl_init` loads the runtime data structure
   file produced by the toolchain and returns a :class:`QueryContext`.
2. **Model-tree browsing** — lookups of inner elements returning a handle,
   a list of handles, or ``None`` (the paper's NULL).
3. **Attribute getters** — generated-getter-style typed accessors
   (``get_<attr>()`` via ``__getattr__``, plus explicit helpers).
4. **Model analysis functions** — derived attributes such as core counts,
   CUDA device counts and subtree static power.

Handles are thin wrappers over IR nodes; everything is read-only, matching
the introspection use of conditional composition [3].
"""

from __future__ import annotations

from typing import Iterator

from ..analysis import NON_PHYSICAL_KINDS
from ..diagnostics import QueryError
from ..ir import IRModel, IRNode
from ..obs import get_observer
from ..units import (
    DEFAULT_REGISTRY,
    Dimension,
    POWER,
    Quantity,
    read_metric,
)


class ModelHandle:
    """A read-only handle to one model element at runtime.

    Attribute getters are generated on the fly: ``h.get_id()``,
    ``h.get_frequency()`` etc. mirror the C++ API's generated getters;
    ``h.get_quantity("static_power")`` gives the unit-aware view.
    """

    __slots__ = ("_ctx", "_node")

    def __init__(self, ctx: "QueryContext", node: IRNode) -> None:
        self._ctx = ctx
        self._node = node

    # -- identity ------------------------------------------------------------
    @property
    def kind(self) -> str:
        return self._node.kind

    @property
    def index(self) -> int:
        return self._node.index

    def label(self) -> str:
        return self._node.label()

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ModelHandle)
            and other._ctx is self._ctx
            and other._node.index == self._node.index
        )

    def __hash__(self) -> int:
        return hash((id(self._ctx), self._node.index))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ModelHandle<{self.kind} {self.label()}>"

    # -- category 2: browsing ---------------------------------------------------
    def parent(self) -> "ModelHandle | None":
        p = self._ctx.ir.parent_of(self._node)
        return ModelHandle(self._ctx, p) if p is not None else None

    def children(self, kind: str | None = None) -> list["ModelHandle"]:
        out = [
            ModelHandle(self._ctx, c)
            for c in self._ctx.ir.children_of(self._node)
        ]
        if kind is not None:
            out = [h for h in out if h.kind == kind]
        return out

    def first(self, kind: str) -> "ModelHandle | None":
        for c in self._ctx.ir.children_of(self._node):
            if c.kind == kind:
                return ModelHandle(self._ctx, c)
        return None

    def descendants(self, kind: str | None = None) -> list["ModelHandle"]:
        out = []
        for n in self._ctx.ir.walk(self._node):
            if n is not self._node and (kind is None or n.kind == kind):
                out.append(ModelHandle(self._ctx, n))
        return out

    def walk(self) -> Iterator["ModelHandle"]:
        for n in self._ctx.ir.walk(self._node):
            yield ModelHandle(self._ctx, n)

    # -- category 3: attribute getters ----------------------------------------------
    def attr(self, name: str, default: str | None = None) -> str | None:
        return self._node.attrs.get(name, default)

    def attrs(self) -> dict[str, str]:
        return dict(self._node.attrs)

    def get_quantity(
        self, metric: str, dimension: Dimension | None = None
    ) -> Quantity | None:
        return read_metric(
            self._node.attrs,
            metric,
            registry=DEFAULT_REGISTRY,
            expect=dimension,
        )

    def get_int(self, name: str) -> int | None:
        raw = self._node.attrs.get(name)
        return int(raw) if raw is not None else None

    def __getattr__(self, name: str):
        # Generated-getter emulation: get_<attr>() -> str | None.
        if name.startswith("get_"):
            attr_name = name[4:]

            def getter() -> str | None:
                return self._node.attrs.get(attr_name)

            getter.__name__ = name
            return getter
        raise AttributeError(name)


class QueryContext:
    """Category 1: the initialized runtime query environment."""

    def __init__(self, ir: IRModel) -> None:
        self.ir = ir

    # -- entry points --------------------------------------------------------
    @property
    def root(self) -> ModelHandle:
        return ModelHandle(self, self.ir.root)

    def by_id(self, ident: str) -> ModelHandle | None:
        node = self.ir.by_id(ident)
        return ModelHandle(self, node) if node is not None else None

    def find_all(self, kind: str) -> list[ModelHandle]:
        return [
            ModelHandle(self, n) for n in self.ir.walk() if n.kind == kind
        ]

    def meta(self, key: str, default: str | None = None) -> str | None:
        return self.ir.meta.get(key, default)

    # -- category 4: model analysis functions --------------------------------------
    def _physical_walk(self, start: IRNode) -> Iterator[IRNode]:
        if start.kind in NON_PHYSICAL_KINDS:
            return
        yield start
        for c in self.ir.children_of(start):
            yield from self._physical_walk(c)

    def count_kind(self, kind: str, *, under: ModelHandle | None = None) -> int:
        start = under._node if under is not None else self.ir.root
        return sum(1 for n in self._physical_walk(start) if n.kind == kind)

    def count_cores(self, *, under: ModelHandle | None = None) -> int:
        """Number of processing cores in the (sub)tree."""
        return self.count_kind("core", under=under)

    def count_cuda_devices(self, *, under: ModelHandle | None = None) -> int:
        """Number of devices programmable with CUDA in the (sub)tree."""
        start = under._node if under is not None else self.ir.root
        n = 0
        for node in self._physical_walk(start):
            if node.kind not in ("device", "gpu"):
                continue
            for c in self.ir.children_of(node):
                if c.kind == "programming_model" and "cuda" in (
                    c.attrs.get("type", "").lower()
                ):
                    n += 1
                    break
        return n

    def total_static_power(self, *, under: ModelHandle | None = None) -> Quantity:
        """Aggregate static power over the physical (sub)tree."""
        start = under._node if under is not None else self.ir.root
        total = Quantity(0.0, POWER)
        for node in self._physical_walk(start):
            q = read_metric(node.attrs, "static_power", expect=POWER)
            if q is not None:
                total = total + q
        return total

    def installed_software(self) -> list[ModelHandle]:
        """All installed software entries of the platform."""
        return self.find_all("installed")

    def has_installed(self, requirement: str) -> bool:
        """Whether any installed package matches a name/provides requirement.

        Matches case-insensitively against the package name/type/id and the
        comma-separated ``provides`` capability list — the lookup that
        guides variant selectability in conditional composition [3].
        """
        want = requirement.strip().lower()
        for pkg in self.installed_software():
            haystack = {
                (pkg.attr("name") or "").lower(),
                (pkg.attr("type") or "").lower(),
                (pkg.attr("id") or "").lower(),
            }
            provides = (pkg.attr("provides") or "").lower()
            haystack.update(p.strip() for p in provides.split(","))
            if want in haystack:
                return True
        return False

    def properties(self) -> dict[str, str]:
        """Flattened free-form key-value properties of the platform."""
        out: dict[str, str] = {}
        for prop in self.find_all("property"):
            name = prop.attr("name")
            if name and name not in out:
                out[name] = prop.attr("value") or prop.attr("type") or ""
        return out


def xpdl_init(filename: str) -> QueryContext:
    """Initialize the runtime query environment from a runtime model file.

    The Python spelling of the paper's ``int xpdl_init(char *filename)``;
    raises :class:`QueryError` on unreadable or malformed files instead of
    returning an error code.
    """
    try:
        ir = IRModel.load(filename)
    except FileNotFoundError:
        raise QueryError(f"runtime model file not found: {filename}") from None
    get_observer().count("runtime.inits")
    return QueryContext(ir)


def xpdl_init_from_model(ir: IRModel) -> QueryContext:
    """Initialize directly from an in-memory IR (tool pipelines, tests)."""
    return QueryContext(ir)
