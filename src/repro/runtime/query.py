"""The XPDL runtime query API (paper Sec. IV).

The Python twin of the generated C++ API, exposing the paper's four
function categories over the light-weight runtime IR file:

1. **Initialization** — :func:`xpdl_init` loads the runtime data structure
   file produced by the toolchain and returns a :class:`QueryContext`.
2. **Model-tree browsing** — lookups of inner elements returning a handle,
   a list of handles, or ``None`` (the paper's NULL).
3. **Attribute getters** — generated-getter-style typed accessors
   (``get_<attr>()`` via ``__getattr__``, plus explicit helpers).
4. **Model analysis functions** — derived attributes such as core counts,
   CUDA device counts and subtree static power.

Handles are thin wrappers over IR nodes, and everything is read-only,
matching the introspection use of conditional composition [3].  Because
the queries run *inside* applications' optimization loops, the context is
backed by a compiled :class:`~repro.runtime.index.IRIndex` (built once at
:func:`xpdl_init`): browsing serves interned handles out of kind buckets
and document-order intervals instead of re-walking the tree, and the
analysis functions are O(1) reads of memoized post-order aggregates.
"""

from __future__ import annotations

import time
from functools import lru_cache
from typing import Iterator

from ..analysis import NON_PHYSICAL_KINDS
from ..diagnostics import QueryError
from ..ir import IRModel, IRNode
from ..obs import get_observer
from ..units import (
    DEFAULT_REGISTRY,
    Dimension,
    POWER,
    Quantity,
    read_metric,
)


@lru_cache(maxsize=None)
def _generated_getter(name: str):
    """One shared getter function per ``get_<attr>`` name.

    Installed on :class:`ModelHandle` at first use, so every later
    ``h.get_frequency`` is an ordinary class-attribute lookup — no closure
    is built per call.
    """
    attr_name = name[4:]

    def getter(self) -> str | None:
        return self._node.attrs.get(attr_name)

    getter.__name__ = name
    getter.__qualname__ = f"ModelHandle.{name}"
    return getter


class ModelHandle:
    """A read-only handle to one model element at runtime.

    Attribute getters are generated on demand: ``h.get_id()``,
    ``h.get_frequency()`` etc. mirror the C++ API's generated getters;
    ``h.get_quantity("static_power")`` gives the unit-aware view.
    Handles are interned per context — browsing the same element twice
    returns the same object.
    """

    __slots__ = ("_ctx", "_node")

    def __init__(self, ctx: "QueryContext", node: IRNode) -> None:
        self._ctx = ctx
        self._node = node

    # -- identity ------------------------------------------------------------
    @property
    def kind(self) -> str:
        return self._node.kind

    @property
    def index(self) -> int:
        return self._node.index

    def label(self) -> str:
        return self._node.label()

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ModelHandle)
            and other._ctx is self._ctx
            and other._node.index == self._node.index
        )

    def __hash__(self) -> int:
        return hash((id(self._ctx), self._node.index))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ModelHandle<{self.kind} {self.label()}>"

    # -- category 2: browsing ---------------------------------------------------
    def parent(self) -> "ModelHandle | None":
        p = self._node.parent
        return self._ctx.handle(p) if p is not None else None

    def children(self, kind: str | None = None) -> list["ModelHandle"]:
        ctx = self._ctx
        kinds = ctx.index.kinds
        return [
            ctx.handle(c)
            for c in self._node.children
            if kind is None or kinds[c] == kind
        ]

    def first(self, kind: str) -> "ModelHandle | None":
        kinds = self._ctx.index.kinds
        for c in self._node.children:
            if kinds[c] == kind:
                return self._ctx.handle(c)
        return None

    def descendants(self, kind: str | None = None) -> list["ModelHandle"]:
        ctx = self._ctx
        if kind is None:
            indexes = ctx.index.descendant_slice(self._node.index)
        else:
            indexes = ctx.index.descendants_of_kind(self._node.index, kind)
        return [ctx.handle(i) for i in indexes]

    def walk(self) -> Iterator["ModelHandle"]:
        ctx = self._ctx
        yield ctx.handle(self._node.index)
        for i in ctx.index.descendant_slice(self._node.index):
            yield ctx.handle(i)

    # -- category 3: attribute getters ----------------------------------------------
    def attr(self, name: str, default: str | None = None) -> str | None:
        return self._node.attrs.get(name, default)

    def attrs(self) -> dict[str, str]:
        return dict(self._node.attrs)

    def get_quantity(
        self, metric: str, dimension: Dimension | None = None
    ) -> Quantity | None:
        return read_metric(
            self._node.attrs,
            metric,
            registry=DEFAULT_REGISTRY,
            expect=dimension,
        )

    def get_int(self, name: str) -> int | None:
        raw = self._node.attrs.get(name)
        return int(raw) if raw is not None else None

    def __getattr__(self, name: str):
        # Generated-getter emulation: get_<attr>() -> str | None.  The
        # getter is memoized on the class, so this only runs once per name.
        if name.startswith("get_"):
            getter = _generated_getter(name)
            setattr(ModelHandle, name, getter)
            return getter.__get__(self, ModelHandle)
        raise AttributeError(name)


class QueryContext:
    """Category 1: the initialized runtime query environment.

    Holds the (shared, read-only) :class:`IRIndex` plus this context's
    handle intern table — one :class:`ModelHandle` per visited node,
    reused across all browsing calls.
    """

    def __init__(self, ir: IRModel) -> None:
        self.ir = ir
        self.index = ir.index()
        self._handles: list[ModelHandle | None] = [None] * len(ir.nodes)

    def handle(self, index: int) -> ModelHandle:
        """The interned handle for node ``index``."""
        h = self._handles[index]
        if h is None:
            h = self._handles[index] = ModelHandle(self, self.ir.nodes[index])
        return h

    # -- entry points --------------------------------------------------------
    @property
    def root(self) -> ModelHandle:
        return self.handle(self.ir.root.index)

    def by_id(self, ident: str) -> ModelHandle | None:
        node = self.ir.by_id(ident)
        return self.handle(node.index) if node is not None else None

    def find_all(self, kind: str) -> list[ModelHandle]:
        _, indexes = self.index.bucket(kind)
        return [self.handle(i) for i in indexes]

    def meta(self, key: str, default: str | None = None) -> str | None:
        return self.ir.meta.get(key, default)

    # -- category 4: model analysis functions --------------------------------------
    def _physical_walk(self, start: IRNode) -> Iterator[IRNode]:
        """Pre-order walk of the physical containment tree (iterative, so
        deep generated models cannot hit the recursion limit)."""
        if start.kind in NON_PHYSICAL_KINDS:
            return
        nodes = self.ir.nodes
        stack = [start.index]
        while stack:
            node = nodes[stack.pop()]
            yield node
            for c in reversed(node.children):
                if nodes[c].kind not in NON_PHYSICAL_KINDS:
                    stack.append(c)

    def count_kind(self, kind: str, *, under: ModelHandle | None = None) -> int:
        start = under._node if under is not None else self.ir.root
        return self.index.kind_counts(kind)[start.index]

    def count_cores(self, *, under: ModelHandle | None = None) -> int:
        """Number of processing cores in the (sub)tree."""
        return self.count_kind("core", under=under)

    def count_cuda_devices(self, *, under: ModelHandle | None = None) -> int:
        """Number of devices programmable with CUDA in the (sub)tree."""
        start = under._node if under is not None else self.ir.root
        return self.index.cuda_counts()[start.index]

    def total_static_power(self, *, under: ModelHandle | None = None) -> Quantity:
        """Aggregate static power over the physical (sub)tree."""
        start = under._node if under is not None else self.ir.root
        return Quantity(self.index.static_power_w()[start.index], POWER)

    def installed_software(self) -> list[ModelHandle]:
        """All installed software entries of the platform."""
        return self.find_all("installed")

    def has_installed(self, requirement: str) -> bool:
        """Whether any installed package matches a name/provides requirement.

        Matches case-insensitively against the package name/type/id and the
        comma-separated ``provides`` capability list — the lookup that
        guides variant selectability in conditional composition [3].
        """
        want = requirement.strip().lower()
        for pkg in self.installed_software():
            haystack = {
                (pkg.attr("name") or "").lower(),
                (pkg.attr("type") or "").lower(),
                (pkg.attr("id") or "").lower(),
            }
            provides = (pkg.attr("provides") or "").lower()
            haystack.update(p.strip() for p in provides.split(","))
            if want in haystack:
                return True
        return False

    def properties(self) -> dict[str, str]:
        """Flattened free-form key-value properties of the platform."""
        out: dict[str, str] = {}
        for prop in self.find_all("property"):
            name = prop.attr("name")
            if name and name not in out:
                out[name] = prop.attr("value") or prop.attr("type") or ""
        return out


def xpdl_init(filename: str) -> QueryContext:
    """Initialize the runtime query environment from a runtime model file.

    The Python spelling of the paper's ``int xpdl_init(char *filename)``;
    raises :class:`QueryError` on unreadable or malformed files instead of
    returning an error code.  A v2 image file is mmapped and its persisted
    index adopted in place (``index.load_mmap``); v1 files and images with
    damaged index sections fall back to a live index build
    (``index.rebuilds``).  Either way the cold-open latency lands in the
    ``index.open_s`` histogram.
    """
    obs = get_observer()
    t0 = time.perf_counter()
    try:
        ir = IRModel.load(filename)
    except FileNotFoundError:
        raise QueryError(f"runtime model file not found: {filename}") from None
    ctx = QueryContext(ir)
    obs.count("runtime.inits")
    if obs.enabled:
        obs.record("index.open_s", time.perf_counter() - t0)
    return ctx


def xpdl_init_from_model(ir: IRModel) -> QueryContext:
    """Initialize directly from an in-memory IR (tool pipelines, tests)."""
    return QueryContext(ir)
