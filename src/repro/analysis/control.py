"""Control-relation analysis (paper Sec. II-A).

The paper rejects PDL's control hierarchy as the *primary* structure but
allows "to optionally model control relations separately (referencing the
involved hardware entities) for complex systems where the control relation
cannot be inferred automatically from the hardware entities alone".

This pass provides both halves:

* :func:`infer_control_relation` derives the default control tree from the
  hardware structure (the first general-purpose CPU in a scope is the
  master; further CPUs are hybrids; accelerator devices are workers —
  "most often, the software roles are implicitly given by the hardware
  blocks");
* an explicit ``<control_relation>`` element (a schema extension this
  module registers) overrides the inference where declared, using
  ``<controls head="..." tail="..."/>`` edges over element ids.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..diagnostics import DiagnosticSink, XpdlError
from ..model import Cpu, Device, Gpu, ModelElement, Node
from ..schema import AttrKind, AttributeDecl, Schema


@dataclass
class ControlNode:
    """One processing unit in the control hierarchy."""

    ident: str
    role: str  # 'master' | 'hybrid' | 'worker'
    element: ModelElement
    children: list["ControlNode"] = field(default_factory=list)

    def walk(self):
        yield self
        for c in self.children:
            yield from c.walk()


@dataclass
class ControlRelation:
    """The control hierarchy of one OS scope (a node or single-node system)."""

    scope: str
    root: ControlNode | None
    explicit: bool  # True when a <control_relation> declared it

    def units(self) -> list[ControlNode]:
        return list(self.root.walk()) if self.root else []

    def by_role(self, role: str) -> list[ControlNode]:
        return [u for u in self.units() if u.role == role]


def extend_schema_with_control(schema: Schema) -> Schema:
    """Register the optional control_relation extension elements."""
    if "control_relation" in schema:
        return schema
    cr = schema.element(
        "control_relation",
        bases=("xpdl:modelElement",),
        doc="Optional explicit control hierarchy (Sec. II-A discussion).",
    )
    cr.attr(
        AttributeDecl(
            "master",
            AttrKind.REF,
            required=True,
            doc="Id of the PU where execution starts.",
        )
    )
    cr.child("controls", 0, None)
    schema.element(
        "controls",
        doc="A directed control edge between processing units.",
    ).attr(AttributeDecl("head", AttrKind.REF, required=True)).attr(
        AttributeDecl("tail", AttrKind.REF, required=True)
    )
    return schema


def _scopes(root: ModelElement) -> list[tuple[str, ModelElement]]:
    nodes = root.find_all(Node)
    if nodes:
        return [(n.ident or f"node{i}", n) for i, n in enumerate(nodes)]
    return [(root.ident or root.name or "system", root)]


def _units_in(scope: ModelElement) -> tuple[list[ModelElement], list[ModelElement]]:
    cpus: list[ModelElement] = []
    devices: list[ModelElement] = []
    for elem in scope.walk():
        if isinstance(elem, Cpu):
            if any(isinstance(a, (Device, Gpu)) for a in elem.ancestors()):
                continue  # a device's embedded controller is not a host CPU
            cpus.append(elem)
        elif isinstance(elem, (Device, Gpu)):
            devices.append(elem)
    return cpus, devices


def _explicit_relation(
    scope_name: str,
    scope: ModelElement,
    sink: DiagnosticSink,
) -> ControlRelation | None:
    decl = next(
        (e for e in scope.walk() if e.kind == "control_relation"), None
    )
    if decl is None:
        return None
    by_id = {e.ident: e for e in scope.walk() if e.ident}
    master_id = decl.attrs.get("master")
    if master_id is None or master_id not in by_id:
        sink.error(
            "XPDL0800",
            f"control_relation in {scope_name} names unknown master "
            f"{master_id!r}",
            decl.span,
        )
        return None
    nodes: dict[str, ControlNode] = {}

    def node_for(ident: str, default_role: str) -> ControlNode:
        if ident not in nodes:
            nodes[ident] = ControlNode(ident, default_role, by_id[ident])
        return nodes[ident]

    root = node_for(master_id, "master")
    for edge in decl.children:
        if edge.kind != "controls":
            continue
        head, tail = edge.attrs.get("head"), edge.attrs.get("tail")
        if head not in by_id or tail not in by_id:
            sink.error(
                "XPDL0801",
                f"controls edge {head!r}->{tail!r} references unknown ids",
                edge.span,
            )
            continue
        parent = node_for(head, "hybrid" if head != master_id else "master")
        child = node_for(tail, "worker")
        parent.children.append(child)
    # Units that both control and are controlled are hybrids.
    controlled = {
        c.ident for n in nodes.values() for c in n.children
    }
    for n in nodes.values():
        if n.ident == master_id:
            n.role = "master"
        elif n.children and n.ident in controlled:
            n.role = "hybrid"
        elif n.children:
            n.role = "hybrid"
        else:
            n.role = "worker"
    return ControlRelation(scope_name, root, explicit=True)


def infer_control_relation(
    root: ModelElement,
    sink: DiagnosticSink | None = None,
) -> list[ControlRelation]:
    """Control hierarchies per OS scope; explicit declarations win.

    Inference rules (the paper's "implicitly given by the hardware blocks"):
    the first host CPU is the master; further host CPUs are hybrids under
    it; accelerator devices/GPUs are workers under the master.  A ``role``
    attribute on a unit overrides its inferred role (Listing 4 marks the
    host ``role="master"`` explicitly).
    """
    sink = sink if sink is not None else DiagnosticSink()
    relations: list[ControlRelation] = []
    for scope_name, scope in _scopes(root):
        explicit = _explicit_relation(scope_name, scope, sink)
        if explicit is not None:
            relations.append(explicit)
            continue
        cpus, devices = _units_in(scope)
        declared_master = next(
            (
                u
                for u in cpus + devices
                if u.attrs.get("role") == "master"
            ),
            None,
        )
        ordered_cpus = cpus[:]
        if declared_master is not None and declared_master in ordered_cpus:
            ordered_cpus.remove(declared_master)
            ordered_cpus.insert(0, declared_master)
        if not ordered_cpus:
            relations.append(ControlRelation(scope_name, None, explicit=False))
            continue
        master_elem = ordered_cpus[0]
        master = ControlNode(
            master_elem.ident or master_elem.name or "cpu0",
            "master",
            master_elem,
        )
        for i, cpu in enumerate(ordered_cpus[1:], 1):
            master.children.append(
                ControlNode(
                    cpu.ident or cpu.name or f"cpu{i}", "hybrid", cpu
                )
            )
        for j, dev in enumerate(devices):
            role = dev.attrs.get("role") or "worker"
            master.children.append(
                ControlNode(dev.ident or dev.name or f"dev{j}", role, dev)
            )
        relations.append(ControlRelation(scope_name, master, explicit=False))
    return relations


def control_summary(relations: list[ControlRelation]) -> list[tuple[str, str, str, int]]:
    """(scope, master, source, worker count) rows for reports."""
    rows = []
    for rel in relations:
        rows.append(
            (
                rel.scope,
                rel.root.ident if rel.root else "-",
                "explicit" if rel.explicit else "inferred",
                len(rel.by_role("worker")),
            )
        )
    return rows
