"""Synthesized (derived) attributes over the composed model tree.

Sec. III-D: every node of a concrete system model has attributes that are
either directly given or *synthesized* "by applying a rule combining
attribute values of the node's children in the model tree, such as adding up
static power values over the direct hardware subcomponents" — the paper
itself notes the analogy to attribute grammars.

:class:`SynthesisEngine` is that attribute-grammar evaluator: rules declare
how to fold children values, results are memoized per node, and the standard
rule set covers the derived attributes the paper names (total static power,
core counts, CUDA device counts, total memory).

Aggregation is over the *physical* containment tree: descriptive subtrees
(power models, instruction sets, microbenchmark suites, software,
properties) describe behaviour, not additional hardware, and are skipped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from ..model import ModelElement
from ..units import POWER, Quantity

#: Element kinds whose subtree is descriptive, not physical containment.
NON_PHYSICAL_KINDS = frozenset(
    {
        "power_model",
        "power_domains",
        "power_domain",
        "power_state_machine",
        "instructions",
        "microbenchmarks",
        "software",
        "properties",
        "constraints",
        "const",
        "param",
        "programming_model",
    }
)


def physical_children(elem: ModelElement) -> list[ModelElement]:
    """Direct children that are physical hardware (or containers thereof)."""
    return [c for c in elem.children if c.kind not in NON_PHYSICAL_KINDS]


def physical_walk(root: ModelElement) -> Iterable[ModelElement]:
    """Pre-order walk of the physical containment tree."""
    if root.kind in NON_PHYSICAL_KINDS:
        return
    yield root
    for c in physical_children(root):
        yield from physical_walk(c)


#: A synthesis rule: (element, synthesized-children-values) -> value.
Rule = Callable[[ModelElement, list], object]


@dataclass
class SynthesizedAttribute:
    """Declaration of one derived attribute."""

    name: str
    rule: Rule
    doc: str = ""


class SynthesisEngine:
    """Evaluates synthesized attributes with per-node memoization."""

    def __init__(self) -> None:
        self._attrs: dict[str, SynthesizedAttribute] = {}
        self._memo: dict[tuple[str, int], object] = {}
        self.install_standard_rules()

    # -- rule management -------------------------------------------------------
    def define(self, attr: SynthesizedAttribute) -> None:
        self._attrs[attr.name] = attr
        self._memo = {k: v for k, v in self._memo.items() if k[0] != attr.name}

    def names(self) -> list[str]:
        return sorted(self._attrs)

    def doc(self, name: str) -> str:
        return self._attrs[name].doc

    # -- evaluation --------------------------------------------------------------
    def evaluate(self, name: str, elem: ModelElement):
        """Value of synthesized attribute ``name`` at ``elem``."""
        try:
            attr = self._attrs[name]
        except KeyError:
            raise KeyError(
                f"unknown synthesized attribute {name!r}; "
                f"known: {', '.join(self.names())}"
            ) from None
        key = (name, id(elem))
        if key in self._memo:
            return self._memo[key]
        child_values = [
            self.evaluate(name, c) for c in physical_children(elem)
        ]
        value = attr.rule(elem, child_values)
        self._memo[key] = value
        return value

    def clear_cache(self) -> None:
        self._memo.clear()

    # -- standard rules ------------------------------------------------------------
    def install_standard_rules(self) -> None:
        self.define(
            SynthesizedAttribute(
                "static_power",
                _rule_static_power,
                "Sum of static power over the physical subtree; a node's own "
                "declared static_power contributes on top of its children "
                "(motherboard-style residual, Sec. III-A).",
            )
        )
        self.define(
            SynthesizedAttribute(
                "core_count",
                _count_rule("core"),
                "Number of processing cores in the subtree.",
            )
        )
        self.define(
            SynthesizedAttribute(
                "cpu_count",
                _count_rule("cpu"),
                "Number of CPU packages in the subtree.",
            )
        )
        self.define(
            SynthesizedAttribute(
                "device_count",
                _count_rule("device"),
                "Number of accelerator devices in the subtree.",
            )
        )
        self.define(
            SynthesizedAttribute(
                "cuda_device_count",
                _rule_cuda_devices,
                "Number of devices programmable with CUDA in the subtree.",
            )
        )
        self.define(
            SynthesizedAttribute(
                "memory_total",
                _rule_memory_total,
                "Total capacity of memory modules in the subtree (bytes).",
            )
        )
        self.define(
            SynthesizedAttribute(
                "cache_total",
                _rule_cache_total,
                "Total cache capacity in the subtree (bytes).",
            )
        )


def _rule_static_power(elem: ModelElement, children: list) -> Quantity:
    total = Quantity(0.0, POWER)
    for cv in children:
        total = total + cv
    own = elem.quantity("static_power", POWER)
    if own is not None:
        total = total + own
    return total


def _count_rule(kind: str) -> Rule:
    def rule(elem: ModelElement, children: list) -> int:
        return (1 if elem.kind == kind else 0) + sum(children)

    return rule


def _rule_cuda_devices(elem: ModelElement, children: list) -> int:
    own = 0
    if elem.kind in ("device", "gpu"):
        for pm in elem.children:
            if pm.kind == "programming_model":
                models = (pm.attrs.get("type") or "").lower()
                if "cuda" in models:
                    own = 1
                    break
    return own + sum(children)


def _rule_memory_total(elem: ModelElement, children: list) -> float:
    own = 0.0
    if elem.kind == "memory":
        q = elem.quantity("size")
        if q is not None:
            own = q.magnitude
    return own + sum(children)


def _rule_cache_total(elem: ModelElement, children: list) -> float:
    own = 0.0
    if elem.kind == "cache":
        q = elem.quantity("size")
        if q is not None:
            own = q.magnitude
    return own + sum(children)


#: Shared engine with the standard rules; cheap to use directly.
STANDARD_ENGINE = SynthesisEngine()


def total_static_power(root: ModelElement) -> Quantity:
    """Aggregate static power of the physical subtree (standard rule)."""
    engine = SynthesisEngine()
    return engine.evaluate("static_power", root)


def count_cores(root: ModelElement) -> int:
    engine = SynthesisEngine()
    return engine.evaluate("core_count", root)


def count_cuda_devices(root: ModelElement) -> int:
    engine = SynthesisEngine()
    return engine.evaluate("cuda_device_count", root)
