"""Bandwidth downgrading: the paper's flagship static-analysis example.

Sec. IV: the processing tool performs "static analysis of the model (for
instance, downgrading bandwidth of interconnections where applicable as the
effective bandwidth should be determined by the slowest hardware components
involved in a communication link)".

An interconnect instance connects a ``head`` and a ``tail`` endpoint.  The
achievable bandwidth of that link is the minimum of the link's nominal
``max_bandwidth`` and each endpoint's own bandwidth capability (a memory
module's bus bandwidth, another interconnect's bandwidth on a multi-hop
path).  The pass computes this minimum and records it as the derived
``effective_bandwidth`` attribute on each interconnect and channel.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from ..diagnostics import DiagnosticSink
from ..model import Channel, Interconnect, Memory, ModelElement
from ..units import BANDWIDTH, Quantity


@dataclass
class LinkReport:
    """Result of downgrading one interconnect instance."""

    interconnect: Interconnect
    nominal: Quantity | None
    effective: Quantity | None
    limiting: str | None  # description of the slowest component


def _endpoint_bandwidth(elem: ModelElement) -> Quantity | None:
    """Bandwidth capability of an endpoint element.

    A memory endpoint is limited by its bus bandwidth; a CPU/device endpoint
    by the slowest memory module it directly contains (data ultimately comes
    from there); endpoints without modeled bandwidth impose no limit.
    """
    own = elem.quantity("bandwidth", BANDWIDTH)
    if own is not None:
        return own
    mems = [m for m in elem.find_all(Memory)]
    best: Quantity | None = None
    for m in mems:
        bw = m.quantity("bandwidth", BANDWIDTH)
        if bw is not None and (best is None or bw > best):
            best = bw  # parallel modules: the fastest module bounds the link
    return best


def downgrade_bandwidths(
    root: ModelElement, sink: DiagnosticSink | None = None
) -> list[LinkReport]:
    """Compute and record effective bandwidths for all interconnects.

    Returns one report per interconnect instance that has endpoints.  The
    ``effective_bandwidth`` attribute is written into the model so the
    runtime IR carries it.
    """
    sink = sink if sink is not None else DiagnosticSink()
    by_id: dict[str, ModelElement] = {}
    for elem in root.walk():
        if elem.ident and elem.ident not in by_id:
            by_id[elem.ident] = elem
    reports: list[LinkReport] = []
    for ic in root.find_all(Interconnect):
        head = ic.attrs.get("head")
        tail = ic.attrs.get("tail")
        if head is None and tail is None:
            continue  # technology meta-model, not a link instance
        nominal = ic.max_bandwidth
        effective = nominal
        limiting: str | None = None
        for end_name, end_ref in (("head", head), ("tail", tail)):
            if end_ref is None:
                continue
            endpoint = by_id.get(end_ref)
            if endpoint is None:
                continue  # dangling refs are reported by the composer
            cap = _endpoint_bandwidth(endpoint)
            if cap is None:
                continue
            if effective is None or cap < effective:
                effective = cap
                limiting = f"{end_name} {endpoint.label()} ({cap})"
        if effective is not None:
            ic.effective_bandwidth = effective
            for ch in ic.find_all(Channel):
                ch_bw = ch.max_bandwidth
                ch_eff = effective if ch_bw is None or effective < ch_bw else ch_bw
                ch.set_quantity("effective_bandwidth", ch_eff)
        if (
            nominal is not None
            and effective is not None
            and effective < nominal
        ):
            sink.note(
                "XPDL0500",
                f"interconnect {ic.label()}: bandwidth downgraded from "
                f"{nominal} to {effective} (limited by {limiting})",
                ic.span,
            )
        reports.append(LinkReport(ic, nominal, effective, limiting))
    return reports


def topology_graph(root: ModelElement) -> "nx.MultiDiGraph":
    """Communication topology as a networkx graph.

    Nodes are element ids; edges are interconnect instances annotated with
    nominal/effective bandwidth.  Useful for path queries (multi-hop
    effective bandwidth = min over edges) and for visual inspection.
    """
    g = nx.MultiDiGraph()
    for ic in root.find_all(Interconnect):
        head = ic.attrs.get("head")
        tail = ic.attrs.get("tail")
        if head is None or tail is None:
            continue
        eff = ic.effective_bandwidth or ic.max_bandwidth
        g.add_edge(
            head,
            tail,
            key=ic.ident or ic.label(),
            interconnect=ic,
            bandwidth=eff.magnitude if eff is not None else None,
        )
    return g


def path_bandwidth(
    root: ModelElement, src: str, dst: str
) -> tuple[Quantity | None, list[str]]:
    """Effective bandwidth along the best path from ``src`` to ``dst``.

    Treats links as bidirectional (full-duplex) for routing purposes and
    returns (bottleneck bandwidth, hop ids).  Returns (None, []) when no
    path exists.
    """
    g = topology_graph(root)
    ug = nx.Graph()
    for u, v, data in g.edges(data=True):
        bw = data.get("bandwidth")
        if bw is None:
            continue
        # Keep the fastest parallel link between a node pair.
        if ug.has_edge(u, v):
            if ug[u][v]["bandwidth"] >= bw:
                continue
        ug.add_edge(u, v, bandwidth=bw, key=data.get("interconnect"))
    if src not in ug or dst not in ug:
        return None, []
    # Maximize the bottleneck: widest-path via max-spanning structure.
    try:
        path = _widest_path(ug, src, dst)
    except nx.NetworkXNoPath:
        return None, []
    bottleneck = min(
        ug[u][v]["bandwidth"] for u, v in zip(path, path[1:])
    )
    return Quantity(bottleneck, BANDWIDTH), path


def _widest_path(g: "nx.Graph", src: str, dst: str) -> list[str]:
    """Widest (maximum-bottleneck) path via binary search over thresholds."""
    if src == dst:
        return [src]
    widths = sorted({d["bandwidth"] for _u, _v, d in g.edges(data=True)})
    best: list[str] | None = None
    lo, hi = 0, len(widths) - 1
    while lo <= hi:
        mid = (lo + hi) // 2
        thresh = widths[mid]
        sub = nx.Graph(
            (u, v, d)
            for u, v, d in g.edges(data=True)
            if d["bandwidth"] >= thresh
        )
        if sub.has_node(src) and sub.has_node(dst) and nx.has_path(sub, src, dst):
            best = nx.shortest_path(sub, src, dst)
            lo = mid + 1
        else:
            hi = mid - 1
    if best is None:
        raise nx.NetworkXNoPath(f"no path {src} -> {dst}")
    return best
