"""Model lint: consistency checks beyond per-element schema validation.

Checks that need the whole (composed) tree:

* duplicate identifiers within one scope (expanded group members are
  separate scopes, matching how the paper's Listing 11 reuses ``gpu1``
  inside every replicated node);
* power state machines: transition endpoints must name declared states, the
  switchable transitions should be complete (the paper: a PSM "must model
  all possible transitions ... that the programmer can initiate"), every
  state should be reachable;
* endianness mismatches across directly connected endpoints (warning —
  legitimate on Myriad1, but worth surfacing);
* microbenchmark references: every ``inst@mb`` should resolve to a
  microbenchmark id in the referenced suite;
* placeholder audit: counts of '?' attributes that will need deployment-time
  microbenchmarking.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..diagnostics import DiagnosticSink
from ..model import (
    Inst,
    Instructions,
    Interconnect,
    Microbenchmark,
    Microbenchmarks,
    ModelElement,
    PowerState,
    PowerStateMachine,
    Transition,
)
from ..obs import get_observer
from ..units import is_placeholder, is_unit_attribute


@dataclass
class LintReport:
    """Summary counters next to the diagnostics themselves."""

    duplicate_ids: int = 0
    psm_problems: int = 0
    endian_warnings: int = 0
    dangling_mb_refs: int = 0
    placeholders: int = 0


def lint_model(
    root: ModelElement, sink: DiagnosticSink | None = None
) -> LintReport:
    """Run all lint passes; diagnostics go to ``sink``."""
    sink = sink if sink is not None else DiagnosticSink()
    report = LintReport()
    _check_duplicate_ids(root, sink, report)
    _check_power_state_machines(root, sink, report)
    _check_endianness(root, sink, report)
    _check_microbenchmark_refs(root, sink, report)
    report.placeholders = count_placeholders(root)
    obs = get_observer()
    if obs.enabled:
        obs.count("analysis.lint.runs")
        obs.count("analysis.lint.placeholders", report.placeholders)
    return report


# ---------------------------------------------------------------------------
# duplicate ids per scope
# ---------------------------------------------------------------------------

_SCOPE_KINDS = frozenset({"system", "cluster", "node", "group", "device", "cpu"})


def _check_duplicate_ids(
    root: ModelElement, sink: DiagnosticSink, report: LintReport
) -> None:
    def walk_scope(elem: ModelElement, seen: dict[str, ModelElement]) -> None:
        for child in elem.children:
            ident = child.ident
            if ident is not None:
                if ident in seen:
                    report.duplicate_ids += 1
                    sink.error(
                        "XPDL0600",
                        f"duplicate id {ident!r} in scope "
                        f"{seen[ident].parent.label() if seen[ident].parent else '<root>'}",
                        child.span,
                    )
                else:
                    seen[ident] = child
            # Expanded-group members and devices open a fresh scope.
            if child.kind in _SCOPE_KINDS and (
                child.attrs.get("rank") is not None
                or child.kind in ("device", "cpu", "node")
            ):
                walk_scope(child, {})
            else:
                walk_scope(child, seen)

    walk_scope(root, {})


# ---------------------------------------------------------------------------
# power state machines
# ---------------------------------------------------------------------------


def _check_power_state_machines(
    root: ModelElement, sink: DiagnosticSink, report: LintReport
) -> None:
    for psm in root.find_all(PowerStateMachine):
        states = [s.name for s in psm.find_all(PowerState) if s.name]
        state_set = set(states)
        if len(states) != len(state_set):
            report.psm_problems += 1
            sink.error(
                "XPDL0610",
                f"power state machine {psm.label()} declares duplicate states",
                psm.span,
            )
        transitions = psm.find_all(Transition)
        present: set[tuple[str, str]] = set()
        for t in transitions:
            head, tail = t.attrs.get("head"), t.attrs.get("tail")
            for end, val in (("head", head), ("tail", tail)):
                if val is not None and val not in state_set:
                    report.psm_problems += 1
                    sink.error(
                        "XPDL0611",
                        f"transition {end}={val!r} names no declared state "
                        f"of {psm.label()}",
                        t.span,
                    )
            if head in state_set and tail in state_set:
                present.add((head, tail))
        # Completeness: the paper requires all programmer-initiable
        # switchings to be modeled.  For pure DVFS machines that is every
        # ordered state pair.
        missing = [
            (a, b)
            for a in states
            for b in states
            if a != b and (a, b) not in present
        ]
        if missing:
            report.psm_problems += len(missing)
            pairs = ", ".join(f"{a}->{b}" for a, b in missing[:6])
            more = "" if len(missing) <= 6 else f" (+{len(missing) - 6} more)"
            sink.warning(
                "XPDL0612",
                f"power state machine {psm.label()} is missing transitions: "
                f"{pairs}{more}",
                psm.span,
                "a PSM must model all switchings the programmer can initiate",
            )
        # Reachability from the first declared state.
        if states:
            reachable = {states[0]}
            frontier = [states[0]]
            while frontier:
                cur = frontier.pop()
                for a, b in present:
                    if a == cur and b not in reachable:
                        reachable.add(b)
                        frontier.append(b)
            unreachable = state_set - reachable
            if unreachable and present:
                report.psm_problems += len(unreachable)
                sink.warning(
                    "XPDL0613",
                    f"states unreachable from {states[0]!r} in {psm.label()}: "
                    f"{', '.join(sorted(unreachable))}",
                    psm.span,
                )


# ---------------------------------------------------------------------------
# endianness across links
# ---------------------------------------------------------------------------


def _endian_of(elem: ModelElement) -> str | None:
    e = elem.attrs.get("endian")
    if e:
        return e
    for child in elem.children:
        e = _endian_of(child)
        if e:
            return e
    return None


def _check_endianness(
    root: ModelElement, sink: DiagnosticSink, report: LintReport
) -> None:
    by_id = {e.ident: e for e in root.walk() if e.ident}
    for ic in root.find_all(Interconnect):
        head = by_id.get(ic.attrs.get("head") or "")
        tail = by_id.get(ic.attrs.get("tail") or "")
        if head is None or tail is None:
            continue
        he, te = _endian_of(head), _endian_of(tail)
        if he and te and he != te:
            report.endian_warnings += 1
            sink.warning(
                "XPDL0620",
                f"interconnect {ic.label()} connects {he} endpoint "
                f"{head.label()} to {te} endpoint {tail.label()}; "
                "transfers need byte swapping",
                ic.span,
            )


# ---------------------------------------------------------------------------
# microbenchmark references
# ---------------------------------------------------------------------------


def _check_microbenchmark_refs(
    root: ModelElement, sink: DiagnosticSink, report: LintReport
) -> None:
    suites: dict[str, set[str]] = {}
    for mbs in root.find_all(Microbenchmarks):
        ident = mbs.ident or mbs.name
        if ident:
            suites[ident] = {
                mb.ident or "" for mb in mbs.find_all(Microbenchmark)
            }
    all_mb_ids = set().union(*suites.values()) if suites else set()
    for instrs in root.find_all(Instructions):
        suite_ref = instrs.attrs.get("mb")
        suite_ids = suites.get(suite_ref or "", all_mb_ids)
        for inst in instrs.find_all(Inst):
            mb_ref = inst.attrs.get("mb")
            if mb_ref and suites and mb_ref not in suite_ids and mb_ref not in suites:
                report.dangling_mb_refs += 1
                sink.warning(
                    "XPDL0630",
                    f"instruction {inst.label()} references microbenchmark "
                    f"{mb_ref!r} not present in suite {suite_ref!r}",
                    inst.span,
                )


# ---------------------------------------------------------------------------
# placeholder audit
# ---------------------------------------------------------------------------


def count_placeholders(root: ModelElement) -> int:
    """Number of '?' attribute values awaiting microbenchmarking."""
    n = 0
    for elem in root.walk():
        for name, value in elem.attrs.items():
            if not is_unit_attribute(name) and is_placeholder(value):
                n += 1
    return n


def placeholder_sites(root: ModelElement) -> list[tuple[ModelElement, str]]:
    """All (element, attribute) pairs holding the '?' placeholder."""
    sites: list[tuple[ModelElement, str]] = []
    for elem in root.walk():
        for name, value in elem.attrs.items():
            if not is_unit_attribute(name) and is_placeholder(value):
                sites.append((elem, name))
    return sites
