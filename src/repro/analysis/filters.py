"""Configurable filtering of "uninteresting" values.

Sec. IV: the XPDL processing tool "filters out uninteresting values ...
The XPDL processing tool should be configurable, thus the filtering rules
for uninteresting values and static analysis / model elicitation rules can
be tailored."

A :class:`FilterConfig` holds predicates; :func:`filter_model` applies them
to a composed tree before IR emission, dropping attributes and whole
subtrees that the deployment does not need (e.g. microbenchmark build flags
once bootstrapping is done, or JTAG debug links for a performance model).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..model import ModelElement

#: Predicate deciding whether an attribute survives: (element, name, value).
AttrPredicate = Callable[[ModelElement, str, str], bool]
#: Predicate deciding whether an element subtree survives.
ElemPredicate = Callable[[ModelElement], bool]


@dataclass
class FilterConfig:
    """A set of keep-predicates; everything defaults to 'keep'."""

    keep_attr: list[AttrPredicate] = field(default_factory=list)
    keep_element: list[ElemPredicate] = field(default_factory=list)

    # -- combinators ------------------------------------------------------
    def drop_attrs(self, *names: str) -> "FilterConfig":
        """Drop the named attributes everywhere."""
        banned = set(names)
        self.keep_attr.append(lambda _e, n, _v: n not in banned)
        return self

    def drop_elements(self, *kinds: str) -> "FilterConfig":
        """Drop subtrees of the given element kinds."""
        banned = set(kinds)
        self.keep_element.append(lambda e: e.kind not in banned)
        return self

    def drop_attr_when(self, pred: AttrPredicate) -> "FilterConfig":
        self.keep_attr.append(lambda e, n, v: not pred(e, n, v))
        return self

    # -- application --------------------------------------------------------
    def attr_survives(self, elem: ModelElement, name: str, value: str) -> bool:
        return all(p(elem, name, value) for p in self.keep_attr)

    def element_survives(self, elem: ModelElement) -> bool:
        return all(p(elem) for p in self.keep_element)


def runtime_default_filter() -> FilterConfig:
    """The default filter for runtime-IR emission.

    Drops build metadata that only matters during bootstrapping
    (microbenchmark cflags/lflags/file) and toolchain bookkeeping
    (``resolved_extends``); keeps everything performance- or
    energy-relevant.
    """
    cfg = FilterConfig()
    cfg.drop_attrs("cflags", "lflags", "resolved_extends")
    return cfg


def filter_model(
    root: ModelElement, config: FilterConfig
) -> tuple[ModelElement, int, int]:
    """Apply ``config`` to a copy of ``root``.

    Returns (filtered tree, attributes dropped, elements dropped).
    """
    dropped_attrs = 0
    dropped_elems = 0

    def rec(elem: ModelElement) -> ModelElement | None:
        nonlocal dropped_attrs, dropped_elems
        if not config.element_survives(elem):
            dropped_elems += 1
            return None
        dup = type(elem)(attrs={}, span=elem.span)
        if hasattr(elem, "tag"):  # GenericElement keeps its tag
            dup.tag = elem.tag  # type: ignore[attr-defined]
        for name, value in elem.attrs.items():
            if config.attr_survives(elem, name, value):
                dup.attrs[name] = value
            else:
                dropped_attrs += 1
        for child in elem.children:
            kept = rec(child)
            if kept is not None:
                dup.add(kept)
        return dup

    filtered = rec(root)
    assert filtered is not None, "root element must survive filtering"
    return filtered, dropped_attrs, dropped_elems
