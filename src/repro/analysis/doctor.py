"""The model doctor: cross-descriptor static analysis (paper Sec. V).

Energy-model repositories go stale silently: a descriptor is renamed but a
``mb=`` reference keeps the old spelling, a power-state machine gains a
state without transition costs, a hand-written ``effective_bandwidth``
stops matching what the Sec. V downgrading analysis derives.  None of that
is a *schema* violation — each descriptor is well-formed on its own — so
per-descriptor validation cannot catch it.  The doctor runs a catalog of
**cross-descriptor rules** over the whole repository index and over each
composed system and reports findings with stable rule identifiers.

Architecture:

* :class:`DoctorRule` — one registered rule (stable id ``XPDL07xx``, slug
  name, default severity, scope, summary) wrapping a check function;
* :class:`RuleContext` — what a check sees: the repository view or the
  composed system, plus :meth:`RuleContext.report` for emitting findings;
* :class:`Finding` — one plain-data result (picklable, so doctor reports
  participate in the persistent stage cache);
* :class:`DoctorReport` — the merged outcome with severity totals and a
  stable ``to_dict`` form for ``xpdl doctor --format json``.

Every finding is also emitted through the :class:`DiagnosticSink` (tagged
with the rule id as diagnostic code) and counted on the observer under
``doctor.rule.<name>``, so ``xpdl stats`` and ``--trace`` see doctor
activity for free.  Rules are suppressed by id or name via ``suppress``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Iterable

from ..diagnostics import (
    DiagnosticSink,
    Severity,
    SourceSpan,
    UnitError,
    XpdlError,
)
from ..model import (
    Channel,
    Group,
    Interconnect,
    ModelElement,
    PowerState,
    PowerStateMachine,
    Transition,
)
from ..obs import get_observer
from ..units import (
    BANDWIDTH,
    DEFAULT_REGISTRY,
    ENERGY,
    FREQUENCY,
    INFORMATION,
    POWER,
    TIME,
    VOLTAGE,
    Dimension,
    is_placeholder,
    is_unit_attribute,
    metric_for_unit_attribute,
    read_metric,
)
from .bandwidth import downgrade_bandwidths

#: Identifier under which the repository-wide doctor pass is requested
#: from the toolchain session (it is not a descriptor identifier).
REPOSITORY_SCOPE = "*"

#: Expected root tag of the descriptor each navigational reference names.
_REFERENCE_ROOT_TAGS: dict[str, str] = {
    "mb": "microbenchmarks",
    "instruction_set": "instructions",
    "power_domain": "power_domains",
}

#: Expected dimension of well-known quantity metrics (doctor's unit rule).
_METRIC_DIMENSIONS: dict[str, Dimension] = {
    "frequency": FREQUENCY,
    "power": POWER,
    "static_power": POWER,
    "energy": ENERGY,
    "time": TIME,
    "latency": TIME,
    "bandwidth": BANDWIDTH,
    "max_bandwidth": BANDWIDTH,
    "effective_bandwidth": BANDWIDTH,
    "size": INFORMATION,
    "voltage": VOLTAGE,
}

_SEVERITY_NAMES = {
    Severity.NOTE: "note",
    Severity.WARNING: "warning",
    Severity.ERROR: "error",
    Severity.FATAL: "error",
}


# ---------------------------------------------------------------------------
# result data model (plain data: picklable, JSON-ready)
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Finding:
    """One doctor finding, as plain data.

    ``rule`` is the stable rule id (``XPDL0712``), ``name`` its slug
    (``psm-monotone-levels``); ``subject`` names the descriptor or system
    the finding concerns and ``location`` the source position.
    """

    rule: str
    name: str
    severity: str
    message: str
    subject: str
    location: str

    def is_error(self) -> bool:
        return self.severity == "error"

    def to_dict(self) -> dict[str, str]:
        return {
            "rule": self.rule,
            "name": self.name,
            "severity": self.severity,
            "message": self.message,
            "subject": self.subject,
            "location": self.location,
        }


@dataclass
class DoctorReport:
    """Findings of one doctor pass plus what was checked."""

    findings: list[Finding] = field(default_factory=list)
    checked: tuple[str, ...] = ()
    rules_run: tuple[str, ...] = ()
    suppressed: tuple[str, ...] = ()

    @property
    def errors(self) -> int:
        return sum(1 for f in self.findings if f.severity == "error")

    @property
    def warnings(self) -> int:
        return sum(1 for f in self.findings if f.severity == "warning")

    @property
    def notes(self) -> int:
        return sum(1 for f in self.findings if f.severity == "note")

    def ok(self) -> bool:
        """True when no error-severity finding was reported."""
        return self.errors == 0

    def by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for f in self.findings:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        return counts

    def merge(self, other: "DoctorReport") -> "DoctorReport":
        """Fold ``other`` into this report (CLI merges repo + systems)."""
        self.findings.extend(other.findings)
        self.checked = tuple(dict.fromkeys(self.checked + other.checked))
        self.rules_run = tuple(dict.fromkeys(self.rules_run + other.rules_run))
        self.suppressed = tuple(
            dict.fromkeys(self.suppressed + other.suppressed)
        )
        return self

    def to_dict(self) -> dict:
        """Stable machine-readable form (``xpdl doctor --format json``)."""
        return {
            "findings": [
                f.to_dict()
                for f in sorted(
                    self.findings,
                    key=lambda f: (f.rule, f.subject, f.location, f.message),
                )
            ],
            "summary": {
                "errors": self.errors,
                "warnings": self.warnings,
                "notes": self.notes,
                "ok": self.ok(),
            },
            "checked": list(self.checked),
            "rules_run": list(self.rules_run),
            "suppressed": list(self.suppressed),
        }


# ---------------------------------------------------------------------------
# rule registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DoctorRule:
    """One registered doctor rule."""

    rule_id: str
    name: str
    severity: Severity
    scope: str  # "repository" | "system"
    summary: str
    check: Callable[["RuleContext"], None]

    def matches(self, key: str) -> bool:
        return key in (self.rule_id, self.name)


#: The rule catalog, in registration (= documentation) order.
RULE_CATALOG: dict[str, DoctorRule] = {}


def rule(
    rule_id: str,
    name: str,
    *,
    severity: Severity,
    scope: str,
    summary: str,
) -> Callable[[Callable[["RuleContext"], None]], Callable]:
    """Register a doctor rule; used as a decorator on the check function."""

    def decorate(fn: Callable[["RuleContext"], None]) -> Callable:
        if rule_id in RULE_CATALOG:
            raise ValueError(f"duplicate doctor rule id {rule_id}")
        if scope not in ("repository", "system"):
            raise ValueError(f"unknown doctor rule scope {scope!r}")
        RULE_CATALOG[rule_id] = DoctorRule(
            rule_id, name, severity, scope, summary, fn
        )
        return fn

    return decorate


def rules_for_scope(scope: str) -> list[DoctorRule]:
    return [r for r in RULE_CATALOG.values() if r.scope == scope]


def rule_catalog() -> list[dict[str, str]]:
    """The catalog as plain data (``xpdl doctor --list-rules`` / docs)."""
    return [
        {
            "rule": r.rule_id,
            "name": r.name,
            "severity": _SEVERITY_NAMES[r.severity],
            "scope": r.scope,
            "summary": r.summary,
        }
        for r in RULE_CATALOG.values()
    ]


def _resolve_suppressions(suppress: Iterable[str]) -> tuple[set[str], set[str]]:
    """Split suppression keys into (matched rule ids, unknown keys)."""
    suppressed: set[str] = set()
    unknown: set[str] = set()
    for key in suppress:
        hits = [r.rule_id for r in RULE_CATALOG.values() if r.matches(key)]
        if hits:
            suppressed.update(hits)
        else:
            unknown.add(key)
    return suppressed, unknown


# ---------------------------------------------------------------------------
# the rule context
# ---------------------------------------------------------------------------


class RepositoryView:
    """Lazily computed cross-descriptor facts shared by repository rules."""

    def __init__(self, repository) -> None:
        self.repository = repository
        self._loaded: dict[str, ModelElement] | None = None
        self._reachable: set[str] | None = None
        self._power_domain_names: set[str] | None = None

    @property
    def index(self) -> dict:
        return self.repository.index()

    def models(self) -> dict[str, ModelElement]:
        """Every parseable descriptor, by identifier.

        Parse/schema diagnostics are deliberately routed to a throwaway
        sink: reporting them is the ``validate`` stage's job, not the
        doctor's.
        """
        if self._loaded is None:
            scratch = DiagnosticSink(max_errors=100_000)
            loaded: dict[str, ModelElement] = {}
            for ident in sorted(self.index):
                try:
                    loaded[ident] = self.repository.load(ident, scratch).model
                except XpdlError:
                    continue  # unparseable; validate reports it
            self._loaded = loaded
        return self._loaded

    def reachable(self) -> set[str]:
        """Identifiers reachable from any ``<system>`` closure."""
        if self._reachable is None:
            scratch = DiagnosticSink(max_errors=100_000)
            reach: set[str] = set()
            for system in self.repository.systems():
                reach.add(system)
                reach.update(self.repository.load_closure(system, scratch))
            self._reachable = reach
        return self._reachable

    def power_domain_names(self) -> set[str]:
        """Every ``power_domain`` element name/id declared anywhere."""
        if self._power_domain_names is None:
            names: set[str] = set()
            for model in self.models().values():
                for elem in model.walk():
                    if elem.kind == "power_domain":
                        for ident in (elem.name, elem.ident):
                            if ident:
                                names.add(ident)
            self._power_domain_names = names
        return self._power_domain_names


@dataclass
class RuleContext:
    """What one rule invocation sees."""

    repository: object
    sink: DiagnosticSink
    findings: list[Finding]
    #: Repository-wide facts (always available).
    repo: RepositoryView
    #: System under check and its composed root; ``None`` in repository scope.
    identifier: str | None = None
    root: ModelElement | None = None
    #: The rule currently running (set by the engine).
    current: DoctorRule | None = None

    def report(
        self,
        message: str,
        *,
        subject: str,
        span: SourceSpan | None = None,
        severity: Severity | None = None,
        hint: str | None = None,
    ) -> Finding:
        """Record one finding and mirror it into the diagnostic sink."""
        assert self.current is not None
        sev = severity if severity is not None else self.current.severity
        span = span if span is not None else SourceSpan.unknown(subject)
        finding = Finding(
            rule=self.current.rule_id,
            name=self.current.name,
            severity=_SEVERITY_NAMES[sev],
            message=message,
            subject=subject,
            location=str(span),
        )
        self.findings.append(finding)
        hints = (hint,) if hint else ()
        self.sink.emit_severity(sev, self.current.rule_id, message, span, *hints)
        obs = get_observer()
        if obs.enabled:
            obs.count("doctor.findings")
            obs.count(f"doctor.rule.{self.current.name}")
        return finding


# ---------------------------------------------------------------------------
# the engine
# ---------------------------------------------------------------------------


def _run_rules(ctx: RuleContext, scope: str, suppress: Iterable[str]) -> DoctorReport:
    suppressed, unknown = _resolve_suppressions(suppress)
    obs = get_observer()
    ran: list[str] = []
    for spec in rules_for_scope(scope):
        if spec.rule_id in suppressed:
            continue
        ctx.current = spec
        if obs.enabled:
            obs.count("doctor.rules.runs")
        spec.check(ctx)
        ran.append(spec.rule_id)
    ctx.current = None
    report = DoctorReport(
        findings=ctx.findings,
        checked=(ctx.identifier,) if ctx.identifier else (REPOSITORY_SCOPE,),
        rules_run=tuple(ran),
        suppressed=tuple(sorted(suppressed | unknown)),
    )
    return report


def check_repository(
    repository,
    sink: DiagnosticSink | None = None,
    *,
    suppress: Iterable[str] = (),
) -> DoctorReport:
    """Run every repository-scope rule over the whole index."""
    sink = sink if sink is not None else DiagnosticSink()
    ctx = RuleContext(
        repository=repository,
        sink=sink,
        findings=[],
        repo=RepositoryView(repository),
    )
    return _run_rules(ctx, "repository", suppress)


def check_system(
    identifier: str,
    root: ModelElement,
    repository,
    sink: DiagnosticSink | None = None,
    *,
    suppress: Iterable[str] = (),
) -> DoctorReport:
    """Run every system-scope rule over one composed model tree."""
    sink = sink if sink is not None else DiagnosticSink()
    ctx = RuleContext(
        repository=repository,
        sink=sink,
        findings=[],
        repo=RepositoryView(repository),
        identifier=identifier,
        root=root,
    )
    return _run_rules(ctx, "system", suppress)


# ---------------------------------------------------------------------------
# repository-scope rules
# ---------------------------------------------------------------------------


@rule(
    "XPDL0700",
    "dangling-reference",
    severity=Severity.ERROR,
    scope="repository",
    summary="suite-level mb= and instruction_set= references must resolve "
    "to a repository descriptor",
)
def _check_dangling_references(ctx: RuleContext) -> None:
    index = ctx.repo.index
    for ident, model in ctx.repo.models().items():
        for elem in model.walk():
            refs: list[tuple[str, str]] = []
            isa = elem.attrs.get("instruction_set")
            if isa:
                refs.append(("instruction_set", isa))
            # inst-level mb= names a microbenchmark *within* a suite (the
            # lint's XPDL0630 checks those); only suite-level mb= refs the
            # repository.
            mb = elem.attrs.get("mb")
            if mb and elem.kind == "instructions":
                refs.append(("mb", mb))
            for attr, value in refs:
                if value.strip() not in index:
                    ctx.report(
                        f"{elem.kind} {elem.label()} references "
                        f"{attr}={value!r}, which no repository descriptor "
                        "defines",
                        subject=ident,
                        span=elem.span,
                        hint="renamed or missing descriptor? "
                        "check `xpdl list`",
                    )


@rule(
    "XPDL0701",
    "reference-kind",
    severity=Severity.ERROR,
    scope="repository",
    summary="resolved references must name a descriptor of the expected "
    "kind (mb -> microbenchmarks, instruction_set -> instructions, "
    "type -> a descriptor with the referring element's root tag)",
)
def _check_reference_kinds(ctx: RuleContext) -> None:
    index = ctx.repo.index
    for ident, model in ctx.repo.models().items():
        for elem in model.walk():
            for attr, expected in _REFERENCE_ROOT_TAGS.items():
                value = (elem.attrs.get(attr) or "").strip()
                if attr == "mb" and elem.kind != "instructions":
                    continue
                entry = index.get(value) if value else None
                if entry is not None and entry.root_tag != expected:
                    ctx.report(
                        f"{elem.kind} {elem.label()}: {attr}={value!r} "
                        f"resolves to a <{entry.root_tag}> descriptor, "
                        f"expected <{expected}>",
                        subject=ident,
                        span=elem.span,
                    )
            type_ref = (elem.attrs.get("type") or "").strip()
            entry = index.get(type_ref) if type_ref else None
            if entry is not None and entry.root_tag != elem.kind:
                ctx.report(
                    f"{elem.kind} {elem.label()}: type={type_ref!r} "
                    f"resolves to a <{entry.root_tag}> descriptor; "
                    f"composing it under <{elem.kind}> mixes element "
                    "kinds",
                    subject=ident,
                    span=elem.span,
                    hint="a renamed descriptor may have captured an "
                    "unrelated category tag",
                )


@rule(
    "XPDL0702",
    "dangling-power-domain",
    severity=Severity.WARNING,
    scope="repository",
    summary="power_domain= must name a declared power_domain element "
    "(or power_domains descriptor) somewhere in the repository",
)
def _check_power_domain_refs(ctx: RuleContext) -> None:
    declared = ctx.repo.power_domain_names()
    index = ctx.repo.index
    for ident, model in ctx.repo.models().items():
        for elem in model.walk():
            value = (elem.attrs.get("power_domain") or "").strip()
            if not value:
                continue
            if value in declared:
                continue
            entry = index.get(value)
            if entry is not None and entry.root_tag in (
                "power_domains",
                "power_domain",
            ):
                continue
            ctx.report(
                f"{elem.kind} {elem.label()}: power_domain={value!r} "
                "matches no declared power domain in the repository",
                subject=ident,
                span=elem.span,
            )


@rule(
    "XPDL0703",
    "unused-descriptor",
    severity=Severity.NOTE,
    scope="repository",
    summary="descriptor is reachable from no <system> closure "
    "(candidate for archiving)",
)
def _check_unused_descriptors(ctx: RuleContext) -> None:
    reachable = ctx.repo.reachable()
    for ident, entry in sorted(ctx.repo.index.items()):
        if ident in reachable:
            continue
        ctx.report(
            f"descriptor {ident!r} (<{entry.root_tag}> in "
            f"{entry.store.url}{entry.path}) is referenced by no system",
            subject=ident,
        )


@rule(
    "XPDL0704",
    "unit-consistency",
    severity=Severity.ERROR,
    scope="repository",
    summary="quantity attributes must carry known units of the metric's "
    "expected dimension and parse as numbers",
)
def _check_unit_consistency(ctx: RuleContext) -> None:
    registry = DEFAULT_REGISTRY
    for ident, model in ctx.repo.models().items():
        for elem in model.walk():
            for attr, value in elem.attrs.items():
                if not is_unit_attribute(attr):
                    continue
                if value not in registry:
                    ctx.report(
                        f"{elem.kind} {elem.label()}: unit attribute "
                        f"{attr}={value!r} names no unit known to the "
                        "registry",
                        subject=ident,
                        span=elem.span,
                    )
                    continue
                metric = metric_for_unit_attribute(attr)
                raw = elem.attrs.get(metric)
                if raw is None or is_placeholder(raw):
                    # The bare `unit` attr doubles as the fallback unit
                    # for param/const values (Listing 8); presence without
                    # a size= metric is legitimate.
                    continue
                if raw.strip().isidentifier():
                    continue  # param reference, bound at composition time
                try:
                    read_metric(
                        elem.attrs,
                        metric,
                        registry=registry,
                        expect=_METRIC_DIMENSIONS.get(metric),
                    )
                except UnitError as exc:
                    ctx.report(
                        f"{elem.kind} {elem.label()}: {exc}",
                        subject=ident,
                        span=elem.span,
                    )


# ---------------------------------------------------------------------------
# system-scope rules
# ---------------------------------------------------------------------------


def _psm_states(psm: PowerStateMachine) -> list[PowerState]:
    return [s for s in psm.find_all(PowerState) if s.name]


@rule(
    "XPDL0710",
    "psm-unreachable-state",
    severity=Severity.WARNING,
    scope="system",
    summary="every power state must be reachable from the first declared "
    "state via modeled transitions",
)
def _check_psm_reachability(ctx: RuleContext) -> None:
    assert ctx.root is not None
    for psm in ctx.root.find_all(PowerStateMachine):
        states = [s.name for s in _psm_states(psm)]
        if not states:
            continue
        present = {
            (t.attrs.get("head"), t.attrs.get("tail"))
            for t in psm.find_all(Transition)
        }
        if not present:
            continue  # no transitions at all: lint XPDL0612 reports that
        reachable = {states[0]}
        frontier = [states[0]]
        while frontier:
            cur = frontier.pop()
            for head, tail in present:
                if head == cur and tail is not None and tail not in reachable:
                    reachable.add(tail)
                    frontier.append(tail)
        for lost in sorted(set(states) - reachable):
            ctx.report(
                f"power state {lost!r} of {psm.label()} is unreachable "
                f"from the initial state {states[0]!r}",
                subject=ctx.identifier or psm.label(),
                span=psm.span,
            )


@rule(
    "XPDL0711",
    "psm-transition-cost",
    severity=Severity.ERROR,
    scope="system",
    summary="transition time/energy costs must be present (or '?') and "
    "non-negative",
)
def _check_psm_transition_costs(ctx: RuleContext) -> None:
    assert ctx.root is not None
    for psm in ctx.root.find_all(PowerStateMachine):
        for t in psm.find_all(Transition):
            arc = f"{t.attrs.get('head')}->{t.attrs.get('tail')}"
            for metric, dim in (("time", TIME), ("energy", ENERGY)):
                raw = t.attrs.get(metric)
                if raw is None:
                    ctx.report(
                        f"transition {arc} of {psm.label()} declares no "
                        f"{metric} cost",
                        subject=ctx.identifier or psm.label(),
                        span=t.span,
                        severity=Severity.WARNING,
                        hint="use '?' to mark a cost that awaits "
                        "microbenchmarking",
                    )
                    continue
                if is_placeholder(raw):
                    continue  # to be filled by deployment-time bootstrap
                try:
                    q = t.quantity(metric, dim)
                except UnitError as exc:
                    ctx.report(
                        f"transition {arc} of {psm.label()}: {exc}",
                        subject=ctx.identifier or psm.label(),
                        span=t.span,
                    )
                    continue
                if q is not None and q.magnitude < 0:
                    ctx.report(
                        f"transition {arc} of {psm.label()} has negative "
                        f"{metric} cost {q}",
                        subject=ctx.identifier or psm.label(),
                        span=t.span,
                    )


@rule(
    "XPDL0712",
    "psm-monotone-levels",
    severity=Severity.WARNING,
    scope="system",
    summary="power of DVFS states must be non-decreasing with frequency",
)
def _check_psm_monotone_levels(ctx: RuleContext) -> None:
    assert ctx.root is not None
    for psm in ctx.root.find_all(PowerStateMachine):
        levels = []
        for st in _psm_states(psm):
            try:
                freq = st.quantity("frequency", FREQUENCY)
                power = st.quantity("power", POWER)
            except UnitError:
                continue  # unit-consistency reports malformed values
            if freq is not None and power is not None:
                levels.append((st.name, freq, power))
        levels.sort(key=lambda lv: lv[1].magnitude)
        for lo, hi in zip(levels, levels[1:]):
            if hi[2] < lo[2]:
                ctx.report(
                    f"power state machine {psm.label()}: state {hi[0]!r} "
                    f"({hi[1]}, {hi[2]}) draws less power than the slower "
                    f"state {lo[0]!r} ({lo[1]}, {lo[2]})",
                    subject=ctx.identifier or psm.label(),
                    span=psm.span,
                    hint="stale DVFS table? higher frequency at lower "
                    "power makes the slower state useless for "
                    "energy optimization",
                )


@rule(
    "XPDL0713",
    "interconnect-endpoints",
    severity=Severity.ERROR,
    scope="system",
    summary="interconnect head=/tail= endpoints must resolve to element "
    "ids in the composed system",
)
def _check_interconnect_endpoints(ctx: RuleContext) -> None:
    assert ctx.root is not None
    ids = {e.ident for e in ctx.root.walk() if e.ident}
    groups = {
        g.attrs["prefix"]: int(g.attrs.get("member_count", "0"))
        for g in ctx.root.find_all(Group)
        if g.attrs.get("expanded") == "true" and g.attrs.get("prefix")
    }
    for ic in ctx.root.find_all(Interconnect):
        head, tail = ic.attrs.get("head"), ic.attrs.get("tail")
        if head is None and tail is None:
            continue  # technology meta-model, not a link instance
        for end_name, ref in (("head", head), ("tail", tail)):
            if ref is None or ref in ids:
                continue
            hint = None
            m = re.fullmatch(r"(?P<prefix>.*?)(?P<rank>\d+)", ref)
            if m and m.group("prefix") in groups:
                count = groups[m.group("prefix")]
                hint = (
                    f"group {m.group('prefix')!r} expands to {count} "
                    f"member(s), ranks 0..{count - 1}; endpoint rank "
                    f"{int(m.group('rank'))} is out of cardinality"
                )
            ctx.report(
                f"interconnect {ic.label()}: {end_name}={ref!r} matches "
                "no element id in the composed system",
                subject=ctx.identifier or ic.label(),
                span=ic.span,
                hint=hint,
            )


@rule(
    "XPDL0714",
    "group-cardinality",
    severity=Severity.ERROR,
    scope="system",
    summary="expanded groups must materialize exactly member_count "
    "members matching the declared quantity",
)
def _check_group_cardinality(ctx: RuleContext) -> None:
    assert ctx.root is not None
    for group in ctx.root.find_all(Group):
        if group.attrs.get("expanded") != "true":
            continue
        declared = group.attrs.get("member_count")
        if declared is None:
            continue
        count = int(declared)
        actual = len(group.children)
        if actual != count:
            ctx.report(
                f"group {group.label()} declares member_count={count} but "
                f"materialized {actual} member(s)",
                subject=ctx.identifier or group.label(),
                span=group.span,
            )


@rule(
    "XPDL0715",
    "bandwidth-downgrade",
    severity=Severity.ERROR,
    scope="system",
    summary="declared effective_bandwidth must match the Sec. V "
    "downgrading analysis (min of nominal and endpoint capabilities)",
)
def _check_bandwidth_consistency(ctx: RuleContext) -> None:
    assert ctx.root is not None
    # Recompute the downgrade on a clone so the shared composed tree (and
    # the analyze stage's own pass) is left untouched.
    clone = ctx.root.clone()
    downgrade_bandwidths(clone, DiagnosticSink(max_errors=100_000))
    recomputed = clone.find_all(Interconnect)
    for ic, fresh in zip(ctx.root.find_all(Interconnect), recomputed):
        try:
            declared = ic.effective_bandwidth
            nominal = ic.max_bandwidth
        except UnitError:
            continue  # unit-consistency reports malformed values
        if declared is None:
            continue  # nothing hand-written; analyze derives it
        subject = ctx.identifier or ic.label()
        if nominal is not None and declared > nominal:
            ctx.report(
                f"interconnect {ic.label()}: declared effective_bandwidth "
                f"{declared} exceeds the nominal max_bandwidth {nominal}",
                subject=subject,
                span=ic.span,
            )
            continue
        derived = fresh.effective_bandwidth
        if derived is not None and not declared.close_to(derived, rel=1e-6):
            ctx.report(
                f"interconnect {ic.label()}: declared effective_bandwidth "
                f"{declared} contradicts the downgrading analysis "
                f"({derived})",
                subject=subject,
                span=ic.span,
                hint="stale hand-written value? re-run `xpdl compose` "
                "and let the analysis derive it",
            )
        for ch, fresh_ch in zip(ic.find_all(Channel), fresh.find_all(Channel)):
            try:
                ch_max = ch.max_bandwidth
            except UnitError:
                continue
            if ch_max is not None and nominal is not None and ch_max > nominal:
                ctx.report(
                    f"channel {ch.label()} of {ic.label()} claims "
                    f"{ch_max}, more than its link's nominal {nominal}",
                    subject=subject,
                    span=ch.span,
                    severity=Severity.WARNING,
                )
