"""Static analyses over composed models: synthesized attributes, bandwidth
downgrading, lint and configurable filtering (paper Sec. IV)."""

from .synthesized import (
    NON_PHYSICAL_KINDS,
    STANDARD_ENGINE,
    SynthesisEngine,
    SynthesizedAttribute,
    count_cores,
    count_cuda_devices,
    physical_children,
    physical_walk,
    total_static_power,
)
from .bandwidth import (
    LinkReport,
    downgrade_bandwidths,
    path_bandwidth,
    topology_graph,
)
from .lint import (
    LintReport,
    count_placeholders,
    lint_model,
    placeholder_sites,
)
from .doctor import (
    REPOSITORY_SCOPE,
    RULE_CATALOG,
    DoctorReport,
    DoctorRule,
    Finding,
    RuleContext,
    check_repository,
    check_system,
    rule,
    rule_catalog,
)
from .control import (
    ControlNode,
    ControlRelation,
    control_summary,
    extend_schema_with_control,
    infer_control_relation,
)
from .filters import (
    FilterConfig,
    filter_model,
    runtime_default_filter,
)

__all__ = [
    "NON_PHYSICAL_KINDS",
    "STANDARD_ENGINE",
    "SynthesisEngine",
    "SynthesizedAttribute",
    "count_cores",
    "count_cuda_devices",
    "physical_children",
    "physical_walk",
    "total_static_power",
    "LinkReport",
    "downgrade_bandwidths",
    "path_bandwidth",
    "topology_graph",
    "REPOSITORY_SCOPE",
    "RULE_CATALOG",
    "DoctorReport",
    "DoctorRule",
    "Finding",
    "RuleContext",
    "check_repository",
    "check_system",
    "rule",
    "rule_catalog",
    "LintReport",
    "count_placeholders",
    "lint_model",
    "placeholder_sites",
    "ControlNode",
    "ControlRelation",
    "control_summary",
    "extend_schema_with_control",
    "infer_control_relation",
    "FilterConfig",
    "filter_model",
    "runtime_default_filter",
]
