"""Meta-model inheritance: C3 linearization and content merging."""

from .engine import InheritanceEngine, c3_linearize, merge_element

__all__ = ["InheritanceEngine", "c3_linearize", "merge_element"]
