"""Inheritance resolution for XPDL meta-models.

XPDL supports (multiple) inheritance via the ``extends`` attribute: "The
inheriting type may overscribe attribute values" (Sec. III-A).  Listing 9's
``Nvidia_K20c extends Nvidia_Kepler`` overrides ``compute_capability``,
binds params like ``num_SM`` and inherits everything else.

The engine linearizes supertypes with the C3 algorithm (the same one Python
and modern UML tools use), then folds supertype content into a fresh merged
tree:

* attributes: derived values overwrite inherited ones (except ``name``/
  ``extends``, which stay those of the derived type);
* children: a derived child *merges into* an inherited child with the same
  element kind and identifier (so ``<param name="num_SM" value="13"/>``
  updates the inherited declaration instead of duplicating it); children
  without an inherited counterpart are appended.
"""

from __future__ import annotations

from ..diagnostics import (
    CompositionError,
    DiagnosticSink,
    ResolutionError,
    SourceSpan,
    TransientFetchError,
)
from ..model import ModelElement
from ..repository import ModelRepository


def c3_linearize(
    ident: str,
    parents_of: dict[str, tuple[str, ...]],
) -> list[str]:
    """C3 linearization of an inheritance hierarchy.

    ``parents_of`` maps each type to its direct supertypes in declaration
    order.  Raises :class:`CompositionError` on inconsistent hierarchies
    (the classic diamond orderings C3 rejects) and on cycles.
    """

    memo: dict[str, list[str]] = {}
    visiting: set[str] = set()

    def lin(c: str) -> list[str]:
        if c in memo:
            return memo[c]
        if c in visiting:
            raise CompositionError(f"inheritance cycle involving {c!r}")
        visiting.add(c)
        parents = parents_of.get(c, ())
        sequences = [lin(p)[:] for p in parents] + [list(parents)]
        result = [c] + _c3_merge(sequences, c)
        visiting.discard(c)
        memo[c] = result
        return result

    return lin(ident)


def _c3_merge(sequences: list[list[str]], context: str) -> list[str]:
    result: list[str] = []
    seqs = [s[:] for s in sequences if s]
    while seqs:
        head = None
        for s in seqs:
            cand = s[0]
            if not any(cand in other[1:] for other in seqs):
                head = cand
                break
        if head is None:
            raise CompositionError(
                f"inconsistent inheritance hierarchy at {context!r} "
                "(no C3 linearization exists)"
            )
        result.append(head)
        for s in seqs:
            if s and s[0] == head:
                del s[0]
        seqs = [s for s in seqs if s]
    return result


#: Attributes that always belong to the derived type, never inherited.
_IDENTITY_ATTRS = ("name", "id", "extends")


def merge_element(base: ModelElement, derived: ModelElement) -> ModelElement:
    """Fold ``derived`` over a clone of ``base`` and return the result."""
    merged = base.clone()
    _merge_into(merged, derived)
    return merged


def _child_key(elem: ModelElement) -> tuple[str, str] | None:
    ident = elem.name or elem.ident
    if ident is None:
        return None
    return (elem.kind, ident)


def _merge_into(target: ModelElement, source: ModelElement) -> None:
    for k, v in source.attrs.items():
        target.attrs[k] = v
    # Identity belongs to the derived element: when an *instance* (id, no
    # name) inherits from a meta-model, the supertype's name must not leak
    # into the merged element, or it would masquerade as a meta-model.
    if "name" not in source.attrs and "id" in source.attrs:
        target.attrs.pop("name", None)
        target.attrs["id"] = source.attrs["id"]
    by_key = {}
    for child in target.children:
        key = _child_key(child)
        if key is not None:
            by_key[key] = child
    for child in source.children:
        key = _child_key(child)
        if key is not None and key in by_key:
            _merge_into(by_key[key], child)
        else:
            target.add(child.clone())
    if source.span.source != "<unknown>":
        target.span = source.span


class InheritanceEngine:
    """Resolves ``extends`` chains against a model repository."""

    def __init__(self, repository: ModelRepository) -> None:
        self.repository = repository
        self._resolved: dict[str, ModelElement] = {}

    # -- hierarchy ----------------------------------------------------------
    def parents_map(self, ident: str, sink: DiagnosticSink | None = None) -> dict[str, tuple[str, ...]]:
        """Direct-supertype map for ``ident``'s whole hierarchy."""
        sink = sink if sink is not None else DiagnosticSink()
        parents: dict[str, tuple[str, ...]] = {}
        stack = [ident]
        while stack:
            cur = stack.pop()
            if cur in parents:
                continue
            try:
                model = self.repository.load_model(cur, sink)
            except TransientFetchError as exc:
                # The descriptor exists but could not be fetched right now:
                # degrade like an opaque root, but say why — this is a
                # network problem, not a category tag.
                parents[cur] = ()
                sink.warning(
                    "XPDL0301",
                    f"supertype {cur!r} could not be fetched (transient "
                    f"failure): {exc}; treated as opaque",
                    SourceSpan.unknown(cur),
                )
                continue
            except ResolutionError:
                # Unresolvable supertype: treat as a root with a warning;
                # e.g. 'Nvidia_GPU' may be a category without a descriptor.
                parents[cur] = ()
                sink.warning(
                    "XPDL0300",
                    f"supertype {cur!r} has no descriptor; treated as opaque",
                    SourceSpan.unknown(cur),
                )
                continue
            parents[cur] = model.extends
            stack.extend(model.extends)
        return parents

    def linearization(self, ident: str, sink: DiagnosticSink | None = None) -> list[str]:
        """C3 method-resolution order of ``ident`` (most derived first)."""
        return c3_linearize(ident, self.parents_map(ident, sink))

    # -- resolution ----------------------------------------------------------
    def resolve(self, ident: str, sink: DiagnosticSink | None = None) -> ModelElement:
        """Effective meta-model of ``ident`` with all supertypes folded in."""
        if ident in self._resolved:
            return self._resolved[ident]
        sink = sink if sink is not None else DiagnosticSink()
        order = self.linearization(ident, sink)
        # Fold from the deepest base to the most derived type.
        merged: ModelElement | None = None
        for type_name in reversed(order):
            try:
                model = self.repository.load_model(type_name, sink)
            except (ResolutionError, TransientFetchError):
                continue  # opaque/unreachable supertype, already warned
            if merged is None:
                merged = model.clone()
            else:
                _merge_into(merged, model)
        if merged is None:
            raise ResolutionError(f"cannot resolve meta-model {ident!r}")
        # The resolved element is self-contained: drop the extends marker
        # but record the chain for provenance/debugging.
        if "extends" in merged.attrs:
            merged.attrs["resolved_extends"] = merged.attrs.pop("extends")
        self._resolved[ident] = merged
        return merged

    def resolve_inline(
        self, element: ModelElement, sink: DiagnosticSink | None = None
    ) -> ModelElement:
        """Resolve an element that carries ``extends`` but is not in the repo."""
        if not element.extends:
            return element
        sink = sink if sink is not None else DiagnosticSink()
        merged: ModelElement | None = None
        for sup in reversed(element.extends):
            try:
                sup_model = self.resolve(sup, sink)
            except ResolutionError:
                sink.warning(
                    "XPDL0300",
                    f"supertype {sup!r} has no descriptor; treated as opaque",
                    element.span,
                )
                continue
            if merged is None:
                merged = sup_model.clone()
            else:
                _merge_into(merged, sup_model)
        if merged is None:
            return element
        _merge_into(merged, element)
        if "extends" in merged.attrs:
            merged.attrs["resolved_extends"] = merged.attrs.pop("extends")
        return merged
