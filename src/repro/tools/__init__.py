"""Developer tools for maintaining distributed descriptor repositories."""

from .diff import (
    ChangeKind,
    ModelChange,
    diff_models,
    models_equivalent,
    render_diff,
)

__all__ = [
    "ChangeKind",
    "ModelChange",
    "diff_models",
    "models_equivalent",
    "render_diff",
]
