"""Semantic diff between descriptor versions.

A distributed model repository evolves: vendors publish updated descriptor
versions, sites override local copies.  A textual diff is noisy (attribute
order, formatting); this tool diffs *models*: elements matched by identity
(kind + name/id, falling back to position), attributes compared as typed
values (``frequency="2" unit="GHz"`` equals ``frequency="2000" unit="MHz"``),
and subtrees recursed.

The result is a flat change list suitable for review or for deciding
whether a cached runtime model must be regenerated.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..diagnostics import UnitError
from ..model import ModelElement
from ..units import is_unit_attribute, read_metric


class ChangeKind(enum.Enum):
    ADDED = "added"
    REMOVED = "removed"
    ATTR_CHANGED = "attr-changed"
    ATTR_ADDED = "attr-added"
    ATTR_REMOVED = "attr-removed"


@dataclass(frozen=True, slots=True)
class ModelChange:
    """One difference between two model versions."""

    kind: ChangeKind
    path: str
    attribute: str | None = None
    old: str | None = None
    new: str | None = None

    def describe(self) -> str:
        if self.kind is ChangeKind.ADDED:
            return f"+ {self.path}"
        if self.kind is ChangeKind.REMOVED:
            return f"- {self.path}"
        if self.kind is ChangeKind.ATTR_ADDED:
            return f"  {self.path} +{self.attribute}={self.new!r}"
        if self.kind is ChangeKind.ATTR_REMOVED:
            return f"  {self.path} -{self.attribute} (was {self.old!r})"
        return (
            f"  {self.path} {self.attribute}: {self.old!r} -> {self.new!r}"
        )


def _identity(elem: ModelElement, index: int) -> tuple:
    ident = elem.name or elem.ident
    if ident is not None:
        return (elem.kind, "id", ident)
    return (elem.kind, "pos", index)


def _attr_equal(elem_a: ModelElement, elem_b: ModelElement, name: str) -> bool:
    """Typed comparison: quantities compare by magnitude, not spelling."""
    a_raw = elem_a.attrs.get(name)
    b_raw = elem_b.attrs.get(name)
    if a_raw == b_raw:
        return True
    try:
        qa = read_metric(elem_a.attrs, name)
        qb = read_metric(elem_b.attrs, name)
    except UnitError:
        return False
    if qa is not None and qb is not None and qa.dimension == qb.dimension:
        return qa.close_to(qb, rel=1e-12)
    return False


def diff_models(
    old: ModelElement, new: ModelElement, *, path: str = ""
) -> list[ModelChange]:
    """All semantic changes from ``old`` to ``new``."""
    here = path or f"{new.kind}#{new.label()}"
    changes: list[ModelChange] = []

    # Attributes (unit attrs are folded into their metric's comparison).
    old_attrs = {k for k in old.attrs if not is_unit_attribute(k)}
    new_attrs = {k for k in new.attrs if not is_unit_attribute(k)}
    for name in sorted(old_attrs - new_attrs):
        changes.append(
            ModelChange(
                ChangeKind.ATTR_REMOVED, here, name, old=old.attrs[name]
            )
        )
    for name in sorted(new_attrs - old_attrs):
        changes.append(
            ModelChange(
                ChangeKind.ATTR_ADDED, here, name, new=new.attrs[name]
            )
        )
    for name in sorted(old_attrs & new_attrs):
        if not _attr_equal(old, new, name):
            changes.append(
                ModelChange(
                    ChangeKind.ATTR_CHANGED,
                    here,
                    name,
                    old=old.attrs[name],
                    new=new.attrs[name],
                )
            )

    # Children matched by identity.
    old_children = {
        _identity(c, i): c for i, c in enumerate(old.children)
    }
    new_children = {
        _identity(c, i): c for i, c in enumerate(new.children)
    }
    for key in sorted(
        set(old_children) - set(new_children), key=str
    ):
        c = old_children[key]
        changes.append(
            ModelChange(
                ChangeKind.REMOVED, f"{here}/{c.kind}#{c.label()}"
            )
        )
    for key in sorted(
        set(new_children) - set(old_children), key=str
    ):
        c = new_children[key]
        changes.append(
            ModelChange(ChangeKind.ADDED, f"{here}/{c.kind}#{c.label()}")
        )
    for key in sorted(set(old_children) & set(new_children), key=str):
        c_old, c_new = old_children[key], new_children[key]
        changes.extend(
            diff_models(
                c_old,
                c_new,
                path=f"{here}/{c_new.kind}#{c_new.label()}",
            )
        )
    return changes


def render_diff(changes: list[ModelChange]) -> str:
    if not changes:
        return "(no semantic differences)"
    return "\n".join(c.describe() for c in changes)


def models_equivalent(a: ModelElement, b: ModelElement) -> bool:
    """True when two models have no semantic differences."""
    return not diff_models(a, b)
