"""Batch compilation: discovery, sharding, parallel determinism, CLI."""

from __future__ import annotations

import copy
import json
import os

import pytest

from repro.cli import main
from repro.diagnostics import DiagnosticSink, XpdlError
from repro.modellib import standard_repository
from repro.obs import Observer
from repro.toolchain import discover_systems, plan_shards, run_batch


def run_cli(capsys, *argv: str) -> tuple[int, str, str]:
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestDiscovery:
    def test_finds_every_system(self, repo):
        systems = discover_systems(repo)
        assert "liu_gpu_server" in systems
        assert "myriad_server" in systems
        assert "XScluster" in systems
        assert systems == sorted(systems)

    def test_explicit_list_restricts_the_build(self, repo):
        assert discover_systems(repo, ("Nvidia_K20c", "XScluster")) == [
            "Nvidia_K20c",
            "XScluster",
        ]

    def test_unknown_extra_rejected_up_front(self, repo):
        with pytest.raises(XpdlError):
            discover_systems(repo, ("ghost_system",))


class TestShardPlanning:
    def test_deterministic_and_covering(self, repo):
        targets = discover_systems(repo)
        p1 = plan_shards(repo, targets, jobs=2, sink=DiagnosticSink())
        p2 = plan_shards(repo, targets, jobs=2, sink=DiagnosticSink())
        assert p1.shards == p2.shards
        assert p1.fingerprints == p2.fingerprints
        flat = [ident for shard in p1.shards for ident in shard]
        assert sorted(flat) == sorted(targets)  # exact coverage, no dups
        assert len(p1.shards) <= 2

    def test_more_jobs_than_systems_gives_singletons(self, repo):
        targets = discover_systems(repo)
        plan = plan_shards(repo, targets, jobs=64, sink=DiagnosticSink())
        assert all(len(shard) == 1 for shard in plan.shards)
        assert len(plan.shards) == len(targets)

    def test_fingerprint_tracks_sources(self, repo):
        targets = discover_systems(repo)
        plan = plan_shards(repo, targets, jobs=1, sink=DiagnosticSink())
        for ident in targets:
            assert len(plan.fingerprints[ident]) == 64
            assert ident in plan.closures[ident] or plan.closures[ident]


class TestBatchBuild:
    def test_parallel_ir_identical_to_sequential(self):
        """Acceptance: --jobs N produces byte-identical IR (via SHA-256)."""
        seq = run_batch(standard_repository(), jobs=1, cache_dir=None)
        par = run_batch(standard_repository(), jobs=2, cache_dir=None)
        assert seq.ok and par.ok
        assert [b.identifier for b in seq.builds] == [
            b.identifier for b in par.builds
        ]
        assert [b.ir_sha256 for b in seq.builds] == [
            b.ir_sha256 for b in par.builds
        ]
        assert len(par.shards) >= 2

    def test_warm_persistent_cache_hit_rate(self, tmp_path):
        """Acceptance: a warm rebuild is >= 90% stage-cache hits."""
        cache_dir = str(tmp_path / "cache")
        cold = run_batch(standard_repository(), jobs=1, cache_dir=cache_dir)
        warm = run_batch(standard_repository(), jobs=1, cache_dir=cache_dir)
        assert cold.ok and warm.ok
        assert warm.cache["disk_hits"] > 0
        assert warm.hit_rate >= 0.9
        assert [b.ir_sha256 for b in warm.builds] == [
            b.ir_sha256 for b in cold.builds
        ]

    def test_merged_counters_and_diagnostics(self):
        obs = Observer()
        sink = DiagnosticSink()
        report = run_batch(
            standard_repository(),
            jobs=1,
            cache_dir=None,
            observer=obs,
            sink=sink,
        )
        n = len(report.builds)
        assert n >= 3
        # one real composition per system, merged into the caller's observer
        assert obs.counters["compose.runs"] == n
        assert report.counters["compose.runs"] == n
        assert report.stage_timings["toolchain.compose"]["runs"] == n
        # worker diagnostics land in the caller's sink with provenance
        assert len(sink) > 0
        assert report.diagnostics == sink.diagnostics

    def test_out_dir_writes_artifacts(self, tmp_path):
        out_dir = str(tmp_path / "out")
        report = run_batch(
            standard_repository(),
            ("myriad_server",),
            jobs=1,
            cache_dir=None,
            out_dir=out_dir,
        )
        paths = [b.out_path for b in report.builds if b.out_path]
        assert os.path.join(out_dir, "myriad_server.xir") in paths
        for path in paths:
            assert os.path.getsize(path) > 0

    def test_report_to_dict_is_json_ready(self, tmp_path):
        report = run_batch(
            standard_repository(), jobs=1, cache_dir=str(tmp_path / "c")
        )
        data = json.loads(json.dumps(report.to_dict()))
        assert data["ok"] is True
        assert len(data["builds"]) == len(report.builds)
        assert data["hit_rate"] == round(report.hit_rate, 4)


class TestBuildCli:
    def test_build_writes_outputs_and_report(self, capsys, tmp_path):
        out_dir = str(tmp_path / "out")
        report = str(tmp_path / "report.json")
        code, out, _err = run_cli(
            capsys,
            "build",
            "--jobs",
            "1",
            "--cache-dir",
            str(tmp_path / "cache"),
            "-o",
            out_dir,
            "--json",
            report,
        )
        assert code == 0
        assert "built" in out and "systems" in out
        assert any(f.endswith(".xir") for f in os.listdir(out_dir))
        data = json.load(open(report))
        assert data["ok"] is True
        assert all(b["ir_sha256"] for b in data["builds"])

    def test_second_build_is_warm(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        report = str(tmp_path / "warm.json")
        run_cli(capsys, "build", "-j", "1", "--cache-dir", cache_dir)
        code, out, _ = run_cli(
            capsys, "build", "-j", "1", "--cache-dir", cache_dir,
            "--json", report,
        )
        assert code == 0
        data = json.load(open(report))
        assert data["hit_rate"] >= 0.9
        assert data["cache"]["disk_hits"] > 0
        assert "hit rate" in out

    def test_no_cache_flag(self, capsys, tmp_path):
        code, _out, _ = run_cli(
            capsys, "build", "-j", "1", "--no-cache",
            "--cache-dir", str(tmp_path / "never"),
        )
        assert code == 0
        assert not os.path.exists(str(tmp_path / "never"))

    def test_explicit_identifiers_only(self, capsys, tmp_path):
        report = str(tmp_path / "one.json")
        code, _out, _ = run_cli(
            capsys, "build", "myriad_server", "-j", "1",
            "--cache-dir", str(tmp_path / "c"), "--json", report,
        )
        assert code == 0
        data = json.load(open(report))
        idents = [b["identifier"] for b in data["builds"]]
        assert idents == ["myriad_server"]

    def test_unknown_identifier_fails(self, capsys, tmp_path):
        code, _out, err = run_cli(
            capsys, "build", "ghost_system",
            "--cache-dir", str(tmp_path / "c"),
        )
        assert code == 2
        assert "ghost_system" in err


class TestCacheCli:
    def _prime(self, capsys, cache_dir: str) -> None:
        run_cli(
            capsys, "build", "myriad_server", "-j", "1",
            "--cache-dir", cache_dir,
        )

    def test_stats_verify_clear_roundtrip(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        self._prime(capsys, cache_dir)

        code, out, _ = run_cli(capsys, "cache", "stats", "--cache-dir", cache_dir)
        assert code == 0
        assert "entries:" in out
        assert "emit_ir" in out

        code, out, _ = run_cli(capsys, "cache", "verify", "--cache-dir", cache_dir)
        assert code == 0
        assert "0 problem(s)" in out

        code, out, _ = run_cli(capsys, "cache", "clear", "--cache-dir", cache_dir)
        assert code == 0
        assert "cleared" in out

        code, out, _ = run_cli(capsys, "cache", "stats", "--cache-dir", cache_dir)
        assert code == 0
        assert "entries:  0" in out

    def test_verify_flags_corruption(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        self._prime(capsys, cache_dir)
        objects = os.path.join(cache_dir, "objects")
        for root, _dirs, names in os.walk(objects):
            for name in names:
                with open(os.path.join(root, name), "wb") as fh:
                    fh.write(b"garbage")
        code, out, err = run_cli(capsys, "cache", "verify", "--cache-dir", cache_dir)
        assert code == 1
        assert "mismatch" in err


class TestBenchHarness:
    def test_run_bench_and_gate(self):
        harness = pytest.importorskip("benchmarks.harness")
        data = harness.run_bench(jobs=1, identifiers=["myriad_server"])
        assert data["ir_deterministic"] is True
        assert data["phases"]["warm"]["hit_rate"] >= 0.9
        assert data["phases"]["cold"]["builds"] == 1
        assert harness.compare(data, data) == []

    def test_gate_fails_on_regression(self):
        harness = pytest.importorskip("benchmarks.harness")
        data = harness.run_bench(jobs=1, identifiers=["myriad_server"])
        worse = copy.deepcopy(data)
        worse["phases"]["warm"]["norm_wall"] = (
            data["phases"]["warm"]["norm_wall"] * 10.0 + 10.0
        )
        problems = harness.compare(data, worse, max_regress=0.25)
        assert any("regressed" in p for p in problems)

    def test_report_roundtrip(self, tmp_path):
        harness = pytest.importorskip("benchmarks.harness")
        data = harness.run_bench(jobs=1, identifiers=["myriad_server"])
        data["rev"] = "testrev"
        path = harness.write_report(data, str(tmp_path))
        assert path.endswith("BENCH_testrev.json")
        loaded = harness.load_report(path)
        assert loaded == json.loads(json.dumps(data))

    def test_committed_baseline_is_loadable(self):
        harness = pytest.importorskip("benchmarks.harness")
        baseline = harness.load_report(
            os.path.join(
                os.path.dirname(harness.__file__),
                "baseline",
                "BENCH_baseline.json",
            )
        )
        assert baseline["phases"]["warm"]["hit_rate"] >= 0.9
        assert baseline["ir_deterministic"] is True
