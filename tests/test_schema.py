"""Tests for the schema object model, XML round-trip and validator."""

import pytest

from repro.diagnostics import DiagnosticSink, SchemaError
from repro.model import from_document
from repro.schema import (
    AttrKind,
    AttributeDecl,
    CORE_SCHEMA,
    ElementDecl,
    Schema,
    SchemaValidator,
    schema_from_xml,
    schema_to_xml,
    validate_model,
)
from repro.xpdlxml import parse_xml


def validate_text(text: str) -> DiagnosticSink:
    return validate_model(from_document(parse_xml(text)))


def codes(sink: DiagnosticSink) -> set[str]:
    return {d.code for d in sink}


class TestSchemaModel:
    def test_core_schema_has_paper_tags(self):
        for tag in (
            "system",
            "cluster",
            "node",
            "socket",
            "cpu",
            "core",
            "cache",
            "memory",
            "device",
            "group",
            "interconnect",
            "channel",
            "const",
            "param",
            "constraint",
            "power_model",
            "power_domain",
            "power_state_machine",
            "power_state",
            "transition",
            "instructions",
            "inst",
            "data",
            "microbenchmarks",
            "microbenchmark",
            "software",
            "installed",
            "hostOS",
            "programming_model",
            "properties",
            "property",
        ):
            assert tag in CORE_SCHEMA, tag

    def test_effective_attributes_inherit(self):
        attrs = CORE_SCHEMA.effective_attributes("cpu")
        assert "name" in attrs  # from xpdl:modelElement
        assert "static_power" in attrs  # from xpdl:hardwareComponent
        assert "frequency" in attrs  # own

    def test_effective_children(self):
        children = CORE_SCHEMA.effective_children("cpu")
        assert "core" in children and "cache" in children

    def test_open_flags_inherit(self):
        s = Schema()
        s.element("base", open_content=True)
        s.element("derived", bases=("base",))
        assert s.is_open_content("derived")

    def test_duplicate_declaration_rejected(self):
        s = Schema()
        s.element("cpu")
        with pytest.raises(ValueError):
            s.element("cpu")

    def test_unit_attr_of_quantity(self):
        decl = AttributeDecl("static_power", AttrKind.QUANTITY)
        assert decl.unit_attr() == "static_power_unit"
        assert AttributeDecl("size", AttrKind.QUANTITY).unit_attr() == "unit"
        assert AttributeDecl("x", AttrKind.STRING).unit_attr() is None


class TestSchemaIO:
    def test_roundtrip_identical(self):
        xml = schema_to_xml(CORE_SCHEMA)
        s2 = schema_from_xml(xml)
        assert s2.tags() == CORE_SCHEMA.tags()
        for tag in CORE_SCHEMA.tags():
            a1 = CORE_SCHEMA.effective_attributes(tag)
            a2 = s2.effective_attributes(tag)
            assert set(a1) == set(a2), tag
            for name in a1:
                assert a1[name].kind == a2[name].kind
                assert a1[name].required == a2[name].required
                assert a1[name].dimension == a2[name].dimension
            assert CORE_SCHEMA.effective_children(tag).keys() == s2.effective_children(tag).keys()

    def test_bad_root_raises(self):
        with pytest.raises(SchemaError):
            schema_from_xml("<notschema/>")


class TestValidator:
    def test_valid_cpu_clean(self):
        sink = validate_text(
            '<cpu name="X"><core frequency="2" frequency_unit="GHz"/>'
            '<cache name="L1" size="32" unit="KiB"/></cpu>'
        )
        assert not sink.has_errors()
        assert len(sink) == 0

    def test_missing_required_attribute(self):
        sink = validate_text('<cache name="L1"/>')
        assert "XPDL0101" in codes(sink)

    def test_unknown_unit(self):
        sink = validate_text('<cache name="L1" size="1" unit="XiB"/>')
        assert "XPDL0103" in codes(sink)

    def test_wrong_dimension_unit(self):
        sink = validate_text('<core frequency="2" frequency_unit="W"/>')
        assert "XPDL0104" in codes(sink)

    def test_unit_without_metric(self):
        sink = validate_text('<cache name="L1" size="1" unit="KiB" frequency_unit="GHz"/>')
        assert "XPDL0102" in codes(sink)

    def test_metric_without_unit_warns(self):
        sink = validate_text('<core frequency="2"/>')
        assert "XPDL0115" in codes(sink)
        assert not sink.has_errors()

    def test_placeholder_is_fine(self):
        sink = validate_text(
            '<inst name="fmul" energy="?" energy_unit="pJ"/>'
        )
        assert not sink.has_errors()

    def test_param_reference_value_allowed(self):
        # Listing 8: frequency="cfrq" names a param.
        sink = validate_text('<core frequency="cfrq"/>')
        assert not sink.has_errors()

    def test_bad_int(self):
        sink = validate_text('<cache name="L1" size="1" unit="KiB" sets="two"/>')
        assert "XPDL0110" in codes(sink)

    def test_bad_enum(self):
        sink = validate_text('<cpu name="X" role="boss"/>')
        assert "XPDL0113" in codes(sink)

    def test_bad_bool(self):
        sink = validate_text('<param name="p" configurable="maybe"/>')
        assert "XPDL0112" in codes(sink)

    def test_unknown_attribute_warns(self):
        sink = validate_text('<cpu name="X" turbo="yes"/>')
        assert "XPDL0105" in codes(sink)
        assert not sink.has_errors()

    def test_unknown_element_warns(self):
        sink = validate_text("<fpga/>")
        assert "XPDL0100" in codes(sink)

    def test_open_attributes_escape(self):
        # <property> allows arbitrary attributes.
        sink = validate_text('<property name="k" anything="v"/>')
        assert "XPDL0105" not in codes(sink)

    def test_required_constraint_expr(self):
        sink = validate_text("<constraint/>")
        assert "XPDL0101" in codes(sink)

    def test_child_multiplicity_max(self):
        sink = validate_text(
            "<system id='s'><software/><software/></system>"
        )
        assert "XPDL0122" in codes(sink)

    def test_unexpected_child_warns(self):
        sink = validate_text("<socket><memory size='1' unit='GB'/></socket>")
        assert "XPDL0120" in codes(sink)

    def test_group_content_is_transparent(self):
        sink = validate_text(
            "<cpu name='X'><group quantity='2'><core/></group></cpu>"
        )
        assert "XPDL0120" not in codes(sink)

    def test_validate_strict_raises(self):
        model = from_document(parse_xml('<cache name="L1"/>'))
        with pytest.raises(SchemaError):
            SchemaValidator().validate_strict(model)

    def test_whole_corpus_validates(self, repo):
        for ident in repo.identifiers():
            sink = DiagnosticSink()
            repo.load(ident, sink)
            assert not sink.has_errors(), f"{ident}: {sink.render()}"
