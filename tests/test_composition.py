"""Tests for conditional composition and the SpMV case study."""

import pytest

from repro.diagnostics import XpdlError
from repro.composition import (
    CallContext,
    Component,
    Dispatcher,
    ExecutionResult,
    SpmvProblem,
    Variant,
    density_at_least,
    density_below,
    make_spmv_component,
    requires_cuda_device,
)
from repro.units import Quantity


def q(v, u):
    return Quantity.of(v, u)


def dummy_exec(name):
    def run(_testbed, _call):
        return ExecutionResult(name, q(1, "ms"), q(1, "mJ"))

    return run


class TestSelectability:
    def test_software_requirement(self, liu_ctx, liu_testbed):
        v = Variant("v", dummy_exec("v"), requires_software=("gpu_sparse_blas",))
        assert v.selectable(liu_ctx, CallContext())
        v2 = Variant("v2", dummy_exec("v2"), requires_software=("fpga_toolkit",))
        assert not v2.selectable(liu_ctx, CallContext())

    def test_cuda_device_constraint(self, liu_ctx):
        v = Variant("v", dummy_exec("v"), constraints=(requires_cuda_device,))
        assert v.selectable(liu_ctx, CallContext())

    def test_density_constraints(self, liu_ctx):
        hi = Variant("hi", dummy_exec("hi"), constraints=(density_at_least(0.01),))
        lo = Variant("lo", dummy_exec("lo"), constraints=(density_below(0.01),))
        dense = CallContext({"density": 0.05})
        sparse = CallContext({"density": 0.001})
        assert hi.selectable(liu_ctx, dense) and not hi.selectable(liu_ctx, sparse)
        assert lo.selectable(liu_ctx, sparse) and not lo.selectable(liu_ctx, dense)

    def test_component_selectable_variants(self, liu_ctx):
        comp = make_spmv_component()
        call = SpmvProblem(n=1024, density=0.01).call_context()
        names = {v.name for v in comp.selectable_variants(liu_ctx, call)}
        assert names == {"cpu_csr", "gpu_csr"}

    def test_missing_call_property(self):
        call = CallContext({"rows": 10.0})
        with pytest.raises(XpdlError):
            call["density"]
        assert call.get("density") is None


class TestSpmvProblem:
    def test_nnz_from_density(self):
        p = SpmvProblem(n=1000, density=0.01)
        assert p.nnz == 10_000

    def test_materialize_shapes(self):
        p = SpmvProblem(n=100, density=0.05, seed=3)
        values, col_idx, row_ptr = p.materialize()
        assert values.shape == (p.nnz,)
        assert col_idx.shape == (p.nnz,)
        assert row_ptr.shape == (101,)
        assert row_ptr[-1] == p.nnz
        assert (col_idx < 100).all()

    def test_deterministic(self):
        a = SpmvProblem(n=50, density=0.1, seed=7).materialize()[0]
        b = SpmvProblem(n=50, density=0.1, seed=7).materialize()[0]
        assert (a == b).all()


class TestSpmvVariants:
    def test_both_variants_execute(self, liu_testbed):
        comp = make_spmv_component()
        call = SpmvProblem(n=2048, density=0.01).call_context()
        cpu = comp.variant("cpu_csr").execute(liu_testbed, call)
        gpu = comp.variant("gpu_csr").execute(liu_testbed, call)
        assert cpu.time.magnitude > 0 and gpu.time.magnitude > 0
        assert cpu.energy.magnitude > 0 and gpu.energy.magnitude > 0

    def test_gpu_wins_dense_cpu_wins_sparse(self, liu_testbed):
        comp = make_spmv_component()
        dense = SpmvProblem(n=4096, density=0.05).call_context()
        sparse = SpmvProblem(n=4096, density=5e-5).call_context()
        cpu_d = comp.variant("cpu_csr").execute(liu_testbed, dense)
        gpu_d = comp.variant("gpu_csr").execute(liu_testbed, dense)
        assert gpu_d.time < cpu_d.time
        cpu_s = comp.variant("cpu_csr").execute(liu_testbed, sparse)
        gpu_s = comp.variant("gpu_csr").execute(liu_testbed, sparse)
        assert cpu_s.time < gpu_s.time

    def test_unknown_variant_raises(self):
        comp = make_spmv_component()
        with pytest.raises(XpdlError):
            comp.variant("tpu_csr")


class TestDispatcher:
    def test_first_policy(self, liu_ctx, liu_testbed):
        disp = Dispatcher(liu_ctx, liu_testbed, policy="first")
        comp = make_spmv_component()
        call = SpmvProblem(n=1024, density=0.01).call_context()
        chosen = disp.select(comp, call)
        assert chosen.name == "cpu_csr"  # declaration order

    def test_predict_policy_tracks_crossover(self, liu_ctx, liu_testbed):
        disp = Dispatcher(liu_ctx, liu_testbed, policy="predict")
        comp = make_spmv_component()
        dense = SpmvProblem(n=4096, density=0.05).call_context()
        assert disp.select(comp, dense).name == "gpu_csr"
        sparse = SpmvProblem(n=4096, density=5e-5).call_context()
        assert disp.select(comp, sparse).name == "cpu_csr"

    def test_tuned_policy_learns(self, liu_ctx, liu_testbed):
        disp = Dispatcher(liu_ctx, liu_testbed, policy="tuned")
        comp = make_spmv_component()
        training = [
            SpmvProblem(n=4096, density=d).call_context()
            for d in (2e-5, 5e-5, 1e-4, 1e-3, 1e-2, 5e-2)
        ]
        table = disp.calibrate(comp, "density", training)
        assert len(table.points) == len(training)
        sparse = SpmvProblem(n=4096, density=3e-5).call_context()
        dense = SpmvProblem(n=4096, density=3e-2).call_context()
        assert disp.select(comp, sparse).name == "cpu_csr"
        assert disp.select(comp, dense).name == "gpu_csr"

    def test_tuned_beats_or_matches_static(self, liu_ctx, liu_testbed):
        """The paper's case-study shape: tuned selection is never worse than
        the best static choice across the density sweep."""
        comp = make_spmv_component()
        disp = Dispatcher(liu_ctx, liu_testbed, policy="tuned")
        densities = [2e-5, 1e-4, 1e-3, 1e-2, 1e-1]
        training = [
            SpmvProblem(n=4096, density=d).call_context() for d in densities
        ]
        disp.calibrate(comp, "density", training)
        total_tuned = total_cpu = total_gpu = 0.0
        for d in densities:
            call = SpmvProblem(n=4096, density=d).call_context()
            total_tuned += disp.invoke(comp, call).time.magnitude
            total_cpu += comp.variant("cpu_csr").execute(liu_testbed, call).time.magnitude
            total_gpu += comp.variant("gpu_csr").execute(liu_testbed, call).time.magnitude
        assert total_tuned <= min(total_cpu, total_gpu) * 1.0001

    def test_dispatch_records(self, liu_ctx, liu_testbed):
        disp = Dispatcher(liu_ctx, liu_testbed, policy="predict")
        comp = make_spmv_component()
        disp.invoke(comp, SpmvProblem(n=512, density=0.01).call_context())
        assert len(disp.records) == 1
        rec = disp.records[0]
        assert rec.component == "spmv"
        assert set(rec.selectable) == {"cpu_csr", "gpu_csr"}
        assert rec.policy == "predict"

    def test_no_selectable_variant_raises(self, liu_ctx, liu_testbed):
        comp = Component(
            "x",
            (Variant("v", dummy_exec("v"), requires_software=("quantum",)),),
        )
        disp = Dispatcher(liu_ctx, liu_testbed)
        with pytest.raises(XpdlError):
            disp.select(comp, CallContext())

    def test_bad_policy_rejected(self, liu_ctx, liu_testbed):
        with pytest.raises(XpdlError):
            Dispatcher(liu_ctx, liu_testbed, policy="vibes")
