"""Unit tests for the from-scratch XML parser."""

import pytest

from repro.diagnostics import DiagnosticSink, ParseError
from repro.xpdlxml import (
    XmlCData,
    XmlComment,
    XmlPI,
    XmlText,
    parse_xml,
)


class TestBasicParsing:
    def test_simple_element(self):
        doc = parse_xml("<cpu/>")
        assert doc.root.tag == "cpu"
        assert doc.root.children == []

    def test_attributes(self):
        doc = parse_xml('<cpu name="X" frequency="2"/>')
        assert doc.root.get("name") == "X"
        assert doc.root.get("frequency") == "2"
        assert doc.root.get("missing") is None
        assert doc.root.get("missing", "d") == "d"

    def test_attribute_order_preserved(self):
        doc = parse_xml('<e b="1" a="2" c="3"/>')
        assert [k for k, _ in doc.root.attr_items()] == ["b", "a", "c"]

    def test_nested_elements(self):
        doc = parse_xml("<a><b><c/></b><b/></a>")
        assert len(doc.root.elements("b")) == 2
        assert doc.root.elements("b")[0].first("c") is not None

    def test_text_content(self):
        doc = parse_xml("<a>hello <b/>world</a>")
        assert doc.root.text_content() == "hello world"

    def test_xml_declaration(self):
        doc = parse_xml('<?xml version="1.0" encoding="UTF-8"?><a/>')
        assert doc.xml_decl == {"version": "1.0", "encoding": "UTF-8"}

    def test_single_quotes(self):
        doc = parse_xml("<a x='1'/>")
        assert doc.root.get("x") == "1"

    def test_whitespace_tolerance(self):
        doc = parse_xml('<a\n  x = "1"\n  y="2"\n/>')
        assert doc.root.get("x") == "1"


class TestEntities:
    def test_predefined_entities(self):
        doc = parse_xml("<a>&lt;&gt;&amp;&apos;&quot;</a>")
        assert doc.root.text_content() == "<>&'\""

    def test_numeric_character_references(self):
        doc = parse_xml("<a>&#65;&#x42;</a>")
        assert doc.root.text_content() == "AB"

    def test_entities_in_attributes(self):
        doc = parse_xml('<a x="a&amp;b"/>')
        assert doc.root.get("x") == "a&b"

    def test_unknown_entity_reported(self):
        sink = DiagnosticSink()
        parse_xml("<a>&bogus;</a>", sink=sink)
        assert any(d.code == "XML0012" for d in sink)


class TestMarkup:
    def test_comment(self):
        doc = parse_xml("<a><!-- note --><b/></a>")
        comments = [c for c in doc.root.children if isinstance(c, XmlComment)]
        assert comments[0].text == " note "

    def test_cdata(self):
        doc = parse_xml("<a><![CDATA[<raw> & text]]></a>")
        cdata = [c for c in doc.root.children if isinstance(c, XmlCData)]
        assert cdata[0].text == "<raw> & text"

    def test_processing_instruction(self):
        doc = parse_xml("<a><?target some data?></a>")
        pis = [c for c in doc.root.children if isinstance(c, XmlPI)]
        assert pis[0].target == "target"
        assert pis[0].data == "some data"

    def test_doctype_skipped(self):
        doc = parse_xml("<!DOCTYPE a><a/>")
        assert doc.root.tag == "a"

    def test_prolog_comment(self):
        doc = parse_xml("<!-- header --><a/>")
        assert any(isinstance(n, XmlComment) for n in doc.prolog)


class TestPaperQuirks:
    """The paper's listings contain small XML violations we must survive."""

    def test_unquoted_attribute_value(self):
        # Listing 1 writes quantity=2.
        sink = DiagnosticSink()
        doc = parse_xml('<group prefix="core" quantity=2 />', sink=sink)
        assert doc.root.get("quantity") == "2"
        assert any(d.code == "XML0013" for d in sink)
        assert not sink.has_errors()

    def test_valueless_attribute(self):
        sink = DiagnosticSink()
        doc = parse_xml("<device configurable/>", sink=sink)
        assert doc.root.get("configurable") == "true"
        assert any(d.code == "XML0017" for d in sink)


class TestErrors:
    def test_mismatched_end_tag_recovers(self):
        sink = DiagnosticSink()
        doc = parse_xml("<a><b></c></a>", sink=sink)
        assert any(d.code == "XML0031" for d in sink)
        assert doc.root.tag == "a"

    def test_unterminated_comment(self):
        sink = DiagnosticSink()
        parse_xml("<a><!-- oops</a>", sink=sink)
        assert any(d.code == "XML0004" for d in sink)

    def test_duplicate_attribute(self):
        sink = DiagnosticSink()
        parse_xml('<a x="1" x="2"/>', sink=sink)
        assert any(d.code == "XML0018" for d in sink)

    def test_multiple_roots(self):
        sink = DiagnosticSink()
        parse_xml("<a/><b/>", sink=sink)
        assert any(d.code == "XML0020" for d in sink)

    def test_no_root(self):
        sink = DiagnosticSink()
        parse_xml("   ", sink=sink)
        assert any(d.code == "XML0022" for d in sink)

    def test_eof_inside_element(self):
        sink = DiagnosticSink()
        parse_xml("<a><b>", sink=sink)
        assert any(d.code == "XML0032" for d in sink)

    def test_strict_mode_raises(self):
        with pytest.raises(ParseError):
            parse_xml("<a><b></c></a>", strict=True)

    def test_strict_mode_ok_for_valid(self):
        doc = parse_xml("<a><b/></a>", strict=True)
        assert doc.root.tag == "a"


class TestSpans:
    def test_element_span_covers_whole_element(self):
        text = '<a>\n  <b x="1"/>\n</a>'
        doc = parse_xml(text, source_name="t.xpdl")
        b = doc.root.elements("b")[0]
        assert b.span.source == "t.xpdl"
        assert b.span.start.line == 2

    def test_attribute_value_span(self):
        doc = parse_xml('<a name="hello"/>')
        span = doc.root.attr_span("name")
        assert span.start.offset > 0

    def test_iter(self):
        doc = parse_xml("<a><b><c/></b><c/></a>")
        assert len(list(doc.root.iter("c"))) == 2
        assert [e.tag for e in doc.root.iter()] == ["a", "b", "c", "c"]
